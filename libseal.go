// Package libseal is a SEcure Audit Library for Internet services: a
// reproduction, in pure Go, of "LibSEAL: Revealing Service Integrity
// Violations Using Trusted Execution" (Aublin et al., EuroSys 2018).
//
// LibSEAL acts as a drop-in replacement for a TLS library. It terminates
// TLS connections inside a (simulated) trusted execution environment, logs
// information about every request and response into a tamper-evident
// relational audit log, and checks service-specific integrity invariants
// expressed as SQL queries. Violations — a Git server advertising a rolled-
// back branch, a collaborative editor losing edits, a file store corrupting
// metadata — become provable facts backed by the enclave's signature chain.
//
// The package re-exports the library's public surface; the implementation
// lives in internal packages:
//
//   - enclave:   simulated SGX platform (costed transitions, sealing,
//     attestation, monotonic counters)
//   - lthread, asyncall: user-level threading and asynchronous enclave calls
//   - sqldb:     embedded relational database (SQLite substitute)
//   - tlsterm:   TLS termination with the OpenSSL-shaped API
//   - audit:     hash-chained, signed, rollback-protected audit log
//   - rote:      distributed monotonic counter protocol
//   - ssm/...:   service-specific modules for Git, ownCloud and Dropbox
//   - services/...: the simulated services and attack injection
//
// A minimal server looks like:
//
//	platform := libseal.NewPlatform()
//	encl, _ := platform.Launch(libseal.EnclaveConfig{Code: []byte("my-service")})
//	bridge, _ := libseal.NewBridge(encl, libseal.BridgeConfig{})
//	seal, _ := libseal.New(bridge, libseal.Config{
//	    TLS:    libseal.TLSConfig{Cert: cert, Key: key},
//	    Module: libseal.GitModule(),
//	})
//	ssl := seal.TLS().NewSSL(conn) // then ssl.Accept / Read / Write
package libseal

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/core"
	"libseal/internal/enclave"
	"libseal/internal/faultinject"
	"libseal/internal/resilience"
	"libseal/internal/rote"
	"libseal/internal/ssm"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/ssm/messagingssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/telemetry"
	"libseal/internal/tlsterm"
)

// Core library types.
type (
	// LibSEAL is one audit-library instance.
	LibSEAL = core.LibSEAL
	// Config assembles a LibSEAL instance.
	Config = core.Config
	// Violation records one detected integrity violation.
	Violation = core.Violation

	// TLSConfig configures the enclave TLS library.
	TLSConfig = tlsterm.LibraryConfig
	// ClientConfig configures a TLS client.
	ClientConfig = tlsterm.ClientConfig
	// ServerConfig configures a native (baseline) TLS server.
	ServerConfig = tlsterm.ServerConfig
	// Optimizations toggles the §4.2 transition-reduction techniques.
	Optimizations = tlsterm.Optimizations
	// SSL is one terminated TLS connection (the OpenSSL SSL* equivalent).
	SSL = tlsterm.SSL
	// ClientConn is the client side of a secure channel, as returned by
	// ConnectTLS.
	ClientConn = tlsterm.Conn

	// Module is a service-specific module: schema, parser, invariants and
	// trimming queries for one service.
	Module = ssm.Module
	// Invariant is one integrity check expressed as SQL.
	Invariant = ssm.Invariant

	// Platform models one SGX-capable machine.
	Platform = enclave.Platform
	// Enclave is a launched enclave instance.
	Enclave = enclave.Enclave
	// EnclaveConfig describes an enclave to launch.
	EnclaveConfig = enclave.Config
	// CostModel describes the simulated platform's performance.
	CostModel = enclave.CostModel

	// Bridge connects application threads to an enclave.
	Bridge = asyncall.Bridge
	// BridgeConfig sizes the bridge.
	BridgeConfig = asyncall.Config

	// AuditMode selects in-memory or persistent logging.
	AuditMode = audit.Mode
	// VerifyOptions controls persisted-log verification.
	VerifyOptions = audit.VerifyOptions
	// VerifyStreamOptions extends VerifyOptions with the parallel segmented
	// pipeline's knobs: worker count, streaming callback, checkpointing and
	// resume (see VerifyLogFileStream).
	VerifyStreamOptions = audit.StreamOptions
	// VerifyStreamResult is a streaming verification's outcome, including
	// whole-log totals on a resumed run.
	VerifyStreamResult = audit.StreamResult
	// VerifySegment is one committed, verified segment as delivered to the
	// streaming callback. Deliveries are provisional: entries must not be
	// trusted until VerifyLogFileStream returns a nil error, since
	// whole-log checks (rollback freshness in particular) run last.
	VerifySegment = audit.SegmentInfo
	// Report is the one verification result shape every entry point
	// returns: Verify / VerifyContext for one-shot scans (Live false) and
	// Mirror.Report for live replication (Live true, plus the lag and
	// session fields). It subsumes the older VerifyResult field for field.
	Report = audit.Report
	// VerifyResult is the pre-Report result shape.
	//
	// Deprecated: use Report; Verify and VerifyContext return it directly.
	VerifyResult = audit.ShardedStreamResult
	// VerifyCheckpoint is a persisted verification checkpoint sidecar.
	VerifyCheckpoint = audit.Checkpoint
	// VerifyCheckpointConfig tells the streaming verifier where and how
	// often to persist resumable progress.
	VerifyCheckpointConfig = audit.CheckpointConfig
	// LogEntry is one verified audit-log tuple.
	LogEntry = audit.Entry
	// AuditStatus describes the audit log's degraded-mode state.
	AuditStatus = audit.Status

	// CounterGroup is a ROTE distributed monotonic counter group.
	CounterGroup = rote.Group
	// RetryPolicy tunes counter-group request timeouts, retries and backoff.
	RetryPolicy = rote.RetryPolicy
	// CounterNodeStatus is one counter node's liveness and sync state.
	CounterNodeStatus = rote.NodeStatus

	// Breaker is a circuit breaker (see NewBreakerProtector).
	Breaker = resilience.Breaker
	// BreakerConfig tunes a circuit breaker.
	BreakerConfig = resilience.BreakerConfig
	// BreakerState is a circuit breaker's position.
	BreakerState = resilience.State
	// BreakerProtector wraps a counter group in a circuit breaker; it slots
	// into Config.Protector.
	BreakerProtector = resilience.BreakerProtector
	// Health is a registry of liveness/readiness probes served over HTTP.
	Health = resilience.Health
	// HealthCheckResult is one health probe's outcome.
	HealthCheckResult = resilience.CheckResult

	// FaultScenario is a reproducible chaos schedule for robustness tests.
	FaultScenario = faultinject.Scenario
	// FaultRule schedules one fault against one target.
	FaultRule = faultinject.Rule
	// FaultInjector applies a scenario to the network, counter-node and
	// storage seams.
	FaultInjector = faultinject.Injector

	// Metric is one entry of a telemetry snapshot: a counter, gauge or
	// latency histogram reading.
	Metric = telemetry.Metric
	// TraceFunc receives one named trace event and its duration.
	TraceFunc = telemetry.TraceFunc
)

// Audit log modes.
const (
	// AuditMemory keeps the log in enclave memory only.
	AuditMemory = audit.ModeMemory
	// AuditDisk persists the log with hash chain, signatures and rollback
	// protection.
	AuditDisk = audit.ModeDisk
)

// Circuit breaker states.
const (
	// BreakerClosed lets calls flow.
	BreakerClosed = resilience.Closed
	// BreakerHalfOpen admits a single probe after the cooldown.
	BreakerHalfOpen = resilience.HalfOpen
	// BreakerOpen fails calls fast until the cooldown elapses.
	BreakerOpen = resilience.Open
)

// Check header names for in-band invariant checking (§5.2).
const (
	// CheckHeader on a request triggers an invariant check.
	CheckHeader = core.CheckHeader
	// CheckResultHeader carries the most recent check result.
	CheckResultHeader = core.CheckResultHeader
)

// New builds a LibSEAL instance on an enclave bridge from a Config struct.
// It remains for existing callers; new code should prefer Open, which
// assembles the same Config from functional options and wires the
// counter-group plumbing (retry policy, circuit breaker) in one place.
func New(bridge *Bridge, cfg Config) (*LibSEAL, error) { return core.New(bridge, cfg) }

// NewPlatform creates a fresh simulated SGX machine.
func NewPlatform() *Platform { return enclave.NewPlatform() }

// LoadOrCreatePlatform restores a persisted platform state (the simulation
// analogue of running on the same physical machine across restarts) or
// creates and persists a fresh one.
func LoadOrCreatePlatform(path string) (*Platform, error) {
	return enclave.LoadOrCreatePlatform(path)
}

// NewBridge opens an enclave call bridge (synchronous or asynchronous).
func NewBridge(encl *Enclave, cfg BridgeConfig) (*Bridge, error) {
	return asyncall.New(encl, cfg)
}

// DefaultCostModel returns the cost model calibrated against the paper's
// SGX v1 testbed.
func DefaultCostModel() CostModel { return enclave.DefaultCostModel() }

// ZeroCostModel returns a model in which enclave operations are free.
func ZeroCostModel() CostModel { return enclave.ZeroCostModel() }

// AllOptimizations enables every §4.2 transition-reduction technique.
func AllOptimizations() Optimizations { return tlsterm.AllOptimizations() }

// GitModule returns the service-specific module for Git (§6.2): it detects
// teleport, rollback and reference-deletion attacks.
func GitModule() Module { return gitssm.New() }

// OwnCloudModule returns the module for collaborative document editing: it
// detects lost edits, altered edits and stale snapshots.
func OwnCloudModule() Module { return owncloudssm.New() }

// DropboxModule returns the module for block-based file storage: it detects
// blocklist corruption and lost files.
func DropboxModule() Module { return dropboxssm.New() }

// MessagingModule returns the module for XMPP-style instant messaging (the
// fourth application scenario of §2.2): it detects dropped, modified and
// misdelivered messages.
func MessagingModule() Module { return messagingssm.New() }

// moduleRegistry maps canonical service names to module constructors. A
// fresh module is built per call: modules carry per-instance parser state.
var moduleRegistry = map[string]func() Module{
	"git":       GitModule,
	"owncloud":  OwnCloudModule,
	"dropbox":   DropboxModule,
	"messaging": MessagingModule,
}

// ModuleNames returns the registered service-module names in sorted order.
func ModuleNames() []string {
	names := make([]string, 0, len(moduleRegistry))
	for n := range moduleRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModuleByName builds the service-specific module registered under name
// ("git", "owncloud", "dropbox" or "messaging"). It is the single place
// where command-line service names resolve to modules; binaries and
// examples should use it instead of switching over names themselves.
func ModuleByName(name string) (Module, error) {
	mk, ok := moduleRegistry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (valid: %v)", ErrUnknownModule, name, ModuleNames())
	}
	return mk(), nil
}

// NewCounterGroup creates a ROTE counter group tolerating f faulty nodes,
// using the default request timeout/retry policy. It is shorthand for
// NewCounterGroupWith(f, DefaultRetryPolicy()).
func NewCounterGroup(f int) (*CounterGroup, error) {
	return NewCounterGroupWith(f, DefaultRetryPolicy())
}

// NewCounterGroupWith creates a ROTE counter group tolerating f faulty
// nodes with an explicit request timeout/retry policy, so callers tune
// quorum behaviour through the public API instead of reaching into the
// internal rote package.
func NewCounterGroupWith(f int, policy RetryPolicy) (*CounterGroup, error) {
	g, err := rote.NewGroup(f, 0)
	if err != nil {
		return nil, err
	}
	g.SetRetryPolicy(policy)
	return g, nil
}

// DefaultRetryPolicy returns the counter group's default request
// timeout/retry policy.
func DefaultRetryPolicy() RetryPolicy { return rote.DefaultRetryPolicy() }

// NewBreakerProtector wraps a counter group in a circuit breaker: after a
// run of quorum failures the breaker opens and counter operations fail fast
// (the audit log degrades immediately instead of burning its retry budget
// per batch), with half-open probes re-closing it once the quorum recovers.
// Use the result as Config.Protector. Telemetry registers under name.
func NewBreakerProtector(name string, group *CounterGroup, cfg BreakerConfig) *BreakerProtector {
	return resilience.NewBreakerProtector(name, group, cfg)
}

// NewHealth creates an empty health-probe registry; mount its endpoints
// with Health.Mount.
func NewHealth() *Health { return resilience.NewHealth() }

// HealthOK builds a passing probe result.
func HealthOK(detail string) HealthCheckResult { return resilience.OK(detail) }

// HealthUnhealthy builds a failing probe result.
func HealthUnhealthy(detail string) HealthCheckResult { return resilience.Unhealthy(detail) }

// Verify is the unified verification entry point: it checks a persisted
// audit log's integrity (hash chain, enclave signatures, counter freshness)
// with the parallel segmented pipeline, streaming by default, and returns
// the unified Report shape shared with VerifyContext and Mirror.Report.
//
// path may be either a single log file or a directory. A directory holding
// a sharded set (shard files plus an epoch-manifest sidecar, as written
// under WithAuditShards) is verified shard-by-shard in parallel and then
// cross-checked against the signed manifests, so a rollback of any single
// shard is detected even though each shard's own chain still verifies. A
// directory holding one plain log file, or a file path, degrades to
// single-log verification with the same options. Set opts.ResumeAuto to
// continue from per-shard checkpoint sidecars written by a previous run.
func Verify(path string, opts VerifyStreamOptions) (*Report, error) {
	return VerifyContext(context.Background(), path, opts)
}

// VerifyContext is Verify with cancellation: ctx aborts the verification
// between segments, returning ctx's error. Results verified before the
// cancellation are not reported (a partial scan proves nothing about the
// suffix).
func VerifyContext(ctx context.Context, path string, opts VerifyStreamOptions) (*Report, error) {
	return audit.VerifyPathReport(ctx, path, opts)
}

// VerifyLogFileStream verifies one persisted audit log file with the
// parallel segmented pipeline: signature records cut the log into
// independently checkable segments, a worker pool recomputes hashes and
// ECDSA signatures concurrently, and the merged verdict is identical to
// VerifyLogFile's. Supports streaming callbacks (bounded memory) and
// resumable checkpoints. It is the single-file core under Verify, which
// additionally understands sharded sets; new callers should prefer Verify.
func VerifyLogFileStream(path string, opts VerifyStreamOptions) (*VerifyStreamResult, error) {
	return audit.VerifyFileStream(path, opts)
}

// LoadVerifyCheckpoint reads a checkpoint sidecar written by a previous
// VerifyLogFileStream run for use as VerifyStreamOptions.Resume.
func LoadVerifyCheckpoint(path string) (*VerifyCheckpoint, error) {
	return audit.LoadCheckpoint(path)
}

// VerifyLogFile checks one persisted audit log file's integrity (hash
// chain, enclave signature, counter freshness) and returns its entries,
// buffered in memory. Clients run this out-of-band to validate evidence
// during dispute resolution. It remains for small logs and tests; new
// callers should prefer Verify, which streams and understands sharded sets.
func VerifyLogFile(path string, opts VerifyOptions) ([]*LogEntry, error) {
	return audit.VerifyFile(path, opts)
}

// ConnectTLS performs the client side of the secure-channel handshake over
// conn and returns the established channel. A nil cfg uses defaults
// (no server-certificate pinning, no client certificate).
func ConnectTLS(conn net.Conn, cfg *ClientConfig) (*ClientConn, error) {
	return tlsterm.Connect(conn, cfg)
}

// MetricsSnapshot returns a copy of every registered telemetry metric,
// sorted by name. See internal/telemetry for the metric inventory.
func MetricsSnapshot() []Metric { return telemetry.Snapshot() }

// SetMetricsEnabled turns telemetry recording on (the default) or off
// process-wide; disabling reduces every metric update to one atomic load.
func SetMetricsEnabled(on bool) { telemetry.SetEnabled(on) }

// ResetMetrics zeroes every registered metric, e.g. between benchmark
// phases. Registrations are kept.
func ResetMetrics() { telemetry.Reset() }

// MetricsHandler returns an http.Handler serving the current metrics
// snapshot as an expvar-style JSON object keyed by metric name.
func MetricsHandler() http.Handler { return telemetry.Handler() }

// RegisterTrace installs a named hook observing every trace event emitted
// by the instrumented hot paths (audit.append, rote.increment, ...). Hooks
// run synchronously on those paths and must not block.
func RegisterTrace(name string, fn TraceFunc) { telemetry.RegisterTrace(name, fn) }

// UnregisterTrace removes a named trace hook.
func UnregisterTrace(name string) { telemetry.UnregisterTrace(name) }
