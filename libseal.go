// Package libseal is a SEcure Audit Library for Internet services: a
// reproduction, in pure Go, of "LibSEAL: Revealing Service Integrity
// Violations Using Trusted Execution" (Aublin et al., EuroSys 2018).
//
// LibSEAL acts as a drop-in replacement for a TLS library. It terminates
// TLS connections inside a (simulated) trusted execution environment, logs
// information about every request and response into a tamper-evident
// relational audit log, and checks service-specific integrity invariants
// expressed as SQL queries. Violations — a Git server advertising a rolled-
// back branch, a collaborative editor losing edits, a file store corrupting
// metadata — become provable facts backed by the enclave's signature chain.
//
// The package re-exports the library's public surface; the implementation
// lives in internal packages:
//
//   - enclave:   simulated SGX platform (costed transitions, sealing,
//     attestation, monotonic counters)
//   - lthread, asyncall: user-level threading and asynchronous enclave calls
//   - sqldb:     embedded relational database (SQLite substitute)
//   - tlsterm:   TLS termination with the OpenSSL-shaped API
//   - audit:     hash-chained, signed, rollback-protected audit log
//   - rote:      distributed monotonic counter protocol
//   - ssm/...:   service-specific modules for Git, ownCloud and Dropbox
//   - services/...: the simulated services and attack injection
//
// A minimal server looks like:
//
//	platform := libseal.NewPlatform()
//	encl, _ := platform.Launch(libseal.EnclaveConfig{Code: []byte("my-service")})
//	bridge, _ := libseal.NewBridge(encl, libseal.BridgeConfig{})
//	seal, _ := libseal.New(bridge, libseal.Config{
//	    TLS:    libseal.TLSConfig{Cert: cert, Key: key},
//	    Module: libseal.GitModule(),
//	})
//	ssl := seal.TLS().NewSSL(conn) // then ssl.Accept / Read / Write
package libseal

import (
	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/core"
	"libseal/internal/enclave"
	"libseal/internal/faultinject"
	"libseal/internal/rote"
	"libseal/internal/ssm"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/ssm/messagingssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/tlsterm"
)

// Core library types.
type (
	// LibSEAL is one audit-library instance.
	LibSEAL = core.LibSEAL
	// Config assembles a LibSEAL instance.
	Config = core.Config
	// Violation records one detected integrity violation.
	Violation = core.Violation

	// TLSConfig configures the enclave TLS library.
	TLSConfig = tlsterm.LibraryConfig
	// ClientConfig configures a TLS client.
	ClientConfig = tlsterm.ClientConfig
	// ServerConfig configures a native (baseline) TLS server.
	ServerConfig = tlsterm.ServerConfig
	// Optimizations toggles the §4.2 transition-reduction techniques.
	Optimizations = tlsterm.Optimizations
	// SSL is one terminated TLS connection (the OpenSSL SSL* equivalent).
	SSL = tlsterm.SSL

	// Module is a service-specific module: schema, parser, invariants and
	// trimming queries for one service.
	Module = ssm.Module
	// Invariant is one integrity check expressed as SQL.
	Invariant = ssm.Invariant

	// Platform models one SGX-capable machine.
	Platform = enclave.Platform
	// Enclave is a launched enclave instance.
	Enclave = enclave.Enclave
	// EnclaveConfig describes an enclave to launch.
	EnclaveConfig = enclave.Config
	// CostModel describes the simulated platform's performance.
	CostModel = enclave.CostModel

	// Bridge connects application threads to an enclave.
	Bridge = asyncall.Bridge
	// BridgeConfig sizes the bridge.
	BridgeConfig = asyncall.Config

	// AuditMode selects in-memory or persistent logging.
	AuditMode = audit.Mode
	// VerifyOptions controls persisted-log verification.
	VerifyOptions = audit.VerifyOptions
	// LogEntry is one verified audit-log tuple.
	LogEntry = audit.Entry
	// AuditStatus describes the audit log's degraded-mode state.
	AuditStatus = audit.Status

	// CounterGroup is a ROTE distributed monotonic counter group.
	CounterGroup = rote.Group
	// RetryPolicy tunes counter-group request timeouts, retries and backoff.
	RetryPolicy = rote.RetryPolicy

	// FaultScenario is a reproducible chaos schedule for robustness tests.
	FaultScenario = faultinject.Scenario
	// FaultRule schedules one fault against one target.
	FaultRule = faultinject.Rule
	// FaultInjector applies a scenario to the network, counter-node and
	// storage seams.
	FaultInjector = faultinject.Injector
)

// Audit log modes.
const (
	// AuditMemory keeps the log in enclave memory only.
	AuditMemory = audit.ModeMemory
	// AuditDisk persists the log with hash chain, signatures and rollback
	// protection.
	AuditDisk = audit.ModeDisk
)

// Check header names for in-band invariant checking (§5.2).
const (
	// CheckHeader on a request triggers an invariant check.
	CheckHeader = core.CheckHeader
	// CheckResultHeader carries the most recent check result.
	CheckResultHeader = core.CheckResultHeader
)

// New builds a LibSEAL instance on an enclave bridge.
func New(bridge *Bridge, cfg Config) (*LibSEAL, error) { return core.New(bridge, cfg) }

// NewPlatform creates a fresh simulated SGX machine.
func NewPlatform() *Platform { return enclave.NewPlatform() }

// LoadOrCreatePlatform restores a persisted platform state (the simulation
// analogue of running on the same physical machine across restarts) or
// creates and persists a fresh one.
func LoadOrCreatePlatform(path string) (*Platform, error) {
	return enclave.LoadOrCreatePlatform(path)
}

// NewBridge opens an enclave call bridge (synchronous or asynchronous).
func NewBridge(encl *Enclave, cfg BridgeConfig) (*Bridge, error) {
	return asyncall.New(encl, cfg)
}

// DefaultCostModel returns the cost model calibrated against the paper's
// SGX v1 testbed.
func DefaultCostModel() CostModel { return enclave.DefaultCostModel() }

// ZeroCostModel returns a model in which enclave operations are free.
func ZeroCostModel() CostModel { return enclave.ZeroCostModel() }

// AllOptimizations enables every §4.2 transition-reduction technique.
func AllOptimizations() Optimizations { return tlsterm.AllOptimizations() }

// GitModule returns the service-specific module for Git (§6.2): it detects
// teleport, rollback and reference-deletion attacks.
func GitModule() Module { return gitssm.New() }

// OwnCloudModule returns the module for collaborative document editing: it
// detects lost edits, altered edits and stale snapshots.
func OwnCloudModule() Module { return owncloudssm.New() }

// DropboxModule returns the module for block-based file storage: it detects
// blocklist corruption and lost files.
func DropboxModule() Module { return dropboxssm.New() }

// MessagingModule returns the module for XMPP-style instant messaging (the
// fourth application scenario of §2.2): it detects dropped, modified and
// misdelivered messages.
func MessagingModule() Module { return messagingssm.New() }

// NewCounterGroup creates a ROTE counter group tolerating f faulty nodes.
func NewCounterGroup(f int) (*CounterGroup, error) { return rote.NewGroup(f, 0) }

// DefaultRetryPolicy returns the counter group's default request
// timeout/retry policy.
func DefaultRetryPolicy() RetryPolicy { return rote.DefaultRetryPolicy() }

// VerifyLogFile checks a persisted audit log's integrity (hash chain,
// enclave signature, counter freshness) and returns its entries. Clients run
// this out-of-band to validate evidence during dispute resolution.
func VerifyLogFile(path string, opts VerifyOptions) ([]*LogEntry, error) {
	return audit.VerifyFile(path, opts)
}

// ConnectTLS performs the client side of the secure-channel handshake.
var ConnectTLS = tlsterm.Connect
