package libseal

import (
	"errors"

	"libseal/internal/audit"
	"libseal/internal/audit/mirror"
	"libseal/internal/core"
	"libseal/internal/resilience"
)

// This file is the library's complete error taxonomy: every sentinel a
// caller can usefully test for with errors.Is is re-exported here, in one
// documented block, instead of scattered across feature files. The wrapping
// guarantee is part of the API: any error returned by this package that was
// caused by one of these conditions satisfies errors.Is against the matching
// sentinel, no matter how many layers of context have wrapped it. The
// facade never returns an internal package's unexported error as the only
// handle on a condition — errors_test.go enforces that every exported Err
// identifier lives in this block.
var (
	// ErrTampered reports an audit-log integrity violation: a hash-chain
	// break, a bad enclave signature, a malformed or replayed manifest, or
	// any other discrepancy between the persisted bytes and what the enclave
	// signed. Returned by the Verify family and latched by mirrors.
	ErrTampered = audit.ErrTampered

	// ErrBadCounter reports a rollback: the log (or one shard of it) is a
	// stale-but-internally-consistent earlier version, detected against the
	// monotonic counter, the epoch manifests, or a live mirror's continuity
	// memory. It is a distinct sentinel from ErrTampered: test for it first
	// when the two need different handling (a rollback implicates the host,
	// not the bytes).
	ErrBadCounter = audit.ErrBadCounter

	// ErrCheckpointStale reports that a verification resume checkpoint (or a
	// mirror's resume claim) no longer matches the log — trimmed, rotated or
	// swapped since it was written. The caller falls back to a cold scan;
	// mirrors do so automatically.
	ErrCheckpointStale = audit.ErrCheckpointStale

	// ErrBreakerOpen is returned (wrapped) by counter operations shed by an
	// open circuit breaker (see NewBreakerProtector, WithBreaker).
	ErrBreakerOpen = resilience.ErrOpen

	// ErrAuditOverloaded is returned (wrapped) by appends shed by the audit
	// log's admission control (see WithAdmission).
	ErrAuditOverloaded = audit.ErrOverloaded

	// ErrMirrorLagging reports that a live mirror has fallen further behind
	// the server's committed state than MirrorConfig.MaxLag allows. A feed
	// cannot make tampered bytes verify, but it can withhold bytes; the lag
	// bound turns withholding into an alarm instead of silence.
	ErrMirrorLagging = mirror.ErrMirrorLagging

	// ErrLoggingDisabled is returned by check and trim operations on an
	// instance built without a service module (TLS termination only).
	ErrLoggingDisabled = core.ErrLoggingDisabled

	// ErrUnknownModule is returned by ModuleByName for a name outside the
	// registry; its message lists the valid names.
	ErrUnknownModule = errors.New("libseal: unknown service module")
)

// ErrVerifyCheckpointStale is the former name of ErrCheckpointStale, kept
// for existing callers.
//
// Deprecated: use ErrCheckpointStale.
var ErrVerifyCheckpointStale = ErrCheckpointStale
