package libseal

import (
	"time"

	"libseal/internal/audit"
	"libseal/internal/core"
	"libseal/internal/resilience"
	"libseal/internal/sqldb"
)

// This file holds the functional-options constructor. Historically the
// library grew one constructor or helper per feature (New with a 20-field
// Config struct, NewCounterGroupWith for retry policies, NewBreakerProtector
// for circuit breaking, admission and batching knobs buried in Config).
// Open consolidates them: one entry point, one option per concern, with the
// wiring between concerns (policy → group → breaker → protector) done in
// one place instead of at every call site. New and the per-feature helpers
// remain as thin wrappers for existing callers.

// RollbackProtector is the monotonic counter service the audit log anchors
// its freshness to. CounterGroup implements it; so does BreakerProtector.
type RollbackProtector = audit.RollbackProtector

// QueryResult is one relational query result (columns plus rows), as carried
// by Violation.Rows and returned by audit-log queries.
type QueryResult = sqldb.Result

// AuditLog is the (possibly sharded) audit log behind a LibSEAL instance,
// as returned by LibSEAL.Log. With one shard it behaves exactly like the
// historical single-file log.
type AuditLog = audit.ShardedLog

// Option configures one aspect of a LibSEAL instance built with Open.
type Option func(*openConfig)

// openConfig accumulates options before Open assembles the core Config.
// The counter-group plumbing (retry policy, breaker) is kept to the side
// and resolved into Config.Protector at Open time.
type openConfig struct {
	core core.Config

	group       *CounterGroup
	groupFaults int
	haveFaults  bool
	policy      *RetryPolicy
	breaker     *BreakerConfig
	protector   RollbackProtector
	haveProt    bool
}

// WithModule selects the service-specific module (schema, parser,
// invariants, trimming).
func WithModule(m Module) Option {
	return func(c *openConfig) { c.core.Module = m }
}

// WithTLS configures the enclave TLS library (certificate, key, §4.2
// optimizations).
func WithTLS(cfg TLSConfig) Option {
	return func(c *openConfig) { c.core.TLS = cfg }
}

// WithAuditDisk persists the audit log under dir with hash chain,
// signatures and rollback protection. Without it the log is memory-only.
func WithAuditDisk(dir string) Option {
	return func(c *openConfig) {
		c.core.AuditMode = AuditDisk
		c.core.AuditDir = dir
	}
}

// WithAuditShards partitions the persisted audit log across n independently
// group-committed shard files bound together by a signed cross-shard epoch
// manifest (see internal/audit). n <= 1 keeps the historical single-file
// layout. Only meaningful together with WithAuditDisk.
func WithAuditShards(n int) Option {
	return func(c *openConfig) { c.core.AuditShards = n }
}

// WithManifestInterval sets the cross-shard epoch-manifest cadence (default
// 500ms). Shorter intervals tighten the rollback-detection window at the
// cost of one counter increment, signature and fsync per interval.
func WithManifestInterval(d time.Duration) Option {
	return func(c *openConfig) { c.core.AuditManifestEvery = d }
}

// WithSealedLog encrypts persisted log entries under the enclave sealing
// key (§6.3 log privacy).
func WithSealedLog() Option {
	return func(c *openConfig) { c.core.SealLog = true }
}

// WithCounterGroup anchors the audit log's rollback protection to an
// existing ROTE counter group. Combine with WithRetryPolicy and/or
// WithBreaker; Open applies the policy to the group and wraps it in the
// breaker before installing it as the protector.
func WithCounterGroup(g *CounterGroup) Option {
	return func(c *openConfig) { c.group = g }
}

// WithCounterFaults has Open create a fresh ROTE counter group tolerating f
// faulty nodes (the common case when the caller does not need to share a
// group across instances). Mutually exclusive with WithCounterGroup; the
// explicit group wins.
func WithCounterFaults(f int) Option {
	return func(c *openConfig) { c.groupFaults, c.haveFaults = f, true }
}

// WithRetryPolicy tunes the counter group's request timeouts, retries and
// backoff. Requires WithCounterGroup or WithCounterFaults.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *openConfig) { c.policy = &p }
}

// WithBreaker wraps the counter group in a circuit breaker so a failed
// quorum degrades the log immediately instead of burning the retry budget
// on every batch. Requires WithCounterGroup or WithCounterFaults. Breaker
// telemetry registers under "audit.breaker".
func WithBreaker(cfg BreakerConfig) Option {
	return func(c *openConfig) { c.breaker = &cfg }
}

// WithProtector installs an explicit rollback protector, overriding the
// counter-group plumbing above. A nil protector disables rollback
// protection (testing only).
func WithProtector(p RollbackProtector) Option {
	return func(c *openConfig) { c.protector, c.haveProt = p, true }
}

// WithAdmission bounds the audit log's staged-row backlog: appends beyond
// maxStaged rows wait up to timeout for capacity and are then shed with
// ErrAuditOverloaded. Zero maxStaged means unbounded.
func WithAdmission(maxStaged int, timeout time.Duration) Option {
	return func(c *openConfig) {
		c.core.AuditMaxStaged = maxStaged
		c.core.AuditAdmitTimeout = timeout
	}
}

// WithBatching tunes group commit: a leader anchors up to max staged
// batches at once, waiting up to delay for followers to pile on.
func WithBatching(max int, delay time.Duration) Option {
	return func(c *openConfig) {
		c.core.AuditBatchMax = max
		c.core.AuditBatchDelay = delay
	}
}

// WithDegradedLimit caps how many batches may commit without a fresh
// counter anchor before appends fail hard (bounded-evidence window).
func WithDegradedLimit(n int) Option {
	return func(c *openConfig) { c.core.DegradedLimit = n }
}

// WithAnchorTimeout bounds each rollback-counter operation, keeping a stuck
// quorum from stalling the request path.
func WithAnchorTimeout(d time.Duration) Option {
	return func(c *openConfig) { c.core.AnchorTimeout = d }
}

// WithChecks schedules invariant checking: every n-th request pair, at
// least every interval, and at most once per minInterval. Zeros keep the
// respective defaults.
func WithChecks(every int, interval, minInterval time.Duration) Option {
	return func(c *openConfig) {
		c.core.CheckEvery = every
		c.core.CheckInterval = interval
		c.core.CheckMinInterval = minInterval
	}
}

// WithCheckAsync moves scheduled invariant checks off the request path: a
// request pair that hits the CheckEvery threshold only nudges a background
// worker, which captures an O(tables) copy-on-write snapshot of the audit
// database and evaluates the invariants while appends continue. Client-
// triggered checks (the X-LibSEAL-Check header) and CheckNow stay
// synchronous — their callers want the verdict — but they too evaluate on a
// snapshot outside the log lock.
func WithCheckAsync() Option {
	return func(c *openConfig) { c.core.CheckAsync = true }
}

// WithIndexes enables or disables the audit database's lazy hash indexes
// (on by default). Disabling forces every invariant back to nested-loop
// scans; it exists for the index ablation benchmark.
func WithIndexes(on bool) Option {
	return func(c *openConfig) { c.core.NoIndexes = !on }
}

// WithRecovery makes Open resume an existing persisted log (verifying it
// under the enclave key) instead of failing on leftover files. maxLag
// tolerates up to that many missing final batches against the rollback
// counter — the crash window group commit admits — and 0 demands an exact
// counter match.
func WithRecovery(maxLag uint64) Option {
	return func(c *openConfig) {
		c.core.RecoverExisting = true
		c.core.RecoverMaxLag = maxLag
	}
}

// WithViolationHandler registers a callback invoked (synchronously with
// detection) for every invariant violation.
func WithViolationHandler(fn func(invariant string, rows *QueryResult)) Option {
	return func(c *openConfig) { c.core.OnViolation = fn }
}

// Open builds a LibSEAL instance on an enclave bridge from functional
// options — the preferred constructor:
//
//	group, _ := libseal.NewCounterGroup(1)
//	seal, err := libseal.Open(bridge,
//	    libseal.WithModule(libseal.GitModule()),
//	    libseal.WithTLS(libseal.TLSConfig{Cert: cert, Key: key}),
//	    libseal.WithAuditDisk(dir),
//	    libseal.WithAuditShards(4),
//	    libseal.WithCounterGroup(group),
//	    libseal.WithBreaker(libseal.BreakerConfig{}),
//	)
//
// Open resolves the counter-group plumbing in a fixed order: an explicit
// WithProtector wins outright; otherwise the group from WithCounterGroup
// (or one freshly created per WithCounterFaults) gets the WithRetryPolicy
// applied, is wrapped by the WithBreaker circuit breaker if configured, and
// becomes the protector. Options apply in argument order, so later options
// override earlier ones. Open(bridge) with no options is a memory-only,
// unprotected instance, exactly like New(bridge, Config{}).
func Open(bridge *Bridge, opts ...Option) (*LibSEAL, error) {
	var c openConfig
	for _, opt := range opts {
		opt(&c)
	}
	if c.group == nil && c.haveFaults {
		g, err := NewCounterGroup(c.groupFaults)
		if err != nil {
			return nil, err
		}
		c.group = g
	}
	if c.haveProt {
		c.core.Protector = c.protector
	} else if c.group != nil {
		if c.policy != nil {
			c.group.SetRetryPolicy(*c.policy)
		}
		if c.breaker != nil {
			c.core.Protector = resilience.NewBreakerProtector("audit.breaker", c.group, *c.breaker)
		} else {
			c.core.Protector = c.group
		}
	}
	return core.New(bridge, c.core)
}
