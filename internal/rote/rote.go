// Package rote implements the distributed monotonic counter protocol that
// LibSEAL uses for rollback protection of its persisted audit log (§5.1).
// SGX hardware counters are too slow and wear out, so LibSEAL follows ROTE
// (Matetic et al., 2017): a group of n = 3f+1 counter nodes — other LibSEAL
// instances under the provider's control — stores counter state; an
// increment is durable once a quorum of 2f+1 nodes acknowledges it, and the
// counter survives as long as at most f nodes misbehave.
package rote

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by the group client.
var (
	ErrNoQuorum = errors.New("rote: quorum not reached")
	ErrRollback = errors.New("rote: counter regressed (rollback attempt)")
)

// Message is a signed counter-protocol message.
type message struct {
	Counter string
	Value   uint64
	MAC     [32]byte
}

func mac(key []byte, counter string, value uint64) [32]byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(counter))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], value)
	m.Write(b[:])
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Node is one counter-service node. In production each node is itself a
// LibSEAL enclave; here it is an in-process actor with the same interface.
type Node struct {
	id  int
	key []byte

	mu        sync.Mutex
	counters  map[string]uint64
	failed    bool
	byzantine bool
}

// Fail makes the node stop responding (crash fault).
func (n *Node) Fail() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = true
}

// Recover brings a failed node back (its state persisted).
func (n *Node) Recover() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = false
}

// SetByzantine makes the node return stale values with forged-looking MACs.
func (n *Node) SetByzantine(b bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.byzantine = b
}

// store handles an increment request. It returns an acknowledgement message
// or false if the node is down.
func (n *Node) store(req message) (message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return message{}, false
	}
	if n.byzantine {
		// Respond with a stale value and an invalid MAC.
		return message{Counter: req.Counter, Value: 0}, true
	}
	if !hmac.Equal(req.MAC[:], func() []byte { m := mac(n.key, req.Counter, req.Value); return m[:] }()) {
		return message{}, false
	}
	// Monotonicity: never regress.
	if req.Value > n.counters[req.Counter] {
		n.counters[req.Counter] = req.Value
	}
	v := n.counters[req.Counter]
	return message{Counter: req.Counter, Value: v, MAC: mac(n.key, req.Counter, v)}, true
}

// fetch handles a read request.
func (n *Node) fetch(counter string) (message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return message{}, false
	}
	if n.byzantine {
		return message{Counter: counter, Value: 0}, true
	}
	v := n.counters[counter]
	return message{Counter: counter, Value: v, MAC: mac(n.key, counter, v)}, true
}

// Group is the client view of a counter group: the local LibSEAL instance
// plus 3f other nodes.
type Group struct {
	f       int
	nodes   []*Node
	key     []byte
	latency time.Duration

	mu    sync.Mutex
	cache map[string]uint64
}

// NewGroup creates an in-process group tolerating f malicious/failed nodes
// (n = 3f+1 nodes total). latency models the one-way network delay to the
// other nodes; the paper deploys them in the same cluster.
func NewGroup(f int, latency time.Duration) (*Group, error) {
	if f < 0 {
		return nil, fmt.Errorf("rote: negative f")
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	g := &Group{f: f, key: key, latency: latency, cache: make(map[string]uint64)}
	for i := 0; i < 3*f+1; i++ {
		g.nodes = append(g.nodes, &Node{id: i, key: key, counters: make(map[string]uint64)})
	}
	return g, nil
}

// Nodes exposes the group members for fault injection in tests.
func (g *Group) Nodes() []*Node { return g.nodes }

// F returns the fault tolerance parameter.
func (g *Group) F() int { return g.f }

// quorum returns the required acknowledgement count, 2f+1.
func (g *Group) quorum() int { return 2*g.f + 1 }

// broadcast sends a request to every node in parallel and collects valid,
// MAC-authenticated responses.
func (g *Group) broadcast(send func(*Node) (message, bool)) []message {
	type result struct {
		msg message
		ok  bool
	}
	ch := make(chan result, len(g.nodes))
	for _, n := range g.nodes {
		n := n
		go func() {
			if g.latency > 0 {
				time.Sleep(2 * g.latency) // round trip
			}
			m, ok := send(n)
			ch <- result{m, ok}
		}()
	}
	var valid []message
	for range g.nodes {
		r := <-ch
		if !r.ok {
			continue
		}
		want := mac(g.key, r.msg.Counter, r.msg.Value)
		if !hmac.Equal(want[:], r.msg.MAC[:]) {
			continue // forged or byzantine response
		}
		valid = append(valid, r.msg)
	}
	return valid
}

// Increment advances the named counter and returns its new value. The
// increment is durable once 2f+1 nodes acknowledged a value >= the new one.
func (g *Group) Increment(counter string) (uint64, error) {
	g.mu.Lock()
	next := g.cache[counter] + 1
	g.cache[counter] = next
	g.mu.Unlock()

	req := message{Counter: counter, Value: next, MAC: mac(g.key, counter, next)}
	acks := 0
	for _, m := range g.broadcast(func(n *Node) (message, bool) { return n.store(req) }) {
		if m.Value >= next {
			acks++
		}
	}
	if acks < g.quorum() {
		return 0, fmt.Errorf("%w: %d/%d acks for %s=%d", ErrNoQuorum, acks, g.quorum(), counter, next)
	}
	return next, nil
}

// Read returns the counter's current stable value: the maximum value
// confirmed by the quorum view. Used after restart to detect log rollback.
func (g *Group) Read(counter string) (uint64, error) {
	msgs := g.broadcast(func(n *Node) (message, bool) { return n.fetch(counter) })
	if len(msgs) < g.quorum() {
		return 0, fmt.Errorf("%w: %d/%d responses", ErrNoQuorum, len(msgs), g.quorum())
	}
	var maxVal uint64
	for _, m := range msgs {
		if m.Value > maxVal {
			maxVal = m.Value
		}
	}
	g.mu.Lock()
	if maxVal > g.cache[counter] {
		g.cache[counter] = maxVal
	}
	g.mu.Unlock()
	return maxVal, nil
}

// VerifyFresh checks a claimed counter value (e.g. the one recorded in a
// persisted audit log) against the group: a claimed value below the stable
// value means an old log version is being presented.
func (g *Group) VerifyFresh(counter string, claimed uint64) error {
	stable, err := g.Read(counter)
	if err != nil {
		return err
	}
	if claimed < stable {
		return fmt.Errorf("%w: log claims %d, group has %d", ErrRollback, claimed, stable)
	}
	return nil
}
