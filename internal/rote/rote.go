// Package rote implements the distributed monotonic counter protocol that
// LibSEAL uses for rollback protection of its persisted audit log (§5.1).
// SGX hardware counters are too slow and wear out, so LibSEAL follows ROTE
// (Matetic et al., 2017): a group of n = 3f+1 counter nodes — other LibSEAL
// instances under the provider's control — stores counter state; an
// increment is durable once a quorum of 2f+1 nodes acknowledges it, and the
// counter survives as long as at most f nodes misbehave.
//
// The client side is hardened for production use: every operation takes a
// context, each attempt is bounded by a per-request timeout, failed quorums
// are retried with exponential backoff and deterministic jitter, and the
// quorum wait returns as soon as 2f+1 valid replies are in — a crashed or
// slow node never adds its full latency to the request path. Quorum
// intersection keeps early return safe: any 2f+1 authenticated replies
// overlap any earlier write quorum in at least f+1 honest nodes, so reads
// still observe the latest committed value.
package rote

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mathrand "math/rand"
	"sync"
	"time"

	"libseal/internal/telemetry"
)

// Counter-protocol telemetry: increment round-trip latency sits on the audit
// append path (every anchor is one increment), so its distribution and the
// retry/timeout counters explain append tail latency under node faults.
var (
	mIncrements       = telemetry.NewCounter("rote.increments", "calls")
	mReads            = telemetry.NewCounter("rote.reads", "calls")
	mIncrementLatency = telemetry.NewHistogram("rote.increment.latency", "ns")
	mReadLatency      = telemetry.NewHistogram("rote.read.latency", "ns")
	mRoundTrips       = telemetry.NewCounter("rote.round_trips", "broadcasts")
	mRetries          = telemetry.NewCounter("rote.retries", "attempts")
	mTimeouts         = telemetry.NewCounter("rote.timeouts", "attempts")
	mResyncs          = telemetry.NewCounter("rote.resyncs", "rejoins")
	mResyncFailures   = telemetry.NewCounter("rote.resync.failures", "attempts")
)

// Errors returned by the group client.
var (
	ErrNoQuorum = errors.New("rote: quorum not reached")
	ErrRollback = errors.New("rote: counter regressed (rollback attempt)")
	// ErrResync is returned by Node.Resync when a read quorum of peers
	// cannot be assembled to rebuild an amnesic node's counter state.
	ErrResync = errors.New("rote: re-sync quorum not reached")
)

// Message is a signed counter-protocol message.
type message struct {
	Counter string
	Value   uint64
	MAC     [32]byte
}

func mac(key []byte, counter string, value uint64) [32]byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(counter))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], value)
	m.Write(b[:])
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// NodeFault describes the fate of one request at a node, as decided by an
// installed fault hook.
type NodeFault struct {
	// Drop makes the node not answer (crash/omission fault).
	Drop bool
	// Delay postpones the reply (overloaded or slow node).
	Delay time.Duration
	// Byzantine makes the node reply with a stale value and a bad MAC.
	Byzantine bool
	// Amnesia restarts the node amnesically before handling the request:
	// its volatile counter state is wiped and it refuses to serve until
	// Resync rebuilds the state from a read quorum of peers.
	Amnesia bool
}

// NodeFaultHook is consulted on every request a node handles. op is "store"
// or "fetch". Implementations must be safe for concurrent use.
type NodeFaultHook func(nodeID int, op string) NodeFault

// Node is one counter-service node. In production each node is itself a
// LibSEAL enclave; here it is an in-process actor with the same interface.
type Node struct {
	id    int
	key   []byte
	f     int     // the group's fault-tolerance parameter
	peers []*Node // the other group members, for restart re-sync

	mu        sync.Mutex
	counters  map[string]uint64
	failed    bool
	byzantine bool
	synced    bool // false after an amnesic restart, until Resync succeeds
	hook      NodeFaultHook
}

// ID returns the node's index within its group.
func (n *Node) ID() int { return n.id }

// Fail makes the node stop responding (crash fault).
func (n *Node) Fail() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = true
}

// Recover brings a failed node back (its state persisted).
func (n *Node) Recover() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failed = false
}

// RestartAmnesiac simulates an amnesic crash-restart: the process comes
// back up but its volatile counter state is gone. The node refuses every
// request until Resync has rebuilt the state from a read quorum of its
// peers — an amnesic node that served immediately could acknowledge an
// increment it no longer remembers and break quorum intersection.
func (n *Node) RestartAmnesiac() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.counters = make(map[string]uint64)
	n.synced = false
	n.failed = false
}

// Synced reports whether the node is serving (it has never restarted
// amnesically, or its last Resync succeeded).
func (n *Node) Synced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.synced
}

// Value returns the node's local view of the counter, for tests and health
// reporting. It bypasses the fault hook.
func (n *Node) Value(counter string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters[counter]
}

// Resync rejoins the group after an amnesic restart — the re-provisioning
// step ReplicaTEE prescribes for restarted enclave replicas. The node
// fetches every counter from its peers, keeps only replies whose entries
// all authenticate, and once 2f+1 peers have answered adopts the
// per-counter maximum. Safety: any value committed before the restart was
// acknowledged by 2f+1 nodes, hence held by at least 2f peers; a read
// quorum of 2f+1 out of 3f peers intersects them in at least f+1 nodes, of
// which at least one is honest, so the adopted maximum never regresses a
// committed counter. Until Resync succeeds the node keeps refusing to
// serve, so rolling restarts of up to f nodes never widen the set of
// amnesic members beyond what quorum intersection tolerates.
func (n *Node) Resync(ctx context.Context) error {
	n.mu.Lock()
	if n.synced {
		n.mu.Unlock()
		return nil
	}
	peers := n.peers
	need := 2*n.f + 1
	n.mu.Unlock()

	type reply struct {
		msgs []message
		ok   bool
	}
	ch := make(chan reply, len(peers))
	for _, p := range peers {
		p := p
		go func() {
			msgs, ok := p.dump(ctx)
			ch <- reply{msgs, ok}
		}()
	}
	adopted := make(map[string]uint64)
	valid := 0
	for answered := 0; answered < len(peers) && valid < need; answered++ {
		var r reply
		select {
		case r = <-ch:
		case <-ctx.Done():
			mResyncFailures.Inc()
			return fmt.Errorf("%w: %v", ErrResync, ctx.Err())
		}
		if !r.ok {
			continue
		}
		authentic := true
		for _, m := range r.msgs {
			want := mac(n.key, m.Counter, m.Value)
			if !hmac.Equal(want[:], m.MAC[:]) {
				authentic = false
				break
			}
		}
		if !authentic {
			continue // one forged entry discredits the whole reply
		}
		for _, m := range r.msgs {
			if m.Value > adopted[m.Counter] {
				adopted[m.Counter] = m.Value
			}
		}
		valid++
	}
	if valid < need {
		mResyncFailures.Inc()
		return fmt.Errorf("%w: %d/%d authenticated peer replies", ErrResync, valid, need)
	}
	n.mu.Lock()
	for c, v := range adopted {
		if v > n.counters[c] {
			n.counters[c] = v
		}
	}
	n.synced = true
	n.mu.Unlock()
	mResyncs.Inc()
	return nil
}

// SetByzantine makes the node return stale values with forged-looking MACs.
func (n *Node) SetByzantine(b bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.byzantine = b
}

// SetFaultHook installs a per-request fault hook (nil clears it). The hook
// composes with Fail/SetByzantine: it is consulted first, then the sticky
// node state applies.
func (n *Node) SetFaultHook(h NodeFaultHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hook = h
}

// applyHook runs the fault hook for one request. It reports whether the
// request should be dropped; delays wait outside the node lock and respect
// the caller's context.
func (n *Node) applyHook(ctx context.Context, op string) (drop, byzantine bool) {
	n.mu.Lock()
	h := n.hook
	n.mu.Unlock()
	if h == nil {
		return false, false
	}
	f := h(n.id, op)
	if f.Amnesia {
		n.RestartAmnesiac()
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return true, false
		}
	}
	return f.Drop, f.Byzantine
}

// store handles an increment request. It returns an acknowledgement message
// or false if the node is down.
func (n *Node) store(ctx context.Context, req message) (message, bool) {
	if drop, byz := n.applyHook(ctx, "store"); drop {
		return message{}, false
	} else if byz {
		return message{Counter: req.Counter, Value: 0}, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed || !n.synced {
		// An amnesic node must stay silent until re-synced: acknowledging an
		// increment it would later forget breaks quorum intersection.
		return message{}, false
	}
	if n.byzantine {
		// Respond with a stale value and an invalid MAC.
		return message{Counter: req.Counter, Value: 0}, true
	}
	if !hmac.Equal(req.MAC[:], func() []byte { m := mac(n.key, req.Counter, req.Value); return m[:] }()) {
		return message{}, false
	}
	// Monotonicity: never regress.
	if req.Value > n.counters[req.Counter] {
		n.counters[req.Counter] = req.Value
	}
	v := n.counters[req.Counter]
	return message{Counter: req.Counter, Value: v, MAC: mac(n.key, req.Counter, v)}, true
}

// fetch handles a read request.
func (n *Node) fetch(ctx context.Context, counter string) (message, bool) {
	if drop, byz := n.applyHook(ctx, "fetch"); drop {
		return message{}, false
	} else if byz {
		return message{Counter: counter, Value: 0}, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed || !n.synced {
		return message{}, false
	}
	if n.byzantine {
		return message{Counter: counter, Value: 0}, true
	}
	v := n.counters[counter]
	return message{Counter: counter, Value: v, MAC: mac(n.key, counter, v)}, true
}

// dump returns every counter entry the node holds, each individually
// MAC'd, for a restarting peer's re-sync. Failed and unsynced nodes stay
// silent; a byzantine node forges its entries (the requester discards the
// whole reply on the first bad MAC).
func (n *Node) dump(ctx context.Context) ([]message, bool) {
	if drop, byz := n.applyHook(ctx, "dump"); drop {
		return nil, false
	} else if byz {
		return []message{{Counter: "forged", Value: ^uint64(0)}}, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed || !n.synced {
		return nil, false
	}
	msgs := make([]message, 0, len(n.counters))
	for c, v := range n.counters {
		if n.byzantine {
			msgs = append(msgs, message{Counter: c, Value: v + 1}) // inflated value, bad MAC
			continue
		}
		msgs = append(msgs, message{Counter: c, Value: v, MAC: mac(n.key, c, v)})
	}
	return msgs, true
}

// RetryPolicy bounds and retries quorum operations.
type RetryPolicy struct {
	// Timeout is the per-attempt bound; zero means no per-attempt timeout.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first.
	Retries int
	// BackoffBase is the delay before the first retry; it doubles on each
	// subsequent retry (exponential backoff).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay.
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic jitter source, so chaos runs that
	// fix the seed reproduce the same retry schedule.
	JitterSeed int64
}

// DefaultRetryPolicy is the policy installed by NewGroup: bounded attempts
// with three tries and sub-second backoff, tuned so a dead quorum surfaces
// as an error quickly instead of stalling the request path.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:     2 * time.Second,
		Retries:     2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
	}
}

// Group is the client view of a counter group: the local LibSEAL instance
// plus 3f other nodes.
type Group struct {
	f       int
	nodes   []*Node
	key     []byte
	latency time.Duration

	mu     sync.Mutex
	cache  map[string]uint64
	policy RetryPolicy
	jitter *mathrand.Rand
}

// NewGroup creates an in-process group tolerating f malicious/failed nodes
// (n = 3f+1 nodes total). latency models the one-way network delay to the
// other nodes; the paper deploys them in the same cluster.
func NewGroup(f int, latency time.Duration) (*Group, error) {
	if f < 0 {
		return nil, fmt.Errorf("rote: negative f")
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	g := &Group{f: f, key: key, latency: latency, cache: make(map[string]uint64)}
	g.setPolicy(DefaultRetryPolicy())
	for i := 0; i < 3*f+1; i++ {
		g.nodes = append(g.nodes, &Node{id: i, key: key, f: f, synced: true, counters: make(map[string]uint64)})
	}
	// Wire each node to its 3f peers so an amnesic restart can re-sync.
	for _, n := range g.nodes {
		for _, p := range g.nodes {
			if p != n {
				n.peers = append(n.peers, p)
			}
		}
	}
	return g, nil
}

// SetRetryPolicy replaces the group's retry policy.
func (g *Group) SetRetryPolicy(p RetryPolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setPolicy(p)
}

func (g *Group) setPolicy(p RetryPolicy) {
	g.policy = p
	g.jitter = mathrand.New(mathrand.NewSource(p.JitterSeed))
}

// Nodes exposes the group members for fault injection in tests.
func (g *Group) Nodes() []*Node { return g.nodes }

// NodeStatus is one group member's liveness view, for health reporting.
type NodeStatus struct {
	ID     int  `json:"id"`
	Alive  bool `json:"alive"`
	Synced bool `json:"synced"`
}

// NodeStatus reports each member's current fault and sync state. A node
// counts toward the quorum only when it is both alive and synced.
func (g *Group) NodeStatus() []NodeStatus {
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		n.mu.Lock()
		out = append(out, NodeStatus{ID: n.id, Alive: !n.failed, Synced: n.synced})
		n.mu.Unlock()
	}
	return out
}

// F returns the fault tolerance parameter.
func (g *Group) F() int { return g.f }

// quorum returns the required acknowledgement count, 2f+1.
func (g *Group) quorum() int { return 2*g.f + 1 }

// broadcast sends a request to every node in parallel and collects valid,
// MAC-authenticated responses. It returns as soon as `need` valid replies
// are in, when every node has answered, or when ctx is done — whichever
// comes first. Replies arriving after return drain into the buffered
// channel, so no goroutine is leaked.
func (g *Group) broadcast(ctx context.Context, need int, send func(context.Context, *Node) (message, bool)) []message {
	type result struct {
		msg message
		ok  bool
	}
	ch := make(chan result, len(g.nodes))
	for _, n := range g.nodes {
		n := n
		go func() {
			if g.latency > 0 {
				t := time.NewTimer(2 * g.latency) // round trip
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					ch <- result{ok: false}
					return
				}
			}
			m, ok := send(ctx, n)
			ch <- result{m, ok}
		}()
	}
	var valid []message
	for answered := 0; answered < len(g.nodes); answered++ {
		var r result
		select {
		case r = <-ch:
		case <-ctx.Done():
			return valid
		}
		if !r.ok {
			continue
		}
		want := mac(g.key, r.msg.Counter, r.msg.Value)
		if !hmac.Equal(want[:], r.msg.MAC[:]) {
			continue // forged or byzantine response
		}
		valid = append(valid, r.msg)
		if len(valid) >= need {
			return valid
		}
	}
	return valid
}

// attemptCtx derives the per-attempt context from the caller's.
func (g *Group) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	g.mu.Lock()
	timeout := g.policy.Timeout
	g.mu.Unlock()
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// backoff sleeps before retry `attempt` (0-based), honouring ctx. The delay
// grows exponentially from BackoffBase, capped at BackoffMax, with up to
// 50% deterministic jitter to de-synchronise competing clients.
func (g *Group) backoff(ctx context.Context, attempt int) error {
	g.mu.Lock()
	p := g.policy
	d := p.BackoffBase << uint(attempt)
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if d > 0 {
		d += time.Duration(g.jitter.Int63n(int64(d)/2 + 1))
	}
	g.mu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retries returns the configured retry count.
func (g *Group) retries() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.policy.Retries
}

// runQuorum drives one quorum operation through the retry policy: each
// attempt gets its own bounded context and counts one broadcast round trip;
// failed attempts back off exponentially before retrying, and every failure
// path wraps ErrNoQuorum. attempt reports whether a quorum was assembled,
// plus a detail string for the error when it was not. Increment and Read
// share this loop, so their retry/backoff/attempt-timeout semantics cannot
// drift apart.
func (g *Group) runQuorum(ctx context.Context, attempt func(actx context.Context) (ok bool, detail string)) error {
	var lastErr error
	for try := 0; ; try++ {
		actx, cancel := g.attemptCtx(ctx)
		mRoundTrips.Inc()
		ok, detail := attempt(actx)
		timedOut := actx.Err() == context.DeadlineExceeded
		cancel()
		if ok {
			return nil
		}
		if timedOut {
			mTimeouts.Inc()
		}
		lastErr = fmt.Errorf("%w: %s", ErrNoQuorum, detail)
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrNoQuorum, err)
		}
		if try >= g.retries() {
			return lastErr
		}
		if err := g.backoff(ctx, try); err != nil {
			return fmt.Errorf("%w: %v", ErrNoQuorum, err)
		}
		mRetries.Inc()
	}
}

// Increment advances the named counter and returns its new value. The
// increment is durable once 2f+1 nodes acknowledged a value >= the new one.
func (g *Group) Increment(counter string) (uint64, error) {
	return g.IncrementContext(context.Background(), counter)
}

// IncrementContext is Increment bounded by a context: cancelling it aborts
// the quorum wait and any pending retries.
func (g *Group) IncrementContext(ctx context.Context, counter string) (uint64, error) {
	mIncrements.Inc()
	defer telemetry.ObserveSince(mIncrementLatency, "rote.increment", time.Now())
	g.mu.Lock()
	next := g.cache[counter] + 1
	g.cache[counter] = next
	g.mu.Unlock()

	req := message{Counter: counter, Value: next, MAC: mac(g.key, counter, next)}
	err := g.runQuorum(ctx, func(actx context.Context) (bool, string) {
		acks := 0
		// Re-broadcasting the same value is idempotent: nodes take the max.
		for _, m := range g.broadcast(actx, g.quorum(), func(c context.Context, n *Node) (message, bool) {
			return n.store(c, req)
		}) {
			if m.Value >= next {
				acks++
			}
		}
		return acks >= g.quorum(), fmt.Sprintf("%d/%d acks for %s=%d", acks, g.quorum(), counter, next)
	})
	if err != nil {
		return 0, err
	}
	return next, nil
}

// Read returns the counter's current stable value: the maximum value
// confirmed by the quorum view. Used after restart to detect log rollback.
func (g *Group) Read(counter string) (uint64, error) {
	return g.ReadContext(context.Background(), counter)
}

// ReadContext is Read bounded by a context. It honours the group's
// RetryPolicy exactly as IncrementContext does — both run the shared
// runQuorum loop.
func (g *Group) ReadContext(ctx context.Context, counter string) (uint64, error) {
	mReads.Inc()
	defer telemetry.ObserveSince(mReadLatency, "rote.read", time.Now())
	var maxVal uint64
	err := g.runQuorum(ctx, func(actx context.Context) (bool, string) {
		msgs := g.broadcast(actx, g.quorum(), func(c context.Context, n *Node) (message, bool) {
			return n.fetch(c, counter)
		})
		if len(msgs) < g.quorum() {
			return false, fmt.Sprintf("%d/%d responses", len(msgs), g.quorum())
		}
		maxVal = 0
		for _, m := range msgs {
			if m.Value > maxVal {
				maxVal = m.Value
			}
		}
		return true, ""
	})
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	if maxVal > g.cache[counter] {
		g.cache[counter] = maxVal
	}
	g.mu.Unlock()
	return maxVal, nil
}

// VerifyFresh checks a claimed counter value (e.g. the one recorded in a
// persisted audit log) against the group: a claimed value below the stable
// value means an old log version is being presented.
func (g *Group) VerifyFresh(counter string, claimed uint64) error {
	return g.VerifyFreshContext(context.Background(), counter, claimed)
}

// VerifyFreshContext is VerifyFresh bounded by a context.
func (g *Group) VerifyFreshContext(ctx context.Context, counter string, claimed uint64) error {
	stable, err := g.ReadContext(ctx, counter)
	if err != nil {
		return err
	}
	if claimed < stable {
		return fmt.Errorf("%w: log claims %d, group has %d", ErrRollback, claimed, stable)
	}
	return nil
}
