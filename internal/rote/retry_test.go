package rote

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:     200 * time.Millisecond,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

func TestRetryRecoversFromTransientOutage(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRetryPolicy(fastPolicy())
	// Nodes 0 and 1 drop their first store request: attempt one sees only
	// 2/3 acks and fails; the retry re-broadcasts the same value and wins.
	for _, n := range g.Nodes()[:2] {
		var seen atomic.Int64
		n.SetFaultHook(func(id int, op string) NodeFault {
			if op != "store" {
				return NodeFault{}
			}
			return NodeFault{Drop: seen.Add(1) == 1}
		})
	}
	v, err := g.Increment("c")
	if err != nil {
		t.Fatalf("increment: %v", err)
	}
	if v != 1 {
		t.Fatalf("value = %d, want 1 (retry must not re-increment)", v)
	}
	if got, _ := g.Read("c"); got != 1 {
		t.Fatalf("read = %d, want 1", got)
	}
}

func TestIncrementContextCancelled(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := fastPolicy()
	p.Retries = 100 // without cancellation this would grind for a while
	g.SetRetryPolicy(p)
	for _, n := range g.Nodes() {
		n.Fail()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.IncrementContext(ctx, "c")
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled increment took %v", elapsed)
	}
}

func TestEarlyQuorumReturnSkipsSlowNode(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := fastPolicy()
	p.Timeout = 5 * time.Second
	g.SetRetryPolicy(p)
	// One node answers half a second late. The quorum of the three prompt
	// nodes must carry the increment without waiting for it.
	g.Nodes()[3].SetFaultHook(func(int, string) NodeFault {
		return NodeFault{Delay: 500 * time.Millisecond}
	})
	start := time.Now()
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("increment waited %v on the slow node", elapsed)
	}
}

func TestPerAttemptTimeoutBoundsDeadQuorum(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRetryPolicy(RetryPolicy{
		Timeout:     50 * time.Millisecond,
		Retries:     1,
		BackoffBase: time.Millisecond,
	})
	// All nodes hang (delay far beyond the attempt timeout).
	for _, n := range g.Nodes() {
		n.SetFaultHook(func(int, string) NodeFault {
			return NodeFault{Delay: 10 * time.Second}
		})
	}
	start := time.Now()
	_, err = g.Increment("c")
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	// Two attempts of ~50 ms plus backoff: well under a second.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead quorum stalled the caller for %v", elapsed)
	}
}

func TestReadRetrySemanticsMatchIncrement(t *testing.T) {
	// Regression: ReadContext must honour RetryPolicy exactly as
	// IncrementContext does. With Retries=2 and every request dropped, each
	// node must see exactly 3 store attempts and exactly 3 fetch attempts —
	// one initial broadcast plus two retries, for both operations.
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRetryPolicy(fastPolicy())
	counts := make(map[int]map[string]*atomic.Int64)
	for _, n := range g.Nodes() {
		per := map[string]*atomic.Int64{"store": {}, "fetch": {}}
		counts[n.ID()] = per
		n.SetFaultHook(func(id int, op string) NodeFault {
			if c, ok := per[op]; ok {
				c.Add(1)
			}
			return NodeFault{Drop: true}
		})
	}
	if _, err := g.IncrementContext(context.Background(), "c"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("increment: %v, want ErrNoQuorum", err)
	}
	if _, err := g.ReadContext(context.Background(), "c"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("read: %v, want ErrNoQuorum", err)
	}
	want := int64(fastPolicy().Retries + 1)
	for id, per := range counts {
		stores, fetches := per["store"].Load(), per["fetch"].Load()
		if stores != want || fetches != want {
			t.Fatalf("node %d saw %d stores and %d fetches, want %d of each",
				id, stores, fetches, want)
		}
	}
}

func TestVerifyFreshContext(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRetryPolicy(fastPolicy())
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := g.VerifyFreshContext(ctx, "c", 2); err != nil {
		t.Fatalf("fresh value rejected: %v", err)
	}
	if err := g.VerifyFreshContext(ctx, "c", 1); !errors.Is(err, ErrRollback) {
		t.Fatalf("stale value: %v, want ErrRollback", err)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		g, err := NewGroup(0, 0) // single node, no quorum issues
		if err != nil {
			t.Fatal(err)
		}
		g.SetRetryPolicy(RetryPolicy{
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  80 * time.Millisecond,
			JitterSeed:  seed,
		})
		var out []time.Duration
		for attempt := 0; attempt < 5; attempt++ {
			start := time.Now()
			if err := g.backoff(context.Background(), attempt); err != nil {
				t.Fatal(err)
			}
			out = append(out, time.Since(start))
		}
		return out
	}
	a, b := delays(7), delays(7)
	for i := range a {
		// Same seed, same schedule — allow generous scheduling slop but the
		// jittered targets must agree to within it.
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 30*time.Millisecond {
			t.Fatalf("attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
}
