package rote

import (
	"context"
	"errors"
	"testing"
)

func newTestGroup(t *testing.T, f int) *Group {
	t.Helper()
	g, err := NewGroup(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	g.SetRetryPolicy(fastPolicy())
	return g
}

func TestAmnesicNodeRefusesUntilResync(t *testing.T) {
	g := newTestGroup(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := g.Increment("c"); err != nil {
			t.Fatal(err)
		}
	}
	n := g.Nodes()[3]
	n.RestartAmnesiac()
	if n.Synced() {
		t.Fatal("amnesic node reports synced")
	}
	if v := n.Value("c"); v != 0 {
		t.Fatalf("amnesic node kept state: %d", v)
	}
	// The amnesic node must not acknowledge: its ack would not survive a
	// second crash. The other 3 nodes still form the 2f+1 quorum.
	if _, err := g.Increment("c"); err != nil {
		t.Fatalf("increment with one amnesic node: %v", err)
	}
	if v := n.Value("c"); v != 0 {
		t.Fatal("unsynced node accepted a store")
	}
	if err := n.Resync(context.Background()); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if !n.Synced() {
		t.Fatal("node not synced after successful Resync")
	}
	if v := n.Value("c"); v < 4 {
		t.Fatalf("resync adopted %d, want >= 4", v)
	}
	// Resync on a synced node is a no-op.
	if err := n.Resync(context.Background()); err != nil {
		t.Fatalf("idempotent resync: %v", err)
	}
}

func TestResyncNeedsReadQuorumOfPeers(t *testing.T) {
	g := newTestGroup(t, 1)
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	n := g.Nodes()[0]
	n.RestartAmnesiac()
	// With f=1 the node has 3 peers and needs 2f+1 = 3 authenticated
	// replies; one crashed peer makes re-sync impossible.
	g.Nodes()[1].Fail()
	if err := n.Resync(context.Background()); !errors.Is(err, ErrResync) {
		t.Fatalf("resync with a failed peer: %v, want ErrResync", err)
	}
	if n.Synced() {
		t.Fatal("node marked synced after failed resync")
	}
	g.Nodes()[1].Recover()
	if err := n.Resync(context.Background()); err != nil {
		t.Fatalf("resync after peer recovery: %v", err)
	}
	if v := n.Value("c"); v != 1 {
		t.Fatalf("adopted %d, want 1", v)
	}
}

func TestResyncDiscardsForgedReplies(t *testing.T) {
	g := newTestGroup(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := g.Increment("c"); err != nil {
			t.Fatal(err)
		}
	}
	n := g.Nodes()[0]
	n.RestartAmnesiac()
	// A byzantine peer dumps inflated values under bad MACs. The whole
	// reply must be discarded, leaving only 2/3 valid replies.
	g.Nodes()[1].SetByzantine(true)
	if err := n.Resync(context.Background()); !errors.Is(err, ErrResync) {
		t.Fatalf("resync with forged reply: %v, want ErrResync", err)
	}
	g.Nodes()[1].SetByzantine(false)
	if err := n.Resync(context.Background()); err != nil {
		t.Fatalf("resync after peer honesty: %v", err)
	}
	if v := n.Value("c"); v != 3 {
		t.Fatalf("adopted %d, want 3 (forged inflated value must not survive)", v)
	}
}

func TestRollingAmnesicRestartsNeverRegress(t *testing.T) {
	g := newTestGroup(t, 1)
	ctx := context.Background()
	for _, n := range g.Nodes() {
		if _, err := g.Increment("c"); err != nil {
			t.Fatal(err)
		}
		before, err := g.Read("c")
		if err != nil {
			t.Fatal(err)
		}
		n.RestartAmnesiac()
		// Traffic continues while the node is down-for-resync.
		if _, err := g.Increment("c"); err != nil {
			t.Fatalf("increment during restart of node %d: %v", n.ID(), err)
		}
		if err := n.Resync(ctx); err != nil {
			t.Fatalf("resync node %d: %v", n.ID(), err)
		}
		if v := n.Value("c"); v < before {
			t.Fatalf("node %d regressed: %d < %d", n.ID(), v, before)
		}
	}
	// After the full rolling restart every node holds the committed value.
	stable, err := g.Read("c")
	if err != nil {
		t.Fatal(err)
	}
	if stable != uint64(2*len(g.Nodes())) {
		t.Fatalf("stable = %d, want %d", stable, 2*len(g.Nodes()))
	}
}

func TestAmnesiaFaultHook(t *testing.T) {
	g := newTestGroup(t, 1)
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	n := g.Nodes()[2]
	fired := false
	n.SetFaultHook(func(id int, op string) NodeFault {
		if op == "store" && !fired {
			fired = true
			return NodeFault{Amnesia: true}
		}
		return NodeFault{}
	})
	// The hook wipes the node mid-request; the request itself must then be
	// refused (the node is unsynced), but the quorum of the other 3 carries.
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	if n.Synced() {
		t.Fatal("hook-injected amnesia did not unsync the node")
	}
	st := g.NodeStatus()
	if st[2].Synced || !st[2].Alive {
		t.Fatalf("NodeStatus[2] = %+v, want alive and unsynced", st[2])
	}
	if err := n.Resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := n.Value("c"); v != 2 {
		t.Fatalf("adopted %d, want 2", v)
	}
}

func TestResyncImpossibleWithZeroF(t *testing.T) {
	// An f=0 group has no peers: amnesia is unrecoverable, and Resync must
	// say so rather than serve from empty state.
	g := newTestGroup(t, 0)
	if _, err := g.Increment("c"); err != nil {
		t.Fatal(err)
	}
	n := g.Nodes()[0]
	n.RestartAmnesiac()
	if err := n.Resync(context.Background()); !errors.Is(err, ErrResync) {
		t.Fatalf("resync with no peers: %v, want ErrResync", err)
	}
	if _, err := g.Increment("c"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("increment on unsynced singleton: %v, want ErrNoQuorum", err)
	}
}
