package rote

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestIncrementMonotonic(t *testing.T) {
	g, err := NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 5; want++ {
		got, err := g.Increment("log")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Increment = %d, want %d", got, want)
		}
	}
	v, err := g.Read("log")
	if err != nil || v != 5 {
		t.Fatalf("Read = %d, %v", v, err)
	}
}

func TestIndependentCounters(t *testing.T) {
	g, _ := NewGroup(1, 0)
	g.Increment("a")
	g.Increment("a")
	g.Increment("b")
	if v, _ := g.Read("a"); v != 2 {
		t.Fatalf("a = %d", v)
	}
	if v, _ := g.Read("b"); v != 1 {
		t.Fatalf("b = %d", v)
	}
}

func TestToleratesFCrashedNodes(t *testing.T) {
	g, _ := NewGroup(1, 0) // n=4, tolerates 1
	g.Nodes()[3].Fail()
	if _, err := g.Increment("log"); err != nil {
		t.Fatalf("increment with f crashed nodes: %v", err)
	}
	if _, err := g.Read("log"); err != nil {
		t.Fatalf("read with f crashed nodes: %v", err)
	}
}

func TestFailsBeyondF(t *testing.T) {
	g, _ := NewGroup(1, 0)
	g.Nodes()[2].Fail()
	g.Nodes()[3].Fail()
	if _, err := g.Increment("log"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestToleratesByzantineNode(t *testing.T) {
	g, _ := NewGroup(1, 0)
	g.Nodes()[0].SetByzantine(true)
	for i := 0; i < 3; i++ {
		if _, err := g.Increment("log"); err != nil {
			t.Fatalf("increment with byzantine node: %v", err)
		}
	}
	v, err := g.Read("log")
	if err != nil || v != 3 {
		t.Fatalf("Read = %d, %v; byzantine stale value must not win", v, err)
	}
}

func TestNodeRecovery(t *testing.T) {
	g, _ := NewGroup(1, 0)
	g.Increment("log")
	g.Nodes()[1].Fail()
	g.Increment("log")
	g.Nodes()[1].Recover()
	// The recovered node retains its (stale) state; quorum still reads 2.
	if v, _ := g.Read("log"); v != 2 {
		t.Fatalf("Read = %d, want 2", v)
	}
}

func TestVerifyFreshDetectsRollback(t *testing.T) {
	g, _ := NewGroup(1, 0)
	g.Increment("log") // 1
	g.Increment("log") // 2
	g.Increment("log") // 3
	// A provider presenting a log sealed at counter 2 is caught.
	if err := g.VerifyFresh("log", 2); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	if err := g.VerifyFresh("log", 3); err != nil {
		t.Fatalf("fresh log rejected: %v", err)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	g, _ := NewGroup(1, 0)
	const goroutines = 8
	const per = 25
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := g.Increment("log"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := g.Read("log")
	if err != nil || v != goroutines*per {
		t.Fatalf("final counter = %d, %v; want %d", v, err, goroutines*per)
	}
}

func TestLatencyCharged(t *testing.T) {
	g, _ := NewGroup(1, 5*time.Millisecond)
	start := time.Now()
	if _, err := g.Increment("log"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("increment took %v, want >= 2x latency", d)
	}
}

func TestQuorumSizes(t *testing.T) {
	for f := 0; f <= 3; f++ {
		g, err := NewGroup(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Nodes()) != 3*f+1 {
			t.Fatalf("f=%d: %d nodes, want %d", f, len(g.Nodes()), 3*f+1)
		}
		if g.quorum() != 2*f+1 {
			t.Fatalf("f=%d: quorum %d, want %d", f, g.quorum(), 2*f+1)
		}
		if _, err := g.Increment("x"); err != nil {
			t.Fatalf("f=%d increment: %v", f, err)
		}
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Property: any interleaving of increments and reads yields a
	// non-decreasing sequence of observed values.
	f := func(ops []bool) bool {
		g, err := NewGroup(1, 0)
		if err != nil {
			return false
		}
		var last uint64
		for _, inc := range ops {
			var v uint64
			if inc {
				v, err = g.Increment("c")
			} else {
				v, err = g.Read("c")
			}
			if err != nil || v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
