// Package testutil provides shared fixtures for tests and benchmarks: a
// certificate environment and an enclave+bridge factory.
package testutil

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"net"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/httpparse"
	"libseal/internal/pki"
	"libseal/internal/tlsterm"
)

// CertEnv bundles a CA, a server certificate and the matching trust pool.
type CertEnv struct {
	CA   *pki.CA
	Pool *pki.Pool
	Cert *pki.Certificate
	Key  *ecdsa.PrivateKey
}

// NewCertEnv issues a server certificate for the given subject.
func NewCertEnv(subject string) (*CertEnv, error) {
	ca, err := pki.NewCA("test-ca")
	if err != nil {
		return nil, err
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	cert, err := ca.Issue(subject, &key.PublicKey, nil)
	if err != nil {
		return nil, err
	}
	return &CertEnv{CA: ca, Pool: pki.NewPool(ca), Cert: cert, Key: key}, nil
}

// ClientConfig returns a client configuration trusting the environment's CA.
func (e *CertEnv) ClientConfig(serverName string) *tlsterm.ClientConfig {
	return &tlsterm.ClientConfig{Roots: e.Pool, ServerName: serverName}
}

// ServerConfig returns the native server configuration.
func (e *CertEnv) ServerConfig() *tlsterm.ServerConfig {
	return &tlsterm.ServerConfig{Cert: e.Cert, Key: e.Key}
}

// BridgeOptions configures NewBridge.
type BridgeOptions struct {
	Mode              asyncall.Mode
	MaxThreads        int
	AppSlots          int
	Schedulers        int
	TasksPerScheduler int
	Cost              enclave.CostModel
	// Platform reuses an existing platform instead of minting a fresh one,
	// so a relaunched enclave keeps its keys and counters (restart tests).
	Platform *enclave.Platform
}

// NewBridge launches an enclave on a fresh platform (or BridgeOptions.
// Platform) and opens a call bridge.
func NewBridge(opts BridgeOptions) (*enclave.Enclave, *asyncall.Bridge, error) {
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 16
	}
	platform := opts.Platform
	if platform == nil {
		platform = enclave.NewPlatform()
	}
	encl, err := platform.Launch(enclave.Config{
		Code:       []byte("libseal-test"),
		MaxThreads: opts.MaxThreads,
		Cost:       opts.Cost,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("testutil: launch: %w", err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{
		Mode:              opts.Mode,
		AppSlots:          opts.AppSlots,
		Schedulers:        opts.Schedulers,
		TasksPerScheduler: opts.TasksPerScheduler,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("testutil: bridge: %w", err)
	}
	return encl, bridge, nil
}

// HTTPClient issues HTTPS-like requests to a service over the secure
// channel protocol.
type HTTPClient struct {
	dial       func() (net.Conn, error)
	cfg        *tlsterm.ClientConfig
	persistent bool

	conn *tlsterm.Conn
	br   *bufio.Reader
}

// NewHTTPClient builds a client. With persistent=false every request uses a
// fresh connection and pays a full handshake — the worst case measured in
// §6.6.
func NewHTTPClient(dial func() (net.Conn, error), cfg *tlsterm.ClientConfig, persistent bool) *HTTPClient {
	return &HTTPClient{dial: dial, cfg: cfg, persistent: persistent}
}

func (c *HTTPClient) connect() error {
	raw, err := c.dial()
	if err != nil {
		return err
	}
	conn, err := tlsterm.Connect(raw, c.cfg)
	if err != nil {
		raw.Close()
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

// Do sends one request and reads its response.
func (c *HTTPClient) Do(req *httpparse.Request) (*httpparse.Response, error) {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
	}
	if !c.persistent {
		req.Header.Set("Connection", "close")
	}
	if _, err := c.conn.Write(req.Bytes()); err != nil {
		return nil, err
	}
	rsp, err := httpparse.ReadResponse(c.br)
	if err != nil {
		return nil, err
	}
	if !c.persistent {
		c.conn.Close()
		c.conn = nil
	}
	return rsp, nil
}

// Close releases the connection.
func (c *HTTPClient) Close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
