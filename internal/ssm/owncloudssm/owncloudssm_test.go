package owncloudssm

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
)

type harness struct {
	t    *testing.T
	db   *sqldb.DB
	mod  *Module
	time int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	db := sqldb.New()
	mod := New()
	if _, err := db.Exec(mod.Schema()); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, db: db, mod: mod}
}

func (h *harness) pair(path string, reqBody, rspBody any) {
	h.t.Helper()
	reqJSON, _ := json.Marshal(reqBody)
	rspJSON, _ := json.Marshal(rspBody)
	req := httpparse.NewRequest("POST", path, reqJSON)
	rsp := httpparse.NewResponse(200, rspJSON)
	h.time++
	tuples, err := h.mod.HandlePair(&ssm.State{Time: h.time, DB: h.db}, req.Bytes(), rsp.Bytes())
	if err != nil {
		h.t.Fatal(err)
	}
	for _, tu := range tuples {
		ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
		if _, err := h.db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *harness) violations() map[string]*sqldb.Result {
	h.t.Helper()
	v, err := ssm.CheckInvariants(h.db, h.mod)
	if err != nil {
		h.t.Fatal(err)
	}
	return v
}

func TestCleanSessionNoViolations(t *testing.T) {
	h := newHarness(t)
	// Alice pushes two edits, Bob syncs them, Alice leaves with a snapshot,
	// Carol joins and receives it.
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "alice", Ops: []string{"ins(0,'h')", "ins(1,'i')"}}, PushRsp{Seq: 2})
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "bob", Since: 0}, SyncRsp{Ops: []string{"ins(0,'h')", "ins(1,'i')"}, Seq: 2})
	h.pair("/owncloud/leave", LeaveMsg{Doc: "d", Client: "alice", Snapshot: "hi", Seq: 2}, map[string]string{"ok": "1"})
	h.pair("/owncloud/join", JoinMsg{Doc: "d", Client: "carol"}, JoinRsp{Snapshot: "hi", Seq: 2})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("clean session flagged: %v", v)
	}
}

func TestDetectsLostEdit(t *testing.T) {
	h := newHarness(t)
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "alice", Ops: []string{"op1", "op2"}}, PushRsp{Seq: 2})
	// The service claims head seq 2 but delivers only one op: a lost edit.
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "bob", Since: 0}, SyncRsp{Ops: []string{"op1"}, Seq: 2})
	if v := h.violations(); v["owncloud-sync-completeness"] == nil {
		t.Fatalf("lost edit not detected: %v", v)
	}
}

func TestDetectsAlteredEdit(t *testing.T) {
	h := newHarness(t)
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "alice", Ops: []string{"ins(0,'x')"}}, PushRsp{Seq: 1})
	// The relayed op differs from what Alice submitted.
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "bob", Since: 0}, SyncRsp{Ops: []string{"ins(0,'y')"}, Seq: 1})
	if v := h.violations(); v["owncloud-update-soundness"] == nil {
		t.Fatalf("altered edit not detected: %v", v)
	}
}

func TestDetectsStaleSnapshot(t *testing.T) {
	h := newHarness(t)
	h.pair("/owncloud/leave", LeaveMsg{Doc: "d", Client: "alice", Snapshot: "v1", Seq: 1}, map[string]string{"ok": "1"})
	h.pair("/owncloud/leave", LeaveMsg{Doc: "d", Client: "bob", Snapshot: "v2", Seq: 2}, map[string]string{"ok": "1"})
	// Carol receives the outdated snapshot v1.
	h.pair("/owncloud/join", JoinMsg{Doc: "d", Client: "carol"}, JoinRsp{Snapshot: "v1", Seq: 2})
	if v := h.violations(); v["owncloud-snapshot-soundness"] == nil {
		t.Fatalf("stale snapshot not detected: %v", v)
	}
}

func TestConcurrentClientsPrefixProperty(t *testing.T) {
	h := newHarness(t)
	// Interleaved pushes from two clients; seq assignment is the service's.
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "alice", Ops: []string{"a1"}}, PushRsp{Seq: 1})
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "bob", Ops: []string{"b1", "b2"}}, PushRsp{Seq: 3})
	// A late-joining client must receive the full prefix.
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "carol", Since: 0}, SyncRsp{Ops: []string{"a1", "b1", "b2"}, Seq: 3})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("prefix delivery flagged: %v", v)
	}
	// Partial sync starting mid-stream is fine too.
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "alice", Since: 1}, SyncRsp{Ops: []string{"b1", "b2"}, Seq: 3})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("partial sync flagged: %v", v)
	}
}

func TestTrimPreservesDetection(t *testing.T) {
	h := newHarness(t)
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "alice", Ops: []string{"op1", "op2"}}, PushRsp{Seq: 2})
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "bob", Since: 0}, SyncRsp{Ops: []string{"op1", "op2"}, Seq: 2})
	h.pair("/owncloud/leave", LeaveMsg{Doc: "d", Client: "alice", Snapshot: "s2", Seq: 2}, map[string]string{"ok": "1"})
	for _, q := range h.mod.TrimQueries() {
		if _, err := h.db.Exec(q); err != nil {
			t.Fatalf("trim %q: %v", q, err)
		}
	}
	// Ops covered by the snapshot and all sent rows are gone.
	if n, _ := h.db.TableRowCount("docupdates"); n != 0 {
		t.Fatalf("docupdates after trim = %d, want 0", n)
	}
	if n, _ := h.db.TableRowCount("snapshots"); n != 1 {
		t.Fatalf("snapshots after trim = %d, want 1", n)
	}
	// A stale snapshot served after trimming is still detected.
	h.pair("/owncloud/join", JoinMsg{Doc: "d", Client: "carol"}, JoinRsp{Snapshot: "old", Seq: 2})
	if v := h.violations(); v["owncloud-snapshot-soundness"] == nil {
		t.Fatalf("stale snapshot after trim not detected: %v", v)
	}
}

func TestPostSnapshotEditsSurviveTrim(t *testing.T) {
	h := newHarness(t)
	h.pair("/owncloud/leave", LeaveMsg{Doc: "d", Client: "alice", Snapshot: "s", Seq: 2}, map[string]string{"ok": "1"})
	h.pair("/owncloud/push", PushMsg{Doc: "d", Client: "bob", Ops: []string{"late1"}}, PushRsp{Seq: 3})
	for _, q := range h.mod.TrimQueries() {
		if _, err := h.db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	// The edit after the snapshot is still needed and retained.
	if n, _ := h.db.TableRowCount("docupdates"); n != 1 {
		t.Fatalf("docupdates after trim = %d, want 1", n)
	}
	// And its alteration is detectable.
	h.pair("/owncloud/sync", SyncMsg{Doc: "d", Client: "carol", Since: 2}, SyncRsp{Ops: []string{"altered"}, Seq: 3})
	if v := h.violations(); v["owncloud-update-soundness"] == nil {
		t.Fatalf("post-trim alteration not detected: %v", v)
	}
}

func TestIgnoresOtherTraffic(t *testing.T) {
	h := newHarness(t)
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	tuples, err := h.mod.HandlePair(&ssm.State{Time: 1, DB: h.db}, req.Bytes(), httpparse.NewResponse(200, nil).Bytes())
	if err != nil || tuples != nil {
		t.Fatalf("foreign traffic produced tuples: %v %v", tuples, err)
	}
}

func TestModuleMetadata(t *testing.T) {
	m := New()
	if m.Name() != "owncloud" {
		t.Fatal("name")
	}
	if len(m.Invariants()) != 3 {
		t.Fatal("invariants")
	}
}
