// Package owncloudssm is the LibSEAL service-specific module for the
// ownCloud Documents collaborative editing service (§6.1, §6.2). The service
// synchronises JSON-encoded document updates between clients within editing
// sessions; clients leaving a session upload a snapshot, and joining clients
// receive the latest snapshot plus subsequent updates. The module records
// both directions of this traffic and detects lost or altered edits and
// stale snapshots.
package owncloudssm

import (
	"encoding/json"
	"fmt"
	"strings"

	"libseal/internal/httpparse"
	"libseal/internal/ssm"
)

// Module implements ssm.Module for ownCloud Documents.
type Module struct{}

// New returns the ownCloud SSM.
func New() *Module { return &Module{} }

// Name implements ssm.Module.
func (*Module) Name() string { return "owncloud" }

// Schema implements ssm.Module. Direction 'recv' marks data the service
// received from clients, 'sent' marks data it returned.
func (*Module) Schema() string {
	return `
CREATE TABLE docupdates (time INTEGER, doc TEXT, client TEXT, seq INTEGER, op TEXT, dir TEXT);
CREATE TABLE snapshots (time INTEGER, doc TEXT, client TEXT, seq INTEGER, content TEXT, dir TEXT);
CREATE TABLE docsync (time INTEGER, doc TEXT, client TEXT, since INTEGER, upto INTEGER);
`
}

// Wire messages of the simulated ownCloud Documents API.

// PushMsg is POST /owncloud/push: a client submits edits.
type PushMsg struct {
	Doc    string   `json:"doc"`
	Client string   `json:"client"`
	Ops    []string `json:"ops"`
}

// PushRsp acknowledges a push with the new head sequence number.
type PushRsp struct {
	Seq int64 `json:"seq"` // sequence of the last accepted op
}

// SyncMsg is POST /owncloud/sync: a client asks for ops after Since.
type SyncMsg struct {
	Doc    string `json:"doc"`
	Client string `json:"client"`
	Since  int64  `json:"since"`
}

// SyncRsp returns the ops in (Since, Seq].
type SyncRsp struct {
	Ops []string `json:"ops"`
	Seq int64    `json:"seq"`
}

// JoinMsg is POST /owncloud/join: a client enters a session.
type JoinMsg struct {
	Doc    string `json:"doc"`
	Client string `json:"client"`
}

// JoinRsp hands the joining client the latest snapshot.
type JoinRsp struct {
	Snapshot string `json:"snapshot"`
	Seq      int64  `json:"seq"` // sequence the snapshot includes
}

// LeaveMsg is POST /owncloud/leave: the departing client uploads a snapshot.
type LeaveMsg struct {
	Doc      string `json:"doc"`
	Client   string `json:"client"`
	Snapshot string `json:"snapshot"`
	Seq      int64  `json:"seq"`
}

// HandlePair implements ssm.Module.
func (m *Module) HandlePair(st *ssm.State, reqRaw, rspRaw []byte) ([]ssm.Tuple, error) {
	req, err := httpparse.ParseRequestBytes(reqRaw)
	if err != nil {
		return nil, fmt.Errorf("owncloudssm: request: %w", err)
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/owncloud/") {
		return nil, nil
	}
	rsp, err := httpparse.ParseResponseBytes(rspRaw)
	if err != nil {
		return nil, fmt.Errorf("owncloudssm: response: %w", err)
	}
	if rsp.Status != 200 {
		return nil, nil
	}

	switch strings.TrimPrefix(path, "/owncloud/") {
	case "push":
		var msg PushMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("owncloudssm: push body: %w", err)
		}
		var ack PushRsp
		if err := json.Unmarshal(rsp.Body, &ack); err != nil {
			return nil, fmt.Errorf("owncloudssm: push response: %w", err)
		}
		// The service assigned sequence numbers ending at ack.Seq.
		var tuples []ssm.Tuple
		base := ack.Seq - int64(len(msg.Ops))
		for i, op := range msg.Ops {
			tuples = append(tuples, ssm.Tuple{
				Table:  "docupdates",
				Values: []any{st.Time, msg.Doc, msg.Client, base + int64(i) + 1, op, "recv"},
			})
		}
		return tuples, nil

	case "sync":
		var msg SyncMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("owncloudssm: sync body: %w", err)
		}
		var out SyncRsp
		if err := json.Unmarshal(rsp.Body, &out); err != nil {
			return nil, fmt.Errorf("owncloudssm: sync response: %w", err)
		}
		tuples := []ssm.Tuple{{
			Table:  "docsync",
			Values: []any{st.Time, msg.Doc, msg.Client, msg.Since, out.Seq},
		}}
		for i, op := range out.Ops {
			tuples = append(tuples, ssm.Tuple{
				Table:  "docupdates",
				Values: []any{st.Time, msg.Doc, msg.Client, msg.Since + int64(i) + 1, op, "sent"},
			})
		}
		return tuples, nil

	case "join":
		var msg JoinMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("owncloudssm: join body: %w", err)
		}
		var out JoinRsp
		if err := json.Unmarshal(rsp.Body, &out); err != nil {
			return nil, fmt.Errorf("owncloudssm: join response: %w", err)
		}
		return []ssm.Tuple{{
			Table:  "snapshots",
			Values: []any{st.Time, msg.Doc, msg.Client, out.Seq, out.Snapshot, "sent"},
		}}, nil

	case "leave":
		var msg LeaveMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("owncloudssm: leave body: %w", err)
		}
		return []ssm.Tuple{{
			Table:  "snapshots",
			Values: []any{st.Time, msg.Doc, msg.Client, msg.Seq, msg.Snapshot, "recv"},
		}}, nil
	}
	return nil, nil
}

// SnapshotSoundnessSQL: a snapshot handed to a joining client must equal the
// most recent snapshot any client uploaded for that document. Violations
// mean the service serves a stale or altered document.
const SnapshotSoundnessSQL = `SELECT s.time, s.doc, s.client FROM snapshots s
	WHERE s.dir = 'sent' AND s.content != (
		SELECT r.content FROM snapshots r WHERE r.doc = s.doc AND
			r.dir = 'recv' AND r.time < s.time
		ORDER BY r.time DESC LIMIT 1)`

// UpdateSoundnessSQL: every op the service relays must be byte-identical to
// the op it received under the same (doc, seq). Violations mean edits were
// altered in flight.
const UpdateSoundnessSQL = `SELECT o.time, o.doc, o.seq FROM docupdates o
	WHERE o.dir = 'sent' AND o.op != (
		SELECT i.op FROM docupdates i WHERE i.dir = 'recv' AND
			i.doc = o.doc AND i.seq = o.seq LIMIT 1)`

// SyncCompletenessSQL: a sync response advertising head sequence `upto` must
// carry exactly upto-since ops — the aggregate history sent to each client
// is a prefix of the history the service received (§6.2). Violations mean
// lost edits.
const SyncCompletenessSQL = `SELECT d.time, d.doc, d.client FROM docsync d
	WHERE d.upto - d.since != (
		SELECT COUNT(*) FROM docupdates o WHERE o.dir = 'sent' AND
			o.doc = d.doc AND o.client = d.client AND o.time = d.time)`

// Invariants implements ssm.Module.
func (*Module) Invariants() []ssm.Invariant {
	return []ssm.Invariant{
		{
			Name:        "owncloud-snapshot-soundness",
			Kind:        "soundness",
			Description: "snapshots sent to new clients match the latest uploaded snapshot",
			SQL:         SnapshotSoundnessSQL,
		},
		{
			Name:        "owncloud-update-soundness",
			Kind:        "soundness",
			Description: "relayed edits are byte-identical to the received edits",
			SQL:         UpdateSoundnessSQL,
		},
		{
			Name:        "owncloud-sync-completeness",
			Kind:        "completeness",
			Description: "each sync delivers the full prefix of updates it advertises",
			SQL:         SyncCompletenessSQL,
		},
	}
}

// TrimQueries implements ssm.Module: sent rows and syncs are checked once;
// of the received state, the latest snapshot per document and the updates
// after it must be retained for future soundness checks.
func (*Module) TrimQueries() []string {
	return []string{
		`DELETE FROM docsync`,
		`DELETE FROM docupdates WHERE dir = 'sent'`,
		`DELETE FROM snapshots WHERE dir = 'sent'`,
		`DELETE FROM snapshots WHERE dir = 'recv' AND time NOT IN
	(SELECT MAX(time) FROM snapshots WHERE dir = 'recv' GROUP BY doc)`,
		`DELETE FROM docupdates WHERE dir = 'recv' AND seq <= (
	SELECT MAX(s.seq) FROM snapshots s WHERE s.doc = docupdates.doc AND s.dir = 'recv')`,
	}
}

var _ ssm.Module = (*Module)(nil)
