package gitssm

import (
	"fmt"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
)

// harness replays request/response pairs through the module into a database.
type harness struct {
	t    *testing.T
	db   *sqldb.DB
	mod  *Module
	time int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	db := sqldb.New()
	mod := New()
	if _, err := db.Exec(mod.Schema()); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, db: db, mod: mod}
}

func (h *harness) pair(req *httpparse.Request, rsp *httpparse.Response) {
	h.t.Helper()
	h.time++
	tuples, err := h.mod.HandlePair(&ssm.State{Time: h.time, DB: h.db}, req.Bytes(), rsp.Bytes())
	if err != nil {
		h.t.Fatal(err)
	}
	for _, tu := range tuples {
		ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
		if _, err := h.db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *harness) push(repo string, lines ...string) {
	req := httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack", []byte(strings.Join(lines, "\n")))
	h.pair(req, httpparse.NewResponse(200, []byte("ok")))
}

func (h *harness) advertise(repo string, refs ...string) {
	var body strings.Builder
	for _, r := range refs {
		body.WriteString("ref " + r + "\n")
	}
	req := httpparse.NewRequest("GET", "/git/"+repo+"/info/refs?service=git-upload-pack", nil)
	h.pair(req, httpparse.NewResponse(200, []byte(body.String())))
}

func (h *harness) violations() map[string]*sqldb.Result {
	h.t.Helper()
	v, err := ssm.CheckInvariants(h.db, h.mod)
	if err != nil {
		h.t.Fatal(err)
	}
	return v
}

func TestCleanHistoryNoViolations(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "update main c2")
	h.push("repo", "create dev d1")
	h.advertise("repo", "main c2", "dev d1")
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestDetectsRollbackAttack(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "update main c2")
	// The server advertises the older commit.
	h.advertise("repo", "main c1")
	v := h.violations()
	if v["git-soundness"] == nil {
		t.Fatalf("rollback not detected: %v", v)
	}
}

func TestDetectsTeleportAttack(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "create dev d1")
	// main is advertised pointing at dev's commit.
	h.advertise("repo", "main d1", "dev d1")
	v := h.violations()
	if v["git-soundness"] == nil {
		t.Fatalf("teleport not detected: %v", v)
	}
}

func TestDetectsReferenceDeletion(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "create dev d1")
	// dev vanishes from the advertisement without a delete update.
	h.advertise("repo", "main c1")
	v := h.violations()
	if v["git-completeness"] == nil {
		t.Fatalf("reference deletion not detected: %v", v)
	}
}

func TestLegitimateDeleteNotFlagged(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "create dev d1")
	h.push("repo", "delete dev d1")
	h.advertise("repo", "main c1")
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("legitimate delete flagged: %v", v)
	}
}

func TestMultipleReposIndependent(t *testing.T) {
	h := newHarness(t)
	h.push("alpha", "create main a1")
	h.push("beta", "create main b1")
	h.push("beta", "update main b2")
	h.advertise("alpha", "main a1")
	h.advertise("beta", "main b2")
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("independent repos flagged: %v", v)
	}
	// Cross-repo confusion is detected.
	h.advertise("alpha", "main b2")
	if v := h.violations(); v["git-soundness"] == nil {
		t.Fatal("cross-repo advertisement not detected")
	}
}

func TestTrimPreservesDetection(t *testing.T) {
	h := newHarness(t)
	h.push("repo", "create main c1")
	h.push("repo", "update main c2")
	h.push("repo", "create dev d1")
	h.advertise("repo", "main c2", "dev d1")
	for _, q := range h.mod.TrimQueries() {
		if _, err := h.db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := h.db.TableRowCount("advertisements"); n != 0 {
		t.Fatalf("advertisements not trimmed: %d", n)
	}
	if n, _ := h.db.TableRowCount("updates"); n != 2 {
		t.Fatalf("updates after trim = %d, want 2 (one per branch)", n)
	}
	// Attacks after trimming are still caught.
	h.advertise("repo", "main c1", "dev d1") // rollback
	if v := h.violations(); v["git-soundness"] == nil {
		t.Fatal("rollback after trim not detected")
	}
}

func TestIgnoresNonGitTraffic(t *testing.T) {
	h := newHarness(t)
	req := httpparse.NewRequest("GET", "/owncloud/join", nil)
	tuples, err := h.mod.HandlePair(&ssm.State{Time: 1, DB: h.db}, req.Bytes(), httpparse.NewResponse(200, nil).Bytes())
	if err != nil || tuples != nil {
		t.Fatalf("non-git traffic produced tuples: %v, %v", tuples, err)
	}
}

func TestIgnoresFailedRequests(t *testing.T) {
	h := newHarness(t)
	req := httpparse.NewRequest("POST", "/git/repo/git-receive-pack", []byte("create main c1"))
	h.pair(req, httpparse.NewResponse(403, nil))
	if n, _ := h.db.TableRowCount("updates"); n != 0 {
		t.Fatal("rejected push was logged")
	}
}

func TestMalformedRequestRejected(t *testing.T) {
	h := newHarness(t)
	_, err := h.mod.HandlePair(&ssm.State{Time: 1}, []byte("garbage"), []byte("more garbage"))
	if err == nil {
		t.Fatal("malformed pair accepted")
	}
}

func TestModuleMetadata(t *testing.T) {
	m := New()
	if m.Name() != "git" {
		t.Fatal("name")
	}
	if len(m.Invariants()) != 2 || len(m.TrimQueries()) != 2 {
		t.Fatal("invariant/trim counts")
	}
}
