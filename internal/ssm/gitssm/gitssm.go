// Package gitssm is the LibSEAL service-specific module for the Git
// smart-HTTP service (§6.1, §6.2). It records all branch/tag pointer updates
// pushed by clients and all pointer advertisements returned by the server,
// and detects the teleport, rollback and reference-deletion attacks of
// Torres-Arias et al. that Git's own hash chain does not prevent.
package gitssm

import (
	"fmt"
	"strings"

	"libseal/internal/httpparse"
	"libseal/internal/ssm"
)

// Module implements ssm.Module for Git.
type Module struct{}

// New returns the Git SSM.
func New() *Module { return &Module{} }

// Name implements ssm.Module.
func (*Module) Name() string { return "git" }

// Schema implements ssm.Module: the two relations of §3.1 plus the
// branchcnt view of §6.2 used by the completeness invariant.
func (*Module) Schema() string {
	return `
CREATE TABLE updates (time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
CREATE TABLE advertisements (time INTEGER, repo TEXT, branch TEXT, cid TEXT);
CREATE VIEW branchcnt AS
	SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
	FROM advertisements a
	JOIN updates u ON u.time < a.time AND u.repo = a.repo
	WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
		FROM updates WHERE branch = u.branch
		AND repo = u.repo AND time < a.time) GROUP BY
		a.time,a.repo,a.branch;
`
}

// repoFromPath extracts the repository from /git/<repo>/<endpoint>.
func repoFromPath(path string) (repo, endpoint string, ok bool) {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) < 3 || parts[0] != "git" {
		return "", "", false
	}
	return parts[1], strings.Join(parts[2:], "/"), true
}

// HandlePair implements ssm.Module. It understands the simplified smart-HTTP
// wire protocol of the simulated Git service:
//
//	GET  /git/<repo>/info/refs           response: "ref <branch> <cid>\n"*
//	POST /git/<repo>/git-receive-pack    request:  "<type> <branch> <cid>\n"*
//
// where <type> is update, create or delete.
func (m *Module) HandlePair(st *ssm.State, reqRaw, rspRaw []byte) ([]ssm.Tuple, error) {
	req, err := httpparse.ParseRequestBytes(reqRaw)
	if err != nil {
		return nil, fmt.Errorf("gitssm: request: %w", err)
	}
	repo, endpoint, ok := repoFromPath(req.PathOnly())
	if !ok {
		return nil, nil // not a Git request
	}
	rsp, err := httpparse.ParseResponseBytes(rspRaw)
	if err != nil {
		return nil, fmt.Errorf("gitssm: response: %w", err)
	}
	if rsp.Status != 200 {
		return nil, nil // failed operations do not change service state
	}

	switch {
	case req.Method == "GET" && strings.HasPrefix(endpoint, "info/refs"):
		// Advertisement: log every (branch, cid) the server returned.
		var tuples []ssm.Tuple
		for _, line := range strings.Split(string(rsp.Body), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "ref" {
				continue
			}
			tuples = append(tuples, ssm.Tuple{
				Table:  "advertisements",
				Values: []any{st.Time, repo, fields[1], fields[2]},
			})
		}
		return tuples, nil

	case req.Method == "POST" && endpoint == "git-receive-pack":
		// Push: log every ref update command the client sent.
		var tuples []ssm.Tuple
		for _, line := range strings.Split(string(req.Body), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				continue
			}
			typ := fields[0]
			if typ != "update" && typ != "create" && typ != "delete" {
				continue
			}
			tuples = append(tuples, ssm.Tuple{
				Table:  "updates",
				Values: []any{st.Time, repo, fields[1], fields[2], typ},
			})
		}
		return tuples, nil
	}
	return nil, nil
}

// SoundnessSQL is the soundness invariant of §6.2, verbatim from the paper:
// every advertisement must correspond to the most recent update for the
// (repo, branch, cid) triple. Violations indicate rollback or teleport
// attacks.
const SoundnessSQL = `SELECT * FROM advertisements a WHERE cid != (
	SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
		u.branch = a.branch AND u.time < a.time ORDER BY
		u.time DESC LIMIT 1)`

// CompletenessSQL is the completeness invariant of §1/§6.2, verbatim: when
// an advertisement happens, all live branches must be advertised.
// Violations indicate reference-deletion attacks.
const CompletenessSQL = `SELECT time, repo FROM advertisements
	NATURAL JOIN branchcnt
	GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt`

// Invariants implements ssm.Module.
func (*Module) Invariants() []ssm.Invariant {
	return []ssm.Invariant{
		{
			Name:        "git-soundness",
			Kind:        "soundness",
			Description: "advertised commit IDs must match the most recent pushed update (detects rollback and teleport)",
			SQL:         SoundnessSQL,
		},
		{
			Name:        "git-completeness",
			Kind:        "completeness",
			Description: "every live branch must be advertised (detects reference deletion)",
			SQL:         CompletenessSQL,
		},
	}
}

// TrimQueries implements ssm.Module, verbatim from §5.1: advertisements are
// checked once; only the most recent update per branch is needed afterwards.
func (*Module) TrimQueries() []string {
	return []string{
		`DELETE FROM advertisements`,
		`DELETE FROM updates WHERE time NOT IN
	(SELECT MAX(time) FROM updates GROUP BY repo, branch)`,
	}
}

var _ ssm.Module = (*Module)(nil)
