// Package dropboxssm is the LibSEAL service-specific module for the Dropbox
// file storage service (§6.1, §6.2). Dropbox splits files into 4 MB blocks;
// the per-file list of block hashes (the blocklist) travels in commit_batch
// messages on upload and in list responses on retrieval. Dropbox protects
// block contents but not this metadata, so the module records both message
// types and checks blocklist soundness and file-list completeness.
package dropboxssm

import (
	"encoding/json"
	"fmt"
	"strings"

	"libseal/internal/httpparse"
	"libseal/internal/ssm"
)

// Module implements ssm.Module for Dropbox.
type Module struct{}

// New returns the Dropbox SSM.
func New() *Module { return &Module{} }

// Name implements ssm.Module.
func (*Module) Name() string { return "dropbox" }

// Schema implements ssm.Module: the two relations of §6.2 plus a marker
// relation for list requests used by the completeness invariant.
func (*Module) Schema() string {
	return `
CREATE TABLE commit_batch (time INTEGER, file TEXT, blocks TEXT, account TEXT, host TEXT, size INTEGER);
CREATE TABLE list (time INTEGER, file TEXT, blocks TEXT, account TEXT, host TEXT, size INTEGER);
CREATE TABLE listreq (time INTEGER, account TEXT, host TEXT);
`
}

// CommitBatchMsg is POST /dropbox/commit_batch: one or more file commits.
// Size -1 marks a deletion (§6.1).
type CommitBatchMsg struct {
	Account string       `json:"account"`
	Host    string       `json:"host"`
	Commits []FileCommit `json:"commits"`
}

// FileCommit describes one file's new state.
type FileCommit struct {
	File      string `json:"file"`
	Blocklist string `json:"blocklist"`
	Size      int64  `json:"size"`
}

// ListRsp is the response to GET /dropbox/list: the account's current files.
type ListRsp struct {
	Files []FileCommit `json:"files"`
}

// HandlePair implements ssm.Module.
func (m *Module) HandlePair(st *ssm.State, reqRaw, rspRaw []byte) ([]ssm.Tuple, error) {
	req, err := httpparse.ParseRequestBytes(reqRaw)
	if err != nil {
		return nil, fmt.Errorf("dropboxssm: request: %w", err)
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/dropbox/") {
		return nil, nil
	}
	rsp, err := httpparse.ParseResponseBytes(rspRaw)
	if err != nil {
		return nil, fmt.Errorf("dropboxssm: response: %w", err)
	}
	if rsp.Status != 200 {
		return nil, nil
	}

	switch strings.TrimPrefix(path, "/dropbox/") {
	case "commit_batch":
		var msg CommitBatchMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("dropboxssm: commit_batch body: %w", err)
		}
		var tuples []ssm.Tuple
		for _, c := range msg.Commits {
			tuples = append(tuples, ssm.Tuple{
				Table:  "commit_batch",
				Values: []any{st.Time, c.File, c.Blocklist, msg.Account, msg.Host, c.Size},
			})
		}
		return tuples, nil

	case "list":
		account := req.Query("account")
		host := req.Query("host")
		var out ListRsp
		if err := json.Unmarshal(rsp.Body, &out); err != nil {
			return nil, fmt.Errorf("dropboxssm: list response: %w", err)
		}
		tuples := []ssm.Tuple{{
			Table:  "listreq",
			Values: []any{st.Time, account, host},
		}}
		for _, f := range out.Files {
			tuples = append(tuples, ssm.Tuple{
				Table:  "list",
				Values: []any{st.Time, f.File, f.Blocklist, account, host, f.Size},
			})
		}
		return tuples, nil
	}
	return nil, nil
}

// BlocklistSoundnessSQL: the blocklist returned for a file must equal the
// blocklist most recently uploaded for it. Since the client verifies block
// contents against hashes, a correct blocklist pins the whole file (§6.2).
const BlocklistSoundnessSQL = `SELECT l.time, l.file FROM list l
	WHERE l.blocks != (
		SELECT c.blocks FROM commit_batch c WHERE c.file = l.file AND
			c.account = l.account AND c.time < l.time
		ORDER BY c.time DESC LIMIT 1)`

// ListCompletenessSQL: every file whose latest commit is not a deletion must
// appear in each list response for its account. Violations mean lost files.
const ListCompletenessSQL = `SELECT r.time, c.file FROM listreq r
	JOIN commit_batch c ON c.account = r.account AND c.time < r.time
	WHERE c.size != -1
	AND c.time = (SELECT MAX(time) FROM commit_batch
		WHERE file = c.file AND account = c.account AND time < r.time)
	AND c.file NOT IN (SELECT file FROM list WHERE time = r.time)`

// Invariants implements ssm.Module.
func (*Module) Invariants() []ssm.Invariant {
	return []ssm.Invariant{
		{
			Name:        "dropbox-blocklist-soundness",
			Kind:        "soundness",
			Description: "returned blocklists match the most recently committed blocklist",
			SQL:         BlocklistSoundnessSQL,
		},
		{
			Name:        "dropbox-list-completeness",
			Kind:        "completeness",
			Description: "every live file is reported in list responses",
			SQL:         ListCompletenessSQL,
		},
	}
}

// TrimQueries implements ssm.Module: list responses are checked once; only
// the latest commit per (account, file) is needed for future checks, so the
// log grows with the number of live files (§6.5: #files x 64-byte hash).
func (*Module) TrimQueries() []string {
	return []string{
		`DELETE FROM list`,
		`DELETE FROM listreq`,
		`DELETE FROM commit_batch WHERE time NOT IN
	(SELECT MAX(time) FROM commit_batch GROUP BY account, file)`,
	}
}

var _ ssm.Module = (*Module)(nil)
