package dropboxssm

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
)

type harness struct {
	t    *testing.T
	db   *sqldb.DB
	mod  *Module
	time int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	db := sqldb.New()
	mod := New()
	if _, err := db.Exec(mod.Schema()); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, db: db, mod: mod}
}

func (h *harness) apply(req *httpparse.Request, rsp *httpparse.Response) {
	h.t.Helper()
	h.time++
	tuples, err := h.mod.HandlePair(&ssm.State{Time: h.time, DB: h.db}, req.Bytes(), rsp.Bytes())
	if err != nil {
		h.t.Fatal(err)
	}
	for _, tu := range tuples {
		ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
		if _, err := h.db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *harness) commit(account string, commits ...FileCommit) {
	body, _ := json.Marshal(CommitBatchMsg{Account: account, Host: "h1", Commits: commits})
	h.apply(httpparse.NewRequest("POST", "/dropbox/commit_batch", body),
		httpparse.NewResponse(200, []byte(`{"ok":1}`)))
}

func (h *harness) list(account string, files ...FileCommit) {
	body, _ := json.Marshal(ListRsp{Files: files})
	h.apply(httpparse.NewRequest("GET", "/dropbox/list?account="+account+"&host=h1", nil),
		httpparse.NewResponse(200, body))
}

func (h *harness) violations() map[string]*sqldb.Result {
	h.t.Helper()
	v, err := ssm.CheckInvariants(h.db, h.mod)
	if err != nil {
		h.t.Fatal(err)
	}
	return v
}

func TestCleanWorkloadNoViolations(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "h1,h2", Size: 8 << 20})
	h.commit("acct", FileCommit{File: "b.bin", Blocklist: "h3", Size: 1 << 20})
	h.list("acct",
		FileCommit{File: "a.txt", Blocklist: "h1,h2", Size: 8 << 20},
		FileCommit{File: "b.bin", Blocklist: "h3", Size: 1 << 20})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("clean workload flagged: %v", v)
	}
}

func TestDetectsCorruptedBlocklist(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "h1,h2", Size: 8 << 20})
	// The service returns a different blocklist: metadata corruption.
	h.list("acct", FileCommit{File: "a.txt", Blocklist: "h1,hX", Size: 8 << 20})
	if v := h.violations(); v["dropbox-blocklist-soundness"] == nil {
		t.Fatalf("corrupted blocklist not detected: %v", v)
	}
}

func TestDetectsStaleBlocklist(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "v1", Size: 4 << 20})
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "v2", Size: 4 << 20})
	// An old version is served.
	h.list("acct", FileCommit{File: "a.txt", Blocklist: "v1", Size: 4 << 20})
	if v := h.violations(); v["dropbox-blocklist-soundness"] == nil {
		t.Fatalf("stale blocklist not detected: %v", v)
	}
}

func TestDetectsLostFile(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "h1", Size: 100})
	h.commit("acct", FileCommit{File: "b.txt", Blocklist: "h2", Size: 200})
	// b.txt silently vanishes from the listing.
	h.list("acct", FileCommit{File: "a.txt", Blocklist: "h1", Size: 100})
	if v := h.violations(); v["dropbox-list-completeness"] == nil {
		t.Fatalf("lost file not detected: %v", v)
	}
}

func TestDeletedFileNotExpected(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "h1", Size: 100})
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "", Size: -1}) // deletion
	h.list("acct")                                                       // empty listing is correct
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("deleted file flagged: %v", v)
	}
}

func TestAccountsIsolated(t *testing.T) {
	h := newHarness(t)
	h.commit("alice", FileCommit{File: "a.txt", Blocklist: "ha", Size: 10})
	h.commit("bob", FileCommit{File: "b.txt", Blocklist: "hb", Size: 20})
	h.list("alice", FileCommit{File: "a.txt", Blocklist: "ha", Size: 10})
	h.list("bob", FileCommit{File: "b.txt", Blocklist: "hb", Size: 20})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("isolated accounts flagged: %v", v)
	}
}

func TestTrimPreservesDetection(t *testing.T) {
	h := newHarness(t)
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "v1", Size: 10})
	h.commit("acct", FileCommit{File: "a.txt", Blocklist: "v2", Size: 10})
	h.commit("acct", FileCommit{File: "b.txt", Blocklist: "w1", Size: 20})
	h.list("acct",
		FileCommit{File: "a.txt", Blocklist: "v2", Size: 10},
		FileCommit{File: "b.txt", Blocklist: "w1", Size: 20})
	for _, q := range h.mod.TrimQueries() {
		if _, err := h.db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	// One commit per live file remains (§6.5: log ~ #files).
	if n, _ := h.db.TableRowCount("commit_batch"); n != 2 {
		t.Fatalf("commit_batch after trim = %d, want 2", n)
	}
	if n, _ := h.db.TableRowCount("list"); n != 0 {
		t.Fatal("list not trimmed")
	}
	// Serving a stale blocklist after trimming is still detected.
	h.list("acct",
		FileCommit{File: "a.txt", Blocklist: "v1", Size: 10},
		FileCommit{File: "b.txt", Blocklist: "w1", Size: 20})
	if v := h.violations(); v["dropbox-blocklist-soundness"] == nil {
		t.Fatalf("stale blocklist after trim not detected: %v", v)
	}
}

func TestIgnoresOtherTraffic(t *testing.T) {
	h := newHarness(t)
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	tuples, err := h.mod.HandlePair(&ssm.State{Time: 1, DB: h.db}, req.Bytes(), httpparse.NewResponse(200, nil).Bytes())
	if err != nil || tuples != nil {
		t.Fatalf("foreign traffic produced tuples: %v %v", tuples, err)
	}
}

func TestModuleMetadata(t *testing.T) {
	m := New()
	if m.Name() != "dropbox" {
		t.Fatal("name")
	}
	if len(m.Invariants()) != 2 || len(m.TrimQueries()) != 3 {
		t.Fatal("metadata counts")
	}
}
