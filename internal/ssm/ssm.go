// Package ssm defines the service-specific module interface of LibSEAL
// (§5.1). An SSM teaches LibSEAL about one service: it declares the
// relational schema of the audit log, parses observed request/response pairs
// into log tuples, and supplies the integrity invariants and trimming
// queries. The paper's SSMs are 250-400 lines each; the Git, ownCloud and
// Dropbox modules live in subpackages.
package ssm

import (
	"libseal/internal/sqldb"
)

// Tuple is one row destined for a relation of the audit log.
type Tuple struct {
	Table  string
	Values []any
}

// Invariant is one service integrity check, expressed as a SQL query whose
// result rows are violations (§5.2: queries express the negation of the
// invariant).
type Invariant struct {
	// Name identifies the invariant in check results.
	Name string
	// Kind is "soundness" or "completeness".
	Kind string
	// Description explains what a violation means.
	Description string
	// SQL returns one row per violation.
	SQL string
}

// State is the context handed to an SSM for each request/response pair.
type State struct {
	// Time is the logical timestamp of this pair, maintained inside the
	// enclave; all tuples of one pair share it.
	Time int64
	// DB offers read access to the audit log for stateful protocols
	// (e.g. ownCloud sessions, §5.1).
	DB *sqldb.DB
}

// Module is a service-specific module.
type Module interface {
	// Name identifies the service ("git", "owncloud", "dropbox").
	Name() string
	// Schema is the DDL creating the module's relations and views.
	Schema() string
	// HandlePair extracts log tuples from one request/response pair. The
	// raw bytes are the plaintext observed at SSL_read/SSL_write. A pair
	// that is irrelevant to auditing returns no tuples.
	HandlePair(st *State, req, rsp []byte) ([]Tuple, error)
	// Invariants returns the service's integrity checks.
	Invariants() []Invariant
	// TrimQueries returns the queries that prune log entries not needed by
	// future checks (§5.1, "Log trimming").
	TrimQueries() []string
}

// CheckInvariants runs every invariant against a database and returns the
// violations found, keyed by invariant name.
func CheckInvariants(db *sqldb.DB, m Module) (map[string]*sqldb.Result, error) {
	violations := make(map[string]*sqldb.Result)
	for _, inv := range m.Invariants() {
		res, err := db.Query(inv.SQL)
		if err != nil {
			return nil, err
		}
		if !res.Empty() {
			violations[inv.Name] = res
		}
	}
	return violations, nil
}
