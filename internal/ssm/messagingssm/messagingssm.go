// Package messagingssm is a LibSEAL service-specific module for an
// XMPP-style instant messaging service — the fourth application scenario of
// the paper's motivation (§2.2): "messaging services should deliver messages
// without modification and should not drop them" nor deliver them to the
// wrong recipients. The paper evaluates three services; this module
// demonstrates that writing one for a new service only requires the schema,
// the parser and a handful of SQL invariants (§5.1).
package messagingssm

import (
	"encoding/json"
	"fmt"
	"strings"

	"libseal/internal/httpparse"
	"libseal/internal/ssm"
)

// Module implements ssm.Module for the messaging service.
type Module struct{}

// New returns the messaging SSM.
func New() *Module { return &Module{} }

// Name implements ssm.Module.
func (*Module) Name() string { return "messaging" }

// Schema implements ssm.Module. Relation sent records messages the server
// accepted (with the per-recipient sequence it assigned); delivered records
// messages it handed out, including to whom; inboxreq records each inbox
// fetch and the sequence range it claims to cover.
func (*Module) Schema() string {
	return `
CREATE TABLE sent (time INTEGER, id TEXT, sender TEXT, recipient TEXT, seq INTEGER, body TEXT);
CREATE TABLE delivered (time INTEGER, id TEXT, sender TEXT, recipient TEXT, body TEXT, reader TEXT);
CREATE TABLE inboxreq (time INTEGER, reader TEXT, since INTEGER, upto INTEGER);
`
}

// Wire messages of the simulated service.

// SendMsg is POST /messaging/send.
type SendMsg struct {
	From string `json:"from"`
	To   string `json:"to"`
	Body string `json:"body"`
}

// SendAck acknowledges a send with the message id and the recipient-mailbox
// sequence number the server assigned.
type SendAck struct {
	ID  string `json:"id"`
	Seq int64  `json:"seq"`
}

// InboxMsg is POST /messaging/inbox: fetch messages after Since.
type InboxMsg struct {
	User  string `json:"user"`
	Since int64  `json:"since"`
}

// Delivered is one message in an inbox response.
type Delivered struct {
	ID   string `json:"id"`
	From string `json:"from"`
	To   string `json:"to"`
	Body string `json:"body"`
}

// InboxRsp returns the messages in (Since, Seq].
type InboxRsp struct {
	Messages []Delivered `json:"messages"`
	Seq      int64       `json:"seq"`
}

// HandlePair implements ssm.Module.
func (m *Module) HandlePair(st *ssm.State, reqRaw, rspRaw []byte) ([]ssm.Tuple, error) {
	req, err := httpparse.ParseRequestBytes(reqRaw)
	if err != nil {
		return nil, fmt.Errorf("messagingssm: request: %w", err)
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/messaging/") || req.Method != "POST" {
		return nil, nil
	}
	rsp, err := httpparse.ParseResponseBytes(rspRaw)
	if err != nil {
		return nil, fmt.Errorf("messagingssm: response: %w", err)
	}
	if rsp.Status != 200 {
		return nil, nil
	}

	switch strings.TrimPrefix(path, "/messaging/") {
	case "send":
		var msg SendMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("messagingssm: send body: %w", err)
		}
		var ack SendAck
		if err := json.Unmarshal(rsp.Body, &ack); err != nil {
			return nil, fmt.Errorf("messagingssm: send ack: %w", err)
		}
		return []ssm.Tuple{{
			Table:  "sent",
			Values: []any{st.Time, ack.ID, msg.From, msg.To, ack.Seq, msg.Body},
		}}, nil

	case "inbox":
		var msg InboxMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return nil, fmt.Errorf("messagingssm: inbox body: %w", err)
		}
		var out InboxRsp
		if err := json.Unmarshal(rsp.Body, &out); err != nil {
			return nil, fmt.Errorf("messagingssm: inbox response: %w", err)
		}
		tuples := []ssm.Tuple{{
			Table:  "inboxreq",
			Values: []any{st.Time, msg.User, msg.Since, out.Seq},
		}}
		for _, d := range out.Messages {
			tuples = append(tuples, ssm.Tuple{
				Table:  "delivered",
				Values: []any{st.Time, d.ID, d.From, d.To, d.Body, msg.User},
			})
		}
		return tuples, nil
	}
	return nil, nil
}

// DeliverySoundnessSQL: every delivered message must be byte-identical (id,
// sender, recipient, body) to a message the server accepted. Violations mean
// messages were modified or fabricated.
const DeliverySoundnessSQL = `SELECT d.time, d.id FROM delivered d
	WHERE NOT EXISTS (SELECT 1 FROM sent s WHERE s.id = d.id AND
		s.body = d.body AND s.sender = d.sender AND s.recipient = d.recipient)`

// RecipientSQL: messages must only be delivered to their recipient.
// Violations mean misdelivery.
const RecipientSQL = `SELECT time, id FROM delivered WHERE reader != recipient`

// DeliveryCompletenessSQL: an inbox response claiming to cover sequence
// range (since, upto] must contain every accepted message for that reader in
// the range. Violations mean dropped messages.
const DeliveryCompletenessSQL = `SELECT r.time, s.id FROM inboxreq r
	JOIN sent s ON s.recipient = r.reader
	WHERE s.seq > r.since AND s.seq <= r.upto
	AND s.id NOT IN (SELECT id FROM delivered WHERE time = r.time)`

// Invariants implements ssm.Module.
func (*Module) Invariants() []ssm.Invariant {
	return []ssm.Invariant{
		{
			Name:        "messaging-delivery-soundness",
			Kind:        "soundness",
			Description: "delivered messages are identical to accepted messages",
			SQL:         DeliverySoundnessSQL,
		},
		{
			Name:        "messaging-recipient",
			Kind:        "soundness",
			Description: "messages are delivered only to their recipient",
			SQL:         RecipientSQL,
		},
		{
			Name:        "messaging-delivery-completeness",
			Kind:        "completeness",
			Description: "inbox responses contain every accepted message in their claimed range",
			SQL:         DeliveryCompletenessSQL,
		},
	}
}

// TrimQueries implements ssm.Module: messages covered by a checked inbox
// fetch are settled; undelivered messages must be retained.
func (*Module) TrimQueries() []string {
	return []string{
		`DELETE FROM sent WHERE seq <= (SELECT MAX(upto) FROM inboxreq r
	WHERE r.reader = sent.recipient)`,
		`DELETE FROM delivered`,
		`DELETE FROM inboxreq`,
	}
}

var _ ssm.Module = (*Module)(nil)
