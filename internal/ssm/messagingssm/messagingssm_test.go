package messagingssm

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
)

type harness struct {
	t    *testing.T
	db   *sqldb.DB
	mod  *Module
	time int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	db := sqldb.New()
	mod := New()
	if _, err := db.Exec(mod.Schema()); err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, db: db, mod: mod}
}

func (h *harness) pair(path string, reqBody, rspBody any) {
	h.t.Helper()
	reqJSON, _ := json.Marshal(reqBody)
	rspJSON, _ := json.Marshal(rspBody)
	h.time++
	tuples, err := h.mod.HandlePair(&ssm.State{Time: h.time, DB: h.db},
		httpparse.NewRequest("POST", path, reqJSON).Bytes(),
		httpparse.NewResponse(200, rspJSON).Bytes())
	if err != nil {
		h.t.Fatal(err)
	}
	for _, tu := range tuples {
		ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
		if _, err := h.db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *harness) send(from, to, body, id string, seq int64) {
	h.pair("/messaging/send", SendMsg{From: from, To: to, Body: body}, SendAck{ID: id, Seq: seq})
}

func (h *harness) inbox(user string, since, upto int64, msgs ...Delivered) {
	h.pair("/messaging/inbox", InboxMsg{User: user, Since: since}, InboxRsp{Messages: msgs, Seq: upto})
}

func (h *harness) violations() map[string]*sqldb.Result {
	h.t.Helper()
	v, err := ssm.CheckInvariants(h.db, h.mod)
	if err != nil {
		h.t.Fatal(err)
	}
	return v
}

func TestCleanConversation(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "hi bob", "m1", 1)
	h.send("carol", "bob", "hello", "m2", 2)
	h.inbox("bob", 0, 2,
		Delivered{ID: "m1", From: "alice", To: "bob", Body: "hi bob"},
		Delivered{ID: "m2", From: "carol", To: "bob", Body: "hello"})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("clean conversation flagged: %v", v)
	}
}

func TestDetectsDroppedMessage(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "one", "m1", 1)
	h.send("alice", "bob", "two", "m2", 2)
	// The inbox claims to cover (0,2] but delivers only one message.
	h.inbox("bob", 0, 2, Delivered{ID: "m1", From: "alice", To: "bob", Body: "one"})
	if v := h.violations(); v["messaging-delivery-completeness"] == nil {
		t.Fatalf("dropped message not detected: %v", v)
	}
}

func TestDetectsModifiedMessage(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "meet at 5pm", "m1", 1)
	h.inbox("bob", 0, 1, Delivered{ID: "m1", From: "alice", To: "bob", Body: "meet at 6pm"})
	if v := h.violations(); v["messaging-delivery-soundness"] == nil {
		t.Fatalf("modified message not detected: %v", v)
	}
}

func TestDetectsMisdelivery(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "secret for bob", "m1", 1)
	// The message is handed to carol.
	h.inbox("carol", 0, 0, Delivered{ID: "m1", From: "alice", To: "bob", Body: "secret for bob"})
	if v := h.violations(); v["messaging-recipient"] == nil {
		t.Fatalf("misdelivery not detected: %v", v)
	}
}

func TestDetectsFabricatedMessage(t *testing.T) {
	h := newHarness(t)
	h.inbox("bob", 0, 0, Delivered{ID: "mX", From: "mallory", To: "bob", Body: "fabricated"})
	if v := h.violations(); v["messaging-delivery-soundness"] == nil {
		t.Fatalf("fabricated message not detected: %v", v)
	}
}

func TestPartialInboxFetchClean(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "one", "m1", 1)
	h.send("alice", "bob", "two", "m2", 2)
	h.send("alice", "bob", "three", "m3", 3)
	// Fetch only the tail.
	h.inbox("bob", 2, 3, Delivered{ID: "m3", From: "alice", To: "bob", Body: "three"})
	if v := h.violations(); len(v) != 0 {
		t.Fatalf("partial fetch flagged: %v", v)
	}
}

func TestTrimRetainsUndelivered(t *testing.T) {
	h := newHarness(t)
	h.send("alice", "bob", "read", "m1", 1)
	h.inbox("bob", 0, 1, Delivered{ID: "m1", From: "alice", To: "bob", Body: "read"})
	h.send("alice", "bob", "unread", "m2", 2)
	for _, q := range h.mod.TrimQueries() {
		if _, err := h.db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	// The delivered message is settled; the unread one is retained.
	got, err := h.db.Query("SELECT id FROM sent")
	if err != nil || len(got.Rows) != 1 || got.Rows[0][0].TextVal() != "m2" {
		t.Fatalf("sent after trim = %v, %v", got, err)
	}
	// Dropping the retained message later is still detected.
	h.inbox("bob", 1, 2)
	if v := h.violations(); v["messaging-delivery-completeness"] == nil {
		t.Fatalf("post-trim drop not detected: %v", v)
	}
}

func TestIgnoresOtherTraffic(t *testing.T) {
	h := newHarness(t)
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	tuples, err := h.mod.HandlePair(&ssm.State{Time: 1, DB: h.db}, req.Bytes(),
		httpparse.NewResponse(200, nil).Bytes())
	if err != nil || tuples != nil {
		t.Fatalf("foreign traffic produced tuples: %v %v", tuples, err)
	}
}

func TestModuleMetadata(t *testing.T) {
	m := New()
	if m.Name() != "messaging" || len(m.Invariants()) != 3 || len(m.TrimQueries()) != 3 {
		t.Fatal("metadata")
	}
}
