// Package pki implements the minimal certificate infrastructure the TLS
// termination layer needs: a certificate authority issuing ECDSA
// certificates, and verification against a root pool. Certificates can embed
// an SGX attestation quote so that clients can verify that the presented TLS
// identity belongs to a genuine LibSEAL enclave (§6.3, "Bypassing logging").
package pki

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"

	"libseal/internal/enclave"
)

// Errors returned during verification and decoding.
var (
	ErrBadSignature = errors.New("pki: certificate signature invalid")
	ErrUnknownCA    = errors.New("pki: issuer not in root pool")
	ErrDecode       = errors.New("pki: malformed certificate encoding")
)

// Certificate binds a subject name to an ECDSA public key, optionally with
// an embedded enclave quote over the key's hash.
type Certificate struct {
	Subject string
	Issuer  string
	PubKey  *ecdsa.PublicKey
	// Quote, when present, is an attestation that the subject key was
	// generated inside an enclave; its ReportData holds KeyHash.
	HasQuote bool
	Quote    enclave.Quote
	SigR     []byte
	SigS     []byte
}

// KeyHash returns the SHA-256 of the certificate's public key point.
func (c *Certificate) KeyHash() [32]byte {
	return hashPub(c.PubKey)
}

func hashPub(pub *ecdsa.PublicKey) [32]byte {
	h := sha256.New()
	h.Write(pub.X.Bytes())
	h.Write(pub.Y.Bytes())
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func (c *Certificate) tbs() []byte {
	var buf bytes.Buffer
	writeBytes(&buf, []byte(c.Subject))
	writeBytes(&buf, []byte(c.Issuer))
	writeBytes(&buf, c.PubKey.X.Bytes())
	writeBytes(&buf, c.PubKey.Y.Bytes())
	if c.HasQuote {
		buf.WriteByte(1)
		writeBytes(&buf, c.Quote.Measurement[:])
		writeBytes(&buf, c.Quote.Signer[:])
		writeBytes(&buf, c.Quote.ReportData[:])
		writeBytes(&buf, c.Quote.SigR)
		writeBytes(&buf, c.Quote.SigS)
	} else {
		buf.WriteByte(0)
	}
	d := sha256.Sum256(buf.Bytes())
	return d[:]
}

// CA is a certificate authority.
type CA struct {
	Name string
	key  *ecdsa.PrivateKey
}

// NewCA creates a CA with a fresh P-256 key.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: CA key generation: %w", err)
	}
	return &CA{Name: name, key: key}, nil
}

// PublicKey returns the CA's verification key.
func (ca *CA) PublicKey() *ecdsa.PublicKey { return &ca.key.PublicKey }

// Issue signs a certificate for the subject's public key.
func (ca *CA) Issue(subject string, pub *ecdsa.PublicKey, quote *enclave.Quote) (*Certificate, error) {
	cert := &Certificate{Subject: subject, Issuer: ca.Name, PubKey: pub}
	if quote != nil {
		cert.HasQuote = true
		cert.Quote = *quote
	}
	r, s, err := ecdsa.Sign(rand.Reader, ca.key, cert.tbs())
	if err != nil {
		return nil, fmt.Errorf("pki: issue %s: %w", subject, err)
	}
	cert.SigR, cert.SigS = r.Bytes(), s.Bytes()
	return cert, nil
}

// Pool is a set of trusted roots.
type Pool struct {
	roots map[string]*ecdsa.PublicKey
}

// NewPool builds a root pool from CAs.
func NewPool(cas ...*CA) *Pool {
	p := &Pool{roots: make(map[string]*ecdsa.PublicKey)}
	for _, ca := range cas {
		p.roots[ca.Name] = ca.PublicKey()
	}
	return p
}

// AddRoot trusts an additional root key.
func (p *Pool) AddRoot(name string, pub *ecdsa.PublicKey) {
	p.roots[name] = pub
}

// Verify checks the certificate chain against the pool.
func (p *Pool) Verify(cert *Certificate) error {
	root, ok := p.roots[cert.Issuer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, cert.Issuer)
	}
	r := new(big.Int).SetBytes(cert.SigR)
	s := new(big.Int).SetBytes(cert.SigS)
	if !ecdsa.Verify(root, cert.tbs(), r, s) {
		return ErrBadSignature
	}
	return nil
}

// VerifyEnclaveBinding additionally checks that the certificate embeds a
// valid quote from a trusted platform whose report data commits to the
// certificate key, and that the measurement matches the expected LibSEAL
// enclave. This is how clients detect a provider that deactivated logging by
// linking a traditional TLS library.
func (p *Pool) VerifyEnclaveBinding(cert *Certificate, svc *enclave.AttestationService, want enclave.Measurement) error {
	if err := p.Verify(cert); err != nil {
		return err
	}
	if !cert.HasQuote {
		return errors.New("pki: certificate carries no enclave quote")
	}
	if err := svc.VerifyIdentity(cert.Quote, want); err != nil {
		return err
	}
	keyHash := cert.KeyHash()
	if !bytes.Equal(cert.Quote.ReportData[:32], keyHash[:]) {
		return errors.New("pki: quote does not commit to the certificate key")
	}
	return nil
}

// Marshal encodes the certificate for transmission.
func (c *Certificate) Marshal() []byte {
	var buf bytes.Buffer
	writeBytes(&buf, []byte(c.Subject))
	writeBytes(&buf, []byte(c.Issuer))
	writeBytes(&buf, c.PubKey.X.Bytes())
	writeBytes(&buf, c.PubKey.Y.Bytes())
	if c.HasQuote {
		buf.WriteByte(1)
		writeBytes(&buf, c.Quote.Measurement[:])
		writeBytes(&buf, c.Quote.Signer[:])
		writeBytes(&buf, c.Quote.ReportData[:])
		writeBytes(&buf, c.Quote.SigR)
		writeBytes(&buf, c.Quote.SigS)
	} else {
		buf.WriteByte(0)
	}
	writeBytes(&buf, c.SigR)
	writeBytes(&buf, c.SigS)
	return buf.Bytes()
}

// Unmarshal decodes a certificate produced by Marshal.
func Unmarshal(data []byte) (*Certificate, error) {
	r := bytes.NewReader(data)
	subject, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	issuer, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	xb, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	yb, err := readBytes(r)
	if err != nil {
		return nil, err
	}
	pub := &ecdsa.PublicKey{
		Curve: elliptic.P256(),
		X:     new(big.Int).SetBytes(xb),
		Y:     new(big.Int).SetBytes(yb),
	}
	cert := &Certificate{Subject: string(subject), Issuer: string(issuer), PubKey: pub}
	flag, err := r.ReadByte()
	if err != nil {
		return nil, ErrDecode
	}
	if flag == 1 {
		cert.HasQuote = true
		meas, err := readBytes(r)
		if err != nil || len(meas) != 32 {
			return nil, ErrDecode
		}
		copy(cert.Quote.Measurement[:], meas)
		signer, err := readBytes(r)
		if err != nil || len(signer) != 32 {
			return nil, ErrDecode
		}
		copy(cert.Quote.Signer[:], signer)
		rd, err := readBytes(r)
		if err != nil || len(rd) != 64 {
			return nil, ErrDecode
		}
		copy(cert.Quote.ReportData[:], rd)
		if cert.Quote.SigR, err = readBytes(r); err != nil {
			return nil, err
		}
		if cert.Quote.SigS, err = readBytes(r); err != nil {
			return nil, err
		}
	}
	if cert.SigR, err = readBytes(r); err != nil {
		return nil, err
	}
	if cert.SigS, err = readBytes(r); err != nil {
		return nil, err
	}
	return cert, nil
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	buf.Write(lenBuf[:])
	buf.Write(b)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := r.Read(lenBuf[:]); err != nil {
		return nil, ErrDecode
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if int(n) > r.Len() {
		return nil, ErrDecode
	}
	out := make([]byte, n)
	if n > 0 {
		if _, err := r.Read(out); err != nil {
			return nil, ErrDecode
		}
	}
	return out, nil
}

// PEM block types for on-disk artefacts.
const (
	pemCertType = "LIBSEAL CERTIFICATE"
	pemKeyType  = "LIBSEAL PUBLIC KEY"
)

// EncodeCertPEM renders a certificate as PEM for distribution to clients.
func EncodeCertPEM(c *Certificate) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: pemCertType, Bytes: c.Marshal()})
}

// DecodeCertPEM parses a PEM-encoded certificate.
func DecodeCertPEM(data []byte) (*Certificate, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemCertType {
		return nil, fmt.Errorf("%w: expected %s PEM block", ErrDecode, pemCertType)
	}
	return Unmarshal(block.Bytes)
}

// EncodePublicKeyPEM renders an ECDSA public key (e.g. the enclave's audit
// signing key) as PEM.
func EncodePublicKeyPEM(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: pemKeyType, Bytes: der}), nil
}

// DecodePublicKeyPEM parses a PEM-encoded ECDSA public key.
func DecodePublicKeyPEM(data []byte) (*ecdsa.PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != pemKeyType {
		return nil, fmt.Errorf("%w: expected %s PEM block", ErrDecode, pemKeyType)
	}
	pub, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	ec, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key", ErrDecode)
	}
	return ec, nil
}
