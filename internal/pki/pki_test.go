package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"testing"

	"libseal/internal/enclave"
)

func genKey(t *testing.T) *ecdsa.PrivateKey {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestIssueAndVerify(t *testing.T) {
	ca, err := NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	key := genKey(t)
	cert, err := ca.Issue("service.example", &key.PublicKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ca)
	if err := pool.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyUnknownCA(t *testing.T) {
	ca, _ := NewCA("ca1")
	other, _ := NewCA("ca2")
	key := genKey(t)
	cert, _ := ca.Issue("svc", &key.PublicKey, nil)
	pool := NewPool(other)
	if err := pool.Verify(cert); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("err = %v, want ErrUnknownCA", err)
	}
}

func TestVerifyForgedIssuerName(t *testing.T) {
	// A cert claiming to be from a trusted CA but signed by another key.
	evil, _ := NewCA("trusted") // same name, different key
	good, _ := NewCA("trusted")
	key := genKey(t)
	cert, _ := evil.Issue("svc", &key.PublicKey, nil)
	pool := NewPool(good)
	if err := pool.Verify(cert); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyTamperedSubject(t *testing.T) {
	ca, _ := NewCA("ca")
	key := genKey(t)
	cert, _ := ca.Issue("svc", &key.PublicKey, nil)
	cert.Subject = "evil"
	pool := NewPool(ca)
	if err := pool.Verify(cert); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ca, _ := NewCA("ca")
	key := genKey(t)
	cert, _ := ca.Issue("svc.example", &key.PublicKey, nil)
	decoded, err := Unmarshal(cert.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Subject != "svc.example" || decoded.Issuer != "ca" {
		t.Fatalf("decoded = %+v", decoded)
	}
	pool := NewPool(ca)
	if err := pool.Verify(decoded); err != nil {
		t.Fatalf("Verify decoded: %v", err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, make([]byte, 10), []byte("garbage data here")} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", b)
		}
	}
}

func TestEnclaveBoundCertificate(t *testing.T) {
	platform := enclave.NewPlatform()
	encl, err := platform.Launch(enclave.Config{Code: []byte("libseal"), Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	svc := enclave.NewAttestationService(platform)

	// Generate the key "inside" and quote its hash.
	key := genKey(t)
	tmp := &Certificate{PubKey: &key.PublicKey}
	keyHash := tmp.KeyHash()
	var quote enclave.Quote
	if err := encl.Ecall(func(c *enclave.Ctx) error {
		var err error
		quote, err = c.Quote(keyHash[:])
		return err
	}); err != nil {
		t.Fatal(err)
	}

	ca, _ := NewCA("provider-ca")
	cert, err := ca.Issue("libseal.example", &key.PublicKey, &quote)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ca)
	if err := pool.VerifyEnclaveBinding(cert, svc, encl.Measurement()); err != nil {
		t.Fatalf("VerifyEnclaveBinding: %v", err)
	}

	// Wrong measurement (a non-LibSEAL enclave) is rejected.
	var wrong enclave.Measurement
	wrong[0] = 0xFF
	if err := pool.VerifyEnclaveBinding(cert, svc, wrong); err == nil {
		t.Fatal("binding verified against wrong measurement")
	}

	// A cert without a quote is rejected: the provider linked a
	// traditional TLS library instead of LibSEAL.
	plain, _ := ca.Issue("libseal.example", &key.PublicKey, nil)
	if err := pool.VerifyEnclaveBinding(plain, svc, encl.Measurement()); err == nil {
		t.Fatal("binding verified without quote")
	}

	// A quote over a different key is rejected.
	otherKey := genKey(t)
	swapped, _ := ca.Issue("libseal.example", &otherKey.PublicKey, &quote)
	if err := pool.VerifyEnclaveBinding(swapped, svc, encl.Measurement()); err == nil {
		t.Fatal("binding verified for mismatched key")
	}
}

func TestPEMRoundTrips(t *testing.T) {
	ca, _ := NewCA("pem-ca")
	key := genKey(t)
	cert, _ := ca.Issue("svc", &key.PublicKey, nil)

	decodedCert, err := DecodeCertPEM(EncodeCertPEM(cert))
	if err != nil || decodedCert.Subject != "svc" {
		t.Fatalf("cert PEM round trip: %+v, %v", decodedCert, err)
	}
	if err := NewPool(ca).Verify(decodedCert); err != nil {
		t.Fatal(err)
	}

	pemKey, err := EncodePublicKeyPEM(&key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	decodedKey, err := DecodePublicKeyPEM(pemKey)
	if err != nil {
		t.Fatal(err)
	}
	if decodedKey.X.Cmp(key.PublicKey.X) != 0 || decodedKey.Y.Cmp(key.PublicKey.Y) != 0 {
		t.Fatal("key PEM round trip mismatch")
	}

	if _, err := DecodeCertPEM([]byte("junk")); err == nil {
		t.Fatal("junk cert PEM accepted")
	}
	if _, err := DecodePublicKeyPEM([]byte("junk")); err == nil {
		t.Fatal("junk key PEM accepted")
	}
}
