// Package netsim provides an in-memory network with configurable per-link
// latency and bandwidth. LibSEAL's evaluation needs it to reproduce the
// Dropbox topology: clients talk to a local Squid/LibSEAL proxy which
// forwards traffic to a remote service over a ~76 ms WAN link (§6.4).
package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// LinkConfig describes one direction of a duplex link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the serialisation rate in bytes per second; zero means
	// unlimited.
	Bandwidth int64
}

// rtt helpers for tests and benchmarks.
func (c LinkConfig) String() string {
	return fmt.Sprintf("latency=%v bandwidth=%dB/s", c.Latency, c.Bandwidth)
}

type item struct {
	data []byte
	at   time.Time // earliest delivery time
}

// Fault describes what happens to one write on a faulted link. The zero
// value delivers the payload normally.
type Fault struct {
	// Drop silently discards the payload, as a lossy or partitioned link
	// would; the writer still observes success.
	Drop bool
	// Reset fails the write with ErrConnReset, modelling an RST from a
	// middlebox or a crashed peer.
	Reset bool
	// Delay adds one-way latency for this payload only (a latency spike).
	Delay time.Duration
}

// FaultFunc inspects one write (payload size n) and returns the fault to
// apply. Implementations must be safe for concurrent use.
type FaultFunc func(n int) Fault

// ErrConnReset is returned by Write when a fault resets the connection.
var ErrConnReset = errors.New("netsim: connection reset by peer")

// Conn is one endpoint of a simulated duplex link.
type Conn struct {
	cfg      LinkConfig
	peer     *Conn
	recv     chan item
	closed   chan struct{}
	closeOne sync.Once
	leftover item
	local    addr
	remote   addr

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
	fault         FaultFunc
}

type addr string

func (a addr) Network() string { return "sim" }
func (a addr) String() string  { return string(a) }

// Pipe creates a connected pair of simulated connections; cfg applies to
// both directions.
func Pipe(cfg LinkConfig) (*Conn, *Conn) {
	return NamedPipe(cfg, "client", "server")
}

// NamedPipe is Pipe with explicit endpoint addresses.
func NamedPipe(cfg LinkConfig, a, b string) (*Conn, *Conn) {
	c1 := &Conn{cfg: cfg, recv: make(chan item, 1024), closed: make(chan struct{}), local: addr(a), remote: addr(b)}
	c2 := &Conn{cfg: cfg, recv: make(chan item, 1024), closed: make(chan struct{}), local: addr(b), remote: addr(a)}
	c1.peer, c2.peer = c2, c1
	return c1, c2
}

// SetFault installs a fault function consulted on every Write from this
// endpoint. A nil function clears it.
func (c *Conn) SetFault(f FaultFunc) {
	c.mu.Lock()
	c.fault = f
	c.mu.Unlock()
}

// Write sends data to the peer, paying serialisation delay proportional to
// the configured bandwidth. Propagation latency is charged on the receive
// side so that concurrent transfers overlap as they would on a real link.
// Writes respect the write deadline and any installed fault function.
func (c *Conn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	select {
	case <-c.peer.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	c.mu.Lock()
	deadline := c.writeDeadline
	fault := c.fault
	c.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, timeoutError{}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	var extra time.Duration
	if fault != nil {
		f := fault(len(p))
		if f.Reset {
			return 0, ErrConnReset
		}
		if f.Drop {
			// The payload vanishes in the network; the writer cannot tell.
			return len(p), nil
		}
		extra = f.Delay
	}
	if c.cfg.Bandwidth > 0 && len(p) > 0 {
		d := time.Duration(float64(len(p)) / float64(c.cfg.Bandwidth) * float64(time.Second))
		if !deadline.IsZero() {
			if remaining := time.Until(deadline); remaining < d {
				time.Sleep(remaining)
				return 0, timeoutError{}
			}
		}
		time.Sleep(d)
	}
	buf := append([]byte(nil), p...)
	it := item{data: buf, at: time.Now().Add(c.cfg.Latency + extra)}
	select {
	case c.peer.recv <- it:
		return len(p), nil
	case <-c.peer.closed:
		return 0, io.ErrClosedPipe
	case <-c.closed:
		return 0, net.ErrClosed
	case <-timeout:
		return 0, timeoutError{}
	}
}

// Read receives data, honouring the link latency and any read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	it := c.leftover
	if it.data == nil {
		c.mu.Lock()
		deadline := c.readDeadline
		c.mu.Unlock()
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return 0, timeoutError{}
			}
			t := time.NewTimer(d)
			defer t.Stop()
			timeout = t.C
		}
		// Prefer queued data over close so buffered bytes drain after the
		// peer closes, matching TCP semantics.
		select {
		case it = <-c.recv:
		default:
			select {
			case it = <-c.recv:
			case <-c.closed:
				return 0, io.EOF
			case <-c.peer.closed:
				// The peer closed, but data may still be queued.
				select {
				case it = <-c.recv:
				default:
					return 0, io.EOF
				}
			case <-timeout:
				return 0, timeoutError{}
			}
		}
	}
	if wait := time.Until(it.at); wait > 0 {
		time.Sleep(wait)
	}
	n := copy(p, it.data)
	if n < len(it.data) {
		c.leftover = item{data: it.data[n:], at: it.at}
	} else {
		c.leftover = item{}
	}
	return n, nil
}

// Close closes this endpoint; the peer's reads return EOF once drained.
func (c *Conn) Close() error {
	c.closeOne.Do(func() { close(c.closed) })
	return nil
}

// LocalAddr returns the endpoint's simulated address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the peer's simulated address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline sets the write deadline: writes that would block past it
// (serialisation delay or a full receive queue) fail with a timeout error.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return nil
}

type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.Conn = (*Conn)(nil)

// Network is a collection of named listeners reachable by Dial, each with a
// per-address link configuration.
type Network struct {
	mu         sync.Mutex
	listeners  map[string]*Listener
	links      map[string]LinkConfig
	faults     map[string]FaultFunc
	dialFaults map[string]func() error
	conns      map[string][]*Conn // live endpoints per address, for fault updates
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		listeners:  make(map[string]*Listener),
		links:      make(map[string]LinkConfig),
		faults:     make(map[string]FaultFunc),
		dialFaults: make(map[string]func() error),
		conns:      make(map[string][]*Conn),
	}
}

// SetLink configures the link used for future connections to addr.
func (n *Network) SetLink(address string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[address] = cfg
}

// SetLinkFault installs a fault function on both directions of every live
// and future connection to the address. A nil function clears it.
func (n *Network) SetLinkFault(address string, f FaultFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == nil {
		delete(n.faults, address)
	} else {
		n.faults[address] = f
	}
	for _, c := range n.conns[address] {
		c.SetFault(f)
	}
}

// SetDialFault makes future Dial calls to the address fail with the error
// returned by f (nil error or nil f restores normal dialing). It models a
// partition between the dialer and the address.
func (n *Network) SetDialFault(address string, f func() error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == nil {
		delete(n.dialFaults, address)
	} else {
		n.dialFaults[address] = f
	}
}

// Listener accepts simulated connections for one address.
type Listener struct {
	network *Network
	address string
	backlog chan *Conn
	closed  chan struct{}
	once    sync.Once
}

// ErrAddressInUse is returned by Listen for a duplicate address.
var ErrAddressInUse = errors.New("netsim: address already in use")

// ErrConnectionRefused is returned by Dial when nothing listens on the
// address.
var ErrConnectionRefused = errors.New("netsim: connection refused")

// Listen registers a listener on the address.
func (n *Network) Listen(address string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[address]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddressInUse, address)
	}
	l := &Listener{
		network: n,
		address: address,
		backlog: make(chan *Conn, 128),
		closed:  make(chan struct{}),
	}
	n.listeners[address] = l
	return l, nil
}

// Dial connects to a listening address over that address's configured link.
func (n *Network) Dial(address string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[address]
	cfg := n.links[address]
	fault := n.faults[address]
	dialFault := n.dialFaults[address]
	n.mu.Unlock()
	if dialFault != nil {
		if err := dialFault(); err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", address, err)
		}
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, address)
	}
	clientEnd, serverEnd := NamedPipe(cfg, "dialer", address)
	if fault != nil {
		clientEnd.SetFault(fault)
		serverEnd.SetFault(fault)
	}
	n.mu.Lock()
	live := n.conns[address][:0]
	for _, c := range n.conns[address] {
		select {
		case <-c.closed:
		default:
			live = append(live, c)
		}
	}
	n.conns[address] = append(live, clientEnd, serverEnd)
	n.mu.Unlock()
	select {
	case l.backlog <- serverEnd:
		return clientEnd, nil
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, address)
	}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close stops the listener and deregisters its address.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.network.mu.Lock()
		delete(l.network.listeners, l.address)
		l.network.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's simulated address.
func (l *Listener) Addr() net.Addr { return addr(l.address) }

var _ net.Listener = (*Listener)(nil)
