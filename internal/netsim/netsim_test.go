package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	msg := []byte("hello over the simulated wire")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestPartialReads(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("abcdef"))
	buf := make([]byte, 2)
	var got []byte
	for len(got) < 6 {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestLatencyCharged(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := Pipe(LinkConfig{Latency: lat})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("read completed in %v, want >= %v", elapsed, lat)
	}
}

func TestBandwidthCharged(t *testing.T) {
	// 1 KB at 10 KB/s should take ~100 ms to serialise.
	a, b := Pipe(LinkConfig{Bandwidth: 10 * 1024})
	defer a.Close()
	defer b.Close()
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		a.Write(make([]byte, 1024))
		done <- time.Since(start)
	}()
	buf := make([]byte, 1024)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if d := <-done; d < 80*time.Millisecond {
		t.Fatalf("1KB at 10KB/s serialised in %v, want ~100ms", d)
	}
}

func TestEOFAfterCloseDrainsData(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("Read = %q, %v; want buffered data", buf[:n], err)
	}
	if _, err := b.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("second Read err = %v, want EOF", err)
	}
}

func TestWriteAfterPeerClose(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	b.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("Write to closed peer succeeded")
	}
	a.Close()
	if _, err := a.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Write on closed conn = %v, want net.ErrClosed", err)
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Read = %v, want timeout", err)
	}
	// Clearing the deadline lets reads proceed.
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("y"))
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkDialListen(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		io.Copy(conn, conn) // echo
	}()
	c, err := n.Dial("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	c.Close()
	wg.Wait()
}

func TestDialUnknownAddress(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere"); !errors.Is(err, ErrConnectionRefused) {
		t.Fatalf("err = %v, want ErrConnectionRefused", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	defer l.Close()
	if _, err := n.Listen("a"); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("err = %v, want ErrAddressInUse", err)
	}
}

func TestListenerCloseReleasesAddress(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	l.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after close = %v, want net.ErrClosed", err)
	}
}

func TestPerAddressLink(t *testing.T) {
	n := NewNetwork()
	n.SetLink("wan", LinkConfig{Latency: 25 * time.Millisecond})
	l, _ := n.Listen("wan")
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		conn.Read(buf)
		conn.Write(buf)
	}()
	c, err := n.Dial("wan")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	// Round trip over a 25 ms one-way link must take at least 50 ms.
	if rtt := time.Since(start); rtt < 50*time.Millisecond {
		t.Fatalf("rtt = %v, want >= 50ms", rtt)
	}
}

func TestConcurrentTransfersInterleave(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	const n = 64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	got := make([]byte, 0, n)
	buf := make([]byte, 16)
	for len(got) < n {
		k, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:k]...)
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
	wg.Wait()
}

func TestAddrs(t *testing.T) {
	a, b := NamedPipe(LinkConfig{}, "x", "y")
	defer a.Close()
	defer b.Close()
	if a.LocalAddr().String() != "x" || a.RemoteAddr().String() != "y" {
		t.Fatalf("a addrs = %v/%v", a.LocalAddr(), a.RemoteAddr())
	}
	if b.LocalAddr().String() != "y" || b.RemoteAddr().String() != "x" {
		t.Fatalf("b addrs = %v/%v", b.LocalAddr(), b.RemoteAddr())
	}
	if a.LocalAddr().Network() != "sim" {
		t.Fatal("network name")
	}
}
