package netsim

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

func TestWriteDeadlineOnFullQueue(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	// Fill b's receive queue so further writes block.
	for i := 0; i < cap(b.recv); i++ {
		if _, err := a.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	a.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := a.Write([]byte("overflow"))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("write blocked %v past its deadline", elapsed)
	}
	// An already-expired deadline fails immediately.
	a.SetWriteDeadline(time.Now().Add(-time.Second))
	if _, err := a.Write([]byte("late")); err == nil {
		t.Fatal("write after expired deadline succeeded")
	}
	// Clearing the deadline (zero time) restores normal blocking writes
	// once the queue has room again.
	a.SetWriteDeadline(time.Time{})
	buf := make([]byte, 16)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("ok")); err != nil {
		t.Fatalf("write after clearing deadline: %v", err)
	}
}

func TestWriteDeadlineBoundsBandwidthDelay(t *testing.T) {
	// 1 KiB at 1 KiB/s takes ~1 s; a 20 ms deadline must cut it short.
	a, b := Pipe(LinkConfig{Bandwidth: 1024})
	defer a.Close()
	defer b.Close()
	a.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := a.Write(make([]byte, 1024))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("bandwidth sleep ignored the deadline (%v)", elapsed)
	}
}

func TestFaultDropAndReset(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	var n atomic.Int64
	a.SetFault(func(int) Fault {
		switch n.Add(1) {
		case 1:
			return Fault{Drop: true}
		case 2:
			return Fault{Reset: true}
		}
		return Fault{}
	})
	// Dropped write reports success but nothing arrives.
	if _, err := a.Write([]byte("lost")); err != nil {
		t.Fatalf("dropped write: %v", err)
	}
	// Reset write fails.
	if _, err := a.Write([]byte("reset")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("err = %v, want ErrConnReset", err)
	}
	// Third write passes through; the reader sees only it.
	if _, err := a.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nr, err := b.Read(buf)
	if err != nil || string(buf[:nr]) != "ok" {
		t.Fatalf("read = %q, %v", buf[:nr], err)
	}
}

func TestFaultDelayAddsLatency(t *testing.T) {
	a, b := Pipe(LinkConfig{})
	defer a.Close()
	defer b.Close()
	a.SetFault(func(int) Fault { return Fault{Delay: 50 * time.Millisecond} })
	start := time.Now()
	if _, err := a.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := b.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("delay fault not applied: delivery took %v", elapsed)
	}
}

func TestNetworkLinkFaultAppliesToLiveConns(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("svc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := n.Dial("svc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	// Partition the live connection.
	n.SetLinkFault("svc:1", func(int) Fault { return Fault{Reset: true} })
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("client write: %v, want ErrConnReset", err)
	}
	if _, err := srv.Write([]byte("x")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("server write: %v, want ErrConnReset", err)
	}
	// Heal it; traffic flows again, and new conns are clean too.
	n.SetLinkFault("svc:1", nil)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestNetworkDialFault(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("svc:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("partitioned")
	n.SetDialFault("svc:1", func() error { return boom })
	if _, err := n.Dial("svc:1"); !errors.Is(err, boom) {
		t.Fatalf("dial = %v, want partition error", err)
	}
	n.SetDialFault("svc:1", nil)
	go func() { l.Accept() }()
	if _, err := n.Dial("svc:1"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}
