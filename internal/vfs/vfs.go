// Package vfs abstracts the small slice of the filesystem that LibSEAL's
// persistence paths use (audit-log files and platform state). The
// indirection exists so the fault-injection layer can interpose torn
// writes, corruption and ENOSPC between the enclave's ocalls and the disk,
// which is how the chaos tests exercise crash recovery deterministically.
package vfs

import (
	"io"
	"os"
)

// File is a writable file handle. Truncate lets the audit log roll a
// partially-written append back to the last committed prefix.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem surface used by LibSEAL persistence.
type FS interface {
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// Append opens the named file for appending.
	Append(name string) (File, error)
	// ReadFile returns the file's contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
}

// OS is the passthrough implementation backed by the real filesystem.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Default returns fs, or the real filesystem when fs is nil.
func Default(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}
