package audit

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// The corruption matrix: for EVERY byte offset of a small batched log,
// flip the byte and truncate the file there, and check that
//
//  1. the sequential and the parallel verifier agree exactly — same error
//     string, or deeply equal results;
//  2. every rejection is classified (wraps ErrTampered or ErrBadCounter),
//     never an unwrapped I/O or parse error;
//  3. strict mode rejects every mutation — a verifier holding the
//     enclave's key and the counter quorum's stable value must notice any
//     single-byte change and any truncation;
//  4. a tolerant (crash-recovery) verdict never commits past the
//     corruption: CommittedBytes stays at or before the mutated offset.
//
// This is the exhaustive version of the hand-picked tamper cases in the
// unit tests: no byte of the wire format is outside some check's blast
// radius.

// mutate applies one matrix cell to a copy of img.
func mutate(img []byte, off int, flip bool) []byte {
	if flip {
		out := append([]byte(nil), img...)
		out[off] ^= 0xff
		return out
	}
	return append([]byte(nil), img[:off]...)
}

// checkAgree verifies one mutated image with both verifiers and applies
// invariants (1) and (2). It returns the shared verdict.
func checkAgree(t *testing.T, img []byte, opts VerifyOptions) (*VerifyResult, error) {
	t.Helper()
	seqRes, seqErr := VerifyReaderResult(bytes.NewReader(img), opts)
	strRes, strErr := VerifyReaderStream(bytes.NewReader(img), StreamOptions{VerifyOptions: opts, Workers: 3})
	if (seqErr == nil) != (strErr == nil) {
		t.Fatalf("verdict mismatch: sequential err=%v, stream err=%v", seqErr, strErr)
	}
	if seqErr != nil {
		if seqErr.Error() != strErr.Error() {
			t.Fatalf("error mismatch:\n  sequential: %v\n  stream:     %v", seqErr, strErr)
		}
		if !errors.Is(seqErr, ErrTampered) && !errors.Is(seqErr, ErrBadCounter) {
			t.Fatalf("unclassified verification error: %v", seqErr)
		}
		return nil, seqErr
	}
	if !reflect.DeepEqual(seqRes, &strRes.VerifyResult) {
		t.Fatalf("result mismatch:\n  sequential: %+v\n  stream:     %+v", seqRes, strRes.VerifyResult)
	}
	return seqRes, nil
}

func TestCorruptionMatrixStrict(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 12, 3) // 4 signed batches, ends at a signature
	opts := VerifyOptions{
		Pub:       &key.PublicKey,
		Protector: fakeProtector(4), // the quorum's stable value for 4 batches
	}
	if _, err := checkAgree(t, img, opts); err != nil {
		t.Fatalf("uncorrupted log rejected: %v", err)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for off := 0; off < len(img); off += stride {
		for _, flip := range []bool{true, false} {
			name := fmt.Sprintf("truncate@%d", off)
			if flip {
				name = fmt.Sprintf("flip@%d", off)
			}
			if _, err := checkAgree(t, mutate(img, off, flip), opts); err == nil {
				t.Errorf("%s: strict verification accepted a corrupted log", name)
			}
		}
	}
}

func TestCorruptionMatrixTolerant(t *testing.T) {
	key := testKey(t)
	signed := synthLog(t, key, 12, 3)
	// A torn unsigned tail, the shape a mid-batch crash leaves: tolerant
	// verification of the unmutated image commits exactly the signed prefix.
	img := appendUnsigned(t, signed, 12, 2)
	opts := VerifyOptions{Pub: &key.PublicKey, RecoverTruncated: true}
	res, err := checkAgree(t, img, opts)
	if err != nil {
		t.Fatalf("torn tail rejected in tolerant mode: %v", err)
	}
	if res.CommittedBytes != int64(len(signed)) {
		t.Fatalf("committed %d bytes, want the signed prefix %d", res.CommittedBytes, len(signed))
	}
	wantCounter := res.Counter

	stride := 1
	if testing.Short() {
		stride = 7
	}
	for off := 0; off < len(img); off += stride {
		for _, flip := range []bool{true, false} {
			name := fmt.Sprintf("truncate@%d", off)
			if flip {
				name = fmt.Sprintf("flip@%d", off)
			}
			res, err := checkAgree(t, mutate(img, off, flip), opts)
			if err != nil {
				continue // classified rejection; agreement already checked
			}
			// A tolerant success must never commit at or past the mutation,
			// and can never claim a counter beyond the intact log's.
			if res.CommittedBytes > int64(off) {
				t.Errorf("%s: committed %d bytes past the corruption", name, res.CommittedBytes)
			}
			if res.Counter > wantCounter {
				t.Errorf("%s: counter %d exceeds the intact log's %d", name, res.Counter, wantCounter)
			}
		}
	}
}
