package audit

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeLogWithCheckpoint builds a synthetic log and a sidecar taken at its
// final commit point (checkpoint every segment ⇒ the last write covers the
// whole log).
func writeLogWithCheckpoint(t *testing.T, n, batchMax int) (logPath, ckptPath string, key *ecdsa.PrivateKey, ck *Checkpoint) {
	t.Helper()
	key = testKey(t)
	dir := t.TempDir()
	logPath = filepath.Join(dir, "log.lseal")
	ckptPath = filepath.Join(dir, "log.ckpt")
	if _, err := WriteSyntheticLogFile(logPath, key, n, batchMax); err != nil {
		t.Fatal(err)
	}
	copts := StreamOptions{
		VerifyOptions: VerifyOptions{Pub: &key.PublicKey},
		Workers:       2,
		Checkpoint:    &CheckpointConfig{Path: ckptPath, EverySegments: 1},
	}
	if _, err := VerifyFileStream(logPath, copts); err != nil {
		t.Fatal(err)
	}
	var err error
	ck, err = LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	return logPath, ckptPath, key, ck
}

// TestCheckpointForgedCounterRejected locks the rollback defence: a sidecar
// whose counter claims the current group value over an older log copy must
// be refused (the log's own signed record attests a smaller counter), so
// the caller's cold-scan fallback reaches the true ErrBadCounter verdict
// instead of resume reporting OK.
func TestCheckpointForgedCounterRejected(t *testing.T) {
	logPath, _, key, ck := writeLogWithCheckpoint(t, 60, 4)

	// The rollback group has moved past this log copy: a cold scan fails
	// freshness.
	stale := ck.Counter + 7
	vopts := VerifyOptions{Pub: &key.PublicKey, Protector: fakeProtector(stale), Name: "t"}
	if _, err := VerifyFileStream(logPath, StreamOptions{VerifyOptions: vopts, Workers: 2}); !errors.Is(err, ErrBadCounter) {
		t.Fatalf("cold err = %v, want ErrBadCounter", err)
	}

	// Attacker forges the sidecar counter to the current group value so
	// the resumed scan's final freshness check would pass.
	forged := *ck
	forged.Counter = stale
	ropts := StreamOptions{VerifyOptions: vopts, Workers: 2, Resume: &forged}
	if _, err := VerifyFileStream(logPath, ropts); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("resume err = %v, want ErrCheckpointStale", err)
	}
}

// TestCheckpointWrongChainRejected: a sidecar whose chain head disagrees
// with the signed record must fail ErrCheckpointStale (cold-scan fallback),
// not poison the resumed scan into a bogus ErrTampered.
func TestCheckpointWrongChainRejected(t *testing.T) {
	logPath, _, key, ck := writeLogWithCheckpoint(t, 40, 4)
	forged := *ck
	b := []byte(forged.Chain)
	if b[0] == '0' {
		b[0] = '1'
	} else {
		b[0] = '0'
	}
	forged.Chain = string(b)
	ropts := StreamOptions{VerifyOptions: VerifyOptions{Pub: &key.PublicKey}, Workers: 2, Resume: &forged}
	if _, err := VerifyFileStream(logPath, ropts); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("resume err = %v, want ErrCheckpointStale", err)
	}
}

// TestCheckpointBindingSigForged: the binding record's ECDSA signature is
// verified at resume, so matching SigHash against a tampered record is not
// enough to adopt its state.
func TestCheckpointBindingSigForged(t *testing.T) {
	logPath, _, key, ck := writeLogWithCheckpoint(t, 40, 4)
	img, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the last byte of the binding record's payload — inside the
	// ECDSA S value (payload = 32B chain + 8B counter + R + S) — and
	// recompute the sidecar's SigHash over the tampered bytes so the
	// structural binding still matches.
	img[ck.Offset-1] ^= 0x01
	if err := os.WriteFile(logPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	forged := *ck
	forged.SigHash = hexDigest(img[ck.SigOffset+5 : ck.Offset])
	ropts := StreamOptions{VerifyOptions: VerifyOptions{Pub: &key.PublicKey}, Workers: 2, Resume: &forged}
	if _, err := VerifyFileStream(logPath, ropts); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("resume err = %v, want ErrCheckpointStale", err)
	}
}

// TestCheckpointSidecarRotRejected: corruption of a field the signature
// record cannot vouch for (Seq) trips the sidecar's self-digest at load
// time, so the failure is ErrCheckpointStale — cold-scan fallback — rather
// than a mid-scan "sequence gap" tampering verdict on an intact log.
func TestCheckpointSidecarRotRejected(t *testing.T) {
	_, ckptPath, _, _ := writeLogWithCheckpoint(t, 40, 4)
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["seq"] = raw["seq"].(float64) + 1
	rotted, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptPath, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(ckptPath); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("load err = %v, want ErrCheckpointStale", err)
	}
}
