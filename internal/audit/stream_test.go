package audit

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testKey returns a fresh ECDSA key for synthetic logs.
func testKey(t testing.TB) *ecdsa.PrivateKey {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// synthLog builds an in-memory synthetic log.
func synthLog(t testing.TB, key *ecdsa.PrivateKey, n, batchMax int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteSyntheticLog(&buf, key, n, batchMax); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// appendUnsigned appends n unsigned entries (starting at seq) to a log
// image — the shape a crash between entry writes and the batch signature
// leaves behind.
func appendUnsigned(t testing.TB, img []byte, seq uint64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(img)
	for i := 0; i < n; i++ {
		p := SyntheticEntry(seq + uint64(i)).Marshal()
		if err := writeRecord(&buf, recEntry, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runBoth runs the sequential and streaming verifiers on the same image
// and asserts they agree exactly — same error string or same result.
func runBoth(t *testing.T, img []byte, opts VerifyOptions, workers int) (*VerifyResult, *StreamResult) {
	t.Helper()
	seqRes, seqErr := VerifyReaderResult(bytes.NewReader(img), opts)
	strRes, strErr := VerifyReaderStream(bytes.NewReader(img), StreamOptions{VerifyOptions: opts, Workers: workers})
	if (seqErr == nil) != (strErr == nil) {
		t.Fatalf("verdict mismatch: sequential err=%v, stream err=%v", seqErr, strErr)
	}
	if seqErr != nil {
		if seqErr.Error() != strErr.Error() {
			t.Fatalf("error mismatch:\n  sequential: %v\n  stream:     %v", seqErr, strErr)
		}
		return nil, nil
	}
	if !reflect.DeepEqual(seqRes, &strRes.VerifyResult) {
		t.Fatalf("result mismatch:\n  sequential: %+v\n  stream:     %+v", seqRes, strRes.VerifyResult)
	}
	return seqRes, strRes
}

func TestStreamMatchesSequentialShapes(t *testing.T) {
	key := testKey(t)
	opts := VerifyOptions{Pub: &key.PublicKey}
	shapes := []struct {
		name string
		img  []byte
	}{
		{"empty", synthLog(t, key, 0, 1)},
		{"one-entry", synthLog(t, key, 1, 1)},
		{"per-entry", synthLog(t, key, 57, 1)},
		{"batched", synthLog(t, key, 100, 7)},
		{"big-batches", synthLog(t, key, 300, 64)},
		{"trailing-unsigned", appendUnsigned(t, synthLog(t, key, 20, 5), 20, 3)},
	}
	// Bare signature records (empty batches) are the shape Reanchor leaves.
	{
		var buf bytes.Buffer
		if _, err := WriteSyntheticBatches(&buf, key, []SyntheticBatch{
			{Entries: []*Entry{SyntheticEntry(0), SyntheticEntry(1)}, Counter: 1},
			{Counter: 2},
			{Entries: []*Entry{SyntheticEntry(2)}, Counter: 3},
			{Counter: 4},
		}); err != nil {
			t.Fatal(err)
		}
		shapes = append(shapes, struct {
			name string
			img  []byte
		}{"empty-batches", buf.Bytes()})
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 3, 8} {
			for _, tolerant := range []bool{false, true} {
				o := opts
				o.RecoverTruncated = tolerant
				t.Run(fmt.Sprintf("%s/w%d/tolerant=%v", sh.name, workers, tolerant), func(t *testing.T) {
					runBoth(t, sh.img, o, workers)
				})
			}
		}
	}
}

func TestStreamProtectorAgreement(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 30, 4) // 8 batches, final counter 8
	for _, stable := range []uint64{0, 8, 9, 20} {
		for _, lag := range []uint64{0, 1, 15} {
			opts := VerifyOptions{
				Pub: &key.PublicKey, Protector: fakeProtector(stable),
				Name: "t", MaxCounterLag: lag,
			}
			t.Run(fmt.Sprintf("stable=%d/lag=%d", stable, lag), func(t *testing.T) {
				runBoth(t, img, opts, 4)
			})
		}
	}
}

// fakeProtector reports a fixed stable counter.
type fakeProtector uint64

func (f fakeProtector) Increment(string) (uint64, error) { return uint64(f), nil }
func (f fakeProtector) Read(string) (uint64, error)      { return uint64(f), nil }

func TestStreamCallbackBoundsMemory(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 120, 8)
	var got []uint64
	var lastOff int64
	res, err := VerifyReaderStream(bytes.NewReader(img), StreamOptions{
		VerifyOptions: VerifyOptions{Pub: &key.PublicKey},
		Workers:       4,
		OnSegment: func(s SegmentInfo) error {
			if s.CommittedBytes <= lastOff {
				t.Errorf("segments out of order: %d after %d", s.CommittedBytes, lastOff)
			}
			lastOff = s.CommittedBytes
			for _, e := range s.Entries {
				got = append(got, e.Seq)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != nil {
		t.Fatalf("callback mode must not accumulate entries; got %d", len(res.Entries))
	}
	if res.TotalEntries != 120 || len(got) != 120 {
		t.Fatalf("TotalEntries=%d callback-saw=%d, want 120", res.TotalEntries, len(got))
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("entry %d out of order: seq %d", i, seq)
		}
	}
	if res.Tables["updates"] != 120 {
		t.Fatalf("Tables = %v, want updates:120", res.Tables)
	}
}

func TestStreamCallbackAbort(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 200, 4)
	boom := errors.New("boom")
	n := 0
	_, err := VerifyReaderStream(bytes.NewReader(img), StreamOptions{
		VerifyOptions: VerifyOptions{Pub: &key.PublicKey},
		Workers:       4,
		OnSegment: func(SegmentInfo) error {
			n++
			if n == 3 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback abort", err)
	}
}

func TestCheckpointResume(t *testing.T) {
	key := testKey(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.lseal")
	ckptPath := filepath.Join(dir, "log.ckpt")
	if _, err := WriteSyntheticLogFile(logPath, key, 500, 8); err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{VerifyOptions: VerifyOptions{Pub: &key.PublicKey}, Workers: 4}

	cold, err := VerifyFileStream(logPath, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a verifier killed mid-run: checkpoint every 10 segments,
	// abort after 25.
	killed := errors.New("killed")
	seen := 0
	kopts := opts
	kopts.Checkpoint = &CheckpointConfig{Path: ckptPath, EverySegments: 10}
	kopts.OnSegment = func(SegmentInfo) error {
		seen++
		if seen >= 25 {
			return killed
		}
		return nil
	}
	if _, err := VerifyFileStream(logPath, kopts); !errors.Is(err, killed) {
		t.Fatalf("err = %v, want kill", err)
	}

	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Batches == 0 || ck.Offset <= int64(len(fileMagic)) {
		t.Fatalf("checkpoint did not advance: %+v", ck)
	}

	ropts := opts
	ropts.Resume = ck
	warm, err := VerifyFileStream(logPath, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Resumed {
		t.Fatal("Resumed = false on resumed run")
	}
	if warm.TotalEntries != cold.TotalEntries || warm.TotalBatches != cold.TotalBatches ||
		warm.TotalMaxBatch != cold.TotalMaxBatch || warm.Counter != cold.Counter ||
		warm.CommittedBytes != cold.CommittedBytes || !reflect.DeepEqual(warm.Tables, cold.Tables) {
		t.Fatalf("resumed totals differ from cold:\n  cold: %+v\n  warm: %+v", cold, warm)
	}
	if warm.Batches >= cold.Batches {
		t.Fatalf("resumed run re-verified everything: %d batches vs cold %d", warm.Batches, cold.Batches)
	}
}

func TestCheckpointStale(t *testing.T) {
	key := testKey(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.lseal")
	ckptPath := filepath.Join(dir, "log.ckpt")
	if _, err := WriteSyntheticLogFile(logPath, key, 100, 4); err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{VerifyOptions: VerifyOptions{Pub: &key.PublicKey}, Workers: 2}
	copts := opts
	copts.Checkpoint = &CheckpointConfig{Path: ckptPath, EverySegments: 3}
	if _, err := VerifyFileStream(logPath, copts); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the log (as Trim would): the checkpoint must be refused.
	if _, err := WriteSyntheticLogFile(logPath, key, 60, 4); err != nil {
		t.Fatal(err)
	}
	ropts := opts
	ropts.Resume = ck
	if _, err := VerifyFileStream(logPath, ropts); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("err = %v, want ErrCheckpointStale", err)
	}
}

// TestStreamResumeMidFailure ensures a resumed scan reaches the same
// verdict as a cold scan when the corruption sits past the checkpoint.
func TestStreamResumeMidFailure(t *testing.T) {
	key := testKey(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.lseal")
	ckptPath := filepath.Join(dir, "log.ckpt")
	if _, err := WriteSyntheticLogFile(logPath, key, 200, 5); err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{VerifyOptions: VerifyOptions{Pub: &key.PublicKey}, Workers: 4}
	copts := opts
	copts.Checkpoint = &CheckpointConfig{Path: ckptPath, EverySegments: 5}
	stop := errors.New("stop")
	segs := 0
	copts.OnSegment = func(SegmentInfo) error {
		if segs++; segs >= 12 {
			return stop
		}
		return nil
	}
	if _, err := VerifyFileStream(logPath, copts); !errors.Is(err, stop) {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte well past the checkpoint.
	img, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Offset+100 >= int64(len(img)) {
		t.Fatalf("log too small for test: ckpt %d size %d", ck.Offset, len(img))
	}
	img[ck.Offset+100] ^= 0xff
	if err := os.WriteFile(logPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, coldErr := VerifyFileStream(logPath, opts)
	ropts := opts
	ropts.Resume = ck
	_, warmErr := VerifyFileStream(logPath, ropts)
	if coldErr == nil || warmErr == nil {
		t.Fatalf("corruption not detected: cold=%v warm=%v", coldErr, warmErr)
	}
	if !errors.Is(coldErr, ErrTampered) || !errors.Is(warmErr, ErrTampered) {
		t.Fatalf("want ErrTampered from both: cold=%v warm=%v", coldErr, warmErr)
	}
}

// TestSyntheticMatchesLiveWriter is a sanity check that the synthetic
// writer's output satisfies the real sequential verifier.
func TestSyntheticVerifies(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 40, 6)
	res, err := VerifyReaderResult(bytes.NewReader(img), VerifyOptions{Pub: &key.PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 40 || res.MaxBatch != 6 {
		t.Fatalf("entries=%d maxBatch=%d", len(res.Entries), res.MaxBatch)
	}
	// Counter freshness math: counters count up from 1 per batch.
	wantBatches := (40 + 5) / 6
	if res.Batches != wantBatches || res.Counter != uint64(wantBatches) {
		t.Fatalf("batches=%d counter=%d want %d", res.Batches, res.Counter, wantBatches)
	}
}

// TestStreamBadMagic locks the preemptive bad-magic verdict.
func TestStreamBadMagic(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 5, 1)
	img[0] ^= 0xff
	for _, tolerant := range []bool{false, true} {
		o := VerifyOptions{Pub: &key.PublicKey, RecoverTruncated: tolerant}
		runBoth(t, img, o, 2)
	}
}

// TestStreamOversizedRecord locks the shared record-size cap.
func TestStreamOversizedRecord(t *testing.T) {
	key := testKey(t)
	img := synthLog(t, key, 5, 1)
	var buf bytes.Buffer
	buf.Write(img)
	var hdr [5]byte
	hdr[0] = recEntry
	binary.BigEndian.PutUint32(hdr[1:], maxRecordBytes+1)
	buf.Write(hdr[:])
	for _, tolerant := range []bool{false, true} {
		o := VerifyOptions{Pub: &key.PublicKey, RecoverTruncated: tolerant}
		runBoth(t, buf.Bytes(), o, 2)
	}
}
