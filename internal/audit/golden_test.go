package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/pki"
)

// The golden-vector corpus locks the persisted wire format across PRs:
// committed log files written by the live enclave writer — per-entry,
// batched, degraded-episode and trimmed shapes — with the expected
// verification outcome committed alongside. The enclave platform state is
// committed too (testdata/golden/platform.state), so regeneration derives
// the same signing key and the committed public key keeps verifying
// regenerated files.
//
// Regenerate with:
//
//	go test ./internal/audit -run TestGolden -update
//
// Only signature R/S scalars change across regenerations (ECDSA nonces);
// TestGoldenPerEntryByteIdentity compares everything but those scalars.

var updateGolden = flag.Bool("update", false, "regenerate the golden-vector corpus")

const (
	goldenDir  = "testdata/golden"
	goldenCode = "libseal-golden-v1"
)

// goldenExpect is the committed expected outcome of verifying one vector.
type goldenExpect struct {
	Entries        int            `json:"entries"`
	Counter        uint64         `json:"counter"`
	CommittedBytes int64          `json:"committed_bytes"`
	Batches        int            `json:"batches"`
	MaxBatch       int            `json:"max_batch"`
	Tables         map[string]int `json:"tables"`
	// EntryHash is the hex SHA-256 over the concatenated canonical
	// encodings of the verified entries, in file order — a compact pin on
	// the full decoded contents.
	EntryHash string `json:"entry_sha256"`
}

// scriptedProtector is a deterministic rollback protector for golden
// generation: counters count up from zero, and failures are scripted by
// flipping fail.
type scriptedProtector struct {
	n    uint64
	fail bool
}

func (p *scriptedProtector) Increment(string) (uint64, error) {
	if p.fail {
		return 0, errors.New("quorum unreachable (scripted)")
	}
	p.n++
	return p.n, nil
}

func (p *scriptedProtector) Read(string) (uint64, error) {
	if p.fail {
		return 0, errors.New("quorum unreachable (scripted)")
	}
	return p.n, nil
}

// goldenEnv launches an enclave from the committed platform state (created
// on -update) so the signing key is identical across regenerations.
type goldenEnv struct {
	encl      *enclave.Enclave
	bridge    *asyncall.Bridge
	protector *scriptedProtector
}

func newGoldenEnv(t *testing.T) *goldenEnv {
	t.Helper()
	statePath := filepath.Join(goldenDir, "platform.state")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	} else if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("golden corpus missing (%v); run with -update to generate", err)
	}
	p, err := enclave.LoadOrCreatePlatform(statePath)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := p.Launch(enclave.Config{Code: []byte(goldenCode), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	return &goldenEnv{encl: encl, bridge: bridge, protector: &scriptedProtector{}}
}

func (e *goldenEnv) call(t *testing.T, fn func(env *asyncall.Env) error) {
	t.Helper()
	if err := e.bridge.Call(fn); err != nil {
		t.Fatal(err)
	}
}

func (e *goldenEnv) config(dir string, batchMax, degradedLimit int) Config {
	return Config{
		Name: "golden", Schema: testSchema, Mode: ModeDisk, Dir: dir,
		Protector: e.protector, BatchMax: batchMax, DegradedLimit: degradedLimit,
	}
}

// goldenVectors describes the corpus: each generator writes golden.lseal
// into dir using the live writer.
var goldenVectors = []struct {
	name string
	gen  func(t *testing.T, e *goldenEnv, dir string)
}{
	{"perentry", genPerEntry},
	{"batched", genBatched},
	{"degraded", genDegraded},
	{"trimmed", genTrimmed},
}

// genPerEntry: BatchMax <= 1, the conservative entry-at-a-time format —
// one signature record and one counter increment per append.
func genPerEntry(t *testing.T, e *goldenEnv, dir string) {
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		if l, err = New(env, e.config(dir, 0, 0)); err != nil {
			return err
		}
		for i := 1; i <= 5; i++ {
			if err := l.Append(env, "updates", i, "repo-a", "main",
				fmt.Sprintf("c%02d", i), "update"); err != nil {
				return err
			}
		}
		if err := l.Append(env, "advertisements", 6, "repo-a", "main", "c05"); err != nil {
			return err
		}
		return l.Append(env, "advertisements", 7, "repo-b", "dev", "c01")
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// genBatched: group commit, three staged groups under BatchMax 3 — multiple
// entries per signature record.
func genBatched(t *testing.T, e *goldenEnv, dir string) {
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		if l, err = New(env, e.config(dir, 3, 0)); err != nil {
			return err
		}
		groups := [][]Row{
			{
				{Table: "updates", Values: []any{1, "repo-a", "main", "c01", "update"}},
				{Table: "updates", Values: []any{2, "repo-a", "main", "c02", "update"}},
				{Table: "updates", Values: []any{3, "repo-a", "dev", "c03", "update"}},
			},
			{
				{Table: "updates", Values: []any{4, "repo-b", "main", "c04", "update"}},
				{Table: "advertisements", Values: []any{5, "repo-b", "main", "c04"}},
				{Table: "updates", Values: []any{6, "repo-b", "main", "c05", "delete"}},
			},
			{
				{Table: "advertisements", Values: []any{7, "repo-a", "main", "c03"}},
				{Table: "updates", Values: []any{8, "repo-a", "main", "c06", "update"}},
			},
		}
		for _, rows := range groups {
			tk, err := l.Stage(env, rows)
			if err != nil {
				return err
			}
			if err := tk.Wait(env); err != nil {
				return err
			}
		}
		return nil
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// genDegraded: a degraded episode mid-log — the counter quorum drops out,
// appends persist signed at the stale counter, then Reanchor closes the gap
// with a bare signature record at a fresh value.
func genDegraded(t *testing.T, e *goldenEnv, dir string) {
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		if l, err = New(env, e.config(dir, 0, 8)); err != nil {
			return err
		}
		for i := 1; i <= 2; i++ {
			if err := l.Append(env, "updates", i, "repo-a", "main",
				fmt.Sprintf("c%02d", i), "update"); err != nil {
				return err
			}
		}
		e.protector.fail = true
		for i := 3; i <= 5; i++ {
			if err := l.Append(env, "updates", i, "repo-a", "main",
				fmt.Sprintf("c%02d", i), "update"); err != nil {
				return err
			}
		}
		e.protector.fail = false
		if err := l.Reanchor(env); err != nil {
			return err
		}
		return l.Append(env, "updates", 6, "repo-a", "main", "c06", "update")
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// genTrimmed: history trimmed away mid-life — the chain is rebuilt over the
// survivors, re-anchored and re-signed, then appended to again.
func genTrimmed(t *testing.T, e *goldenEnv, dir string) {
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		if l, err = New(env, e.config(dir, 0, 0)); err != nil {
			return err
		}
		for i := 1; i <= 6; i++ {
			if err := l.Append(env, "updates", i, "repo-a", "main",
				fmt.Sprintf("c%02d", i), "update"); err != nil {
				return err
			}
		}
		if err := l.Trim(env, []string{"DELETE FROM updates WHERE time <= 3"}); err != nil {
			return err
		}
		return l.Append(env, "updates", 7, "repo-a", "main", "c07", "update")
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// expectFor summarises a verification result as a goldenExpect.
func expectFor(res *VerifyResult) goldenExpect {
	h := sha256.New()
	tables := map[string]int{}
	for _, e := range res.Entries {
		h.Write(e.Marshal())
		tables[e.Table]++
	}
	return goldenExpect{
		Entries:        len(res.Entries),
		Counter:        res.Counter,
		CommittedBytes: res.CommittedBytes,
		Batches:        res.Batches,
		MaxBatch:       res.MaxBatch,
		Tables:         tables,
		EntryHash:      hex.EncodeToString(h.Sum(nil)),
	}
}

// TestGoldenVectors verifies every committed vector with both the
// sequential and the parallel verifier and compares the outcome against the
// committed expectation. With -update it regenerates the whole corpus from
// the live writer first.
func TestGoldenVectors(t *testing.T) {
	e := newGoldenEnv(t)
	pub := e.encl.PublicKey()

	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		pemData, err := pki.EncodePublicKeyPEM(pub)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "pub.pem"), pemData, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, v := range goldenVectors {
			dir := t.TempDir()
			v.gen(t, e, dir)
			img, err := os.ReadFile(filepath.Join(dir, "golden.lseal"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(goldenDir, v.name+".lseal"), img, 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := VerifyReaderResult(bytes.NewReader(img), VerifyOptions{Pub: pub})
			if err != nil {
				t.Fatalf("%s: generated vector does not verify: %v", v.name, err)
			}
			exp := expectFor(res)
			data, err := json.MarshalIndent(exp, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(filepath.Join(goldenDir, v.name+".json"), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The committed public key must match the one the committed platform
	// state derives — otherwise the corpus is internally inconsistent.
	pemData, err := os.ReadFile(filepath.Join(goldenDir, "pub.pem"))
	if err != nil {
		t.Fatalf("golden corpus missing (%v); run with -update to generate", err)
	}
	committedPub, err := pki.DecodePublicKeyPEM(pemData)
	if err != nil {
		t.Fatal(err)
	}
	if !committedPub.Equal(pub) {
		t.Fatal("committed pub.pem does not match the committed platform state")
	}

	for _, v := range goldenVectors {
		v := v
		t.Run(v.name, func(t *testing.T) {
			img, err := os.ReadFile(filepath.Join(goldenDir, v.name+".lseal"))
			if err != nil {
				t.Fatal(err)
			}
			var want goldenExpect
			data, err := os.ReadFile(filepath.Join(goldenDir, v.name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			opts := VerifyOptions{Pub: committedPub}
			for _, workers := range []int{1, 4} {
				seqRes, strRes := runBoth(t, img, opts, workers)
				if seqRes == nil {
					t.Fatal("golden vector failed verification")
				}
				for _, got := range []goldenExpect{expectFor(seqRes), expectFor(&strRes.VerifyResult)} {
					if got.Entries != want.Entries || got.Counter != want.Counter ||
						got.CommittedBytes != want.CommittedBytes || got.Batches != want.Batches ||
						got.MaxBatch != want.MaxBatch || got.EntryHash != want.EntryHash {
						t.Fatalf("verification diverges from committed expectation:\n  got  %+v\n  want %+v", got, want)
					}
					for table, n := range want.Tables {
						if got.Tables[table] != n {
							t.Fatalf("table %s: %d entries, want %d", table, got.Tables[table], n)
						}
					}
				}
			}
		})
	}
}

// TestGoldenPerEntryByteIdentity regenerates the per-entry vector with the
// committed platform state and asserts the writer still produces the
// committed bytes — record for record, with only the signature R/S scalars
// (ECDSA nonces) allowed to differ. This locks the wire format: record
// framing, entry encoding, chain math and the signed 40-byte state prefix.
func TestGoldenPerEntryByteIdentity(t *testing.T) {
	e := newGoldenEnv(t)
	committed, err := os.ReadFile(filepath.Join(goldenDir, "perentry.lseal"))
	if err != nil {
		t.Fatalf("golden corpus missing (%v); run with -update to generate", err)
	}
	dir := t.TempDir()
	genPerEntry(t, e, dir)
	fresh, err := os.ReadFile(filepath.Join(dir, "golden.lseal"))
	if err != nil {
		t.Fatal(err)
	}

	wantRecs, err := readRecords(bytes.NewReader(committed), false)
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, err := readRecords(bytes.NewReader(fresh), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("record count changed: %d, committed %d", len(gotRecs), len(wantRecs))
	}
	for i := range wantRecs {
		w, g := wantRecs[i], gotRecs[i]
		if g.typ != w.typ {
			t.Fatalf("record %d: type %q, committed %q", i, g.typ, w.typ)
		}
		switch w.typ {
		case recEntry:
			if !bytes.Equal(g.payload, w.payload) {
				t.Fatalf("record %d: entry payload changed:\n  got  %x\n  want %x", i, g.payload, w.payload)
			}
		case recSig:
			// chain head (32) + counter (8) must be byte-identical; the
			// ECDSA scalars after them are nonce-randomised.
			if len(w.payload) < 40 || len(g.payload) < 40 {
				t.Fatalf("record %d: short signature payload", i)
			}
			if !bytes.Equal(g.payload[:40], w.payload[:40]) {
				t.Fatalf("record %d: signed state changed:\n  got  %x\n  want %x", i, g.payload[:40], w.payload[:40])
			}
		}
	}
}
