package audit

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/sqldb"
	"libseal/internal/telemetry"
	"libseal/internal/vfs"
)

// Sharding telemetry: manifest cadence and failures show how tight the
// cross-shard rollback window is (the tail after the last manifest is
// covered only by the per-shard counters).
var (
	mManifests      = telemetry.NewCounter("audit.manifests", "records")
	mManifestErrors = telemetry.NewCounter("audit.manifest.errors", "calls")
)

// defaultManifestEvery is the manifest cadence when ShardedConfig leaves
// ManifestEvery zero.
const defaultManifestEvery = 500 * time.Millisecond

// ShardedConfig describes a sharded audit log. The embedded Config applies
// to every shard; per-shard limits (DegradedLimit, MaxStaged) are budgets
// per shard, so the aggregate budget scales with the shard count.
type ShardedConfig struct {
	Config
	// Shards is the number of independent commit pipelines. Values <= 1
	// produce a single unsharded log under the legacy file and counter
	// names, with no manifest sidecar — byte-identical to a plain Log.
	Shards int
	// ManifestEvery is the minimum interval between periodic epoch
	// manifests. Zero selects a default (500ms). Only meaningful with
	// Shards > 1 in ModeDisk.
	ManifestEvery time.Duration
}

// shardCount normalises the configured shard count.
func (c ShardedConfig) shardCount() int {
	if c.Shards < 1 {
		return 1
	}
	if c.Shards > maxManifestShards {
		return maxManifestShards
	}
	return c.Shards
}

// shardConfig derives shard k's per-log configuration. The schema is
// applied once to the shared database, never per shard.
func (c ShardedConfig) shardConfig(k int) Config {
	sc := c.Config
	sc.Schema = ""
	if c.shardCount() > 1 {
		sc.Name = ShardName(c.Name, k)
	}
	return sc
}

// ShardName is shard k's log name — also its file basename (ShardName +
// ".lseal") and its rollback-counter name.
func ShardName(name string, k int) string {
	return fmt.Sprintf("%s-shard%d", name, k)
}

// ManifestFileName is the basename of the epoch-manifest sidecar for a
// sharded log set.
func ManifestFileName(name string) string {
	return name + ".manifest"
}

// ManifestCounterName is the rollback-counter name anchoring epoch
// manifests: one increment per manifest covers all shards.
func ManifestCounterName(name string) string {
	return name + "-manifest"
}

// ShardedLog partitions an audit log across N independent Log instances.
// Entries are routed by a stable hash of the caller's connection key, so one
// connection's entries always land on one shard in order, while different
// connections spread across N group-commit pipelines — N batch leaders, N
// files, N fsync streams, N rollback counters — instead of serialising on
// one. All shards share a single relational database, so invariant queries
// observe the whole service history regardless of the partitioning.
//
// Cross-shard integrity is bound by periodic epoch manifests (see
// manifest.go): without them, rolling a single shard file back to an
// earlier signed prefix would pass that shard's own chain and signature
// checks.
type ShardedLog struct {
	cfg    ShardedConfig
	db     *sqldb.DB
	fs     vfs.FS
	shards []*Log

	// Manifest lane. mmu serialises manifest signing and sidecar I/O; it is
	// ordered after the shard locks (a manifest writer never holds mmu while
	// acquiring a shard's mutex — states are snapshotted first).
	mmu          sync.Mutex
	manifestFile vfs.File // outside resource, accessed via ocalls
	manifestSize int64    // committed bytes; failed appends truncate back
	epoch        uint64
	mcounter     uint64 // last manifest-counter value written
	lastManifest time.Time
	mclosed      bool

	// mgen is the manifest sidecar's incarnation seqlock (see Log.gen): odd
	// while rewriteManifest is replacing the file, even while it is stable.
	mgen atomic.Uint64
	// mnotify, when non-nil, runs under mmu after every durable manifest
	// write. Installed by SetCommitNotify alongside the per-shard notifiers.
	mnotify func()
}

// SetCommitNotify installs fn to run after every durable change to any of
// the set's persisted files — a shard's batch publish, re-anchor or trim
// rewrite, and every manifest append or rewrite. fn runs under the internal
// locks and must not block; the replication feed installs a coalescing
// wakeup. One listener at a time; nil uninstalls.
func (s *ShardedLog) SetCommitNotify(fn func()) {
	for _, sh := range s.shards {
		sh.SetCommitNotify(fn)
	}
	s.mmu.Lock()
	defer s.mmu.Unlock()
	s.mnotify = fn
}

// ManifestCommittedSize is the durable length of the manifest sidecar (0
// when the set has none).
func (s *ShardedLog) ManifestCommittedSize() int64 {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	return s.manifestSize
}

// ManifestGeneration identifies the manifest sidecar's incarnation, with the
// same even/odd contract as Log.Generation.
func (s *ShardedLog) ManifestGeneration() uint64 { return s.mgen.Load() }

// NewSharded creates (or truncates) a sharded audit log. With Shards > 1 in
// disk mode it also creates the manifest sidecar and writes an initial
// epoch manifest attesting the empty shards. Must run inside an enclave
// call.
func NewSharded(env *asyncall.Env, cfg ShardedConfig) (*ShardedLog, error) {
	db := sqldb.New()
	if cfg.Schema != "" {
		if _, err := db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	s := &ShardedLog{cfg: cfg, db: db, fs: vfs.Default(cfg.FS)}
	n := cfg.shardCount()
	for k := 0; k < n; k++ {
		l, err := newIntoDB(env, cfg.shardConfig(k), db)
		if err != nil {
			s.closeShards()
			return nil, err
		}
		s.shards = append(s.shards, l)
	}
	if s.manifested() {
		if err := s.createManifestFile(env); err != nil {
			s.closeShards()
			return nil, err
		}
		if err := s.appendManifest(env, s.snapshotStates(env)); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// RecoverSharded rebuilds a sharded log set after a restart: every shard
// file is verified and replayed into one shared database (shard recovery is
// exactly single-log Recover, per shard), the old manifest sidecar is read
// tolerantly to resume the epoch and manifest-counter sequence, and the
// sidecar is rewritten with one fresh manifest attesting the recovered
// states. The shard count must match the one the files were created with.
// Must run inside an enclave call.
func RecoverSharded(env *asyncall.Env, cfg ShardedConfig, pub *ecdsa.PublicKey) (*ShardedLog, error) {
	db := sqldb.New()
	if cfg.Schema != "" {
		if _, err := db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	s := &ShardedLog{cfg: cfg, db: db, fs: vfs.Default(cfg.FS)}
	n := cfg.shardCount()
	for k := 0; k < n; k++ {
		l, err := recoverIntoDB(env, cfg.shardConfig(k), pub, db)
		if err != nil {
			s.closeShards()
			return nil, fmt.Errorf("audit: shard %d: %w", k, err)
		}
		s.shards = append(s.shards, l)
	}
	if s.manifested() {
		// Resume the epoch/counter sequence from the surviving sidecar. A
		// missing or corrupt sidecar is not fatal to recovery — the shard
		// files carry the integrity evidence — but it does restart the epoch
		// numbering; the manifest counter keeps the quorum's history either
		// way.
		var raw []byte
		env.Ocall(func() error {
			raw, _ = s.fs.ReadFile(s.manifestPath())
			return nil
		})
		if len(raw) > 0 {
			if ms, err := readManifests(bytes.NewReader(raw), true); err == nil && len(ms) > 0 {
				last := ms[len(ms)-1]
				s.epoch = last.Epoch
				s.mcounter = last.Counter
			}
		}
		if err := s.rewriteManifest(env, s.snapshotStates(env)); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// manifested reports whether this log set maintains an epoch-manifest
// sidecar: only multi-shard disk-mode sets do.
func (s *ShardedLog) manifested() bool {
	return len(s.shards) > 1 && s.cfg.Mode == ModeDisk
}

func (s *ShardedLog) manifestPath() string {
	return filepath.Join(s.cfg.Dir, ManifestFileName(s.cfg.Name))
}

func (s *ShardedLog) closeShards() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

func (s *ShardedLog) createManifestFile(env *asyncall.Env) error {
	return env.Ocall(func() error {
		f, err := s.fs.Create(s.manifestPath())
		if err != nil {
			return err
		}
		if _, err := f.Write(manifestMagic); err != nil {
			f.Close()
			return err
		}
		s.manifestFile = f
		s.manifestSize = int64(len(manifestMagic))
		return nil
	})
}

// ShardFor routes a connection key to its shard: a stable hash, so the same
// connection always appends to the same shard (preserving per-connection
// order) across the life of the set.
func (s *ShardedLog) ShardFor(key uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	h := fnv.New64a()
	h.Write(b[:])
	return int(h.Sum64() % uint64(len(s.shards)))
}

// Shards returns the shard count.
func (s *ShardedLog) Shards() int { return len(s.shards) }

// Shard exposes shard k (tests and status reporting).
func (s *ShardedLog) Shard(k int) *Log { return s.shards[k] }

// Primary returns shard 0 — the compatibility handle for callers that need
// a single *Log (an unsharded set has exactly one).
func (s *ShardedLog) Primary() *Log { return s.shards[0] }

// DB exposes the shared relational database for invariant queries.
func (s *ShardedLog) DB() *sqldb.DB { return s.db }

// Query runs an invariant query against the shared database.
func (s *ShardedLog) Query(sql string, args ...any) (*sqldb.Result, error) {
	return s.db.Query(sql, args...)
}

// Exec runs arbitrary SQL against the shared database.
func (s *ShardedLog) Exec(sql string, args ...any) (int, error) {
	return s.db.Exec(sql, args...)
}

// Stage inserts the rows into the shared database and stages them into the
// commit pipeline of the key's shard, as one unit. See Log.Stage for the
// ticket contract.
func (s *ShardedLog) Stage(env *asyncall.Env, key uint64, rows []Row) (*Ticket, error) {
	return s.shards[s.ShardFor(key)].Stage(env, rows)
}

// Append adds one tuple via the key's shard and waits for durability.
func (s *ShardedLog) Append(env *asyncall.Env, key uint64, table string, vals ...any) error {
	return s.shards[s.ShardFor(key)].Append(env, table, vals...)
}

// Seq returns the total number of durable entries across all shards.
func (s *ShardedLog) Seq() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.Seq()
	}
	return total
}

// PendingStaged returns the total staged-but-not-durable entries across all
// shards.
func (s *ShardedLog) PendingStaged() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.PendingStaged()
	}
	return total
}

// Status aggregates the shards' degraded-mode state: degraded if any shard
// is, with pending appends and closed gaps summed.
func (s *ShardedLog) Status() Status {
	var agg Status
	for _, sh := range s.shards {
		st := sh.Status()
		agg.Degraded = agg.Degraded || st.Degraded
		agg.PendingAnchor += st.PendingAnchor
		agg.Gaps += st.Gaps
	}
	return agg
}

// ShardStatuses returns each shard's degraded-mode state.
func (s *ShardedLog) ShardStatuses() []Status {
	out := make([]Status, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Status()
	}
	return out
}

// Reanchor attempts to close degraded-mode gaps on every shard. All shards
// are tried; the first error is returned.
func (s *ShardedLog) Reanchor(env *asyncall.Env) error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Reanchor(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Trim applies the trimming queries once against the shared database and
// rewrites every shard: surviving rows are partitioned round-robin across
// the shards (deterministic table-sorted order), each shard's chain is
// rebuilt over its partition with a fresh counter anchor, and the manifest
// sidecar is rewritten to attest the post-trim states. All shards are
// quiesced for the duration, so the partition cannot race staged appends.
//
// On a mid-trim failure the already-rewritten shards keep their new images
// and the rest keep their old ones — every shard file remains individually
// verifiable — and the manifest sidecar is still rewritten to attest the
// shards' actual current states, because the old manifests reference
// pre-trim states the rewritten shards no longer contain.
func (s *ShardedLog) Trim(env *asyncall.Env, queries []string) error {
	if len(s.shards) == 1 {
		return s.shards[0].Trim(env, queries)
	}
	for _, sh := range s.shards {
		sh.lockQuiesced(env)
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	mTrims.Inc()
	defer telemetry.ObserveSince(mTrimLatency, "audit.trim", time.Now())
	for _, q := range queries {
		if _, err := s.db.Exec(q); err != nil {
			return fmt.Errorf("audit: trimming query %q: %w", q, err)
		}
	}
	parts, err := s.partitionSurvivors()
	if err != nil {
		return err
	}
	var trimErr error
	for k, sh := range s.shards {
		if err := sh.rewriteLocked(env, parts[k]); err != nil {
			trimErr = fmt.Errorf("audit: shard %d rewrite: %w", k, err)
			break
		}
	}
	if s.manifested() {
		states := make([]ShardState, len(s.shards))
		for i, sh := range s.shards {
			// Shard locks are held: read the durable fields directly.
			states[i] = ShardState{Chain: sh.chain, Seq: sh.seq, Counter: sh.sigCounter}
		}
		if merr := s.rewriteManifest(env, states); merr != nil && trimErr == nil {
			trimErr = merr
		}
	}
	return trimErr
}

// partitionSurvivors deals the post-trim database rows round-robin across
// the shards, re-encoding each partition as chained entries with fresh
// per-shard sequence numbers. Row order is deterministic (tables sorted,
// rows in table order), so the partition is reproducible for a given
// database state. Per-shard heap accounting drifts slightly when the deal
// moves bytes between shards; the totals reconcile on the next trim.
func (s *ShardedLog) partitionSurvivors() ([][][]byte, error) {
	tables := s.db.Tables()
	sort.Strings(tables)
	n := len(s.shards)
	parts := make([][][]byte, n)
	seqs := make([]uint64, n)
	i := 0
	for _, t := range tables {
		rows, err := s.db.TableRows(t)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			k := i % n
			e := &Entry{Seq: seqs[k], Table: t, Values: row}
			parts[k] = append(parts[k], e.Marshal())
			seqs[k]++
			i++
		}
	}
	return parts, nil
}

// snapshotStates collects every shard's durable commit point, taking each
// shard's lock briefly (via asyncall.Lock — the snapshot may contend with a
// commit in flight). The states are not a cross-shard atomic cut, and need
// not be: the manifest's guarantee is per shard — each attested triple
// corresponds to a signature record actually on that shard's disk.
func (s *ShardedLog) snapshotStates(env *asyncall.Env) []ShardState {
	states := make([]ShardState, len(s.shards))
	for i, sh := range s.shards {
		asyncall.Lock(env, &sh.mu)
		states[i] = ShardState{Chain: sh.chain, Seq: sh.seq, Counter: sh.sigCounter}
		sh.mu.Unlock()
	}
	return states
}

// ManifestIfDue appends a fresh epoch manifest when the cadence interval
// has elapsed. It is designed for the request path: if another manifest
// write is in flight, or the last one is recent, it returns immediately.
// Must run inside an enclave call.
func (s *ShardedLog) ManifestIfDue(env *asyncall.Env) error {
	if !s.manifested() {
		return nil
	}
	if !s.mmu.TryLock() {
		return nil
	}
	every := s.cfg.ManifestEvery
	if every <= 0 {
		every = defaultManifestEvery
	}
	due := !s.mclosed && time.Since(s.lastManifest) >= every
	s.mmu.Unlock()
	if !due {
		return nil
	}
	return s.WriteManifest(env)
}

// WriteManifest appends an epoch manifest now, regardless of cadence. Must
// run inside an enclave call.
func (s *ShardedLog) WriteManifest(env *asyncall.Env) error {
	if !s.manifested() {
		return nil
	}
	return s.appendManifest(env, s.snapshotStates(env))
}

// appendManifest signs the states as the next epoch and appends the record
// to the sidecar with one fsync. A failed write truncates back to the last
// committed size.
func (s *ShardedLog) appendManifest(env *asyncall.Env, states []ShardState) error {
	asyncall.Lock(env, &s.mmu)
	defer s.mmu.Unlock()
	if s.mclosed {
		return ErrClosed
	}
	m, err := s.signManifestLocked(env, states)
	if err != nil {
		mManifestErrors.Inc()
		return err
	}
	payload := marshalManifest(m)
	if err := env.Ocall(func() error {
		if err := writeRecord(s.manifestFile, recManifest, payload); err != nil {
			return err
		}
		return s.manifestFile.Sync()
	}); err != nil {
		env.Ocall(func() error { s.manifestFile.Truncate(s.manifestSize); return nil })
		mManifestErrors.Inc()
		return err
	}
	s.manifestSize += recordSize(payload)
	s.commitManifestLocked(m)
	return nil
}

// rewriteManifest atomically replaces the sidecar with a single fresh
// manifest attesting the given states (temp file, fsync, rename) — the
// manifest counterpart of a shard rewrite. Callers may hold shard locks;
// mmu is taken after them.
func (s *ShardedLog) rewriteManifest(env *asyncall.Env, states []ShardState) error {
	asyncall.Lock(env, &s.mmu)
	defer s.mmu.Unlock()
	if s.mclosed {
		return ErrClosed
	}
	m, err := s.signManifestLocked(env, states)
	if err != nil {
		mManifestErrors.Inc()
		return err
	}
	payload := marshalManifest(m)
	s.mgen.Add(1) // odd: sidecar being replaced
	if err := env.Ocall(func() error {
		tmp := s.manifestPath() + ".tmp"
		f, err := s.fs.Create(tmp)
		if err != nil {
			return err
		}
		fail := func(err error) error {
			f.Close()
			s.fs.Remove(tmp)
			return err
		}
		if _, err := f.Write(manifestMagic); err != nil {
			return fail(err)
		}
		if err := writeRecord(f, recManifest, payload); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		if err := s.fs.Rename(tmp, s.manifestPath()); err != nil {
			s.fs.Remove(tmp)
			return err
		}
		nf, err := s.fs.Append(s.manifestPath())
		if err != nil {
			return err
		}
		old := s.manifestFile
		s.manifestFile = nf
		if old != nil {
			old.Close()
		}
		return nil
	}); err != nil {
		s.mgen.Add(1) // even again: the old sidecar is still authoritative
		mManifestErrors.Inc()
		return err
	}
	s.mgen.Add(1) // even: replacement landed
	s.manifestSize = int64(len(manifestMagic)) + recordSize(payload)
	s.commitManifestLocked(m)
	return nil
}

// signManifestLocked builds and signs the next epoch manifest; mmu is held.
// The manifest counter is incremented best-effort: if the quorum is
// unreachable the manifest is signed at the last written value — the
// signature still binds real shard states, and the lag surfaces through the
// verifier's freshness check once the quorum answers again.
func (s *ShardedLog) signManifestLocked(env *asyncall.Env, states []ShardState) (*Manifest, error) {
	m := &Manifest{Epoch: s.epoch + 1, Counter: s.mcounter, Shards: states}
	if s.cfg.Protector != nil {
		if c, err := s.incrementManifestCounter(); err == nil {
			m.Counter = c
		}
	}
	sig, err := env.Ctx.Sign(manifestDigest(s.cfg.Name, m))
	if err != nil {
		return nil, err
	}
	mSignatures.Inc()
	m.Sig = sig
	return m, nil
}

// commitManifestLocked publishes a durably written manifest; mmu is held.
func (s *ShardedLog) commitManifestLocked(m *Manifest) {
	s.epoch = m.Epoch
	s.mcounter = m.Counter
	s.lastManifest = time.Now()
	mManifests.Inc()
	mFsyncs.Inc()
	if s.mnotify != nil {
		s.mnotify()
	}
}

// incrementManifestCounter advances the manifest counter under the same
// timeout bound as the shards' anchors.
func (s *ShardedLog) incrementManifestCounter() (uint64, error) {
	name := ManifestCounterName(s.cfg.Name)
	if cp, ok := s.cfg.Protector.(ContextRollbackProtector); ok && s.cfg.AnchorTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.AnchorTimeout)
		defer cancel()
		return cp.IncrementContext(ctx, name)
	}
	return s.cfg.Protector.Increment(name)
}

// Epoch returns the epoch of the last durably written manifest (0 before
// the first).
func (s *ShardedLog) Epoch() uint64 {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	return s.epoch
}

// Close drains and closes every shard, then the manifest sidecar. No final
// manifest is written — Close runs outside an enclave call, and the tail
// after the last manifest remains protected by the per-shard counters.
func (s *ShardedLog) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mmu.Lock()
	defer s.mmu.Unlock()
	s.mclosed = true
	if s.manifestFile != nil {
		err := s.manifestFile.Close()
		s.manifestFile = nil
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
