package audit

import (
	"bufio"
	"bytes"
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"libseal/internal/sqldb"
)

// Synthetic log generation. Benchmarks and the corruption-matrix tests need
// logs far larger (or far more precisely shaped) than driving the full
// enclave stack allows, so this writer produces the persisted wire format
// directly from a raw ECDSA key: same magic, same records, same chain and
// signature math as the live writer — a verifier cannot distinguish the
// two, and the golden-vector tests pin the live writer to this format.

// SyntheticBatch is one commit point of a synthetic log: the entries one
// signature record covers and the counter value it attests. An empty
// Entries slice produces a bare signature record, the shape Reanchor and
// recovery leave behind.
type SyntheticBatch struct {
	Entries []*Entry
	Counter uint64
}

// WriteSyntheticBatches writes magic plus the given batches as a persisted
// log, signing each commit point with key exactly as the enclave would.
// Entry Seq fields are used as given; callers wanting a well-formed log
// must number them contiguously from seq.
func WriteSyntheticBatches(w io.Writer, key *ecdsa.PrivateKey, batches []SyntheticBatch) (int64, error) {
	if _, err := w.Write(fileMagic); err != nil {
		return 0, err
	}
	size := int64(len(fileMagic))
	var chain [32]byte
	for _, b := range batches {
		for _, e := range b.Entries {
			payload := e.Marshal()
			if err := writeRecord(w, recEntry, payload); err != nil {
				return size, err
			}
			chain = chainNext(chain, payload)
			size += recordSize(payload)
		}
		sig, err := synthSign(key, chain, b.Counter)
		if err != nil {
			return size, err
		}
		if err := writeRecord(w, recSig, sig); err != nil {
			return size, err
		}
		size += recordSize(sig)
	}
	return size, nil
}

// WriteSyntheticLog writes n entries grouped into batches of batchMax
// (1 for the per-entry format), counters counting up from 1 — the shape a
// healthy group-commit run persists. Returns the file size.
func WriteSyntheticLog(w io.Writer, key *ecdsa.PrivateKey, n, batchMax int) (int64, error) {
	if batchMax < 1 {
		batchMax = 1
	}
	bw := newSynthWriter(w, key)
	for i := 0; i < n; i++ {
		bw.add(SyntheticEntry(uint64(i)))
		if bw.pending() >= batchMax {
			if err := bw.commit(); err != nil {
				return bw.size, err
			}
		}
	}
	if err := bw.flush(); err != nil {
		return bw.size, err
	}
	return bw.size, nil
}

// WriteSyntheticLogFile is WriteSyntheticLog to a file path.
func WriteSyntheticLogFile(path string, key *ecdsa.PrivateKey, n, batchMax int) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	size, err := WriteSyntheticLog(bw, key, n, batchMax)
	if err != nil {
		return size, err
	}
	if err := bw.Flush(); err != nil {
		return size, err
	}
	return size, f.Sync()
}

// SyntheticEntry builds a deterministic entry shaped like the git module's
// reference-update rows: a couple of text columns and an integer, roughly
// 100 bytes on the wire.
func SyntheticEntry(seq uint64) *Entry {
	return &Entry{
		Seq:   seq,
		Table: "updates",
		Values: []sqldb.Value{
			sqldb.Int(int64(seq)),
			sqldb.Text(fmt.Sprintf("refs/heads/branch-%d", seq%97)),
			sqldb.Text(fmt.Sprintf("%040x", seq)),
			sqldb.Text("push"),
		},
	}
}

// synthSign produces a signature record payload identical in layout to the
// live writer's signState: chain head, big-endian counter, then the
// length-prefixed ECDSA R and S scalars.
func synthSign(key *ecdsa.PrivateKey, chain [32]byte, counter uint64) ([]byte, error) {
	r, s, err := ecdsa.Sign(rand.Reader, key, sigDigest(chain, counter))
	if err != nil {
		return nil, err
	}
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	var out bytes.Buffer
	out.Write(chain[:])
	out.Write(c[:])
	writeString(&out, string(r.Bytes()))
	writeString(&out, string(s.Bytes()))
	return out.Bytes(), nil
}

// synthWriter incrementally builds a synthetic log: add entries, commit
// signs the batch staged so far.
type synthWriter struct {
	w       io.Writer
	key     *ecdsa.PrivateKey
	chain   [32]byte
	counter uint64
	staged  int
	size    int64
	err     error
}

func newSynthWriter(w io.Writer, key *ecdsa.PrivateKey) *synthWriter {
	return &synthWriter{w: w, key: key, size: int64(len(fileMagic)), err: writeMagic(w)}
}

func writeMagic(w io.Writer) error {
	_, err := w.Write(fileMagic)
	return err
}

func (s *synthWriter) pending() int { return s.staged }

func (s *synthWriter) add(e *Entry) {
	if s.err != nil {
		return
	}
	payload := e.Marshal()
	if s.err = writeRecord(s.w, recEntry, payload); s.err != nil {
		return
	}
	s.chain = chainNext(s.chain, payload)
	s.size += recordSize(payload)
	s.staged++
}

func (s *synthWriter) commit() error {
	if s.err != nil {
		return s.err
	}
	s.counter++
	sig, err := synthSign(s.key, s.chain, s.counter)
	if err != nil {
		s.err = err
		return err
	}
	if s.err = writeRecord(s.w, recSig, sig); s.err != nil {
		return s.err
	}
	s.size += recordSize(sig)
	s.staged = 0
	return nil
}

func (s *synthWriter) flush() error {
	if s.staged > 0 {
		return s.commit()
	}
	return s.err
}
