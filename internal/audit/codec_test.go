package audit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"libseal/internal/sqldb"
)

type randomEntry Entry

// Generate implements quick.Generator for Entry round-trip tests.
func (randomEntry) Generate(r *rand.Rand, _ int) reflect.Value {
	e := randomEntry{
		Seq:   r.Uint64(),
		Table: randString(r, 1+r.Intn(20)),
	}
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			e.Values = append(e.Values, sqldb.Null())
		case 1:
			e.Values = append(e.Values, sqldb.Int(r.Int63()-r.Int63()))
		case 2:
			e.Values = append(e.Values, sqldb.Float(r.NormFloat64()))
		case 3:
			e.Values = append(e.Values, sqldb.Text(randString(r, r.Intn(40))))
		default:
			b := make([]byte, r.Intn(40))
			r.Read(b)
			e.Values = append(e.Values, sqldb.Blob(b))
		}
	}
	return reflect.ValueOf(e)
}

func randString(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(32 + r.Intn(95))
	}
	return string(b)
}

func TestEntryRoundTripProperty(t *testing.T) {
	f := func(re randomEntry) bool {
		e := Entry(re)
		decoded, err := UnmarshalEntry(e.Marshal())
		if err != nil {
			return false
		}
		if decoded.Seq != e.Seq || decoded.Table != e.Table || len(decoded.Values) != len(e.Values) {
			return false
		}
		for i := range e.Values {
			if sqldb.Compare(decoded.Values[i], e.Values[i]) != 0 {
				return false
			}
			if decoded.Values[i].Kind() != e.Values[i].Kind() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryEncodingDeterministic(t *testing.T) {
	e := &Entry{Seq: 7, Table: "updates", Values: []sqldb.Value{sqldb.Int(1), sqldb.Text("x")}}
	a := e.Marshal()
	b := e.Marshal()
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestUnmarshalGarbageEntry(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 11)} {
		if _, err := UnmarshalEntry(b); err == nil {
			t.Errorf("UnmarshalEntry(%v) succeeded", b)
		}
	}
	// Trailing bytes are rejected (they would escape the hash chain).
	e := &Entry{Seq: 1, Table: "t"}
	enc := append(e.Marshal(), 0xAA)
	if _, err := UnmarshalEntry(enc); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestChainNextDiffers(t *testing.T) {
	var zero [32]byte
	a := chainNext(zero, []byte("entry1"))
	b := chainNext(zero, []byte("entry2"))
	if a == b {
		t.Fatal("different entries produced equal chain hashes")
	}
	c := chainNext(a, []byte("entry2"))
	d := chainNext(b, []byte("entry1"))
	if c == d {
		t.Fatal("chain is order-insensitive")
	}
}
