package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"libseal/internal/enclave"
)

// Epoch manifests bind a sharded log's shards together. Each shard of a
// ShardedLog is an independent audit log — its own hash chain, file and
// rollback counter — so per-shard verification alone cannot tell whether the
// *set* of shard files is mutually consistent: a provider could roll a
// single shard file back to an earlier (internally valid, correctly signed)
// prefix and present the rest untouched. The manifest closes that hole: the
// enclave periodically signs one record binding every shard's durable
// (chain head, seq, counter) into a single digest, anchored by one
// increment of a dedicated manifest counter. A verifier that checks every
// manifest against the per-shard verdicts detects the rollback of any
// individual shard offline, from the files alone — no live counter quorum
// required — because the rolled-back shard no longer contains the commit
// point the manifest attests.
//
// Manifests live in a sidecar file (<name>.manifest) next to the shard
// files rather than inside shard 0's record stream: the shard files keep
// the exact wire format the golden vectors pin down, and the single-file
// verifier stays untouched. The sidecar is append-only between trims; a
// trim rewrites the shard files and therefore atomically rewrites the
// sidecar too, leaving exactly one fresh manifest that attests the
// post-trim states.

// manifestMagic heads the manifest sidecar file.
var manifestMagic = []byte("LIBSEALMAN1\n")

// recManifest is the manifest record type within the sidecar file.
const recManifest byte = 'M'

// manifestDomain separates manifest digests from every other message the
// enclave key signs (entry-batch signature records in particular).
const manifestDomain = "libseal-manifest-v1\x00"

// maxManifestShards bounds the shard count a parsed manifest may claim, so
// a hostile sidecar cannot force large allocations.
const maxManifestShards = 1 << 12

// ShardState is one shard's durable commit point as attested by a manifest.
type ShardState struct {
	// Chain is the shard's durable chain head.
	Chain [32]byte
	// Seq is the number of durable entries under that head.
	Seq uint64
	// Counter is the rollback-counter value of the shard's last durable
	// signature record.
	Counter uint64
}

// Manifest is one signed cross-shard epoch record.
type Manifest struct {
	// Epoch numbers manifests within one sidecar file, strictly increasing.
	Epoch uint64
	// Counter is the manifest counter value (counter name <name>-manifest)
	// that anchors this epoch: one ROTE increment covers all shards.
	Counter uint64
	// Shards holds every shard's attested state, indexed by shard number.
	Shards []ShardState
	// Sig is the enclave's ECDSA signature over manifestDigest.
	Sig enclave.Signature
}

// manifestDigest is the message a manifest's signature attests: a domain-
// separated hash binding the log-set name (so a manifest cannot be replayed
// across deployments), the epoch, the manifest counter and every shard
// state.
func manifestDigest(name string, m *Manifest) []byte {
	h := sha256.New()
	h.Write([]byte(manifestDomain))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(len(name)))
	h.Write(u64[:])
	h.Write([]byte(name))
	binary.BigEndian.PutUint64(u64[:], m.Epoch)
	h.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], m.Counter)
	h.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(len(m.Shards)))
	h.Write(u64[:])
	for _, s := range m.Shards {
		h.Write(s.Chain[:])
		binary.BigEndian.PutUint64(u64[:], s.Seq)
		h.Write(u64[:])
		binary.BigEndian.PutUint64(u64[:], s.Counter)
		h.Write(u64[:])
	}
	return h.Sum(nil)
}

// marshalManifest encodes a manifest record payload.
func marshalManifest(m *Manifest) []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], m.Epoch)
	buf.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], m.Counter)
	buf.Write(u64[:])
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(m.Shards)))
	buf.Write(u32[:])
	for _, s := range m.Shards {
		buf.Write(s.Chain[:])
		binary.BigEndian.PutUint64(u64[:], s.Seq)
		buf.Write(u64[:])
		binary.BigEndian.PutUint64(u64[:], s.Counter)
		buf.Write(u64[:])
	}
	writeString(&buf, string(m.Sig.R))
	writeString(&buf, string(m.Sig.S))
	return buf.Bytes()
}

// parseManifest decodes a manifest record payload. Trailing bytes fail the
// parse for the same reason they fail parseSig: an inflated length field
// must not be able to swallow neighbouring records unnoticed.
func parseManifest(payload []byte) (*Manifest, error) {
	r := bytes.NewReader(payload)
	var u64 [8]byte
	m := &Manifest{}
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
	}
	m.Epoch = binary.BigEndian.Uint64(u64[:])
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
	}
	m.Counter = binary.BigEndian.Uint64(u64[:])
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
	}
	n := binary.BigEndian.Uint32(u32[:])
	if n == 0 || n > maxManifestShards {
		return nil, fmt.Errorf("%w: manifest claims %d shards", ErrTampered, n)
	}
	m.Shards = make([]ShardState, n)
	for i := range m.Shards {
		s := &m.Shards[i]
		if _, err := io.ReadFull(r, s.Chain[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
		}
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
		}
		s.Seq = binary.BigEndian.Uint64(u64[:])
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated manifest", ErrTampered)
		}
		s.Counter = binary.BigEndian.Uint64(u64[:])
	}
	rb, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated manifest signature", ErrTampered)
	}
	sb, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated manifest signature", ErrTampered)
	}
	m.Sig = enclave.Signature{R: []byte(rb), S: []byte(sb)}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after manifest", ErrTampered)
	}
	return m, nil
}

// readManifests parses a manifest sidecar stream. In tolerant mode a torn
// tail — a truncated record left by a crash mid-append — ends the stream;
// strict mode fails it. A record that parses structurally but not
// semantically fails both modes: manifests are appended with one fsync each,
// so only the final record can legitimately be torn.
func readManifests(r io.Reader, tolerant bool) ([]*Manifest, error) {
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, manifestMagic) {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrTampered)
	}
	var out []*Manifest
	var hdr [5]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || tolerant {
				return out, nil
			}
			return nil, fmt.Errorf("%w: truncated manifest record header", ErrTampered)
		}
		if hdr[0] != recManifest {
			return nil, fmt.Errorf("%w: unknown manifest record type %q", ErrTampered, hdr[0])
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		if n > maxRecordBytes {
			if tolerant {
				return out, nil
			}
			return nil, errOversized(n)
		}
		payload, err := readPayload(r, n)
		if err != nil {
			if tolerant {
				return out, nil
			}
			return nil, fmt.Errorf("%w: truncated manifest record", ErrTampered)
		}
		m, err := parseManifest(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}
