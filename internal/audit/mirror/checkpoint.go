package mirror

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"libseal/internal/audit"
)

// The mirror's own resume state: one JSON sidecar bundling each shard's
// verified-prefix checkpoint (the same audit.Checkpoint shape the offline
// resumable verifier persists), the manifest stream position with its
// record binding, and the continuity memory — the highest signed counter
// ever verified per shard and the manifest epoch/counter floor. The
// sidecar is plain unauthenticated JSON, exactly like the offline sidecar,
// and it is trusted exactly as little: every shard checkpoint is re-proved
// against a fetched signature record (Checkpoint.MatchProof), the manifest
// position against a fetched manifest record (MatchManifestProof), before
// a resumed session adopts anything. The continuity memory is the one part
// resume DOES trust — deliberately: it only ever makes the mirror
// stricter (a forged-down floor merely weakens detection back to
// cold-start level, it cannot make tampered bytes verify), and it is
// covered by the self-digest so rot degrades to a cold start.

const mirrorCheckpointVersion = 1

// manifestState is the persisted manifest-stream position and floor.
type manifestState struct {
	Offset  int64  `json:"offset"`
	RecOff  int64  `json:"rec_offset"`
	RecHash string `json:"rec_hash"`
	Epoch   uint64 `json:"epoch"`
	Counter uint64 `json:"counter"`
	Count   int    `json:"count"`
}

// state is the mirror's persisted sidecar.
type state struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Shards holds each shard's verified-prefix checkpoint; a nil entry is
	// a shard with no commit point verified yet.
	Shards []*audit.Checkpoint `json:"shards"`
	// MaxCounter is each shard's continuity floor: the highest rollback
	// counter the mirror has ever verified in that shard's signature
	// records. A reconnected stream must climb back past it (see
	// needCounter in mirror.go) or the shard is rolled back.
	MaxCounter []uint64 `json:"max_counter"`
	// Manifest is the sidecar stream state; nil before any manifest.
	Manifest *manifestState `json:"manifest,omitempty"`
	// Sum is a self-digest over every other field, as in audit.Checkpoint.
	Sum string `json:"sum"`
}

func (st *state) digest() string {
	cp := *st
	cp.Sum = ""
	data, _ := json.Marshal(&cp)
	d := sha256.Sum256(data)
	return hex.EncodeToString(d[:])
}

// save persists the sidecar atomically (temp file, fsync, rename, dir
// sync) — the same crash discipline as the offline checkpoint sidecar.
func (st *state) save(path string) error {
	st.Sum = st.digest()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// loadState reads a mirror sidecar; a missing file is (nil, nil) — a cold
// start, not an error. A corrupt sidecar is an error so the caller can
// choose to start cold explicitly rather than silently losing the floor.
func loadState(path, name string) (*state, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("mirror: corrupt checkpoint %s: %v", path, err)
	}
	if st.Version != mirrorCheckpointVersion {
		return nil, fmt.Errorf("mirror: checkpoint %s: unsupported version %d", path, st.Version)
	}
	if st.Sum != st.digest() {
		return nil, fmt.Errorf("mirror: checkpoint %s: integrity digest mismatch", path)
	}
	if st.Name != name {
		return nil, fmt.Errorf("mirror: checkpoint %s is for log set %q, not %q", path, st.Name, name)
	}
	return &st, nil
}
