package mirror

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"libseal/internal/audit"
	"libseal/internal/telemetry"
)

var (
	mFeedSubscribers = telemetry.NewGauge("audit.feed.subscribers", "subs")
	mFeedSentBytes   = telemetry.NewCounter("audit.feed.sent.bytes", "bytes")
	mFeedRestarts    = telemetry.NewCounter("audit.feed.restarts", "frames")
	mFeedDropped     = telemetry.NewCounter("audit.feed.dropped", "subs")
)

const (
	defaultChunkBytes   = 256 << 10
	defaultQueueFrames  = 64
	defaultWriteTimeout = 5 * time.Second
	defaultPollInterval = 250 * time.Millisecond
)

// FeedConfig describes the replication feed a server exposes next to a
// running audit log.
type FeedConfig struct {
	// Log is the live log set the feed tails. It must be running in disk
	// mode with its files on the real filesystem (the feed reads them with
	// plain os I/O — the files are outside-world state already, which is
	// the whole point of the trust model: the feed serves bytes, it proves
	// nothing).
	Log *audit.ShardedLog
	// Dir / Name locate the log files (Config.Dir / Config.Name of the
	// set).
	Dir  string
	Name string
	// ChunkBytes bounds one data frame's payload (default 256 KiB).
	ChunkBytes int
	// QueueFrames bounds each subscriber's outbound frame queue (default
	// 64). A subscriber that cannot drain its queue within WriteTimeout is
	// dropped — backpressure never reaches the append path.
	QueueFrames int
	// WriteTimeout bounds each frame write and the enqueue wait for a full
	// queue (default 5s).
	WriteTimeout time.Duration
	// PollInterval is the fallback wakeup cadence when commit
	// notifications are missed (default 250ms).
	PollInterval time.Duration
}

func (c *FeedConfig) chunk() int {
	if c.ChunkBytes <= 0 {
		return defaultChunkBytes
	}
	return min(c.ChunkBytes, maxFrameBytes-2)
}

func (c *FeedConfig) queue() int {
	if c.QueueFrames <= 0 {
		return defaultQueueFrames
	}
	return c.QueueFrames
}

func (c *FeedConfig) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return defaultWriteTimeout
	}
	return c.WriteTimeout
}

func (c *FeedConfig) poll() time.Duration {
	if c.PollInterval <= 0 {
		return defaultPollInterval
	}
	return c.PollInterval
}

// Feed streams a live log set to subscribers. One Feed serves any number of
// concurrent subscribers, each with its own position, queue and
// backpressure; a slow or dead subscriber is dropped without affecting the
// others or the appenders.
type Feed struct {
	cfg FeedConfig

	mu     sync.Mutex
	ln     net.Listener
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewFeed builds a feed over a running log set and installs itself as the
// set's commit listener (displacing any previous listener).
func NewFeed(cfg FeedConfig) (*Feed, error) {
	if cfg.Log == nil || cfg.Dir == "" || cfg.Name == "" {
		return nil, errors.New("mirror: FeedConfig needs Log, Dir and Name")
	}
	f := &Feed{cfg: cfg, subs: make(map[*subscriber]struct{})}
	cfg.Log.SetCommitNotify(f.Notify)
	return f, nil
}

// Notify wakes every subscriber's pump. It is installed as the log set's
// commit notifier and so runs under the log's internal locks: it must never
// block, hence the coalescing non-blocking sends.
func (f *Feed) Notify() {
	f.mu.Lock()
	for s := range f.subs {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	f.mu.Unlock()
}

// Serve accepts subscribers on ln until the listener is closed (by Close or
// externally). It blocks; run it in a goroutine.
func (f *Feed) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		ln.Close()
		return errors.New("mirror: feed closed")
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		f.addSubscriber(conn)
	}
}

func (f *Feed) addSubscriber(conn net.Conn) {
	s := &subscriber{
		feed:   f,
		conn:   conn,
		wake:   make(chan struct{}, 1),
		frames: make(chan frame, f.cfg.queue()),
		done:   make(chan struct{}),
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return
	}
	f.subs[s] = struct{}{}
	n := len(f.subs)
	f.wg.Add(2)
	f.mu.Unlock()
	mFeedSubscribers.Set(int64(n))
	go s.writeLoop()
	go s.pumpLoop()
}

func (f *Feed) removeSubscriber(s *subscriber) {
	f.mu.Lock()
	_, present := f.subs[s]
	delete(f.subs, s)
	n := len(f.subs)
	f.mu.Unlock()
	if present {
		mFeedSubscribers.Set(int64(n))
	}
}

// Subscribers reports the number of currently attached subscribers.
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// DisconnectAll severs every current subscriber connection without closing
// the listener — the chaos suite's link-drop fault. Subscribers reconnect
// and resume.
func (f *Feed) DisconnectAll() {
	f.mu.Lock()
	for s := range f.subs {
		s.conn.Close()
	}
	f.mu.Unlock()
}

// Close shuts the feed down: listener, every subscriber, and the commit
// notifier hook.
func (f *Feed) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	ln := f.ln
	for s := range f.subs {
		s.conn.Close()
	}
	f.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	f.cfg.Log.SetCommitNotify(nil)
	f.wg.Wait()
	return nil
}

// shardSet locates the set's files, mirroring the offline FindShardSet
// layout rules without re-scanning the directory.
func (f *Feed) shardSet() *audit.ShardSet {
	ss := &audit.ShardSet{Dir: f.cfg.Dir, Name: f.cfg.Name, Shards: f.cfg.Log.Shards()}
	if ss.Shards > 1 {
		ss.Manifest = filepath.Join(f.cfg.Dir, audit.ManifestFileName(f.cfg.Name))
	}
	return ss
}

// frame is one queued outbound frame.
type frame struct {
	typ     byte
	payload []byte
}

// subscriber is one attached mirror: a pump goroutine that reads committed
// log bytes and enqueues frames, and a write goroutine that drains the
// queue to the socket under a deadline.
type subscriber struct {
	feed   *Feed
	conn   net.Conn
	wake   chan struct{}
	frames chan frame
	done   chan struct{} // closed by writeLoop on exit

	// pump state
	set   *audit.ShardSet
	pos   []int64
	gens  []uint64
	files []*os.File
	mpos  int64
	mgen  uint64
	mfile *os.File
}

// send enqueues a frame, bounded by the queue and the write timeout: if the
// writer cannot drain the queue in time the subscriber is dropped.
func (s *subscriber) send(typ byte, payload []byte) error {
	t := time.NewTimer(s.feed.cfg.writeTimeout())
	defer t.Stop()
	select {
	case s.frames <- frame{typ, payload}:
		return nil
	case <-s.done:
		return errors.New("mirror: subscriber writer gone")
	case <-t.C:
		mFeedDropped.Inc()
		return errors.New("mirror: subscriber queue stalled")
	}
}

func (s *subscriber) writeLoop() {
	defer s.feed.wg.Done()
	failed := false
	for fr := range s.frames {
		if failed {
			continue // draining: pump will notice done and close the channel
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.feed.cfg.writeTimeout()))
		if err := writeFrame(s.conn, fr.typ, fr.payload); err != nil {
			s.conn.Close()
			// Signal the pump BEFORE draining, or it would keep enqueuing
			// happily forever against a dead socket.
			close(s.done)
			failed = true
			continue
		}
		mFeedSentBytes.Add(int64(5 + len(fr.payload)))
	}
	if !failed {
		close(s.done)
	}
}

func (s *subscriber) pumpLoop() {
	defer s.feed.wg.Done()
	defer s.conn.Close()
	defer s.feed.removeSubscriber(s)
	defer func() {
		close(s.frames)
		for _, f := range s.files {
			if f != nil {
				f.Close()
			}
		}
		if s.mfile != nil {
			s.mfile.Close()
		}
	}()
	if err := s.handshake(); err != nil {
		return
	}
	ticker := time.NewTicker(s.feed.cfg.poll())
	defer ticker.Stop()
	for {
		caught, err := s.pumpOnce()
		if err != nil {
			return
		}
		if !caught {
			continue
		}
		if err := s.sendTail(); err != nil {
			return
		}
		select {
		case <-s.wake:
		case <-ticker.C:
		case <-s.done:
			return
		}
	}
}

// handshake reads the hello, answers resume claims with proofs, and seeds
// the pump positions.
func (s *subscriber) handshake() error {
	s.conn.SetReadDeadline(time.Now().Add(s.feed.cfg.writeTimeout()))
	typ, payload, err := readFrame(s.conn)
	if err != nil || typ != frameHello {
		return fmt.Errorf("mirror: bad hello: %v", err)
	}
	s.conn.SetReadDeadline(time.Time{})
	var hello helloMsg
	if err := unmarshalStrict(payload, &hello); err != nil {
		return err
	}

	s.set = s.feed.shardSet()
	shards := s.set.Shards
	s.pos = make([]int64, shards)
	s.gens = make([]uint64, shards)
	s.files = make([]*os.File, shards)

	ack := ackMsg{Name: s.feed.cfg.Name, ShardsTotal: shards, Manifested: s.set.Sharded()}
	for range hello.Shards {
		ack.Shards = append(ack.Shards, shardAck{})
	}
	for k := 0; k < shards; k++ {
		// Snapshot the generation BEFORE serving the proof: if a trim
		// lands between proof and streaming, the pump's generation check
		// catches it and restarts the shard.
		s.gens[k] = s.feed.cfg.Log.Shard(k).Generation()
		if k >= len(hello.Shards) || hello.Shards[k].Offset == 0 {
			continue
		}
		claim := hello.Shards[k]
		proof, err := s.shardProof(k, claim)
		if err != nil || s.feed.cfg.Log.Shard(k).Generation() != s.gens[k] || s.gens[k]%2 == 1 {
			continue // ack stays !Ok → cold start for this shard
		}
		ack.Shards[k] = shardAck{Ok: true, Proof: proof}
		s.pos[k] = claim.Offset
	}
	if s.set.Sharded() {
		s.mgen = s.feed.cfg.Log.ManifestGeneration()
		if hello.Manifest != nil && hello.Manifest.Offset > 0 {
			proof, err := s.manifestProof(*hello.Manifest)
			if err == nil && s.feed.cfg.Log.ManifestGeneration() == s.mgen && s.mgen%2 == 0 {
				ack.ManifestOk = true
				ack.ManifestProof = proof
				s.mpos = hello.Manifest.Offset
			}
		}
	}
	return s.send(frameAck, marshalJSONFrame(ack))
}

func (s *subscriber) shardProof(k int, claim shardResume) ([]byte, error) {
	if claim.Offset > s.feed.cfg.Log.Shard(k).CommittedSize() {
		return nil, errors.New("mirror: resume past committed size")
	}
	f, err := s.file(k)
	if err != nil {
		return nil, err
	}
	return audit.SigProof(f, claim.SigOffset, claim.Offset)
}

func (s *subscriber) manifestProof(claim manifestResume) ([]byte, error) {
	if claim.Offset > s.feed.cfg.Log.ManifestCommittedSize() {
		return nil, errors.New("mirror: resume past committed size")
	}
	f, err := s.manifestFile()
	if err != nil {
		return nil, err
	}
	return audit.ManifestRecordProof(f, claim.RecOff, claim.Offset)
}

func (s *subscriber) file(k int) (*os.File, error) {
	if s.files[k] != nil {
		return s.files[k], nil
	}
	f, err := os.Open(s.set.ShardPath(k))
	if err != nil {
		return nil, err
	}
	s.files[k] = f
	return f, nil
}

func (s *subscriber) manifestFile() (*os.File, error) {
	if s.mfile != nil {
		return s.mfile, nil
	}
	f, err := os.Open(s.set.Manifest)
	if err != nil {
		return nil, err
	}
	s.mfile = f
	return f, nil
}

// pumpOnce advances every lane as far as currently committed. It reports
// whether the subscriber is fully caught up (so the pump can block on the
// next wakeup).
func (s *subscriber) pumpOnce() (caught bool, err error) {
	caught = true
	for k := 0; k < s.set.Shards; k++ {
		c, err := s.pumpShard(k)
		if err != nil {
			return false, err
		}
		caught = caught && c
	}
	if s.set.Sharded() {
		c, err := s.pumpManifest()
		if err != nil {
			return false, err
		}
		caught = caught && c
	}
	return caught, nil
}

// pumpShard streams shard k's committed bytes from the subscriber's
// position. The generation seqlock brackets every read: if a trim rewrite
// replaced the file, the subscriber gets a restart frame and re-streams
// from zero — the chunk that raced the rewrite is discarded, never sent.
func (s *subscriber) pumpShard(k int) (caught bool, err error) {
	l := s.feed.cfg.Log.Shard(k)
	g := l.Generation()
	if g%2 == 1 {
		return false, nil // mid-rewrite; retry next round
	}
	if g != s.gens[k] {
		s.gens[k] = g
		s.pos[k] = 0
		if s.files[k] != nil {
			s.files[k].Close()
			s.files[k] = nil
		}
		mFeedRestarts.Inc()
		if err := s.send(frameRestart, restartPayload(k)); err != nil {
			return false, err
		}
	}
	target := l.CommittedSize()
	for s.pos[k] < target {
		f, err := s.file(k)
		if err != nil {
			return false, nil // transient: file mid-replace; retry next round
		}
		// Clamp to the bytes actually on disk. Committed size should never
		// exceed the file, but if something truncated the file behind the
		// log's back the feed must keep serving what exists — the
		// subscriber's continuity checks are what turn the shortfall into a
		// rollback verdict, and they need a live session to run.
		if fi, err := f.Stat(); err == nil && fi.Size() < target {
			target = fi.Size()
		}
		if s.pos[k] >= target {
			break
		}
		n := min(int64(s.feed.cfg.chunk()), target-s.pos[k])
		chunk := make([]byte, n)
		if _, err := f.ReadAt(chunk, s.pos[k]); err != nil {
			if l.Generation() != s.gens[k] {
				return false, nil // replaced under us; restart next round
			}
			return false, err
		}
		if l.Generation() != s.gens[k] {
			return false, nil // chunk may span the rewrite; discard it
		}
		if err := s.send(frameData, dataPayload(k, chunk)); err != nil {
			return false, err
		}
		s.pos[k] += n
	}
	return true, nil
}

func (s *subscriber) pumpManifest() (caught bool, err error) {
	log := s.feed.cfg.Log
	g := log.ManifestGeneration()
	if g%2 == 1 {
		return false, nil
	}
	if g != s.mgen {
		s.mgen = g
		s.mpos = 0
		if s.mfile != nil {
			s.mfile.Close()
			s.mfile = nil
		}
		mFeedRestarts.Inc()
		if err := s.send(frameRestart, restartPayload(manifestShard)); err != nil {
			return false, err
		}
	}
	target := log.ManifestCommittedSize()
	for s.mpos < target {
		f, err := s.manifestFile()
		if err != nil {
			return false, nil
		}
		if fi, err := f.Stat(); err == nil && fi.Size() < target {
			target = fi.Size()
		}
		if s.mpos >= target {
			break
		}
		n := min(int64(s.feed.cfg.chunk()), target-s.mpos)
		chunk := make([]byte, n)
		if _, err := f.ReadAt(chunk, s.mpos); err != nil {
			if log.ManifestGeneration() != s.mgen {
				return false, nil
			}
			return false, err
		}
		if log.ManifestGeneration() != s.mgen {
			return false, nil
		}
		if err := s.send(frameManifest, chunk); err != nil {
			return false, err
		}
		s.mpos += n
	}
	return true, nil
}

// sendTail reports the committed sizes the subscriber has now reached.
func (s *subscriber) sendTail() error {
	t := tailMsg{Shards: make([]int64, s.set.Shards)}
	for k := 0; k < s.set.Shards; k++ {
		t.Shards[k] = s.feed.cfg.Log.Shard(k).CommittedSize()
	}
	if s.set.Sharded() {
		t.Manifest = s.feed.cfg.Log.ManifestCommittedSize()
	}
	return s.send(frameTail, marshalJSONFrame(t))
}
