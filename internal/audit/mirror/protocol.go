// Package mirror implements live audit-log replication: a feed on the
// server side streams committed log bytes and epoch manifests to
// subscribers, and a Mirror on the follower side verifies the stream
// continuously against nothing but the enclave's public key.
//
// Trust model. The feed is plumbing, not evidence: it runs outside the
// enclave and a compromised server controls every byte it sends. The mirror
// therefore re-derives integrity exactly the way an offline verifier would —
// hash chain, per-batch enclave signatures, manifest signatures and epoch
// monotonicity — and judges rollback by continuity: state the mirror has
// already verified (highest signed counter per shard, manifest epoch floor)
// can never be walked back by anything the feed sends later. What a lying
// feed CAN do is withhold bytes, which surfaces as lag, bounded by the
// mirror's staleness alarm (ErrMirrorLagging); it cannot make tampered
// bytes verify.
//
// Wire protocol. Frames are [1-byte type][4-byte big-endian length]
// [payload], the same framing discipline as the log file itself:
//
//	'H' hello    client→server JSON: subscriber name + per-shard resume
//	             claims (offset, sig record binding) + manifest resume claim
//	'A' ack      server→client JSON: per-claim verdicts with proof payloads
//	             (the raw signature / manifest record bytes the claim binds
//	             to, so the client authenticates resumption itself)
//	'D' data     [2-byte BE shard][raw log-file bytes]
//	'M' manifest [raw sidecar bytes]
//	'R' restart  [2-byte BE shard; 0xFFFF = manifest sidecar]: the file was
//	             replaced (trim rewrite); reset to offset 0, full re-send
//	             follows
//	'T' tail     server→client JSON: committed sizes per shard + sidecar,
//	             sent whenever the subscriber is caught up — the mirror's
//	             lag reference
//
// Only committed (fsynced, signature-covered) bytes are ever streamed, so a
// clean subscriber never buffers past a torn tail.
package mirror

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame types.
const (
	frameHello    = 'H'
	frameAck      = 'A'
	frameData     = 'D'
	frameManifest = 'M'
	frameRestart  = 'R'
	frameTail     = 'T'
)

// manifestShard is the shard ordinal that addresses the manifest sidecar in
// data-less frames ('R').
const manifestShard = 0xFFFF

// maxFrameBytes bounds a single frame payload; data frames are chunked well
// below this.
const maxFrameBytes = 1 << 24

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("mirror: oversized frame (%d bytes)", len(payload))
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("mirror: oversized frame (%d bytes)", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// shardResume is one shard's resume claim in a hello: "I have verified this
// file up to Offset, and the signature record at SigOffset (whose payload
// hashes to SigHash) is my binding — prove it's still there."
type shardResume struct {
	Offset    int64  `json:"offset"`
	SigOffset int64  `json:"sig_offset"`
	SigHash   string `json:"sig_hash"`
}

// manifestResume is the sidecar's resume claim: offset plus the last parsed
// manifest record's binding.
type manifestResume struct {
	Offset  int64  `json:"offset"`
	RecOff  int64  `json:"rec_offset"`
	RecHash string `json:"rec_hash"`
}

// helloMsg opens a subscription. Shards may be empty (cold start); a
// present entry with Offset 0 is also a cold start for that shard.
type helloMsg struct {
	Name     string          `json:"name"`
	Shards   []shardResume   `json:"shards,omitempty"`
	Manifest *manifestResume `json:"manifest,omitempty"`
}

// shardAck answers one shard's resume claim. Ok means the server found the
// claimed record bytes and Proof carries the record payload for the client
// to authenticate (Checkpoint.MatchProof); !Ok means the client must reset
// that shard to offset 0.
type shardAck struct {
	Ok    bool   `json:"ok"`
	Proof []byte `json:"proof,omitempty"`
}

// ackMsg answers a hello. ShardsTotal is the authoritative shard count of
// the set being streamed.
type ackMsg struct {
	Name        string     `json:"name"`
	ShardsTotal int        `json:"shards_total"`
	Shards      []shardAck `json:"shards,omitempty"`
	ManifestOk  bool       `json:"manifest_ok"`
	// ManifestProof is the raw payload of the manifest record the client's
	// resume claim binds to, present when ManifestOk.
	ManifestProof []byte `json:"manifest_proof,omitempty"`
	// Manifested reports whether the set has a sidecar at all.
	Manifested bool `json:"manifested"`
}

// tailMsg reports the server's committed sizes so the subscriber can place
// itself: verified bytes vs Shards[k] is the shard's lag, and "caught up
// with an unmet rollback obligation" is the detection trigger.
type tailMsg struct {
	Shards   []int64 `json:"shards"`
	Manifest int64   `json:"manifest"`
}

func marshalJSONFrame(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // all frame types marshal cleanly by construction
	}
	return b
}

// unmarshalStrict decodes a JSON frame payload.
func unmarshalStrict(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("mirror: bad frame payload: %v", err)
	}
	return nil
}

// restartPayload builds an 'R' frame payload for a shard (or manifestShard).
func restartPayload(shard int) []byte {
	var p [2]byte
	binary.BigEndian.PutUint16(p[:], uint16(shard))
	return p[:]
}

// dataPayload frames a shard chunk: [2-byte shard][bytes].
func dataPayload(shard int, chunk []byte) []byte {
	p := make([]byte, 2+len(chunk))
	binary.BigEndian.PutUint16(p, uint16(shard))
	copy(p[2:], chunk)
	return p
}
