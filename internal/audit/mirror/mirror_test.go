package mirror

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/enclave"
	"libseal/internal/rote"
)

const testSchema = `
CREATE TABLE updates (seq INTEGER, repo TEXT, branch TEXT, cid TEXT, op TEXT);
`

// mirrorEnv is a live sharded audit log with a replication feed listening
// on a loopback socket — the server half of every test.
type mirrorEnv struct {
	t      *testing.T
	encl   *enclave.Enclave
	bridge *asyncall.Bridge
	group  *rote.Group
	dir    string
	log    *audit.ShardedLog
	feed   *Feed
	addr   string

	stopManifests chan struct{}
	appended      atomic.Int64
}

func newMirrorEnv(t *testing.T, shards int, manifestEvery time.Duration) *mirrorEnv {
	return newMirrorEnvCfg(t, shards, manifestEvery, nil)
}

func newMirrorEnvCfg(t *testing.T, shards int, manifestEvery time.Duration, tune func(*FeedConfig)) *mirrorEnv {
	t.Helper()
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{Code: []byte("libseal-mirror-test"), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	group, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &mirrorEnv{t: t, encl: encl, bridge: bridge, group: group, dir: t.TempDir(), stopManifests: make(chan struct{})}
	e.call(func(env *asyncall.Env) error {
		var err error
		e.log, err = audit.NewSharded(env, audit.ShardedConfig{
			Config: audit.Config{Name: "git", Schema: testSchema, Mode: audit.ModeDisk, Dir: e.dir, Protector: group},
			Shards: shards, ManifestEvery: manifestEvery,
		})
		return err
	})
	fcfg := FeedConfig{Log: e.log, Dir: e.dir, Name: "git", PollInterval: 20 * time.Millisecond}
	if tune != nil {
		tune(&fcfg)
	}
	feed, err := NewFeed(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	e.feed = feed
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e.addr = ln.Addr().String()
	go feed.Serve(ln)
	// Drive the manifest cadence the way the server's periodic loop does.
	go func() {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-e.stopManifests:
				return
			case <-tick.C:
				e.bridge.Call(func(env *asyncall.Env) error {
					e.log.ManifestIfDue(env)
					return nil
				})
			}
		}
	}()
	t.Cleanup(func() {
		close(e.stopManifests)
		feed.Close()
	})
	return e
}

func (e *mirrorEnv) call(fn func(env *asyncall.Env) error) {
	e.t.Helper()
	if err := e.bridge.Call(fn); err != nil {
		e.t.Fatal(err)
	}
}

// append writes n entries spread across connection keys.
func (e *mirrorEnv) append(n int) {
	e.t.Helper()
	for i := 0; i < n; i++ {
		i := i
		key := uint64(i % 7)
		e.call(func(env *asyncall.Env) error {
			return e.log.Append(env, key, "updates", i, fmt.Sprintf("repo%d", key), "main", fmt.Sprintf("c%d", i), "update")
		})
		e.appended.Add(1)
	}
}

// appendShard writes n entries that all route to shard k.
func (e *mirrorEnv) appendShard(k, n int) {
	e.t.Helper()
	key := uint64(0)
	for e.log.ShardFor(key) != k {
		key++
	}
	for i := 0; i < n; i++ {
		i := i
		e.call(func(env *asyncall.Env) error {
			return e.log.Append(env, key, "updates", i, "victim", "main", fmt.Sprintf("v%d", i), "update")
		})
		e.appended.Add(1)
	}
}

func (e *mirrorEnv) mirrorConfig() Config {
	return Config{
		Addr:         e.addr,
		Name:         "git",
		Pub:          e.encl.PublicKey(),
		BackoffMin:   10 * time.Millisecond,
		ReadTimeout:  2 * time.Second,
		RestartGrace: 400 * time.Millisecond,
	}
}

// waitCaught polls until the mirror has verified want entries with zero
// reported lag. CaughtUp distinguishes "lag confirmed zero by a tail
// report" from the zero value before any tail arrived.
func waitCaught(t *testing.T, m *Mirror, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := m.Status()
		if s.Err != nil {
			t.Fatalf("mirror violation while catching up: %v", s.Err)
		}
		if s.Entries >= want && s.CaughtUp && s.LagBytes == 0 && s.Connected {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := m.Status()
	t.Fatalf("mirror never caught up: entries=%d want=%d lag=%d caught=%v connected=%v err=%v",
		s.Entries, want, s.LagBytes, s.CaughtUp, s.Connected, s.Err)
}

// TestMirrorLiveTail attaches a mirror to a live sharded server, then keeps
// appending: the mirror must follow the log continuously and verify every
// batch and manifest without a violation.
func TestMirrorLiveTail(t *testing.T) {
	e := newMirrorEnv(t, 4, 30*time.Millisecond)
	e.append(40)
	m, err := Start(context.Background(), e.mirrorConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())
	waitCaught(t, m, 40)

	// Live tail: new writes must flow through within the notify path.
	e.append(60)
	waitCaught(t, m, 100)

	r := m.Report()
	if !r.Live || !r.Sharded {
		t.Fatalf("Report: Live=%v Sharded=%v", r.Live, r.Sharded)
	}
	if r.TotalEntries != 100 {
		t.Fatalf("Report.TotalEntries = %d, want 100", r.TotalEntries)
	}
	if r.Tables["updates"] != 100 {
		t.Fatalf("Report.Tables = %v", r.Tables)
	}
	if r.Manifests == 0 || r.Epoch == 0 {
		t.Fatalf("Report: Manifests=%d Epoch=%d, want manifests verified", r.Manifests, r.Epoch)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("clean tail reported violation: %v", err)
	}
}

// TestMirrorResumeAfterRestart kills a caught-up mirror and starts a new
// one from its checkpoint sidecar: the new mirror must resume from the
// verified prefix (no cold rescan — the feed's restart counter stays zero
// and the report says Resumed) and still follow new writes.
func TestMirrorResumeAfterRestart(t *testing.T) {
	e := newMirrorEnv(t, 4, 30*time.Millisecond)
	ckpt := filepath.Join(t.TempDir(), "mirror.ckpt")
	e.append(50)

	cfg := e.mirrorConfig()
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = time.Millisecond
	m1, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitCaught(t, m1, 50)
	if err := m1.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Writes land while the mirror is down.
	e.append(30)

	m2, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop(context.Background())
	// Entries carries the checkpointed prefix, so the caught-up total is the
	// whole log — but only the 30-entry suffix is actually re-verified (no
	// cold rescan: Restarts stays 0 below).
	waitCaught(t, m2, 80)
	r := m2.Report()
	if !r.Resumed {
		t.Fatal("restarted mirror did not resume from its checkpoint")
	}
	if r.Restarts != 0 {
		t.Fatalf("resume caused %d cold restarts, want 0", r.Restarts)
	}
	// Whole-log totals are carried over from the checkpointed prefix.
	if r.TotalEntries != 80 {
		t.Fatalf("Report.TotalEntries = %d, want 80", r.TotalEntries)
	}
	if err := m2.Err(); err != nil {
		t.Fatalf("resumed mirror reported violation: %v", err)
	}
}

// TestMirrorDetectsRollback is the e2e attack: a single shard of a live
// sharded server is rolled back to an earlier commit point behind the
// log's back, and the link is dropped so the mirror reconnects into the
// tampered state. The mirror must report ErrBadCounter within roughly the
// restart grace (well under a second), without any live counter quorum.
func TestMirrorDetectsRollback(t *testing.T) {
	e := newMirrorEnv(t, 4, 30*time.Millisecond)
	const victim = 2
	e.appendShard(victim, 20)
	e.append(20)

	violated := make(chan error, 1)
	cfg := e.mirrorConfig()
	cfg.OnViolation = func(err error) {
		select {
		case violated <- err:
		default:
		}
	}
	m, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())
	waitCaught(t, m, 40)

	// Roll the victim shard's file back to its state as of an earlier
	// commit point, then append more so the earlier prefix really is
	// superseded state the attacker is hiding.
	path := filepath.Join(e.dir, audit.ShardName("git", victim)+".lseal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rollbackTo := fi.Size()
	e.appendShard(victim, 10)
	waitCaught(t, m, 50)

	start := time.Now()
	if err := os.Truncate(path, rollbackTo); err != nil {
		t.Fatal(err)
	}
	e.feed.DisconnectAll()

	select {
	case err := <-violated:
		if !errors.Is(err, audit.ErrBadCounter) {
			t.Fatalf("violation = %v, want ErrBadCounter", err)
		}
		t.Logf("rollback detected in %v: %v", time.Since(start), err)
	case <-time.After(15 * time.Second):
		t.Fatalf("rollback never detected; status %+v", m.Status())
	}
	if m.Err() == nil {
		t.Fatal("violation did not latch")
	}
	// The loop must stop once the mirror's attestation is void.
	select {
	case <-m.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("mirror loop did not stop after violation")
	}
}

// TestMirrorSurvivesTrim runs a trim while the mirror is attached: the
// feed must issue restart frames, the mirror must re-verify the rewritten
// files, and — because an honest rewrite re-signs with current counters —
// the continuity floor must be re-attained without a violation.
func TestMirrorSurvivesTrim(t *testing.T) {
	e := newMirrorEnv(t, 2, 30*time.Millisecond)
	e.append(30)
	m, err := Start(context.Background(), e.mirrorConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())
	waitCaught(t, m, 30)

	e.call(func(env *asyncall.Env) error {
		return e.log.Trim(env, []string{"SELECT * FROM updates WHERE seq >= 10"})
	})
	e.append(10)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := m.Status()
		if s.Err != nil {
			t.Fatalf("trim caused violation: %v", s.Err)
		}
		if s.Restarts > 0 && s.LagBytes == 0 && s.Connected {
			// Give the continuity checks a beat past the grace period to
			// prove no late violation fires.
			time.Sleep(600 * time.Millisecond)
			if err := m.Err(); err != nil {
				t.Fatalf("late violation after trim: %v", err)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("mirror never resynced after trim: %+v", m.Status())
}

// TestFeedBackpressure attaches a subscriber that never reads: the feed
// must drop it within the write timeout instead of blocking the pump, and
// the appenders must never notice.
func TestFeedBackpressure(t *testing.T) {
	// Tight feed limits so a stalled subscriber hits them quickly instead of
	// hiding behind multi-megabyte kernel socket buffers.
	e := newMirrorEnvCfg(t, 2, time.Hour, func(cfg *FeedConfig) {
		cfg.QueueFrames = 4
		cfg.ChunkBytes = 32 << 10
		cfg.WriteTimeout = 200 * time.Millisecond
	})
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A valid hello, then silence: the subscriber stops draining.
	if err := writeFrame(conn, frameHello, marshalJSONFrame(helloMsg{Name: "git"})); err != nil {
		t.Fatal(err)
	}
	// Enough data to overflow the kernel socket buffers AND the feed's frame
	// queue: only then does the drop path have to fire.
	blob := strings.Repeat("x", 64<<10)
	for i := 0; i < 256; i++ {
		i := i
		e.call(func(env *asyncall.Env) error {
			return e.log.Append(env, uint64(i%5), "updates", i, "bulk", "main", fmt.Sprintf("b%d", i), blob)
		})
	}
	deadline := time.Now().Add(30 * time.Second)
	for e.feed.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber was never dropped")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
