package mirror

import (
	"bufio"
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"libseal/internal/audit"
	"libseal/internal/resilience"
	"libseal/internal/telemetry"
)

// ErrMirrorLagging reports that the mirror has fallen further behind the
// server's committed state than the configured bound. A feed cannot make
// tampered bytes verify, but it can withhold bytes; bounded staleness is
// what turns withholding into an alarm instead of silence.
var ErrMirrorLagging = errors.New("mirror: replication lag exceeds configured bound")

var (
	mMirrorLag        = telemetry.NewGauge("mirror.lag.bytes", "bytes")
	mMirrorSeq        = telemetry.NewGauge("mirror.verified.seq", "entries")
	mMirrorEntries    = telemetry.NewCounter("mirror.verified.entries", "entries")
	mMirrorReconnects = telemetry.NewCounter("mirror.reconnects", "dials")
	mMirrorViolations = telemetry.NewCounter("mirror.violations", "violations")
)

const (
	defaultBackoffMin      = 100 * time.Millisecond
	defaultBackoffMax      = 5 * time.Second
	defaultReadTimeout     = 10 * time.Second
	defaultRestartGrace    = 10 * time.Second
	defaultCheckpointEvery = 1 * time.Second
	defaultCommitWindow    = 1024
	checkTick              = 100 * time.Millisecond
)

// Config describes a mirror session.
type Config struct {
	// Addr is the server's replication listener (FeedConfig side).
	Addr string
	// Name is the log-set name; it binds manifest digests and the
	// checkpoint sidecar.
	Name string
	// Pub is the enclave's signing public key — the ONLY trust anchor the
	// mirror holds. Required.
	Pub *ecdsa.PublicKey
	// Unseal decrypts sealed entries; required when the log is sealed.
	Unseal func([]byte) ([]byte, error)
	// CheckpointPath, when set, persists the mirror's resume state so a
	// restarted mirror continues from its verified prefix instead of
	// re-verifying from byte zero.
	CheckpointPath string
	// OnViolation observes the first (latching) violation. The mirror
	// stops verifying once a violation latches: its attestation is void.
	OnViolation func(error)
	// Dial overrides the transport (tests, in-process links). Default is a
	// TCP dial of Addr.
	Dial func(ctx context.Context) (net.Conn, error)
	// BackoffMin / BackoffMax bound the reconnect backoff (defaults
	// 100ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Breaker guards dialing: repeated dial failures open the breaker so a
	// dead server is probed, not hammered.
	Breaker resilience.BreakerConfig
	// ReadTimeout bounds how long a live session may go without a single
	// frame before the link is declared dead (default 10s; the feed
	// heartbeats with tail frames each poll interval).
	ReadTimeout time.Duration
	// MaxLag, when > 0, is the staleness bound in bytes: once the mirror
	// has caught up once, reported lag beyond this raises
	// ErrMirrorLagging.
	MaxLag int64
	// RestartGrace bounds how long a restarted stream may run without
	// re-attaining the mirror's verified counter floor (default 10s): an
	// honest trim re-signs with current counters almost immediately, so a
	// stream that stays below the floor is serving a rolled-back file.
	RestartGrace time.Duration
	// CheckpointEvery is the minimum interval between sidecar writes
	// (default 1s).
	CheckpointEvery time.Duration
	// CommitWindow is how many recent commit points per shard the mirror
	// remembers for manifest membership checks (default 1024).
	CommitWindow int
}

func (c *Config) backoffMin() time.Duration {
	if c.BackoffMin <= 0 {
		return defaultBackoffMin
	}
	return c.BackoffMin
}

func (c *Config) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return defaultBackoffMax
	}
	return c.BackoffMax
}

func (c *Config) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return defaultReadTimeout
	}
	return c.ReadTimeout
}

func (c *Config) restartGrace() time.Duration {
	if c.RestartGrace <= 0 {
		return defaultRestartGrace
	}
	return c.RestartGrace
}

func (c *Config) checkpointEvery() time.Duration {
	if c.CheckpointEvery <= 0 {
		return defaultCheckpointEvery
	}
	return c.CheckpointEvery
}

func (c *Config) commitWindow() int {
	if c.CommitWindow <= 0 {
		return defaultCommitWindow
	}
	return c.CommitWindow
}

// commitPt is one remembered commit point for manifest membership checks.
type commitPt struct {
	chain   [32]byte
	counter uint64
}

// obligation is a manifest attestation the shard stream has not yet caught
// up to: the attested state must appear at that sequence once it does.
type obligation struct {
	seq      uint64
	st       audit.ShardState
	epoch    uint64
	deadline time.Time
}

// shardState is the mirror's per-shard memory; it outlives sessions.
type shardState struct {
	// ckpt is the last verified commit point, the resume claim for the
	// next session. maxCounter is the continuity floor.
	ckpt       *audit.Checkpoint
	maxCounter uint64

	// needCounter, when non-zero, is the floor a restarted stream must
	// re-attain; needSince is when the obligation was first armed.
	needCounter uint64
	needSince   time.Time

	// Session-scoped verification state.
	v          *audit.IncrementalVerifier
	baseSeq    uint64
	serverSize int64
	sized      bool
	commits    map[uint64]commitPt
	order      []uint64
	pending    []obligation
	resumed    bool
}

// manifestMem is the mirror's sidecar memory.
type manifestMem struct {
	offset  int64
	recOff  int64
	recHash string
	epoch   uint64
	counter uint64
	count   int
	seeded  bool
}

// Mirror is a follower continuously verifying a live log over its feed.
type Mirror struct {
	cfg     Config
	breaker *resilience.Breaker
	cancel  context.CancelFunc
	done    chan struct{}

	mu          sync.Mutex
	connected   bool
	established time.Time
	sessions    int
	restarts    int
	shards      []*shardState
	mem         manifestMem
	msize       int64
	replayer    *audit.ManifestReplayer
	mreader     *audit.IncrementalManifestReader
	lag         int64
	everCaught  bool
	violation   error
	dirty       bool
	lastSave    time.Time
}

// Start attaches a mirror to a feed and begins continuous verification in
// the background. The returned Mirror reconnects with breaker-guarded
// exponential backoff until Stop or a violation latches.
func Start(ctx context.Context, cfg Config) (*Mirror, error) {
	if cfg.Pub == nil {
		return nil, errors.New("mirror: Config.Pub is required — the public key is the mirror's only trust anchor")
	}
	if cfg.Name == "" {
		return nil, errors.New("mirror: Config.Name is required")
	}
	if cfg.Addr == "" && cfg.Dial == nil {
		return nil, errors.New("mirror: Config needs Addr or Dial")
	}
	m := &Mirror{
		cfg:     cfg,
		breaker: resilience.NewBreaker("mirror.dial", cfg.Breaker),
		done:    make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		st, err := loadState(cfg.CheckpointPath, cfg.Name)
		if err != nil {
			return nil, err
		}
		if st != nil {
			m.adoptState(st)
		}
	}
	ctx, m.cancel = context.WithCancel(ctx)
	go m.run(ctx)
	return m, nil
}

// adoptState restores persisted memory. Shard checkpoints are claims, not
// facts: each is re-proved against the feed's signature record before a
// session resumes from it.
func (m *Mirror) adoptState(st *state) {
	m.shards = make([]*shardState, len(st.Shards))
	for k := range st.Shards {
		sh := &shardState{ckpt: st.Shards[k], commits: make(map[uint64]commitPt)}
		if k < len(st.MaxCounter) {
			sh.maxCounter = st.MaxCounter[k]
		}
		m.shards[k] = sh
	}
	if st.Manifest != nil {
		m.mem = manifestMem{
			offset: st.Manifest.Offset, recOff: st.Manifest.RecOff, recHash: st.Manifest.RecHash,
			epoch: st.Manifest.Epoch, counter: st.Manifest.Counter, count: st.Manifest.Count,
			seeded: true,
		}
	}
}

// Stop shuts the mirror down, persisting a final checkpoint. It returns
// once the background loop has exited or ctx expires.
func (m *Mirror) Stop(ctx context.Context) error {
	m.cancel()
	select {
	case <-m.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done is closed when the background loop has exited (Stop or a latched
// violation).
func (m *Mirror) Done() <-chan struct{} { return m.done }

// Err returns the latched violation, nil while the mirror is clean.
func (m *Mirror) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violation
}

// Status is a cheap point-in-time summary.
type Status struct {
	Connected bool
	// CaughtUp reports whether the mirror has, at some tail report, fully
	// matched the server's committed sizes (it may have fallen behind
	// again since; LagBytes is the current distance).
	CaughtUp   bool
	Reconnects int
	Restarts   int
	LagBytes   int64
	Shards     int
	Entries    int
	Manifests  int
	Epoch      uint64
	Err        error
}

// Status reports the mirror's current position.
func (m *Mirror) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Connected: m.connected, CaughtUp: m.everCaught, Reconnects: max(0, m.sessions-1),
		Restarts: m.restarts, LagBytes: m.lag, Shards: len(m.shards), Manifests: m.mem.count,
		Epoch: m.mem.epoch, Err: m.violation,
	}
	for _, sh := range m.shards {
		if sh.v != nil {
			s.Entries += sh.v.Entries()
		}
	}
	return s
}

// Report renders the mirror's verified state in the unified Report shape
// shared with the one-shot verifiers, with Live set.
func (m *Mirror) Report() *audit.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &audit.Report{
		Live: true, Connected: m.connected,
		Reconnects: max(0, m.sessions-1), Restarts: m.restarts, LagBytes: m.lag,
		Sharded: len(m.shards) > 1, Manifests: m.mem.count, Epoch: m.mem.epoch,
		Tables: make(map[string]int),
	}
	for _, sh := range m.shards {
		if sh.v == nil {
			continue
		}
		r.TotalEntries += sh.v.Entries()
		r.TotalBatches += sh.v.Batches()
		r.CommittedBytes += sh.v.Offset()
		r.Resumed = r.Resumed || sh.resumed
		for t, n := range sh.v.Tables() {
			r.Tables[t] += n
		}
	}
	return r
}

// violate latches the first violation and notifies.
func (m *Mirror) violate(err error) {
	m.mu.Lock()
	if m.violation != nil {
		m.mu.Unlock()
		return
	}
	m.violation = err
	m.mu.Unlock()
	mMirrorViolations.Inc()
	if m.cfg.OnViolation != nil {
		m.cfg.OnViolation(err)
	}
}

func (m *Mirror) dial(ctx context.Context) (net.Conn, error) {
	if m.cfg.Dial != nil {
		return m.cfg.Dial(ctx)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", m.cfg.Addr)
}

// run is the reconnect loop: breaker-guarded dial, session, backoff.
func (m *Mirror) run(ctx context.Context) {
	defer close(m.done)
	defer m.saveCheckpoint()
	backoff := m.cfg.backoffMin()
	for ctx.Err() == nil && m.Err() == nil {
		if err := m.breaker.Allow(); err != nil {
			if !sleepCtx(ctx, m.cfg.backoffMin()) {
				return
			}
			continue
		}
		conn, err := m.dial(ctx)
		if err != nil {
			m.breaker.Failure()
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff = min(backoff*2, m.cfg.backoffMax())
			continue
		}
		m.breaker.Success()
		established := m.session(ctx, conn)
		conn.Close()
		m.mu.Lock()
		m.connected = false
		m.mu.Unlock()
		if established {
			backoff = m.cfg.backoffMin()
			mMirrorReconnects.Inc()
		} else {
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff = min(backoff*2, m.cfg.backoffMax())
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// session runs one connection: handshake, then the frame loop. It reports
// whether the handshake completed (for backoff reset).
func (m *Mirror) session(ctx context.Context, conn net.Conn) bool {
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := m.handshake(conn, br); err != nil {
		return false
	}
	m.mu.Lock()
	m.connected = true
	m.established = time.Now()
	m.sessions++
	// A reconnect restores obligations whose clocks ran while the link was
	// down; their deadlines measure connected time, so extend them.
	grace := m.cfg.restartGrace()
	floor := time.Now().Add(grace)
	for _, sh := range m.shards {
		for i := range sh.pending {
			if sh.pending[i].deadline.Before(floor) {
				sh.pending[i].deadline = floor
			}
		}
	}
	m.mu.Unlock()

	type recvFrame struct {
		typ     byte
		payload []byte
	}
	frames := make(chan recvFrame, 16)
	errc := make(chan error, 1)
	sessDone := make(chan struct{})
	defer close(sessDone)
	go func() {
		for {
			conn.SetReadDeadline(time.Now().Add(m.cfg.readTimeout()))
			typ, payload, err := readFrame(br)
			if err != nil {
				select {
				case errc <- err:
				case <-sessDone:
				}
				return
			}
			select {
			case frames <- recvFrame{typ, payload}:
			case <-sessDone:
				return
			}
		}
	}()

	ticker := time.NewTicker(checkTick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return true
		case <-errc:
			return true // link error; reconnect
		case fr := <-frames:
			if err := m.handleFrame(fr.typ, fr.payload); err != nil {
				m.violate(err)
				return true
			}
		case <-ticker.C:
		}
		if err := m.timeChecks(); err != nil {
			m.violate(err)
			return true
		}
		m.maybeCheckpoint()
	}
}

// handshake sends the hello with this mirror's resume claims and
// authenticates the ack's proofs, deciding resume vs cold restart per lane.
func (m *Mirror) handshake(conn net.Conn, br *bufio.Reader) error {
	m.mu.Lock()
	hello := helloMsg{Name: m.cfg.Name}
	for _, sh := range m.shards {
		var claim shardResume
		if sh.ckpt != nil {
			claim = shardResume{Offset: sh.ckpt.Offset, SigOffset: sh.ckpt.SigOffset, SigHash: sh.ckpt.SigHash}
		}
		hello.Shards = append(hello.Shards, claim)
	}
	if m.mem.offset > 0 {
		hello.Manifest = &manifestResume{Offset: m.mem.offset, RecOff: m.mem.recOff, RecHash: m.mem.recHash}
	}
	m.mu.Unlock()

	conn.SetWriteDeadline(time.Now().Add(m.cfg.readTimeout()))
	if err := writeFrame(conn, frameHello, marshalJSONFrame(hello)); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	conn.SetReadDeadline(time.Now().Add(m.cfg.readTimeout()))
	typ, payload, err := readFrame(br)
	if err != nil {
		return err
	}
	if typ != frameAck {
		return fmt.Errorf("mirror: expected ack, got %q", typ)
	}
	var ack ackMsg
	if err := unmarshalStrict(payload, &ack); err != nil {
		return err
	}
	if ack.ShardsTotal <= 0 || ack.ShardsTotal > 1<<12 {
		return fmt.Errorf("mirror: implausible shard count %d", ack.ShardsTotal)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.shards == nil {
		m.shards = make([]*shardState, ack.ShardsTotal)
		for k := range m.shards {
			m.shards[k] = &shardState{commits: make(map[uint64]commitPt)}
		}
	} else if len(m.shards) != ack.ShardsTotal {
		// A shard-count change under a mirror with verified state cannot be
		// distinguished from serving a different log set; refuse to adapt.
		m.mu.Unlock()
		m.violate(fmt.Errorf("%w: feed reports %d shards, mirror verified %d", audit.ErrTampered, ack.ShardsTotal, len(m.shards)))
		m.mu.Lock()
		return m.violation
	}
	now := time.Now()
	for k, sh := range m.shards {
		resumed := false
		if sh.ckpt != nil && k < len(ack.Shards) && ack.Shards[k].Ok {
			if sh.ckpt.MatchProof(ack.Shards[k].Proof, m.cfg.Pub) == nil {
				v := audit.NewIncrementalVerifier(m.verifyOpts(), m.onCommit(k), nil)
				if err := v.Resume(sh.ckpt); err == nil {
					sh.v = v
					sh.resumed = true
					resumed = true
				}
			}
		}
		if !resumed {
			m.coldRestartLocked(k, sh, now)
		}
		sh.baseSeq = sh.v.Seq()
		sh.sized = false
	}
	if ack.Manifested && len(m.shards) > 1 {
		m.replayer = &audit.ManifestReplayer{Name: m.cfg.Name, Pub: m.cfg.Pub, Shards: len(m.shards)}
		if m.mem.count > 0 || m.mem.seeded {
			m.replayer.Seed(m.mem.epoch, m.mem.counter)
		}
		m.mreader = audit.NewIncrementalManifestReader(m.onManifest)
		resumed := false
		if m.mem.offset > 0 && ack.ManifestOk {
			if audit.MatchManifestProof(ack.ManifestProof, m.cfg.Name, m.cfg.Pub,
				m.mem.offset, m.mem.recOff, m.mem.recHash, m.mem.epoch, m.mem.counter) == nil {
				m.mreader.ResumeAt(m.mem.offset)
				m.mreader.ResumeRecord(m.mem.recOff, m.mem.recHash)
				resumed = true
			}
		}
		if !resumed {
			m.mem.offset, m.mem.recOff, m.mem.recHash = 0, 0, ""
		}
	}
	return nil
}

// coldRestartLocked resets a shard to a from-zero stream and arms the
// continuity obligation: if the mirror ever verified counters on this
// shard, the fresh stream must climb back past the floor or it is a
// rolled-back file.
func (m *Mirror) coldRestartLocked(k int, sh *shardState, now time.Time) {
	hadState := sh.v != nil || sh.ckpt != nil || sh.maxCounter > 0
	sh.v = audit.NewIncrementalVerifier(m.verifyOpts(), m.onCommit(k), nil)
	sh.resumed = false
	sh.ckpt = nil
	sh.commits = make(map[uint64]commitPt)
	sh.order = sh.order[:0]
	sh.pending = nil
	if sh.maxCounter > 0 && sh.needCounter == 0 {
		sh.needCounter = sh.maxCounter
		sh.needSince = now
	}
	if hadState {
		m.restarts++
	}
	m.dirty = true
}

func (m *Mirror) verifyOpts() audit.VerifyOptions {
	return audit.VerifyOptions{Pub: m.cfg.Pub, Unseal: m.cfg.Unseal}
}

// onCommit wires shard k's verifier callback.
func (m *Mirror) onCommit(k int) func(audit.CommitInfo) error {
	return func(ci audit.CommitInfo) error { return m.commitLocked(m.shards[k], k, ci) }
}

// commitLocked absorbs one verified commit point. Caller holds m.mu (the
// verifier is only fed under it).
func (m *Mirror) commitLocked(sh *shardState, k int, ci audit.CommitInfo) error {
	sh.commits[ci.Seq] = commitPt{ci.Chain, ci.Counter}
	sh.order = append(sh.order, ci.Seq)
	for len(sh.order) > m.cfg.commitWindow() {
		delete(sh.commits, sh.order[0])
		sh.order = sh.order[1:]
	}
	if ci.Counter > sh.maxCounter {
		sh.maxCounter = ci.Counter
	}
	if sh.needCounter > 0 && ci.Counter >= sh.needCounter {
		sh.needCounter = 0
	}
	sh.ckpt = sh.v.Checkpoint(k)
	m.dirty = true
	mMirrorEntries.Add(int64(ci.Entries))
	mMirrorSeq.Set(int64(ci.Seq))
	// Obligations matured by this commit: the attested state must now be a
	// member of the shard's verified commit set.
	rest := sh.pending[:0]
	for _, ob := range sh.pending {
		if ob.seq > ci.Seq {
			rest = append(rest, ob)
			continue
		}
		if err := m.checkAttestedLocked(sh, k, ob); err != nil {
			return err
		}
	}
	sh.pending = rest
	return nil
}

// checkAttestedLocked checks one matured manifest obligation against the
// shard's verified commit points — the live form of the offline verifier's
// commit-set membership check.
func (m *Mirror) checkAttestedLocked(sh *shardState, k int, ob obligation) error {
	pt, ok := sh.commits[ob.seq]
	if !ok {
		// Outside the remembered window (or before this session's resume
		// point): tolerated, the offline verifier still covers it.
		if len(sh.order) == 0 || ob.seq < sh.order[0] || ob.seq <= sh.baseSeq {
			return nil
		}
		return fmt.Errorf("%w: manifest epoch %d attests shard %d state at seq %d, which is not a verified commit point (shard rolled back)",
			audit.ErrBadCounter, ob.epoch, k, ob.seq)
	}
	if pt.chain != ob.st.Chain || pt.counter != ob.st.Counter {
		return fmt.Errorf("%w: manifest epoch %d attests shard %d state at seq %d that disagrees with the verified log (shard rolled back)",
			audit.ErrBadCounter, ob.epoch, k, ob.seq)
	}
	return nil
}

// onManifest absorbs one verified manifest: replay checks, floor advance,
// and per-shard attestation obligations. Caller holds m.mu.
func (m *Mirror) onManifest(man *audit.Manifest) error {
	if err := m.replayer.Verify(man); err != nil {
		return err
	}
	m.mem.epoch, m.mem.counter = man.Epoch, man.Counter
	m.mem.count++
	m.mem.offset = m.mreader.Offset()
	m.mem.recOff, m.mem.recHash = m.mreader.LastRecord()
	m.mem.seeded = true
	m.dirty = true
	deadline := time.Now().Add(m.cfg.restartGrace())
	for k, st := range man.Shards {
		sh := m.shards[k]
		if st.Seq == 0 && st.Counter == 0 && st.Chain == ([32]byte{}) {
			continue // shard empty at this epoch: nothing to attest
		}
		ob := obligation{seq: st.Seq, st: st, epoch: man.Epoch, deadline: deadline}
		if st.Seq <= sh.v.Seq() {
			if err := m.checkAttestedLocked(sh, k, ob); err != nil {
				return err
			}
			continue
		}
		sh.pending = append(sh.pending, ob)
	}
	return nil
}

// handleFrame dispatches one feed frame.
func (m *Mirror) handleFrame(typ byte, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch typ {
	case frameData:
		if len(payload) < 2 {
			return errors.New("mirror: malformed data frame")
		}
		k := int(payload[0])<<8 | int(payload[1])
		if k >= len(m.shards) {
			return fmt.Errorf("mirror: data frame for unknown shard %d", k)
		}
		return m.shards[k].v.Feed(payload[2:])
	case frameManifest:
		if m.mreader == nil {
			return errors.New("mirror: manifest frame for unmanifested set")
		}
		return m.mreader.Feed(payload)
	case frameRestart:
		if len(payload) < 2 {
			return errors.New("mirror: malformed restart frame")
		}
		k := int(payload[0])<<8 | int(payload[1])
		if k == manifestShard {
			if m.mreader != nil {
				m.replayer = &audit.ManifestReplayer{Name: m.cfg.Name, Pub: m.cfg.Pub, Shards: len(m.shards)}
				if m.mem.count > 0 || m.mem.seeded {
					m.replayer.Seed(m.mem.epoch, m.mem.counter)
				}
				m.mreader = audit.NewIncrementalManifestReader(m.onManifest)
				m.mem.offset, m.mem.recOff, m.mem.recHash = 0, 0, ""
				m.dirty = true
			}
			return nil
		}
		if k >= len(m.shards) {
			return fmt.Errorf("mirror: restart frame for unknown shard %d", k)
		}
		m.coldRestartLocked(k, m.shards[k], time.Now())
		m.shards[k].baseSeq = 0
		return nil
	case frameTail:
		var t tailMsg
		if err := unmarshalStrict(payload, &t); err != nil {
			return err
		}
		return m.tailLocked(t)
	default:
		return fmt.Errorf("mirror: unknown frame type %q", typ)
	}
}

// tailLocked places the mirror against the server's committed sizes: lag
// accounting and the caught-up continuity checks.
func (m *Mirror) tailLocked(t tailMsg) error {
	var lag int64
	for k, sh := range m.shards {
		if k < len(t.Shards) {
			sh.serverSize = t.Shards[k]
			sh.sized = true
		}
		if d := sh.serverSize - sh.v.Offset(); d > 0 {
			lag += d
		}
	}
	if m.mreader != nil {
		m.msize = t.Manifest
		if d := m.msize - (m.mreader.Offset() + int64(m.mreader.Buffered())); d > 0 {
			lag += d
		}
	}
	m.lag = lag
	mMirrorLag.Set(lag)
	if lag == 0 {
		m.everCaught = true
	}
	if m.cfg.MaxLag > 0 && m.everCaught && lag > m.cfg.MaxLag {
		return fmt.Errorf("%w: %d bytes behind (bound %d)", ErrMirrorLagging, lag, m.cfg.MaxLag)
	}
	return m.continuityLocked(time.Now())
}

// continuityLocked applies the rollback-by-continuity rules: a restarted
// shard stream that has caught up to the server's committed size — or been
// streaming for the whole restart grace — without re-attaining the
// verified counter floor is serving a rolled-back file. Likewise a matured
// manifest obligation on a caught-up shard.
func (m *Mirror) continuityLocked(now time.Time) error {
	grace := m.cfg.restartGrace()
	for k, sh := range m.shards {
		caught := sh.sized && sh.v.Offset() >= sh.serverSize
		if sh.needCounter > 0 {
			since := sh.needSince
			if m.established.After(since) {
				since = m.established
			}
			if caught || now.Sub(since) > grace {
				return fmt.Errorf("%w: shard %d stream restarted but never re-attained verified counter %d (last %d): shard rolled back",
					audit.ErrBadCounter, k, sh.needCounter, sh.v.MaxCounter())
			}
		}
		if caught {
			for _, ob := range sh.pending {
				if now.After(ob.deadline) {
					return fmt.Errorf("%w: manifest epoch %d attests shard %d at seq %d but the caught-up stream ends at seq %d: shard rolled back",
						audit.ErrBadCounter, ob.epoch, k, ob.seq, sh.v.Seq())
				}
			}
		}
	}
	return nil
}

// timeChecks runs the clock-driven continuity rules between frames.
func (m *Mirror) timeChecks() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.connected {
		return nil
	}
	return m.continuityLocked(time.Now())
}

// maybeCheckpoint persists the sidecar if state changed and the cadence
// allows.
func (m *Mirror) maybeCheckpoint() {
	if m.cfg.CheckpointPath == "" {
		return
	}
	m.mu.Lock()
	due := m.dirty && time.Since(m.lastSave) >= m.cfg.checkpointEvery()
	if due {
		m.dirty = false
		m.lastSave = time.Now()
	}
	m.mu.Unlock()
	if due {
		m.saveCheckpoint()
	}
}

// saveCheckpoint persists the mirror sidecar (best effort: a lost
// checkpoint only costs re-verification).
func (m *Mirror) saveCheckpoint() {
	if m.cfg.CheckpointPath == "" {
		return
	}
	m.mu.Lock()
	st := &state{Version: mirrorCheckpointVersion, Name: m.cfg.Name,
		Shards: make([]*audit.Checkpoint, len(m.shards)), MaxCounter: make([]uint64, len(m.shards))}
	for k, sh := range m.shards {
		st.Shards[k] = sh.ckpt
		st.MaxCounter[k] = sh.maxCounter
	}
	if m.mem.count > 0 || m.mem.seeded {
		st.Manifest = &manifestState{Offset: m.mem.offset, RecOff: m.mem.recOff, RecHash: m.mem.recHash,
			Epoch: m.mem.epoch, Counter: m.mem.counter, Count: m.mem.count}
	}
	m.mu.Unlock()
	st.save(m.cfg.CheckpointPath)
}
