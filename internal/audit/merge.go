package audit

import (
	"fmt"
	"sort"

	"libseal/internal/sqldb"
)

// Multi-instance log merging (§3.2). When a service scales out behind
// multiple LibSEAL instances, each instance logs only the subset of client
// interactions it terminated. Before invariant checking, the partial logs
// must be merged into one relational view. Entries carry per-instance
// logical timestamps, so the merge re-times them on a global axis that
// preserves each instance's internal order — the invariants LibSEAL uses are
// robust to the cross-instance interleaving ambiguity the same way they are
// robust to service non-determinism (§3.2).

// PartialLog is one instance's verified contribution to a merge.
type PartialLog struct {
	// Instance identifies the LibSEAL instance (e.g. its enclave
	// measurement or host name).
	Instance string
	// Entries are the instance's verified log entries, in log order.
	Entries []*Entry
}

// timeColumn is the conventional first column of every LibSEAL relation.
const timeColumn = "time"

// Merge combines verified partial logs into a single database against which
// invariants can be checked. schema is the service module's DDL. Entries are
// interleaved across instances by their local logical time (ties broken by
// instance name for determinism) and re-timed on a dense global axis.
func Merge(schema string, parts []PartialLog) (*sqldb.DB, error) {
	db := sqldb.New()
	if _, err := db.Exec(schema); err != nil {
		return nil, fmt.Errorf("audit: merge schema: %w", err)
	}
	type timed struct {
		instance string
		local    int64
		entry    *Entry
	}
	var all []timed
	for _, p := range parts {
		for _, e := range p.Entries {
			if len(e.Values) == 0 {
				return nil, fmt.Errorf("audit: merge: entry %d of %s has no values", e.Seq, p.Instance)
			}
			if e.Values[0].Kind() != sqldb.KindInt {
				return nil, fmt.Errorf("audit: merge: entry %d of %s lacks an integer %s column",
					e.Seq, p.Instance, timeColumn)
			}
			all = append(all, timed{instance: p.Instance, local: e.Values[0].Int64(), entry: e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].local != all[j].local {
			return all[i].local < all[j].local
		}
		return all[i].instance < all[j].instance
	})
	// Re-time on a dense global axis: entries that shared a local timestamp
	// within one instance (one request/response pair) must keep sharing the
	// global one, so invariants that group by time still see the pair.
	globalTime := int64(0)
	lastKey := ""
	for _, t := range all {
		key := fmt.Sprintf("%s/%d", t.instance, t.local)
		if key != lastKey {
			globalTime++
			lastKey = key
		}
		vals := make([]any, len(t.entry.Values))
		vals[0] = sqldb.Int(globalTime)
		for i := 1; i < len(t.entry.Values); i++ {
			vals[i] = t.entry.Values[i]
		}
		placeholders := ""
		for i := range vals {
			if i > 0 {
				placeholders += ","
			}
			placeholders += "?"
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", t.entry.Table, placeholders), vals...); err != nil {
			return nil, fmt.Errorf("audit: merge insert into %s: %w", t.entry.Table, err)
		}
	}
	return db, nil
}

// MergeVerified loads, verifies and merges persisted log files, one per
// instance. Each file is verified with its instance's options before its
// entries enter the merge.
func MergeVerified(schema string, files map[string]string, opts map[string]VerifyOptions) (*sqldb.DB, error) {
	var parts []PartialLog
	for instance, path := range files {
		o := opts[instance]
		entries, err := VerifyFile(path, o)
		if err != nil {
			return nil, fmt.Errorf("audit: merge: instance %s: %w", instance, err)
		}
		parts = append(parts, PartialLog{Instance: instance, Entries: entries})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Instance < parts[j].Instance })
	return Merge(schema, parts)
}
