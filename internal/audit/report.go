package audit

import "context"

// Report is the one verification result shape every entry point returns:
// one-shot path verification (Verify / VerifyContext on the facade), sharded
// set verification, and a live mirror's status all produce a *Report. It
// subsumes the older ShardedStreamResult (whose fields it keeps, name for
// name, so existing callers keep compiling) and adds the live-mirror fields
// that a one-shot scan leaves zero.
type Report struct {
	// Sharded reports whether the verified set had a manifest sidecar
	// (false for a plain single-file log).
	Sharded bool
	// Shards holds each shard's own streaming result, indexed by shard.
	// One-shot scans fill it; a live mirror leaves it nil and reports
	// aggregates only.
	Shards []*StreamResult
	// Manifests is the number of epoch manifests verified; Epoch the last
	// manifest's epoch.
	Manifests int
	Epoch     uint64
	// TotalEntries / TotalBatches aggregate across shards (checkpointed
	// prefixes included); Tables counts entries per table across the set.
	TotalEntries int
	TotalBatches int
	Tables       map[string]int
	// CommittedBytes sums the shards' verified prefix lengths.
	CommittedBytes int64
	// Resumed reports whether any shard resumed from a checkpoint.
	Resumed bool

	// Live reports whether this Report came from a running mirror rather
	// than a one-shot scan; the fields below are only meaningful then.
	Live bool
	// Connected reports whether the mirror currently holds a feed session.
	Connected bool
	// Reconnects counts completed dial attempts after the first session;
	// Restarts counts server-side restart frames (trim rewrites, resume
	// proof rejections) that forced a shard back to a cold re-read.
	Reconnects int
	Restarts   int
	// LagBytes is the mirror's best-known distance behind the server:
	// server-reported committed bytes minus locally verified bytes, summed
	// across shards. Negative is clamped to zero.
	LagBytes int64
}

// report converts a one-shot sharded result into the unified shape.
func (r *ShardedStreamResult) report() *Report {
	if r == nil {
		return nil
	}
	return &Report{
		Sharded:        r.Sharded,
		Shards:         r.Shards,
		Manifests:      r.Manifests,
		Epoch:          r.Epoch,
		TotalEntries:   r.TotalEntries,
		TotalBatches:   r.TotalBatches,
		Tables:         r.Tables,
		CommittedBytes: r.CommittedBytes,
		Resumed:        r.Resumed,
	}
}

// VerifyPathReport is VerifyPathContext returning the unified Report shape.
// The facade's Verify / VerifyContext build on this.
func VerifyPathReport(ctx context.Context, path string, opts StreamOptions) (*Report, error) {
	res, err := VerifyPathContext(ctx, path, opts)
	return res.report(), err
}
