package audit

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/faultinject"
	"libseal/internal/rote"
	"libseal/internal/vfs"
)

// Write-operation layout of a fresh log file: the magic is write 0, and each
// append issues four writes (entry header, entry payload, signature header,
// signature payload), so append k spans writes [1+4k, 4+4k].
func appendFirstWrite(k int) int { return 1 + 4*k }

func fastGroupPolicy() rote.RetryPolicy {
	return rote.RetryPolicy{
		Timeout:     100 * time.Millisecond,
		Retries:     1,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

func TestTornAppendRecovered(t *testing.T) {
	e := newAuditEnv(t)
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.TornWrite("git.lseal", appendFirstWrite(2)),
	}}.Build()

	cfg := e.diskConfig("git")
	cfg.FS = in.FS(nil)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		if err := l.Append(env, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	// The third append dies mid-write: the handle is wedged (process crash)
	// and the caller sees the failure, so the entry was never acknowledged.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 3, "r", "main", "c3", "update")
	})
	if !errors.Is(err, faultinject.ErrTornWrite) {
		t.Fatalf("torn append: %v, want ErrTornWrite", err)
	}
	if l.Seq() != 2 {
		t.Fatalf("seq advanced past the failed append: %d", l.Seq())
	}
	l.Close()

	// The torn tail makes the raw file fail strict verification...
	path := filepath.Join(e.dir, "git.lseal")
	if _, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey()}); !errors.Is(err, ErrTampered) {
		t.Fatalf("strict verify of torn file: %v, want ErrTampered", err)
	}

	// ...but recovery discards the debris and replays the committed prefix.
	// The crash happened after the counter increment but before the flush,
	// so the persisted anchor lags the group by one.
	rcfg := e.diskConfig("git")
	rcfg.RecoverMaxLag = 1
	var rec *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		rec, err = Recover(env, rcfg, e.encl.PublicKey())
		return err
	})
	defer rec.Close()
	if rec.Seq() != 2 {
		t.Fatalf("recovered seq = %d, want 2", rec.Seq())
	}
	// Recovery truncated the debris and re-anchored: the file passes strict
	// client-side verification again, and appends keep working.
	entries, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"})
	if err != nil {
		t.Fatalf("post-recovery strict verify: %v", err)
	}
	if len(entries) != 2 || entries[1].Values[3].TextVal() != "c2" {
		t.Fatalf("entries = %v", entries)
	}
	e.call(t, func(env *asyncall.Env) error {
		return rec.Append(env, "updates", 4, "r", "main", "c4", "update")
	})
	if _, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"}); err != nil {
		t.Fatalf("append after recovery broke the chain: %v", err)
	}
}

func TestENOSPCAppendRolledBack(t *testing.T) {
	e := newAuditEnv(t)
	first := appendFirstWrite(1)
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.NoSpace("git.lseal", first, first+1),
	}}.Build()
	cfg := e.diskConfig("git")
	cfg.FS = in.FS(nil)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: %v, want ENOSPC", err)
	}
	// The disk "recovers"; the same handle keeps working and the failed
	// append left no trace behind.
	e.call(t, func(env *asyncall.Env) error {
		return l.Append(env, "updates", 3, "r", "main", "c3", "update")
	})
	l.Close()
	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Values[3].TextVal() != "c3" {
		t.Fatalf("entries = %v", entries)
	}
}

// failRenameFS simulates a crash at the trim rewrite's commit point: the new
// image is fully written but the rename never lands.
type failRenameFS struct{ vfs.OS }

var errRenameCrash = errors.New("simulated crash at rename")

func (failRenameFS) Rename(oldpath, newpath string) error { return errRenameCrash }

func TestCrashBeforeTrimCommitKeepsOldChain(t *testing.T) {
	e := newAuditEnv(t)
	cfg := e.diskConfig("git")
	cfg.FS = failRenameFS{}
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		for i := 1; i <= 3; i++ {
			cid := "c" + string(rune('0'+i))
			if err := l.Append(env, "updates", i, "r", "main", cid, "update"); err != nil {
				return err
			}
		}
		return nil
	})
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Trim(env, []string{
			"DELETE FROM updates WHERE time NOT IN (SELECT MAX(time) FROM updates GROUP BY repo, branch)",
		})
	})
	if !errors.Is(err, errRenameCrash) {
		t.Fatalf("trim: %v, want rename crash", err)
	}
	// No half state: the temporary image is gone and the old log is intact.
	if _, err := os.Stat(filepath.Join(e.dir, "git.lseal.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("trim left its temporary file behind: %v", err)
	}
	// The process dies here (no Close). Recovery replays the complete old
	// chain; the trim's counter increment landed before the crash, so the
	// old file lags the group by one.
	rcfg := e.diskConfig("git")
	rcfg.RecoverMaxLag = 1
	var rec *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		rec, err = Recover(env, rcfg, e.encl.PublicKey())
		return err
	})
	defer rec.Close()
	if rec.Seq() != 3 {
		t.Fatalf("recovered seq = %d, want the full pre-trim chain (3)", rec.Seq())
	}
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	}); err != nil {
		t.Fatalf("re-anchored old chain fails verification: %v", err)
	}
}

func TestCrashAfterTrimCommitKeepsNewChain(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		for i := 1; i <= 3; i++ {
			cid := "c" + string(rune('0'+i))
			if err := l.Append(env, "updates", i, "r", "main", cid, "update"); err != nil {
				return err
			}
		}
		return l.Trim(env, []string{
			"DELETE FROM updates WHERE time NOT IN (SELECT MAX(time) FROM updates GROUP BY repo, branch)",
		})
	})
	// Crash immediately after the rename committed (no Close). Recovery
	// accepts the complete new chain — the trim re-signed it at a fresh
	// counter, so no lag allowance is needed.
	var rec *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		rec, err = Recover(env, e.diskConfig("git"), e.encl.PublicKey())
		return err
	})
	defer rec.Close()
	if rec.Seq() != 1 {
		t.Fatalf("recovered seq = %d, want the trimmed chain (1)", rec.Seq())
	}
	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Values[0].Int64() != 3 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestDegradedModeBuffersAndReanchors(t *testing.T) {
	e := newAuditEnv(t)
	e.group.SetRetryPolicy(fastGroupPolicy())
	cfg := e.diskConfig("git")
	cfg.AnchorTimeout = 150 * time.Millisecond
	cfg.DegradedLimit = 2
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	defer l.Close()
	anchored := l.Counter()

	// Kill the counter quorum (2 of 4 nodes with f = 1).
	nodes := e.group.Nodes()
	nodes[0].Fail()
	nodes[1].Fail()

	// Appends keep succeeding — persisted, chained and signed — under the
	// stale anchor, up to the degraded-mode bound.
	e.call(t, func(env *asyncall.Env) error {
		if err := l.Append(env, "updates", 2, "r", "main", "c2", "update"); err != nil {
			return err
		}
		return l.Append(env, "updates", 3, "r", "main", "c3", "update")
	})
	st := l.Status()
	if !st.Degraded || st.PendingAnchor != 2 {
		t.Fatalf("status = %+v, want degraded with 2 pending", st)
	}
	if l.Counter() != anchored {
		t.Fatalf("counter moved while the quorum was down: %d", l.Counter())
	}
	// Past the bound the append fails instead of widening the rollback
	// window without limit.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 4, "r", "main", "c4", "update")
	})
	if !errors.Is(err, ErrDegradedFull) {
		t.Fatalf("append past degraded limit: %v, want ErrDegradedFull", err)
	}
	if l.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", l.Seq())
	}

	// Quorum heals; one re-anchor covers the whole backlog and flags the gap.
	nodes[0].Recover()
	nodes[1].Recover()
	e.call(t, func(env *asyncall.Env) error { return l.Reanchor(env) })
	st = l.Status()
	if st.Degraded || st.PendingAnchor != 0 || st.Gaps != 1 {
		t.Fatalf("status after reanchor = %+v", st)
	}
	if l.Counter() <= anchored {
		t.Fatalf("reanchor did not advance the counter: %d", l.Counter())
	}
	// Everything appended during the outage survives strict verification.
	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatalf("strict verify after reanchor: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
}

// TestDegradedBudgetSurvivesFailedCommit pins degraded-mode accounting to
// durable batches: a degraded-admitted append whose write fails never became
// part of the log, so it must not consume the DegradedLimit budget — and a
// later re-anchor must not record a gap over entries that do not exist.
func TestDegradedBudgetSurvivesFailedCommit(t *testing.T) {
	e := newAuditEnv(t)
	e.group.SetRetryPolicy(fastGroupPolicy())
	// Append 0 commits healthy (writes 1..4); append 1 is admitted degraded
	// and its first write fails with ENOSPC (rolled back, handle survives).
	first := appendFirstWrite(1)
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.NoSpace("git.lseal", first, first+1),
	}}.Build()
	cfg := e.diskConfig("git")
	cfg.FS = in.FS(nil)
	cfg.AnchorTimeout = 150 * time.Millisecond
	cfg.DegradedLimit = 2
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	defer l.Close()

	// Kill the counter quorum (2 of 4 nodes with f = 1).
	nodes := e.group.Nodes()
	nodes[0].Fail()
	nodes[1].Fail()

	// The failed degraded append: nothing became durable, so nothing may
	// count against the degraded budget.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("failed degraded append: %v, want ENOSPC", err)
	}
	if st := l.Status(); st.Degraded || st.PendingAnchor != 0 {
		t.Fatalf("status after failed degraded commit = %+v, want no pending", st)
	}

	// The full budget is still available: two degraded appends succeed...
	e.call(t, func(env *asyncall.Env) error {
		if err := l.Append(env, "updates", 3, "r", "main", "c3", "update"); err != nil {
			return err
		}
		return l.Append(env, "updates", 4, "r", "main", "c4", "update")
	})
	if st := l.Status(); !st.Degraded || st.PendingAnchor != 2 {
		t.Fatalf("status = %+v, want degraded with 2 pending", st)
	}
	// ...and only the next one hits the limit.
	err = e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 5, "r", "main", "c5", "update")
	})
	if !errors.Is(err, ErrDegradedFull) {
		t.Fatalf("append past degraded limit: %v, want ErrDegradedFull", err)
	}
}

func TestDegradedDisabledFailsAppend(t *testing.T) {
	e := newAuditEnv(t)
	e.group.SetRetryPolicy(fastGroupPolicy())
	cfg := e.diskConfig("git")
	cfg.AnchorTimeout = 150 * time.Millisecond // DegradedLimit stays 0
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		return err
	})
	defer l.Close()
	nodes := e.group.Nodes()
	nodes[0].Fail()
	nodes[1].Fail()
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	if !errors.Is(err, rote.ErrNoQuorum) {
		t.Fatalf("append without degraded mode: %v, want ErrNoQuorum", err)
	}
	if l.Seq() != 0 {
		t.Fatalf("failed append advanced seq to %d", l.Seq())
	}
}

func TestTrimNeverDegrades(t *testing.T) {
	e := newAuditEnv(t)
	e.group.SetRetryPolicy(fastGroupPolicy())
	cfg := e.diskConfig("git")
	cfg.AnchorTimeout = 150 * time.Millisecond
	cfg.DegradedLimit = 8
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	defer l.Close()
	nodes := e.group.Nodes()
	nodes[0].Fail()
	nodes[1].Fail()
	// Re-signing trimmed history at a stale counter would widen the rollback
	// window, so a trim must fail outright while the quorum is down even
	// though appends would degrade gracefully.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Trim(env, []string{"DELETE FROM updates"})
	})
	if !errors.Is(err, rote.ErrNoQuorum) {
		t.Fatalf("trim under dead quorum: %v, want ErrNoQuorum", err)
	}
	nodes[0].Recover()
	nodes[1].Recover()
	// The old chain is untouched. The trim's failed increment may have
	// landed on the minority of live nodes, so the group can read one ahead
	// of the log's anchor — the standard crashed-increment lag.
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git", MaxCounterLag: 1,
	}); err != nil {
		t.Fatalf("old chain after failed trim: %v", err)
	}
}

func TestRecoverCounterLag(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	l.Close()
	// A crash between a counter increment and the matching signature flush
	// leaves the group one ahead of the persisted anchor.
	if _, err := e.group.Increment("git"); err != nil {
		t.Fatal(err)
	}
	// Strict recovery refuses the lag: it is indistinguishable from a
	// rolled-back log at this layer.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		_, err := Recover(env, e.diskConfig("git"), e.encl.PublicKey())
		return err
	})
	if !errors.Is(err, ErrBadCounter) {
		t.Fatalf("strict recover: %v, want ErrBadCounter", err)
	}
	// With the documented one-increment allowance, recovery succeeds and
	// immediately re-anchors, so clients never see the lag.
	rcfg := e.diskConfig("git")
	rcfg.RecoverMaxLag = 1
	var rec *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		rec, err = Recover(env, rcfg, e.encl.PublicKey())
		return err
	})
	defer rec.Close()
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	}); err != nil {
		t.Fatalf("strict verify after lag recovery: %v", err)
	}
}

func TestSilentCorruptionDetected(t *testing.T) {
	e := newAuditEnv(t)
	// Corrupt the first entry's payload write. The write reports success, so
	// the log believes the entry is durable — only verification can tell.
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.CorruptWrite("git.lseal", appendFirstWrite(0)+1),
	}}.Build()
	cfg := e.diskConfig("git")
	cfg.FS = in.FS(nil)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		if err := l.Append(env, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	l.Close()
	path := filepath.Join(e.dir, "git.lseal")
	if _, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey()}); !errors.Is(err, ErrTampered) {
		t.Fatalf("strict verify of corrupted log: %v, want ErrTampered", err)
	}
	// Recovery must not paper over it either: the damage sits inside the
	// signed prefix (signatures follow it), which is tampering, not a torn
	// tail.
	err := e.bridge.Call(func(env *asyncall.Env) error {
		rcfg := e.diskConfig("git")
		rcfg.RecoverMaxLag = 1
		_, err := Recover(env, rcfg, e.encl.PublicKey())
		return err
	})
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("recover from corrupted log: %v, want ErrTampered", err)
	}
}
