package audit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"libseal/internal/sqldb"
)

// ErrCodec indicates a malformed serialised log entry.
var ErrCodec = errors.New("audit: malformed log entry")

// Entry is one audit-log tuple: a row appended to one relation of the
// service's log schema.
type Entry struct {
	Seq    uint64
	Table  string
	Values []sqldb.Value
}

// value kind tags in the serialised form.
const (
	tagNull  byte = 0
	tagInt   byte = 1
	tagFloat byte = 2
	tagText  byte = 3
	tagBlob  byte = 4
)

// Marshal encodes the entry deterministically; the hash chain runs over
// this encoding.
func (e *Entry) Marshal() []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], e.Seq)
	buf.Write(u64[:])
	writeString(&buf, e.Table)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(e.Values)))
	buf.Write(u16[:])
	for _, v := range e.Values {
		switch v.Kind() {
		case sqldb.KindNull:
			buf.WriteByte(tagNull)
		case sqldb.KindInt:
			buf.WriteByte(tagInt)
			binary.BigEndian.PutUint64(u64[:], uint64(v.Int64()))
			buf.Write(u64[:])
		case sqldb.KindFloat:
			buf.WriteByte(tagFloat)
			binary.BigEndian.PutUint64(u64[:], math.Float64bits(v.Float64()))
			buf.Write(u64[:])
		case sqldb.KindText:
			buf.WriteByte(tagText)
			writeString(&buf, v.TextVal())
		case sqldb.KindBlob:
			buf.WriteByte(tagBlob)
			writeString(&buf, string(v.BlobVal()))
		}
	}
	return buf.Bytes()
}

// UnmarshalEntry decodes an entry produced by Marshal.
func UnmarshalEntry(data []byte) (*Entry, error) {
	r := bytes.NewReader(data)
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return nil, ErrCodec
	}
	e := &Entry{Seq: binary.BigEndian.Uint64(u64[:])}
	table, err := readString(r)
	if err != nil {
		return nil, err
	}
	e.Table = table
	var u16 [2]byte
	if _, err := io.ReadFull(r, u16[:]); err != nil {
		return nil, ErrCodec
	}
	n := int(binary.BigEndian.Uint16(u16[:]))
	for i := 0; i < n; i++ {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, ErrCodec
		}
		switch tag {
		case tagNull:
			e.Values = append(e.Values, sqldb.Null())
		case tagInt:
			if _, err := io.ReadFull(r, u64[:]); err != nil {
				return nil, ErrCodec
			}
			e.Values = append(e.Values, sqldb.Int(int64(binary.BigEndian.Uint64(u64[:]))))
		case tagFloat:
			if _, err := io.ReadFull(r, u64[:]); err != nil {
				return nil, ErrCodec
			}
			e.Values = append(e.Values, sqldb.Float(math.Float64frombits(binary.BigEndian.Uint64(u64[:]))))
		case tagText:
			s, err := readString(r)
			if err != nil {
				return nil, err
			}
			e.Values = append(e.Values, sqldb.Text(s))
		case tagBlob:
			s, err := readString(r)
			if err != nil {
				return nil, err
			}
			e.Values = append(e.Values, sqldb.Blob([]byte(s)))
		default:
			return nil, fmt.Errorf("%w: unknown value tag %d", ErrCodec, tag)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCodec)
	}
	return e, nil
}

func writeString(buf *bytes.Buffer, s string) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	buf.Write(l[:])
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", ErrCodec
	}
	n := binary.BigEndian.Uint32(l[:])
	if int(n) > r.Len() {
		return "", ErrCodec
	}
	b := make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(r, b); err != nil {
			return "", ErrCodec
		}
	}
	return string(b), nil
}
