// Package audit implements LibSEAL's tamper-evident relational audit log
// (§5.1). Tuples extracted by service-specific modules are inserted into an
// embedded in-enclave database and, in disk mode, serialised to untrusted
// persistent storage protected by a hash chain, per-append ECDSA signatures
// produced inside the enclave, and a distributed monotonic counter that
// defeats rollback attacks. Trimming queries prune entries no longer needed
// by the invariants; the chain is recomputed over the surviving tuples.
package audit

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/sqldb"
	"libseal/internal/telemetry"
	"libseal/internal/vfs"
)

// Audit-log telemetry: append/trim latency dominates the request-path
// overhead (§7.2), chain length tracks log growth between trims, and the
// degraded-mode series records how often the counter quorum dropped out and
// how many anchor gaps the log carries.
var (
	mAppends          = telemetry.NewCounter("audit.appends", "calls")
	mTrims            = telemetry.NewCounter("audit.trims", "calls")
	mAppendLatency    = telemetry.NewHistogram("audit.append.latency", "ns")
	mTrimLatency      = telemetry.NewHistogram("audit.trim.latency", "ns")
	mChainLength      = telemetry.NewGauge("audit.chain_length", "entries")
	mDegradedEpisodes = telemetry.NewCounter("audit.degraded.episodes", "episodes")
	mDegradedPending  = telemetry.NewGauge("audit.degraded.pending", "appends")
	mGaps             = telemetry.NewCounter("audit.degraded.gaps", "gaps")
)

// Errors reported by the audit log.
var (
	ErrTampered   = errors.New("audit: log integrity violation")
	ErrBadCounter = errors.New("audit: rollback detected (stale counter)")
	// ErrDegradedFull is returned by Append when the counter quorum is
	// unreachable and the degraded-mode buffer is exhausted.
	ErrDegradedFull = errors.New("audit: degraded-mode buffer full (counter quorum unreachable)")
)

// Mode selects where the log lives.
type Mode int

// Log persistence modes, matching the paper's LibSEAL-mem / LibSEAL-disk
// configurations.
const (
	ModeMemory Mode = iota
	ModeDisk
)

// RollbackProtector is the monotonic counter service used for freshness.
// rote.Group implements it; a nil protector disables rollback protection.
type RollbackProtector interface {
	Increment(name string) (uint64, error)
	Read(name string) (uint64, error)
}

// ContextRollbackProtector is implemented by protectors whose operations
// can be cancelled. When the configured protector implements it, the log
// bounds every counter operation with Config.AnchorTimeout so a stuck
// quorum cannot stall the request path indefinitely. rote.Group implements
// it.
type ContextRollbackProtector interface {
	IncrementContext(ctx context.Context, name string) (uint64, error)
	ReadContext(ctx context.Context, name string) (uint64, error)
}

// Config describes one audit log.
type Config struct {
	// Name identifies the log (counter name, file name).
	Name string
	// Schema is the DDL creating the service-specific relations and views.
	Schema string
	// Mode selects memory-only or persistent operation.
	Mode Mode
	// Dir is the persistence directory (ModeDisk).
	Dir string
	// Protector provides rollback protection for ModeDisk.
	Protector RollbackProtector
	// Seal encrypts entries on disk using the enclave sealing key, for
	// log privacy (§6.3).
	Seal bool
	// FS overrides the filesystem used for persistence; nil uses the real
	// one. The seam exists for fault injection and tests.
	FS vfs.FS
	// AnchorTimeout bounds each rollback-counter operation when the
	// protector supports cancellation. Zero leaves the protector's own
	// retry policy in charge.
	AnchorTimeout time.Duration
	// DegradedLimit, when positive, enables degraded mode: if the counter
	// quorum is unreachable, up to this many appends are persisted,
	// chained and signed — but anchored at the last reachable counter
	// value. The log re-anchors (one fresh increment covers the whole
	// chain) as soon as the quorum answers again, and the gap is flagged
	// in Status. Zero means an unreachable quorum fails the append.
	DegradedLimit int
	// RecoverMaxLag tolerates the persisted counter being up to this far
	// behind the group's stable value during Recover — the state a crash
	// between a counter increment and the matching signature flush leaves
	// behind. Recovery re-anchors immediately. Zero is strict. Client-side
	// verification (VerifyFile) is not affected by this field.
	RecoverMaxLag uint64
}

// Log is the enclave-resident audit log. All mutating methods must be called
// from inside an enclave call (they take the asyncall environment) because
// persistence crosses the boundary via ocalls and signatures use the enclave
// key.
type Log struct {
	cfg Config
	fs  vfs.FS
	mu  sync.Mutex
	db  *sqldb.DB

	seq     uint64
	chain   [32]byte
	counter uint64
	heap    int64 // enclave heap charged for retained tuples

	// pendingAnchor counts appends persisted under a stale counter value
	// while the quorum is unreachable (degraded mode); gaps counts closed
	// degraded episodes.
	pendingAnchor int
	gaps          int

	file     vfs.File // outside resource, accessed via ocalls
	fileSize int64    // committed bytes; partial appends truncate back to it
	stmts    map[string]*sqldb.Stmt
}

// Status describes the log's degraded-mode state.
type Status struct {
	// Degraded is set while appended entries await a fresh counter anchor.
	Degraded bool
	// PendingAnchor is the number of appends not yet covered by a fresh
	// counter value; they are chained and signed but carry a rollback
	// window until re-anchored.
	PendingAnchor int
	// Gaps counts degraded episodes that have been closed by re-anchoring.
	Gaps int
}

// Status returns the degraded-mode state.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Status{Degraded: l.pendingAnchor > 0, PendingAnchor: l.pendingAnchor, Gaps: l.gaps}
}

// Counter returns the last counter value anchored into the persisted log.
func (l *Log) Counter() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counter
}

// file record types.
const (
	recEntry byte = 'E'
	recSig   byte = 'S'
)

var fileMagic = []byte("LIBSEALLOG1\n")

// New creates (or truncates) an audit log. Must run inside an enclave call.
func New(env *asyncall.Env, cfg Config) (*Log, error) {
	l := &Log{cfg: cfg, fs: vfs.Default(cfg.FS), db: sqldb.New(), stmts: make(map[string]*sqldb.Stmt)}
	if cfg.Schema != "" {
		if _, err := l.db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	if cfg.Mode == ModeDisk {
		if err := env.Ocall(func() error {
			f, err := l.fs.Create(l.path())
			if err != nil {
				return err
			}
			if _, err := f.Write(fileMagic); err != nil {
				f.Close()
				return err
			}
			l.file = f
			l.fileSize = int64(len(fileMagic))
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *Log) path() string {
	return filepath.Join(l.cfg.Dir, l.cfg.Name+".lseal")
}

// DB exposes the underlying relational database for invariant queries.
func (l *Log) DB() *sqldb.DB { return l.db }

// Seq returns the number of entries appended since creation or recovery.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ChainHash returns the current head of the hash chain.
func (l *Log) ChainHash() [32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain
}

// insertStmt returns a cached prepared INSERT for the table.
func (l *Log) insertStmt(table string, arity int) (*sqldb.Stmt, error) {
	key := fmt.Sprintf("%s/%d", table, arity)
	if st, ok := l.stmts[key]; ok {
		return st, nil
	}
	placeholders := strings.TrimSuffix(strings.Repeat("?,", arity), ",")
	st, err := l.db.Prepare(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, placeholders))
	if err != nil {
		return nil, err
	}
	l.stmts[key] = st
	return st, nil
}

// Append adds one tuple to the named relation: it is inserted into the
// database, chained into the running hash, and (in disk mode) synchronously
// persisted under a fresh monotonic counter value and enclave signature.
func (l *Log) Append(env *asyncall.Env, table string, vals ...any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	mAppends.Inc()
	defer telemetry.ObserveSince(mAppendLatency, "audit.append", time.Now())
	svals := make([]sqldb.Value, len(vals))
	for i, v := range vals {
		sv, err := sqldb.FromGo(v)
		if err != nil {
			return err
		}
		svals[i] = sv
	}
	st, err := l.insertStmt(table, len(svals))
	if err != nil {
		return err
	}
	args := make([]any, len(svals))
	for i, sv := range svals {
		args[i] = sv
	}
	if _, err := st.Exec(args...); err != nil {
		return err
	}

	entry := &Entry{Seq: l.seq, Table: table, Values: svals}
	enc := entry.Marshal()
	next := chainNext(l.chain, enc)
	// Account the tuple against the enclave heap: the in-enclave database
	// pays EPC paging costs once the log outgrows the enclave page cache
	// (§2.5), which is why trimming matters beyond log-size hygiene.
	if err := env.Ctx.Alloc(int64(len(enc))); err != nil {
		return err
	}
	if l.cfg.Mode == ModeDisk {
		if err := l.persistAppend(env, enc, next); err != nil {
			env.Ctx.Free(int64(len(enc)))
			return err
		}
	}
	// The chain head moves only once the entry is durable, so the signed
	// in-memory state never runs ahead of what a crash would leave on disk.
	l.chain = next
	l.seq++
	l.heap += int64(len(enc))
	mChainLength.Set(int64(l.seq))
	return nil
}

// chainNext extends the hash chain by one entry.
func chainNext(prev [32]byte, entry []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(entry)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// incrementCounter advances the rollback counter, bounding the operation
// with AnchorTimeout when the protector supports cancellation.
func (l *Log) incrementCounter() (uint64, error) {
	if cp, ok := l.cfg.Protector.(ContextRollbackProtector); ok && l.cfg.AnchorTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), l.cfg.AnchorTimeout)
		defer cancel()
		return cp.IncrementContext(ctx, l.cfg.Name)
	}
	return l.cfg.Protector.Increment(l.cfg.Name)
}

// readCounter reads the group's stable counter under the same bound.
func (l *Log) readCounter() (uint64, error) {
	if cp, ok := l.cfg.Protector.(ContextRollbackProtector); ok && l.cfg.AnchorTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), l.cfg.AnchorTimeout)
		defer cancel()
		return cp.ReadContext(ctx, l.cfg.Name)
	}
	return l.cfg.Protector.Read(l.cfg.Name)
}

// anchor obtains a fresh counter value for the next signature. When the
// quorum is unreachable and degraded mode has buffer room, the append
// proceeds under the last reachable value; the chain stays intact and the
// next successful anchor covers the whole backlog. Called with l.mu held.
func (l *Log) anchor() error {
	if l.cfg.Protector == nil {
		return nil
	}
	c, err := l.incrementCounter()
	if err == nil {
		l.counter = c
		if l.pendingAnchor > 0 {
			// Quorum recovered: the signature about to be written anchors
			// every buffered entry. Flag the closed gap.
			l.gaps++
			l.pendingAnchor = 0
			mGaps.Inc()
			mDegradedPending.Set(0)
		}
		return nil
	}
	if l.cfg.DegradedLimit <= 0 {
		return err
	}
	if l.pendingAnchor >= l.cfg.DegradedLimit {
		return fmt.Errorf("%w: %d appends pending, last error: %v", ErrDegradedFull, l.pendingAnchor, err)
	}
	if l.pendingAnchor == 0 {
		mDegradedEpisodes.Inc()
	}
	l.pendingAnchor++
	mDegradedPending.Set(int64(l.pendingAnchor))
	return nil
}

// Reanchor attempts to close a degraded-mode gap by anchoring the chain at
// a fresh counter value; it is a no-op when the log is healthy. Must run
// inside an enclave call.
func (l *Log) Reanchor(env *asyncall.Env) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pendingAnchor == 0 || l.cfg.Protector == nil || l.cfg.Mode != ModeDisk {
		return nil
	}
	c, err := l.incrementCounter()
	if err != nil {
		return err
	}
	l.counter = c
	sig, err := l.signState(env, l.chain)
	if err != nil {
		return err
	}
	if err := env.Ocall(func() error {
		if err := writeRecord(l.file, recSig, sig); err != nil {
			return err
		}
		return l.file.Sync()
	}); err != nil {
		env.Ocall(func() error { l.file.Truncate(l.fileSize); return nil })
		return err
	}
	l.fileSize += recordSize(sig)
	l.gaps++
	l.pendingAnchor = 0
	mGaps.Inc()
	mDegradedPending.Set(0)
	return nil
}

// persistAppend writes one entry plus a fresh signature record, called with
// l.mu held from inside the enclave. chain is the prospective chain head
// including the entry. A partially-written append is rolled back by
// truncating the file to the last committed prefix, so torn writes never
// corrupt the committed log.
func (l *Log) persistAppend(env *asyncall.Env, enc []byte, chain [32]byte) error {
	if err := l.anchor(); err != nil {
		return err
	}
	payload := enc
	if l.cfg.Seal {
		sealed, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
		if err != nil {
			return err
		}
		payload = sealed
	}
	sig, err := l.signState(env, chain)
	if err != nil {
		return err
	}
	err = env.Ocall(func() error {
		if err := writeRecord(l.file, recEntry, payload); err != nil {
			return err
		}
		if err := writeRecord(l.file, recSig, sig); err != nil {
			return err
		}
		return l.file.Sync() // synchronous flush after each pair (§5.1)
	})
	if err != nil {
		// Best-effort rollback of the partial append; if the handle is dead
		// (simulated crash), recovery discards the torn tail instead.
		env.Ocall(func() error { l.file.Truncate(l.fileSize); return nil })
		return err
	}
	l.fileSize += recordSize(payload) + recordSize(sig)
	return nil
}

// recordSize is the on-disk footprint of one record.
func recordSize(payload []byte) int64 { return 5 + int64(len(payload)) }

// signState signs (chain hash || counter) with the enclave report key.
func (l *Log) signState(env *asyncall.Env, chain [32]byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(chain[:])
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], l.counter)
	buf.Write(c[:])
	digest := sha256.Sum256(buf.Bytes())
	sig, err := env.Ctx.Sign(digest[:])
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Write(chain[:])
	out.Write(c[:])
	writeString(&out, string(sig.R))
	writeString(&out, string(sig.S))
	return out.Bytes(), nil
}

// Query runs an invariant query against the log.
func (l *Log) Query(sql string, args ...any) (*sqldb.Result, error) {
	return l.db.Query(sql, args...)
}

// Exec runs arbitrary SQL against the log database (used for state tables
// maintained by stateful SSMs).
func (l *Log) Exec(sql string, args ...any) (int, error) {
	return l.db.Exec(sql, args...)
}

// Trim applies the service's trimming queries and rewrites the persisted
// log: the hash chain is recomputed over the surviving tuples, re-anchored
// at a fresh counter value and re-signed (§5.1, "Log trimming"). The
// rewrite is crash-safe: the new image is written to a temporary file,
// fsynced and atomically renamed over the old one, so a crash at any point
// leaves either the complete old log or the complete new one on disk. If
// the rewrite (or its fresh counter anchor) fails, the in-memory chain is
// left at its pre-trim state, which still matches the old on-disk log; the
// database rows are trimmed either way, and the next successful trim
// reconciles the file.
func (l *Log) Trim(env *asyncall.Env, queries []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	mTrims.Inc()
	defer telemetry.ObserveSince(mTrimLatency, "audit.trim", time.Now())
	for _, q := range queries {
		if _, err := l.db.Exec(q); err != nil {
			return fmt.Errorf("audit: trimming query %q: %w", q, err)
		}
	}
	// Rebuild the chain over the surviving rows in deterministic order.
	var newChain [32]byte
	newSeq := uint64(0)
	tables := l.db.Tables()
	sort.Strings(tables)
	var encs [][]byte
	retained := int64(0)
	for _, t := range tables {
		rows, err := l.db.TableRows(t)
		if err != nil {
			return err
		}
		for _, row := range rows {
			e := &Entry{Seq: newSeq, Table: t, Values: row}
			enc := e.Marshal()
			newChain = chainNext(newChain, enc)
			newSeq++
			encs = append(encs, enc)
			retained += int64(len(enc))
		}
	}
	commitMemory := func() {
		// Release the enclave heap freed by trimming.
		if l.heap > retained {
			env.Ctx.Free(l.heap - retained)
		}
		l.heap = retained
		l.chain = newChain
		l.seq = newSeq
		mChainLength.Set(int64(l.seq))
	}
	if l.cfg.Mode != ModeDisk {
		commitMemory()
		return nil
	}
	if l.cfg.Protector != nil {
		// A trim rewrite must carry a fresh anchor — re-signing trimmed-away
		// history at a stale counter would widen the rollback window — so an
		// unreachable quorum aborts the rewrite instead of degrading.
		c, err := l.incrementCounter()
		if err != nil {
			return err
		}
		l.counter = c
	}
	payloads := make([][]byte, len(encs))
	size := int64(len(fileMagic))
	for i, enc := range encs {
		payload := enc
		if l.cfg.Seal {
			sealed, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
			if err != nil {
				return err
			}
			payload = sealed
		}
		payloads[i] = payload
		size += recordSize(payload)
	}
	sig, err := l.signState(env, newChain)
	if err != nil {
		return err
	}
	size += recordSize(sig)
	err = env.Ocall(func() error {
		tmp := l.path() + ".tmp"
		f, err := l.fs.Create(tmp)
		if err != nil {
			return err
		}
		fail := func(err error) error {
			f.Close()
			l.fs.Remove(tmp)
			return err
		}
		if _, err := f.Write(fileMagic); err != nil {
			return fail(err)
		}
		for _, p := range payloads {
			if err := writeRecord(f, recEntry, p); err != nil {
				return fail(err)
			}
		}
		if err := writeRecord(f, recSig, sig); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		// The commit point: before the rename the old log is intact, after
		// it the new one is.
		if err := l.fs.Rename(tmp, l.path()); err != nil {
			l.fs.Remove(tmp)
			return err
		}
		nf, err := l.fs.Append(l.path())
		if err != nil {
			return err
		}
		old := l.file
		l.file = nf
		if old != nil {
			old.Close()
		}
		return nil
	})
	if err != nil {
		return err
	}
	l.fileSize = size
	commitMemory()
	if l.pendingAnchor > 0 {
		// The fresh anchor covers everything that was buffered.
		l.gaps++
		l.pendingAnchor = 0
		mGaps.Inc()
		mDegradedPending.Set(0)
	}
	return nil
}

// Close releases the log's outside resources.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file != nil {
		err := l.file.Close()
		l.file = nil
		return err
	}
	return nil
}

func writeRecord(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// fileRecord is one parsed record of a persisted log file.
type fileRecord struct {
	typ     byte
	payload []byte
	end     int64 // file offset just past this record
}

// readRecords parses the record stream. In tolerant mode a torn tail — a
// truncated record left by a crash mid-append — ends the stream instead of
// failing it; the caller then verifies the intact prefix.
func readRecords(r io.Reader, tolerant bool) ([]fileRecord, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, fileMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrTampered)
	}
	var recs []fileRecord
	offset := int64(len(fileMagic))
	var hdr [5]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			if tolerant {
				return recs, nil
			}
			return nil, fmt.Errorf("%w: truncated record header", ErrTampered)
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if tolerant {
				return recs, nil
			}
			return nil, fmt.Errorf("%w: truncated record", ErrTampered)
		}
		offset += 5 + int64(n)
		recs = append(recs, fileRecord{typ: hdr[0], payload: payload, end: offset})
	}
}

// parseSig decodes a signature record.
func parseSig(payload []byte) (chain [32]byte, counter uint64, sig enclave.Signature, err error) {
	r := bytes.NewReader(payload)
	if _, err = io.ReadFull(r, chain[:]); err != nil {
		err = ErrTampered
		return
	}
	var c [8]byte
	if _, err = io.ReadFull(r, c[:]); err != nil {
		err = ErrTampered
		return
	}
	counter = binary.BigEndian.Uint64(c[:])
	rb, err := readString(r)
	if err != nil {
		return
	}
	sb, err := readString(r)
	if err != nil {
		return
	}
	sig = enclave.Signature{R: []byte(rb), S: []byte(sb)}
	return
}

// VerifyOptions controls persisted-log verification.
type VerifyOptions struct {
	// Pub is the enclave's signing public key (bound to the enclave by an
	// attestation quote).
	Pub *ecdsa.PublicKey
	// Protector, when set, checks counter freshness against the group.
	Protector RollbackProtector
	// Name is the counter name (Config.Name).
	Name string
	// Unseal decrypts sealed entries; required when the log was written
	// with Config.Seal. It runs inside an enclave in production.
	Unseal func(blob []byte) ([]byte, error)
	// RecoverTruncated tolerates a torn tail: records after the last
	// intact, signature-covered prefix are discarded instead of failing
	// verification — they were never acknowledged as durable. Crash
	// recovery sets this; client-side evidence verification keeps it
	// false so any truncation shows up as tampering.
	RecoverTruncated bool
	// MaxCounterLag accepts a persisted counter up to this far behind the
	// group's stable value — the state left by a crash between a counter
	// increment and the matching signature flush. Recovery passes a small
	// bound and immediately re-anchors; clients keep the strict zero.
	MaxCounterLag uint64
}

// VerifyResult is the outcome of a successful verification.
type VerifyResult struct {
	// Entries are the verified tuples, in file order.
	Entries []*Entry
	// Counter is the rollback-counter value of the verified signature.
	Counter uint64
	// CommittedBytes is the length of the verified file prefix. With
	// RecoverTruncated, bytes past it are crash debris and can be cut off.
	CommittedBytes int64
}

// VerifyFile checks a persisted log's integrity: hash chain, enclave
// signature, and counter freshness. It returns the verified entries. It
// runs outside the enclave — verification requires no secrets, which is what
// lets clients audit the provider.
func VerifyFile(path string, opts VerifyOptions) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return VerifyReader(f, opts)
}

// VerifyReader verifies a persisted log from an in-memory reader.
func VerifyReader(r io.Reader, opts VerifyOptions) ([]*Entry, error) {
	res, err := VerifyReaderResult(r, opts)
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// VerifyReaderResult verifies a persisted log and reports the verified
// counter value and committed prefix length alongside the entries.
func VerifyReaderResult(r io.Reader, opts VerifyOptions) (*VerifyResult, error) {
	recs, err := readRecords(r, opts.RecoverTruncated)
	if err != nil {
		return nil, err
	}
	var entries []*Entry
	var chain [32]byte
	seq := uint64(0)
	// The commit point is the state as of the last signature record; with
	// RecoverTruncated, anything after it is crash debris.
	var lastSig *fileRecord
	commit := struct {
		entries int
		chain   [32]byte
		end     int64
	}{end: int64(len(fileMagic))}
	// tornAt marks where a tolerant scan stopped making sense of entries.
	tornAt := -1
scan:
	for i := range recs {
		rec := recs[i]
		switch rec.typ {
		case recEntry:
			raw := rec.payload
			if opts.Unseal != nil {
				if raw, err = opts.Unseal(raw); err != nil {
					if opts.RecoverTruncated {
						tornAt = i
						break scan
					}
					return nil, fmt.Errorf("%w: unseal: %v", ErrTampered, err)
				}
			}
			e, err := UnmarshalEntry(raw)
			if err != nil {
				if opts.RecoverTruncated {
					tornAt = i
					break scan
				}
				return nil, fmt.Errorf("%w: %v", ErrTampered, err)
			}
			if e.Seq != seq {
				if opts.RecoverTruncated {
					tornAt = i
					break scan
				}
				return nil, fmt.Errorf("%w: sequence gap at %d", ErrTampered, seq)
			}
			seq++
			chain = chainNext(chain, raw)
			entries = append(entries, e)
		case recSig:
			lastSig = &recs[i]
			commit.entries = len(entries)
			commit.chain = chain
			commit.end = rec.end
		default:
			return nil, fmt.Errorf("%w: unknown record type %q", ErrTampered, rec.typ)
		}
	}
	if tornAt >= 0 {
		// A malformed entry is forgivable only as uncommitted debris. Any
		// signature record beyond it proves the damage sits inside the
		// committed prefix — that is tampering, not a torn tail.
		for _, rec := range recs[tornAt+1:] {
			if rec.typ == recSig {
				return nil, fmt.Errorf("%w: corrupted entry inside signed prefix", ErrTampered)
			}
		}
	}
	if lastSig == nil {
		if len(entries) == 0 || opts.RecoverTruncated {
			// Nothing was ever committed (or only debris survives).
			return &VerifyResult{CommittedBytes: commit.end}, nil
		}
		return nil, fmt.Errorf("%w: missing signature record", ErrTampered)
	}
	sigChain, counter, sig, err := parseSig(lastSig.payload)
	if err != nil {
		return nil, err
	}
	checkChain := chain
	checkEntries := entries
	if opts.RecoverTruncated {
		checkChain = commit.chain
		checkEntries = entries[:commit.entries]
	}
	if sigChain != checkChain {
		return nil, fmt.Errorf("%w: chain hash mismatch", ErrTampered)
	}
	var buf bytes.Buffer
	buf.Write(checkChain[:])
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	buf.Write(c[:])
	digest := sha256.Sum256(buf.Bytes())
	if opts.Pub != nil && !enclave.VerifySignature(opts.Pub, digest[:], sig) {
		return nil, fmt.Errorf("%w: signature invalid", ErrTampered)
	}
	if opts.Protector != nil {
		stable, err := opts.Protector.Read(opts.Name)
		if err != nil {
			return nil, err
		}
		if counter+opts.MaxCounterLag < stable {
			return nil, fmt.Errorf("%w: log counter %d < group counter %d", ErrBadCounter, counter, stable)
		}
	}
	return &VerifyResult{Entries: checkEntries, Counter: counter, CommittedBytes: commit.end}, nil
}

// Recover rebuilds an audit log from its persisted file after a restart: the
// file is verified (chain, signature, counter freshness) and the entries are
// replayed into a fresh database. Recovery is torn-tail tolerant — records
// past the last signed prefix were never acknowledged as durable and are cut
// off — and tolerates the persisted counter lagging the group by up to
// Config.RecoverMaxLag (the state a crash between an increment and its
// signature flush leaves behind). It re-anchors the chain at a fresh counter
// value before returning. Must run inside an enclave call.
func Recover(env *asyncall.Env, cfg Config, pub *ecdsa.PublicKey) (*Log, error) {
	if cfg.Mode != ModeDisk {
		return nil, errors.New("audit: recovery requires disk mode")
	}
	l := &Log{cfg: cfg, fs: vfs.Default(cfg.FS), db: sqldb.New(), stmts: make(map[string]*sqldb.Stmt)}
	if cfg.Schema != "" {
		if _, err := l.db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	opts := VerifyOptions{
		Pub: pub, Protector: cfg.Protector, Name: cfg.Name,
		RecoverTruncated: true, MaxCounterLag: cfg.RecoverMaxLag,
	}
	if cfg.Seal {
		opts.Unseal = func(blob []byte) ([]byte, error) {
			return env.Ctx.Unseal(blob, []byte(cfg.Name))
		}
	}
	// The file is read outside (ocall); verification — which may need the
	// enclave's unsealing key — runs inside on the in-memory copy.
	var raw []byte
	if err := env.Ocall(func() error {
		var err error
		raw, err = l.fs.ReadFile(l.path())
		return err
	}); err != nil {
		return nil, err
	}
	res, err := VerifyReaderResult(bytes.NewReader(raw), opts)
	if err != nil {
		return nil, err
	}
	for _, e := range res.Entries {
		st, err := l.insertStmt(e.Table, len(e.Values))
		if err != nil {
			return nil, err
		}
		args := make([]any, len(e.Values))
		for i, sv := range e.Values {
			args[i] = sv
		}
		if _, err := st.Exec(args...); err != nil {
			return nil, err
		}
		enc := e.Marshal()
		if err := env.Ctx.Alloc(int64(len(enc))); err != nil {
			return nil, err
		}
		l.heap += int64(len(enc))
		l.chain = chainNext(l.chain, enc)
		l.seq++
	}
	l.counter = res.Counter
	// Reopen for appending, cutting off any crash debris past the committed
	// prefix so future appends extend a verified file.
	if err := env.Ocall(func() error {
		f, err := l.fs.Append(l.path())
		if err != nil {
			return err
		}
		if int64(len(raw)) > res.CommittedBytes {
			if err := f.Truncate(res.CommittedBytes); err != nil {
				f.Close()
				return err
			}
		}
		l.file = f
		return nil
	}); err != nil {
		return nil, err
	}
	l.fileSize = res.CommittedBytes
	if cfg.Protector != nil {
		// Re-anchor at a fresh counter value: if the crash lost an in-flight
		// increment, the recovered log would otherwise keep signing at a
		// value behind the group and fail strict client verification.
		if c, err := l.incrementCounter(); err == nil {
			l.counter = c
			sig, err := l.signState(env, l.chain)
			if err != nil {
				return nil, err
			}
			if err := env.Ocall(func() error {
				if err := writeRecord(l.file, recSig, sig); err != nil {
					return err
				}
				return l.file.Sync()
			}); err != nil {
				env.Ocall(func() error { l.file.Truncate(l.fileSize); return nil })
				return nil, err
			}
			l.fileSize += recordSize(sig)
		} else {
			// No fresh value to be had right now; fall back to the stable
			// read. The next successful append or Reanchor closes the lag.
			c, rerr := l.readCounter()
			if rerr != nil {
				return nil, err
			}
			if c > l.counter {
				l.counter = c
			}
		}
	}
	return l, nil
}
