// Package audit implements LibSEAL's tamper-evident relational audit log
// (§5.1). Tuples extracted by service-specific modules are inserted into an
// embedded in-enclave database and, in disk mode, serialised to untrusted
// persistent storage protected by a hash chain, per-append ECDSA signatures
// produced inside the enclave, and a distributed monotonic counter that
// defeats rollback attacks. Trimming queries prune entries no longer needed
// by the invariants; the chain is recomputed over the surviving tuples.
package audit

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/sqldb"
)

// Errors reported by the audit log.
var (
	ErrTampered   = errors.New("audit: log integrity violation")
	ErrBadCounter = errors.New("audit: rollback detected (stale counter)")
)

// Mode selects where the log lives.
type Mode int

// Log persistence modes, matching the paper's LibSEAL-mem / LibSEAL-disk
// configurations.
const (
	ModeMemory Mode = iota
	ModeDisk
)

// RollbackProtector is the monotonic counter service used for freshness.
// rote.Group implements it; a nil protector disables rollback protection.
type RollbackProtector interface {
	Increment(name string) (uint64, error)
	Read(name string) (uint64, error)
}

// Config describes one audit log.
type Config struct {
	// Name identifies the log (counter name, file name).
	Name string
	// Schema is the DDL creating the service-specific relations and views.
	Schema string
	// Mode selects memory-only or persistent operation.
	Mode Mode
	// Dir is the persistence directory (ModeDisk).
	Dir string
	// Protector provides rollback protection for ModeDisk.
	Protector RollbackProtector
	// Seal encrypts entries on disk using the enclave sealing key, for
	// log privacy (§6.3).
	Seal bool
}

// Log is the enclave-resident audit log. All mutating methods must be called
// from inside an enclave call (they take the asyncall environment) because
// persistence crosses the boundary via ocalls and signatures use the enclave
// key.
type Log struct {
	cfg Config
	mu  sync.Mutex
	db  *sqldb.DB

	seq     uint64
	chain   [32]byte
	counter uint64
	heap    int64 // enclave heap charged for retained tuples

	file  *os.File // outside resource, accessed via ocalls
	stmts map[string]*sqldb.Stmt
}

// file record types.
const (
	recEntry byte = 'E'
	recSig   byte = 'S'
)

var fileMagic = []byte("LIBSEALLOG1\n")

// New creates (or truncates) an audit log. Must run inside an enclave call.
func New(env *asyncall.Env, cfg Config) (*Log, error) {
	l := &Log{cfg: cfg, db: sqldb.New(), stmts: make(map[string]*sqldb.Stmt)}
	if cfg.Schema != "" {
		if _, err := l.db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	if cfg.Mode == ModeDisk {
		if err := env.Ocall(func() error {
			f, err := os.Create(l.path())
			if err != nil {
				return err
			}
			if _, err := f.Write(fileMagic); err != nil {
				f.Close()
				return err
			}
			l.file = f
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *Log) path() string {
	return filepath.Join(l.cfg.Dir, l.cfg.Name+".lseal")
}

// DB exposes the underlying relational database for invariant queries.
func (l *Log) DB() *sqldb.DB { return l.db }

// Seq returns the number of entries appended since creation or recovery.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ChainHash returns the current head of the hash chain.
func (l *Log) ChainHash() [32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain
}

// insertStmt returns a cached prepared INSERT for the table.
func (l *Log) insertStmt(table string, arity int) (*sqldb.Stmt, error) {
	key := fmt.Sprintf("%s/%d", table, arity)
	if st, ok := l.stmts[key]; ok {
		return st, nil
	}
	placeholders := strings.TrimSuffix(strings.Repeat("?,", arity), ",")
	st, err := l.db.Prepare(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, placeholders))
	if err != nil {
		return nil, err
	}
	l.stmts[key] = st
	return st, nil
}

// Append adds one tuple to the named relation: it is inserted into the
// database, chained into the running hash, and (in disk mode) synchronously
// persisted under a fresh monotonic counter value and enclave signature.
func (l *Log) Append(env *asyncall.Env, table string, vals ...any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	svals := make([]sqldb.Value, len(vals))
	for i, v := range vals {
		sv, err := sqldb.FromGo(v)
		if err != nil {
			return err
		}
		svals[i] = sv
	}
	st, err := l.insertStmt(table, len(svals))
	if err != nil {
		return err
	}
	args := make([]any, len(svals))
	for i, sv := range svals {
		args[i] = sv
	}
	if _, err := st.Exec(args...); err != nil {
		return err
	}

	entry := &Entry{Seq: l.seq, Table: table, Values: svals}
	enc := entry.Marshal()
	l.chain = chainNext(l.chain, enc)
	l.seq++
	// Account the tuple against the enclave heap: the in-enclave database
	// pays EPC paging costs once the log outgrows the enclave page cache
	// (§2.5), which is why trimming matters beyond log-size hygiene.
	if err := env.Ctx.Alloc(int64(len(enc))); err != nil {
		return err
	}
	l.heap += int64(len(enc))

	if l.cfg.Mode != ModeDisk {
		return nil
	}
	return l.persistAppend(env, enc)
}

// chainNext extends the hash chain by one entry.
func chainNext(prev [32]byte, entry []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(entry)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// persistAppend writes one entry plus a fresh signature record, called with
// l.mu held from inside the enclave.
func (l *Log) persistAppend(env *asyncall.Env, enc []byte) error {
	if l.cfg.Protector != nil {
		c, err := l.cfg.Protector.Increment(l.cfg.Name)
		if err != nil {
			return err
		}
		l.counter = c
	}
	payload := enc
	if l.cfg.Seal {
		sealed, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
		if err != nil {
			return err
		}
		payload = sealed
	}
	sig, err := l.signState(env)
	if err != nil {
		return err
	}
	return env.Ocall(func() error {
		if err := writeRecord(l.file, recEntry, payload); err != nil {
			return err
		}
		if err := writeRecord(l.file, recSig, sig); err != nil {
			return err
		}
		return l.file.Sync() // synchronous flush after each pair (§5.1)
	})
}

// signState signs (chain hash || counter) with the enclave report key.
func (l *Log) signState(env *asyncall.Env) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(l.chain[:])
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], l.counter)
	buf.Write(c[:])
	digest := sha256.Sum256(buf.Bytes())
	sig, err := env.Ctx.Sign(digest[:])
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Write(l.chain[:])
	out.Write(c[:])
	writeString(&out, string(sig.R))
	writeString(&out, string(sig.S))
	return out.Bytes(), nil
}

// Query runs an invariant query against the log.
func (l *Log) Query(sql string, args ...any) (*sqldb.Result, error) {
	return l.db.Query(sql, args...)
}

// Exec runs arbitrary SQL against the log database (used for state tables
// maintained by stateful SSMs).
func (l *Log) Exec(sql string, args ...any) (int, error) {
	return l.db.Exec(sql, args...)
}

// Trim applies the service's trimming queries and rewrites the persisted
// log: the hash chain is recomputed over the surviving tuples, re-anchored
// at a fresh counter value and re-signed (§5.1, "Log trimming").
func (l *Log) Trim(env *asyncall.Env, queries []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, q := range queries {
		if _, err := l.db.Exec(q); err != nil {
			return fmt.Errorf("audit: trimming query %q: %w", q, err)
		}
	}
	// Rebuild the chain over the surviving rows in deterministic order.
	l.chain = [32]byte{}
	l.seq = 0
	tables := l.db.Tables()
	sort.Strings(tables)
	var encs [][]byte
	retained := int64(0)
	for _, t := range tables {
		rows, err := l.db.TableRows(t)
		if err != nil {
			return err
		}
		for _, row := range rows {
			e := &Entry{Seq: l.seq, Table: t, Values: row}
			enc := e.Marshal()
			l.chain = chainNext(l.chain, enc)
			l.seq++
			encs = append(encs, enc)
			retained += int64(len(enc))
		}
	}
	// Release the enclave heap freed by trimming.
	if l.heap > retained {
		env.Ctx.Free(l.heap - retained)
	}
	l.heap = retained
	if l.cfg.Mode != ModeDisk {
		return nil
	}
	if l.cfg.Protector != nil {
		c, err := l.cfg.Protector.Increment(l.cfg.Name)
		if err != nil {
			return err
		}
		l.counter = c
	}
	payloads := make([][]byte, len(encs))
	for i, enc := range encs {
		payload := enc
		if l.cfg.Seal {
			sealed, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
			if err != nil {
				return err
			}
			payload = sealed
		}
		payloads[i] = payload
	}
	sig, err := l.signState(env)
	if err != nil {
		return err
	}
	return env.Ocall(func() error {
		f, err := os.Create(l.path())
		if err != nil {
			return err
		}
		if _, err := f.Write(fileMagic); err != nil {
			f.Close()
			return err
		}
		for _, p := range payloads {
			if err := writeRecord(f, recEntry, p); err != nil {
				f.Close()
				return err
			}
		}
		if err := writeRecord(f, recSig, sig); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		old := l.file
		l.file = f
		if old != nil {
			old.Close()
		}
		return nil
	})
}

// Close releases the log's outside resources.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file != nil {
		err := l.file.Close()
		l.file = nil
		return err
	}
	return nil
}

func writeRecord(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// fileRecord is one parsed record of a persisted log file.
type fileRecord struct {
	typ     byte
	payload []byte
}

func readRecords(r io.Reader) ([]fileRecord, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, fileMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrTampered)
	}
	var recs []fileRecord
	var hdr [5]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record header", ErrTampered)
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrTampered)
		}
		recs = append(recs, fileRecord{typ: hdr[0], payload: payload})
	}
}

// parseSig decodes a signature record.
func parseSig(payload []byte) (chain [32]byte, counter uint64, sig enclave.Signature, err error) {
	r := bytes.NewReader(payload)
	if _, err = io.ReadFull(r, chain[:]); err != nil {
		err = ErrTampered
		return
	}
	var c [8]byte
	if _, err = io.ReadFull(r, c[:]); err != nil {
		err = ErrTampered
		return
	}
	counter = binary.BigEndian.Uint64(c[:])
	rb, err := readString(r)
	if err != nil {
		return
	}
	sb, err := readString(r)
	if err != nil {
		return
	}
	sig = enclave.Signature{R: []byte(rb), S: []byte(sb)}
	return
}

// VerifyOptions controls persisted-log verification.
type VerifyOptions struct {
	// Pub is the enclave's signing public key (bound to the enclave by an
	// attestation quote).
	Pub *ecdsa.PublicKey
	// Protector, when set, checks counter freshness against the group.
	Protector RollbackProtector
	// Name is the counter name (Config.Name).
	Name string
	// Unseal decrypts sealed entries; required when the log was written
	// with Config.Seal. It runs inside an enclave in production.
	Unseal func(blob []byte) ([]byte, error)
}

// VerifyFile checks a persisted log's integrity: hash chain, enclave
// signature, and counter freshness. It returns the verified entries. It
// runs outside the enclave — verification requires no secrets, which is what
// lets clients audit the provider.
func VerifyFile(path string, opts VerifyOptions) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return VerifyReader(f, opts)
}

// VerifyReader verifies a persisted log from an in-memory reader.
func VerifyReader(r io.Reader, opts VerifyOptions) ([]*Entry, error) {
	recs, err := readRecords(r)
	if err != nil {
		return nil, err
	}
	var entries []*Entry
	var chain [32]byte
	var lastSig *fileRecord
	seq := uint64(0)
	for i := range recs {
		rec := recs[i]
		switch rec.typ {
		case recEntry:
			raw := rec.payload
			if opts.Unseal != nil {
				if raw, err = opts.Unseal(raw); err != nil {
					return nil, fmt.Errorf("%w: unseal: %v", ErrTampered, err)
				}
			}
			e, err := UnmarshalEntry(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrTampered, err)
			}
			if e.Seq != seq {
				return nil, fmt.Errorf("%w: sequence gap at %d", ErrTampered, seq)
			}
			seq++
			chain = chainNext(chain, raw)
			entries = append(entries, e)
		case recSig:
			lastSig = &recs[i]
		default:
			return nil, fmt.Errorf("%w: unknown record type %q", ErrTampered, rec.typ)
		}
	}
	if lastSig == nil {
		if len(entries) == 0 {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: missing signature record", ErrTampered)
	}
	sigChain, counter, sig, err := parseSig(lastSig.payload)
	if err != nil {
		return nil, err
	}
	if sigChain != chain {
		return nil, fmt.Errorf("%w: chain hash mismatch", ErrTampered)
	}
	var buf bytes.Buffer
	buf.Write(chain[:])
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	buf.Write(c[:])
	digest := sha256.Sum256(buf.Bytes())
	if opts.Pub != nil && !enclave.VerifySignature(opts.Pub, digest[:], sig) {
		return nil, fmt.Errorf("%w: signature invalid", ErrTampered)
	}
	if opts.Protector != nil {
		stable, err := opts.Protector.Read(opts.Name)
		if err != nil {
			return nil, err
		}
		if counter < stable {
			return nil, fmt.Errorf("%w: log counter %d < group counter %d", ErrBadCounter, counter, stable)
		}
	}
	return entries, nil
}

// Recover rebuilds an audit log from its persisted file after a restart: the
// file is verified (chain, signature, counter freshness) and the entries are
// replayed into a fresh database. Must run inside an enclave call.
func Recover(env *asyncall.Env, cfg Config, pub *ecdsa.PublicKey) (*Log, error) {
	if cfg.Mode != ModeDisk {
		return nil, errors.New("audit: recovery requires disk mode")
	}
	l := &Log{cfg: cfg, db: sqldb.New(), stmts: make(map[string]*sqldb.Stmt)}
	if cfg.Schema != "" {
		if _, err := l.db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	opts := VerifyOptions{Pub: pub, Protector: cfg.Protector, Name: cfg.Name}
	if cfg.Seal {
		opts.Unseal = func(blob []byte) ([]byte, error) {
			return env.Ctx.Unseal(blob, []byte(cfg.Name))
		}
	}
	// The file is read outside (ocall); verification — which may need the
	// enclave's unsealing key — runs inside on the in-memory copy.
	var raw []byte
	if err := env.Ocall(func() error {
		var err error
		raw, err = os.ReadFile(l.path())
		return err
	}); err != nil {
		return nil, err
	}
	entries, err := VerifyReader(bytes.NewReader(raw), opts)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		st, err := l.insertStmt(e.Table, len(e.Values))
		if err != nil {
			return nil, err
		}
		args := make([]any, len(e.Values))
		for i, sv := range e.Values {
			args[i] = sv
		}
		if _, err := st.Exec(args...); err != nil {
			return nil, err
		}
		enc := e.Marshal()
		l.chain = chainNext(l.chain, enc)
		l.seq++
	}
	if cfg.Protector != nil {
		c, err := cfg.Protector.Read(cfg.Name)
		if err != nil {
			return nil, err
		}
		l.counter = c
	}
	if err := env.Ocall(func() error {
		f, err := os.OpenFile(l.path(), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.file = f
		return nil
	}); err != nil {
		return nil, err
	}
	return l, nil
}
