// Package audit implements LibSEAL's tamper-evident relational audit log
// (§5.1). Tuples extracted by service-specific modules are inserted into an
// embedded in-enclave database and, in disk mode, serialised to untrusted
// persistent storage protected by a hash chain, enclave-produced ECDSA
// signatures and a distributed monotonic counter that defeats rollback
// attacks. Trimming queries prune entries no longer needed by the
// invariants; the chain is recomputed over the surviving tuples.
//
// # Group commit
//
// Writing a signature record and flushing after every entry is the
// durability-conservative default; §5.1 observes that signatures and flushes
// amortise over batches without weakening the rollback guarantee, because
// the counter anchors the batch, not the entry. With Config.BatchMax > 1 the
// log therefore group-commits: concurrent appends stage entries into the
// open batch, and the batch commits as entries… + one signature record + one
// fsync + one counter increment. The first stager of a batch is its leader
// and performs the commit with its own enclave context; followers park until
// the batch is durable. Batches commit strictly in staging (turn) order so
// the on-disk record stream always matches the hash chain. Append returns
// only once its batch is durable, and the published chain head advances only
// post-durability, exactly as in the entry-at-a-time mode.
package audit

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/sqldb"
	"libseal/internal/telemetry"
	"libseal/internal/vfs"
)

// Audit-log telemetry: append/trim latency dominates the request-path
// overhead (§7.2), chain length tracks log growth between trims, the
// degraded-mode series records how often the counter quorum dropped out,
// and the batch series shows how far group commit amortises the per-entry
// signature, fsync and counter costs.
var (
	mAppends          = telemetry.NewCounter("audit.appends", "calls")
	mAppendErrors     = telemetry.NewCounter("audit.append.errors", "calls")
	mTrims            = telemetry.NewCounter("audit.trims", "calls")
	mAppendLatency    = telemetry.NewHistogram("audit.append.latency", "ns")
	mTrimLatency      = telemetry.NewHistogram("audit.trim.latency", "ns")
	mChainLength      = telemetry.NewGauge("audit.chain_length", "entries")
	mDegradedEpisodes = telemetry.NewCounter("audit.degraded.episodes", "episodes")
	mDegradedPending  = telemetry.NewGauge("audit.degraded.pending", "appends")
	mGaps             = telemetry.NewCounter("audit.degraded.gaps", "gaps")
	mFsyncs           = telemetry.NewCounter("audit.fsyncs", "calls")
	mSignatures       = telemetry.NewCounter("audit.signatures", "calls")
	mBatchCommits     = telemetry.NewCounter("audit.batch.commits", "batches")
	mBatchAborts      = telemetry.NewCounter("audit.batch.aborts", "batches")
	mBatchSize        = telemetry.NewHistogram("audit.batch.size", "entries")
	mFlushFull        = telemetry.NewCounter("audit.batch.flush.full", "batches")
	mFlushDelay       = telemetry.NewCounter("audit.batch.flush.delay", "batches")
	mFlushIdle        = telemetry.NewCounter("audit.batch.flush.idle", "batches")
	mAdmitShed        = telemetry.NewCounter("audit.admission.shed", "calls")
	mAdmitWaits       = telemetry.NewCounter("audit.admission.waits", "calls")
	mStagedPending    = telemetry.NewGauge("audit.staged.pending", "entries")
)

// Errors reported by the audit log.
var (
	ErrTampered   = errors.New("audit: log integrity violation")
	ErrBadCounter = errors.New("audit: rollback detected (stale counter)")
	// ErrDegradedFull is returned by Append when the counter quorum is
	// unreachable and the degraded-mode buffer is exhausted.
	ErrDegradedFull = errors.New("audit: degraded-mode buffer full (counter quorum unreachable)")
	// ErrClosed is returned by Append/Stage after Close.
	ErrClosed = errors.New("audit: log closed")
	// ErrBatchAborted is returned by appends whose batch never committed
	// because an earlier batch's commit failed: their entries chain off a
	// head that never became durable.
	ErrBatchAborted = errors.New("audit: batch aborted (earlier commit failed)")
	// ErrOverloaded is returned by Append/Stage when the group-commit
	// pipeline's staging budget (Config.MaxStaged) is exhausted and did not
	// drain within Config.AdmitTimeout. A stalled fsync or counter quorum
	// then surfaces as backpressure instead of an unbounded ticket queue.
	ErrOverloaded = errors.New("audit: overloaded (staging budget exhausted)")
)

// Mode selects where the log lives.
type Mode int

// Log persistence modes, matching the paper's LibSEAL-mem / LibSEAL-disk
// configurations.
const (
	ModeMemory Mode = iota
	ModeDisk
)

// RollbackProtector is the monotonic counter service used for freshness.
// rote.Group implements it; a nil protector disables rollback protection.
type RollbackProtector interface {
	Increment(name string) (uint64, error)
	Read(name string) (uint64, error)
}

// ContextRollbackProtector is implemented by protectors whose operations
// can be cancelled. When the configured protector implements it, the log
// bounds every counter operation with Config.AnchorTimeout so a stuck
// quorum cannot stall the request path indefinitely. rote.Group implements
// it.
type ContextRollbackProtector interface {
	IncrementContext(ctx context.Context, name string) (uint64, error)
	ReadContext(ctx context.Context, name string) (uint64, error)
}

// Config describes one audit log.
type Config struct {
	// Name identifies the log (counter name, file name).
	Name string
	// Schema is the DDL creating the service-specific relations and views.
	Schema string
	// Mode selects memory-only or persistent operation.
	Mode Mode
	// Dir is the persistence directory (ModeDisk).
	Dir string
	// Protector provides rollback protection for ModeDisk.
	Protector RollbackProtector
	// Seal encrypts entries on disk using the enclave sealing key, for
	// log privacy (§6.3).
	Seal bool
	// FS overrides the filesystem used for persistence; nil uses the real
	// one. The seam exists for fault injection and tests.
	FS vfs.FS
	// AnchorTimeout bounds each rollback-counter operation when the
	// protector supports cancellation. Zero leaves the protector's own
	// retry policy in charge.
	AnchorTimeout time.Duration
	// DegradedLimit, when positive, enables degraded mode: if the counter
	// quorum is unreachable, up to this many appends are persisted,
	// chained and signed — but anchored at the last reachable counter
	// value. The log re-anchors (one fresh increment covers the whole
	// chain) as soon as the quorum answers again, and the gap is flagged
	// in Status. Zero means an unreachable quorum fails the append. With
	// batching on, admission is decided per batch, so the buffered count
	// may overshoot the limit by at most one batch.
	DegradedLimit int
	// RecoverMaxLag tolerates the persisted counter being up to this far
	// behind the group's stable value during Recover — the state a crash
	// between a counter increment and the matching signature flush leaves
	// behind. Recovery re-anchors immediately. Zero is strict. Client-side
	// verification (VerifyFile) is not affected by this field.
	RecoverMaxLag uint64
	// BatchMax caps how many entries commit under one signature record,
	// fsync and counter increment (group commit). Values <= 1 keep the
	// conservative entry-at-a-time behaviour: every append pays its own
	// signature, flush and counter round-trip.
	BatchMax int
	// BatchDelay is how long a batch leader waits for followers to fill a
	// non-full batch before committing it. Zero adds no artificial delay;
	// batching then emerges only from entries staged while an earlier
	// batch's commit is in flight. Ignored when BatchMax <= 1.
	BatchDelay time.Duration
	// MaxStaged bounds the entries staged into the commit pipeline but not
	// yet durable (admission control). A Stage that would push the backlog
	// past the bound waits up to AdmitTimeout for commits to drain, then is
	// shed with ErrOverloaded. A group larger than the whole budget is
	// admitted when the pipeline is empty, so oversized groups still make
	// progress. Zero disables the bound. Only meaningful in ModeDisk.
	MaxStaged int
	// AdmitTimeout is how long an over-budget Stage may wait for the
	// pipeline to drain before being shed. Zero sheds immediately.
	AdmitTimeout time.Duration
}

// batchMax normalises the configured batch bound.
func (c Config) batchMax() int {
	if c.BatchMax < 1 {
		return 1
	}
	return c.BatchMax
}

// Log is the enclave-resident audit log. All mutating methods must be called
// from inside an enclave call (they take the asyncall environment) because
// persistence crosses the boundary via ocalls and signatures use the enclave
// key.
type Log struct {
	cfg Config
	fs  vfs.FS
	mu  sync.Mutex
	db  *sqldb.DB

	// Durable state: published only once the covering batch is on disk.
	seq     uint64
	chain   [32]byte
	counter uint64
	heap    int64 // enclave heap charged for retained tuples

	// sigCounter is the counter value attested by the last *durable*
	// signature record. It can trail counter: anchorBatch publishes a fresh
	// value to future signers before the batch's signature hits disk. Epoch
	// manifests snapshot this value so they never attest a counter no
	// on-disk record vouches for.
	sigCounter uint64

	// Speculative state: the chain head including every staged-but-not-yet
	// -durable entry. Equal to the durable state while no batch is open.
	specSeq   uint64
	specChain [32]byte

	// Group-commit lane. cur is the open batch accepting joiners; batches
	// commit strictly in turn order (commitTurn is the next turn allowed
	// to commit, nextTurn the turn the next new batch will get). epoch
	// poisons staged batches when an earlier commit fails: their entries
	// chain off a head that never became durable.
	cur        *commitBatch
	committing bool
	commitTurn uint64
	nextTurn   uint64
	epoch      uint64
	poisonErr  error
	commitCond *sync.Cond
	closed     bool

	// pendingAnchor counts appends persisted under a stale counter value
	// while the quorum is unreachable (degraded mode); gaps counts closed
	// degraded episodes.
	pendingAnchor int
	gaps          int

	file     vfs.File // outside resource, accessed via ocalls
	fileSize int64    // committed bytes; partial appends truncate back to it
	stmts    map[string]*sqldb.Stmt

	// gen is a seqlock-style generation for the persisted file: odd while a
	// trim rewrite is replacing it, bumped back to even once the replacement
	// (or the intact old file, on failure) is authoritative. Replication-feed
	// readers snapshot it around raw file reads: a change means the bytes they
	// read may straddle two file incarnations and must be discarded.
	gen atomic.Uint64

	// notify, when non-nil, runs under l.mu after every durable change to the
	// persisted file (batch publish, re-anchor, trim rewrite). It must not
	// block; the replication feed installs a coalescing wakeup.
	notify func()
}

// commitBatch is one group of staged entries committed under a single
// signature record, fsync and counter increment.
type commitBatch struct {
	turn  uint64 // commit order ticket
	epoch uint64 // poison epoch at creation

	payloads [][]byte // encoded entries, chain order
	endChain [32]byte // chain head after the last entry
	endSeq   uint64
	bytes    int64 // enclave heap charged for the entries

	full chan struct{} // closed when the batch reaches BatchMax
	done chan struct{} // closed once the commit outcome is known
	err  error         // valid after done

	// Set by the leader during commit, read by publish (same goroutine).
	disk    int64  // on-disk footprint of the committed batch
	filled  bool   // reached BatchMax (flush-reason telemetry)
	counter uint64 // counter value the batch's signature record attests
	// Degraded-mode outcome of anchorBatch, applied by publish only once the
	// batch is durable: a fresh counter value anchors the batch (closing any
	// degraded gap), or the batch was admitted under a stale anchor and its
	// entries join the pending backlog. Entries that never become durable
	// must neither consume the degraded budget nor close a gap.
	anchorFresh bool
	degraded    int
}

// Status describes the log's degraded-mode state.
type Status struct {
	// Degraded is set while appended entries await a fresh counter anchor.
	Degraded bool
	// PendingAnchor is the number of appends not yet covered by a fresh
	// counter value; they are chained and signed but carry a rollback
	// window until re-anchored.
	PendingAnchor int
	// Gaps counts degraded episodes that have been closed by re-anchoring.
	Gaps int
}

// Status returns the degraded-mode state.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Status{Degraded: l.pendingAnchor > 0, PendingAnchor: l.pendingAnchor, Gaps: l.gaps}
}

// Counter returns the last counter value anchored into the persisted log.
func (l *Log) Counter() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counter
}

// file record types.
const (
	recEntry byte = 'E'
	recSig   byte = 'S'
)

var fileMagic = []byte("LIBSEALLOG1\n")

// New creates (or truncates) an audit log. Must run inside an enclave call.
func New(env *asyncall.Env, cfg Config) (*Log, error) {
	db := sqldb.New()
	if cfg.Schema != "" {
		if _, err := db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	return newIntoDB(env, cfg, db)
}

// newIntoDB creates a log over an existing database whose schema is already
// in place. Shards of one ShardedLog share a database this way.
func newIntoDB(env *asyncall.Env, cfg Config, db *sqldb.DB) (*Log, error) {
	l := newLogDB(cfg, db)
	if cfg.Mode == ModeDisk {
		if err := env.Ocall(func() error {
			f, err := l.fs.Create(l.path())
			if err != nil {
				return err
			}
			if _, err := f.Write(fileMagic); err != nil {
				f.Close()
				return err
			}
			l.file = f
			l.fileSize = int64(len(fileMagic))
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func newLog(cfg Config) *Log {
	return newLogDB(cfg, sqldb.New())
}

// newLogDB builds a log around an existing database. Shards of one
// ShardedLog share a single database so invariant queries see the whole
// relational view while each shard keeps its own chain, file and counter.
func newLogDB(cfg Config, db *sqldb.DB) *Log {
	l := &Log{cfg: cfg, fs: vfs.Default(cfg.FS), db: db, stmts: make(map[string]*sqldb.Stmt)}
	l.commitCond = sync.NewCond(&l.mu)
	return l
}

func (l *Log) path() string {
	return filepath.Join(l.cfg.Dir, l.cfg.Name+".lseal")
}

// DB exposes the underlying relational database for invariant queries.
func (l *Log) DB() *sqldb.DB { return l.db }

// Seq returns the number of durable entries appended since creation or
// recovery.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ChainHash returns the current durable head of the hash chain.
func (l *Log) ChainHash() [32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain
}

// insertStmt returns a cached prepared INSERT for the table.
func (l *Log) insertStmt(table string, arity int) (*sqldb.Stmt, error) {
	key := fmt.Sprintf("%s/%d", table, arity)
	if st, ok := l.stmts[key]; ok {
		return st, nil
	}
	placeholders := strings.TrimSuffix(strings.Repeat("?,", arity), ",")
	st, err := l.db.Prepare(fmt.Sprintf("INSERT INTO %s VALUES (%s)", table, placeholders))
	if err != nil {
		return nil, err
	}
	l.stmts[key] = st
	return st, nil
}

// Row is one tuple destined for a relation of the log, the staging unit of
// the group-commit pipeline.
type Row struct {
	Table  string
	Values []any
}

// Ticket tracks staged-but-not-yet-durable rows. Wait blocks until every
// batch carrying one of the ticket's entries has committed (or failed).
type Ticket struct {
	l     *Log
	start time.Time
	count int
	waits []waitRef
}

// waitRef is one batch the ticket's entries landed in.
type waitRef struct {
	b      *commitBatch
	leader bool
	count  int
	bytes  int64
}

// Append adds one tuple to the named relation: it is inserted into the
// database, chained into the running hash, and (in disk mode) persisted
// under a monotonic counter value and enclave signature before returning —
// either on its own (BatchMax <= 1) or as part of a group commit.
func (l *Log) Append(env *asyncall.Env, table string, vals ...any) error {
	t, err := l.Stage(env, []Row{{Table: table, Values: vals}})
	if err != nil {
		return err
	}
	return t.Wait(env)
}

// Stage inserts the rows into the database and stages them into the commit
// pipeline as one unit: the rows occupy consecutive chain positions, so
// checks running under the caller's serialisation never observe a partial
// group. It performs no I/O waits; call Ticket.Wait for durability. Must
// run inside an enclave call, and the returned ticket must be waited on by
// the same call.
func (l *Log) Stage(env *asyncall.Env, rows []Row) (*Ticket, error) {
	t := &Ticket{l: l, start: time.Now(), count: len(rows)}
	if len(rows) == 0 {
		return t, nil
	}
	// Convert values outside the lock. A failure anywhere before the rows
	// enter the pipeline counts as one staging error — nothing was appended,
	// so charging the whole group against audit.append.errors would skew the
	// series relative to audit.appends (durably acknowledged rows).
	svals := make([][]sqldb.Value, len(rows))
	for i, row := range rows {
		svals[i] = make([]sqldb.Value, len(row.Values))
		for j, v := range row.Values {
			sv, err := sqldb.FromGo(v)
			if err != nil {
				mAppendErrors.Inc()
				return nil, err
			}
			svals[i][j] = sv
		}
	}

	if err := l.lockAdmitted(env, len(rows)); err != nil {
		mAppendErrors.Inc()
		return nil, err
	}
	if l.closed {
		l.mu.Unlock()
		mAppendErrors.Inc()
		return nil, ErrClosed
	}
	// Phase 1a: prepare statements, encode entries and charge the enclave
	// heap — everything fallible that does not touch the database.
	encs := make([][]byte, len(rows))
	stmts := make([]*sqldb.Stmt, len(rows))
	var charged int64
	fail := func(err error) (*Ticket, error) {
		if charged > 0 {
			env.Ctx.Free(charged)
		}
		l.mu.Unlock()
		mAppendErrors.Inc()
		return nil, err
	}
	for i, row := range rows {
		st, err := l.insertStmt(row.Table, len(svals[i]))
		if err != nil {
			return fail(err)
		}
		stmts[i] = st
		entry := &Entry{Seq: l.specSeq + uint64(i), Table: row.Table, Values: svals[i]}
		enc := entry.Marshal()
		// Account the tuple against the enclave heap: the in-enclave
		// database pays EPC paging costs once the log outgrows the enclave
		// page cache (§2.5), which is why trimming matters beyond log-size
		// hygiene.
		if err := env.Ctx.Alloc(int64(len(enc))); err != nil {
			return fail(err)
		}
		charged += int64(len(enc))
		encs[i] = enc
	}
	// Phase 1b: insert the rows. A mid-group failure removes the group's
	// earlier inserts again (we hold l.mu, so the trailing rows are ours),
	// keeping Stage atomic: checks never observe a partial group, and a
	// later Trim — which rebuilds the signed log from the database — cannot
	// fold never-staged rows into the verified chain.
	for i := range rows {
		args := make([]any, len(svals[i]))
		for j, sv := range svals[i] {
			args[j] = sv
		}
		if _, err := stmts[i].Exec(args...); err != nil {
			for j := i - 1; j >= 0; j-- {
				l.db.RemoveLastRows(rows[j].Table, 1)
			}
			return fail(err)
		}
	}
	// Phase 2: advance the speculative chain and join batches. This cannot
	// fail, so a ticket always covers all of its rows.
	for _, enc := range encs {
		next := chainNext(l.specChain, enc)
		l.specChain = next
		l.specSeq++
		if l.cfg.Mode != ModeDisk {
			// Memory mode has no durability step: publish immediately.
			l.chain = next
			l.seq = l.specSeq
			l.heap += int64(len(enc))
			mChainLength.Set(int64(l.seq))
			continue
		}
		b, leader := l.joinBatch(enc, next)
		if n := len(t.waits); n > 0 && t.waits[n-1].b == b {
			t.waits[n-1].count++
			t.waits[n-1].bytes += int64(len(enc))
		} else {
			t.waits = append(t.waits, waitRef{b: b, leader: leader, count: 1, bytes: int64(len(enc))})
		}
	}
	mStagedPending.Set(int64(l.specSeq - l.seq))
	l.mu.Unlock()
	return t, nil
}

// lockAdmitted acquires l.mu with room in the staging budget for n more
// entries. A contended acquisition parks as an ocall (Trim holds the lock
// across its rewrite I/O); an lthread must never sleep holding its
// scheduler. When the pipeline is over budget the wait for draining commits
// likewise runs outside the enclave. On success l.mu is held; on error it
// is released.
func (l *Log) lockAdmitted(env *asyncall.Env, n int) error {
	asyncall.Lock(env, &l.mu)
	if l.cfg.Mode != ModeDisk || l.cfg.MaxStaged <= 0 {
		return nil
	}
	// An empty pipeline admits any group (progress for groups larger than
	// the whole budget); otherwise the group must fit under the bound.
	admit := func() bool {
		inflight := int(l.specSeq - l.seq)
		return inflight == 0 || inflight+n <= l.cfg.MaxStaged
	}
	if admit() {
		return nil
	}
	if l.cfg.AdmitTimeout <= 0 {
		l.mu.Unlock()
		mAdmitShed.Inc()
		return ErrOverloaded
	}
	mAdmitWaits.Inc()
	deadline := time.Now().Add(l.cfg.AdmitTimeout)
	// commitCond broadcasts on every batch outcome, so a draining pipeline
	// wakes the waiter promptly; the timer broadcast bounds the wait when
	// nothing drains (a stalled fsync wakes nobody). sync.Cond rides l.mu,
	// which is explicitly not goroutine-affine — waiting on the ocall thread
	// and returning to the enclave call with the lock held is legal.
	if err := env.Ocall(func() error {
		timer := time.AfterFunc(l.cfg.AdmitTimeout, l.commitCond.Broadcast)
		defer timer.Stop()
		for !l.closed && !admit() && time.Now().Before(deadline) {
			l.commitCond.Wait()
		}
		return nil
	}); err != nil {
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !admit() {
		l.mu.Unlock()
		mAdmitShed.Inc()
		return ErrOverloaded
	}
	return nil
}

// PendingStaged returns the number of entries staged into the commit
// pipeline but not yet durable.
func (l *Log) PendingStaged() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.specSeq - l.seq)
}

// joinBatch stages one encoded entry into the open batch, opening a new one
// if necessary. Called with l.mu held; reports whether the caller opened the
// batch (and therefore leads its commit).
func (l *Log) joinBatch(enc []byte, next [32]byte) (*commitBatch, bool) {
	leader := false
	if l.cur == nil {
		l.cur = &commitBatch{
			turn:  l.nextTurn,
			epoch: l.epoch,
			full:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		l.nextTurn++
		leader = true
	}
	b := l.cur
	b.payloads = append(b.payloads, enc)
	b.endChain = next
	b.endSeq = l.specSeq
	b.bytes += int64(len(enc))
	if len(b.payloads) >= l.cfg.batchMax() {
		b.filled = true
		close(b.full)
		l.cur = nil
	}
	return b, leader
}

// Wait blocks until every batch holding one of the ticket's entries is
// durable, leading the commits this ticket opened. It returns the first
// failure; entries of failed batches are not durable and their heap charge
// is released. Must run inside the same enclave call that staged the
// ticket.
func (t *Ticket) Wait(env *asyncall.Env) error {
	var firstErr error
	failed := 0
	for _, w := range t.waits {
		var err error
		if w.leader {
			err = t.l.lead(env, w.b)
		} else {
			// Parking on the batch is an outside-world wait: run it as an
			// ocall so an lthread scheduler is never blocked by a waiter.
			env.Ocall(func() error { <-w.b.done; return nil })
			err = w.b.err
		}
		if err != nil {
			env.Ctx.Free(w.bytes)
			failed += w.count
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed > 0 {
		mAppendErrors.Add(int64(failed))
	}
	if ok := t.count - failed; ok > 0 {
		mAppends.Add(int64(ok))
	}
	if firstErr != nil {
		return firstErr
	}
	telemetry.ObserveSince(mAppendLatency, "audit.append", t.start)
	return nil
}

// lead drives one batch through the commit lane: wait for the batch to
// fill, wait for its turn, then commit it and publish the outcome.
func (l *Log) lead(env *asyncall.Env, b *commitBatch) error {
	// Both waits park the calling slot outside the enclave like any other
	// ocall; a sleeping leader must never pin an lthread scheduler.
	ok := false
	if err := env.Ocall(func() error {
		l.waitFill(b)
		ok = l.awaitTurn(b)
		return nil
	}); err != nil {
		return err
	}
	if !ok {
		return b.err
	}
	err := l.commitSealed(env, b)
	l.publish(b, err)
	return err
}

// waitFill gives followers up to BatchDelay to fill the batch. Runs outside
// the enclave.
func (l *Log) waitFill(b *commitBatch) {
	if l.cfg.BatchDelay <= 0 || l.cfg.batchMax() <= 1 {
		return
	}
	timer := time.NewTimer(l.cfg.BatchDelay)
	defer timer.Stop()
	select {
	case <-b.full:
	case <-timer.C:
	}
}

// awaitTurn blocks until it is b's turn to commit, seals b against new
// joiners and claims the commit lane. It reports false — after failing the
// batch — when an earlier commit's failure invalidated b's chain position.
// Runs outside the enclave.
func (l *Log) awaitTurn(b *commitBatch) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.committing || l.commitTurn != b.turn {
		l.commitCond.Wait()
	}
	if l.cur == b {
		l.cur = nil
	}
	if b.epoch != l.epoch {
		b.err = fmt.Errorf("%w: %v", ErrBatchAborted, l.poisonErr)
		l.commitTurn++
		mBatchAborts.Inc()
		close(b.done)
		l.commitCond.Broadcast()
		return false
	}
	l.committing = true
	return true
}

// commitSealed makes a sealed batch durable: one counter increment, sealed
// payloads, one signature over the batch's end-of-chain state, one write
// sequence and one fsync. The caller holds the commit lane.
func (l *Log) commitSealed(env *asyncall.Env, b *commitBatch) error {
	counter, err := l.anchorBatch(env, b)
	if err != nil {
		return err
	}
	b.counter = counter
	payloads := b.payloads
	if l.cfg.Seal {
		sealed := make([][]byte, len(payloads))
		for i, enc := range payloads {
			s, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
			if err != nil {
				return err
			}
			sealed[i] = s
		}
		payloads = sealed
	}
	sig, err := l.signState(env, b.endChain, counter)
	if err != nil {
		return err
	}
	size := recordSize(sig)
	for _, p := range payloads {
		size += recordSize(p)
	}
	base := l.committedSize()
	err = env.Ocall(func() error {
		for _, p := range payloads {
			if err := writeRecord(l.file, recEntry, p); err != nil {
				return err
			}
		}
		if err := writeRecord(l.file, recSig, sig); err != nil {
			return err
		}
		return l.file.Sync() // one flush covers the whole batch (§5.1)
	})
	if err != nil {
		// Best-effort rollback of the partial batch; if the handle is dead
		// (simulated crash), recovery discards the torn tail instead.
		env.Ocall(func() error { l.file.Truncate(base); return nil })
		return err
	}
	mFsyncs.Inc()
	b.disk = size
	return nil
}

// committedSize reads the durable file length under the lock.
func (l *Log) committedSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fileSize
}

// CommittedSize is the durable length of the persisted log file: every byte
// below it belongs to a committed record, while bytes beyond it may be a
// partial batch that a failed commit will truncate away. Replication feeds
// must never ship bytes past it.
func (l *Log) CommittedSize() int64 { return l.committedSize() }

// Generation identifies the persisted file's incarnation. It is even while
// the file is stable and odd while a trim rewrite is replacing it; any change
// between two reads means raw bytes read from the file in between may mix two
// incarnations.
func (l *Log) Generation() uint64 { return l.gen.Load() }

// SetCommitNotify installs fn to run (under the log lock — it must not
// block) after every durable change to the persisted file. One listener at a
// time; nil uninstalls.
func (l *Log) SetCommitNotify(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notify = fn
}

// notifyLocked signals the commit listener, if any. Called with l.mu held
// after the durable file state advanced.
func (l *Log) notifyLocked() {
	if l.notify != nil {
		l.notify()
	}
}

// anchorBatch obtains the counter value anchoring a batch: one fresh
// increment per batch. When the quorum is unreachable and degraded mode has
// buffer room, the batch proceeds under the last reachable value; the chain
// stays intact and the next successful anchor covers the whole backlog. The
// increment is a network operation and runs outside the enclave. Called with
// the commit lane held, so pendingAnchor is stable: the previous batch has
// already published. The degraded bookkeeping itself (gap close, backlog
// growth) is only recorded on the batch here and applied by publish once the
// batch is durable — a batch whose write or fsync later fails must not
// consume the degraded budget or claim to have closed a gap.
func (l *Log) anchorBatch(env *asyncall.Env, b *commitBatch) (uint64, error) {
	l.mu.Lock()
	current := l.counter
	l.mu.Unlock()
	if l.cfg.Protector == nil {
		return current, nil
	}
	var c uint64
	var cerr error
	if err := env.Ocall(func() error {
		c, cerr = l.incrementCounter()
		return nil
	}); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cerr == nil {
		// The fresh value is published to future signers immediately (the
		// counter service advanced regardless of this batch's fate); whether
		// it closed a degraded gap is decided at publish time.
		l.counter = c
		b.anchorFresh = true
		return c, nil
	}
	if l.cfg.DegradedLimit <= 0 {
		return 0, cerr
	}
	if l.pendingAnchor >= l.cfg.DegradedLimit {
		return 0, fmt.Errorf("%w: %d appends pending, last error: %v", ErrDegradedFull, l.pendingAnchor, cerr)
	}
	b.degraded = len(b.payloads)
	return l.counter, nil
}

// publish records a batch's outcome: on success the durable chain head jumps
// to the batch's end; on failure every staged successor is poisoned, since
// its entries chain off a head that never became durable.
func (l *Log) publish(b *commitBatch, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.committing = false
	l.commitTurn++
	if err == nil {
		l.chain = b.endChain
		l.seq = b.endSeq
		l.heap += b.bytes
		l.fileSize += b.disk
		l.sigCounter = b.counter
		switch {
		case b.anchorFresh && l.pendingAnchor > 0:
			// Quorum recovered: the now-durable signature anchors every
			// buffered entry. Flag the closed gap.
			l.gaps++
			l.pendingAnchor = 0
			mGaps.Inc()
			mDegradedPending.Set(0)
		case b.degraded > 0:
			if l.pendingAnchor == 0 {
				mDegradedEpisodes.Inc()
			}
			l.pendingAnchor += b.degraded
			mDegradedPending.Set(int64(l.pendingAnchor))
		}
		mChainLength.Set(int64(l.seq))
		mBatchCommits.Inc()
		mBatchSize.Observe(time.Duration(len(b.payloads)))
		switch {
		case b.filled:
			mFlushFull.Inc()
		case l.cfg.BatchDelay > 0:
			mFlushDelay.Inc()
		default:
			mFlushIdle.Inc()
		}
		l.notifyLocked()
	} else {
		l.epoch++
		l.poisonErr = err
		l.specChain = l.chain
		l.specSeq = l.seq
		// The open batch (if any) chains off the failed entries; close it
		// to new joiners. Its leader fails it when its turn comes.
		l.cur = nil
		mBatchAborts.Inc()
	}
	mStagedPending.Set(int64(l.specSeq - l.seq))
	b.err = err
	close(b.done)
	l.commitCond.Broadcast()
}

// quiesceLocked waits until the commit lane is idle: no open batch, no
// commit in flight, no batch waiting for its turn. Called with l.mu held;
// the condition wait releases it while sleeping.
func (l *Log) quiesceLocked() {
	for l.committing || l.cur != nil || l.commitTurn != l.nextTurn {
		l.commitCond.Wait()
	}
}

// lockQuiesced acquires l.mu with the commit lane idle, waiting outside the
// enclave (the wait can span an in-flight fsync). The caller must release
// l.mu. Exclusive log-rewrite operations (Trim, Reanchor) use it so they
// never interleave with a batch commit's file I/O.
func (l *Log) lockQuiesced(env *asyncall.Env) {
	// sync.Mutex is explicitly not goroutine-affine: locking it on the
	// ocall thread and unlocking from the enclave call is legal.
	env.Ocall(func() error {
		l.mu.Lock()
		l.quiesceLocked()
		return nil
	})
}

// chainNext extends the hash chain by one entry.
func chainNext(prev [32]byte, entry []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(entry)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// incrementCounter advances the rollback counter, bounding the operation
// with AnchorTimeout when the protector supports cancellation.
func (l *Log) incrementCounter() (uint64, error) {
	if cp, ok := l.cfg.Protector.(ContextRollbackProtector); ok && l.cfg.AnchorTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), l.cfg.AnchorTimeout)
		defer cancel()
		return cp.IncrementContext(ctx, l.cfg.Name)
	}
	return l.cfg.Protector.Increment(l.cfg.Name)
}

// readCounter reads the group's stable counter under the same bound.
func (l *Log) readCounter() (uint64, error) {
	if cp, ok := l.cfg.Protector.(ContextRollbackProtector); ok && l.cfg.AnchorTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), l.cfg.AnchorTimeout)
		defer cancel()
		return cp.ReadContext(ctx, l.cfg.Name)
	}
	return l.cfg.Protector.Read(l.cfg.Name)
}

// Reanchor attempts to close a degraded-mode gap by anchoring the chain at
// a fresh counter value; it is a no-op when the log is healthy. Must run
// inside an enclave call.
func (l *Log) Reanchor(env *asyncall.Env) error {
	l.lockQuiesced(env)
	defer l.mu.Unlock()
	if l.pendingAnchor == 0 || l.cfg.Protector == nil || l.cfg.Mode != ModeDisk {
		return nil
	}
	c, err := l.incrementCounter()
	if err != nil {
		return err
	}
	l.counter = c
	sig, err := l.signState(env, l.chain, l.counter)
	if err != nil {
		return err
	}
	if err := env.Ocall(func() error {
		if err := writeRecord(l.file, recSig, sig); err != nil {
			return err
		}
		return l.file.Sync()
	}); err != nil {
		env.Ocall(func() error { l.file.Truncate(l.fileSize); return nil })
		return err
	}
	mFsyncs.Inc()
	l.fileSize += recordSize(sig)
	l.sigCounter = l.counter
	l.gaps++
	l.pendingAnchor = 0
	mGaps.Inc()
	mDegradedPending.Set(0)
	l.notifyLocked()
	return nil
}

// durableState snapshots the durable commit point: the chain head and entry
// count covered by the last durable signature record, and the counter value
// that record attests. Every returned triple corresponds to a signature
// record actually present in the persisted file (or to the empty state), so
// an epoch manifest built from it can be cross-checked against an offline
// verification of the shard file.
func (l *Log) durableState() (chain [32]byte, seq, counter uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain, l.seq, l.sigCounter
}

// recordSize is the on-disk footprint of one record.
func recordSize(payload []byte) int64 { return 5 + int64(len(payload)) }

// sigDigest is the message a signature record attests: the chain head after
// the batch's last entry, bound to the counter value that anchored it. The
// writer (signState) and the verifier must agree on it byte for byte.
func sigDigest(chain [32]byte, counter uint64) []byte {
	var buf [40]byte
	copy(buf[:32], chain[:])
	binary.BigEndian.PutUint64(buf[32:], counter)
	digest := sha256.Sum256(buf[:])
	return digest[:]
}

// signState signs (chain hash || counter) with the enclave report key.
func (l *Log) signState(env *asyncall.Env, chain [32]byte, counter uint64) ([]byte, error) {
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	sig, err := env.Ctx.Sign(sigDigest(chain, counter))
	if err != nil {
		return nil, err
	}
	mSignatures.Inc()
	var out bytes.Buffer
	out.Write(chain[:])
	out.Write(c[:])
	writeString(&out, string(sig.R))
	writeString(&out, string(sig.S))
	return out.Bytes(), nil
}

// Query runs an invariant query against the log.
func (l *Log) Query(sql string, args ...any) (*sqldb.Result, error) {
	return l.db.Query(sql, args...)
}

// Exec runs arbitrary SQL against the log database (used for state tables
// maintained by stateful SSMs).
func (l *Log) Exec(sql string, args ...any) (int, error) {
	return l.db.Exec(sql, args...)
}

// Trim applies the service's trimming queries and rewrites the persisted
// log: the hash chain is recomputed over the surviving tuples, re-anchored
// at a fresh counter value and re-signed (§5.1, "Log trimming"). The
// rewrite is crash-safe: the new image is written to a temporary file,
// fsynced and atomically renamed over the old one, so a crash at any point
// leaves either the complete old log or the complete new one on disk. If
// the rewrite (or its fresh counter anchor) fails, the in-memory chain is
// left at its pre-trim state, which still matches the old on-disk log; the
// database rows are trimmed either way, and the next successful trim
// reconciles the file. Trim waits for the group-commit lane to drain first,
// so it never interleaves with a batch's file I/O.
func (l *Log) Trim(env *asyncall.Env, queries []string) error {
	l.lockQuiesced(env)
	defer l.mu.Unlock()
	mTrims.Inc()
	defer telemetry.ObserveSince(mTrimLatency, "audit.trim", time.Now())
	for _, q := range queries {
		if _, err := l.db.Exec(q); err != nil {
			return fmt.Errorf("audit: trimming query %q: %w", q, err)
		}
	}
	encs, err := encodeSurvivingRows(l.db)
	if err != nil {
		return err
	}
	return l.rewriteLocked(env, encs)
}

// encodeSurvivingRows deterministically re-encodes every row of the database
// as chained entries with fresh sequence numbers — the post-trim image of
// the log.
func encodeSurvivingRows(db *sqldb.DB) ([][]byte, error) {
	tables := db.Tables()
	sort.Strings(tables)
	var encs [][]byte
	seq := uint64(0)
	for _, t := range tables {
		rows, err := db.TableRows(t)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			e := &Entry{Seq: seq, Table: t, Values: row}
			encs = append(encs, e.Marshal())
			seq++
		}
	}
	return encs, nil
}

// rewriteLocked replaces the log's persisted image with the given encoded
// entries: the chain is recomputed from zero, re-anchored at a fresh counter
// value, re-signed, and the file is rewritten crash-safely (temp file,
// fsync, atomic rename). Called with l.mu held and the commit lane
// quiesced; on failure the in-memory chain is left at its pre-call state,
// which still matches the old on-disk log. Trim uses it with the whole
// database's rows; ShardedLog.Trim uses it per shard with that shard's
// partition.
func (l *Log) rewriteLocked(env *asyncall.Env, encs [][]byte) error {
	var newChain [32]byte
	newSeq := uint64(0)
	retained := int64(0)
	for _, enc := range encs {
		newChain = chainNext(newChain, enc)
		newSeq++
		retained += int64(len(enc))
	}
	commitMemory := func() {
		// Release the enclave heap freed by trimming.
		if l.heap > retained {
			env.Ctx.Free(l.heap - retained)
		}
		l.heap = retained
		l.chain = newChain
		l.seq = newSeq
		l.specChain = newChain
		l.specSeq = newSeq
		mChainLength.Set(int64(l.seq))
		mStagedPending.Set(0)
	}
	if l.cfg.Mode != ModeDisk {
		commitMemory()
		return nil
	}
	if l.cfg.Protector != nil {
		// A trim rewrite must carry a fresh anchor — re-signing trimmed-away
		// history at a stale counter would widen the rollback window — so an
		// unreachable quorum aborts the rewrite instead of degrading.
		c, err := l.incrementCounter()
		if err != nil {
			return err
		}
		l.counter = c
	}
	payloads := make([][]byte, len(encs))
	size := int64(len(fileMagic))
	for i, enc := range encs {
		payload := enc
		if l.cfg.Seal {
			sealed, err := env.Ctx.Seal(enclave.PolicySigner, enc, []byte(l.cfg.Name))
			if err != nil {
				return err
			}
			payload = sealed
		}
		payloads[i] = payload
		size += recordSize(payload)
	}
	sig, err := l.signState(env, newChain, l.counter)
	if err != nil {
		return err
	}
	size += recordSize(sig)
	// gen goes odd before the file is replaced and even once the rewrite's
	// outcome — new file or intact old one — is authoritative again, so feed
	// readers discard any bytes read across the swap.
	l.gen.Add(1)
	err = env.Ocall(func() error {
		tmp := l.path() + ".tmp"
		f, err := l.fs.Create(tmp)
		if err != nil {
			return err
		}
		fail := func(err error) error {
			f.Close()
			l.fs.Remove(tmp)
			return err
		}
		if _, err := f.Write(fileMagic); err != nil {
			return fail(err)
		}
		for _, p := range payloads {
			if err := writeRecord(f, recEntry, p); err != nil {
				return fail(err)
			}
		}
		if err := writeRecord(f, recSig, sig); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		// The commit point: before the rename the old log is intact, after
		// it the new one is.
		if err := l.fs.Rename(tmp, l.path()); err != nil {
			l.fs.Remove(tmp)
			return err
		}
		nf, err := l.fs.Append(l.path())
		if err != nil {
			return err
		}
		old := l.file
		l.file = nf
		if old != nil {
			old.Close()
		}
		return nil
	})
	l.gen.Add(1)
	if err != nil {
		return err
	}
	mFsyncs.Inc()
	l.fileSize = size
	l.sigCounter = l.counter
	commitMemory()
	if l.pendingAnchor > 0 {
		// The fresh anchor covers everything that was buffered.
		l.gaps++
		l.pendingAnchor = 0
		mGaps.Inc()
		mDegradedPending.Set(0)
	}
	l.notifyLocked()
	return nil
}

// Close releases the log's outside resources. In-flight batches are drained
// first; new appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.quiesceLocked()
	if l.file != nil {
		err := l.file.Close()
		l.file = nil
		return err
	}
	return nil
}

func writeRecord(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// fileRecord is one parsed record of a persisted log file.
type fileRecord struct {
	typ     byte
	payload []byte
	end     int64 // file offset just past this record
}

// readRecords parses the record stream. In tolerant mode a torn tail — a
// truncated record left by a crash mid-append — ends the stream instead of
// failing it; the caller then verifies the intact prefix.
func readRecords(r io.Reader, tolerant bool) ([]fileRecord, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, fileMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrTampered)
	}
	var recs []fileRecord
	offset := int64(len(fileMagic))
	var hdr [5]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			if tolerant {
				return recs, nil
			}
			return nil, fmt.Errorf("%w: truncated record header", ErrTampered)
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		if n > maxRecordBytes {
			// A length field this large is corruption or hostility, never a
			// record the writers produced; bounding it keeps verification
			// from allocating attacker-chosen amounts of memory.
			if tolerant {
				return recs, nil
			}
			return nil, errOversized(n)
		}
		payload, err := readPayload(r, n)
		if err != nil {
			if tolerant {
				return recs, nil
			}
			return nil, fmt.Errorf("%w: truncated record", ErrTampered)
		}
		offset += 5 + int64(n)
		recs = append(recs, fileRecord{typ: hdr[0], payload: payload, end: offset})
	}
}

// parseSig decodes a signature record.
func parseSig(payload []byte) (chain [32]byte, counter uint64, sig enclave.Signature, err error) {
	r := bytes.NewReader(payload)
	if _, err = io.ReadFull(r, chain[:]); err != nil {
		err = ErrTampered
		return
	}
	var c [8]byte
	if _, err = io.ReadFull(r, c[:]); err != nil {
		err = ErrTampered
		return
	}
	counter = binary.BigEndian.Uint64(c[:])
	rb, err := readString(r)
	if err != nil {
		return
	}
	sb, err := readString(r)
	if err != nil {
		return
	}
	sig = enclave.Signature{R: []byte(rb), S: []byte(sb)}
	if r.Len() != 0 {
		// The ECDSA signature covers only the chain head and counter, so
		// trailing payload bytes would let an inflated length field swallow
		// neighbouring records without invalidating the record.
		err = errors.New("trailing bytes after signature")
	}
	return
}

// VerifyOptions controls persisted-log verification.
type VerifyOptions struct {
	// Pub is the enclave's signing public key (bound to the enclave by an
	// attestation quote).
	Pub *ecdsa.PublicKey
	// Protector, when set, checks counter freshness against the group.
	Protector RollbackProtector
	// Name is the counter name (Config.Name).
	Name string
	// Unseal decrypts sealed entries; required when the log was written
	// with Config.Seal. It runs inside an enclave in production.
	Unseal func(blob []byte) ([]byte, error)
	// RecoverTruncated tolerates a torn tail: records after the last
	// intact, signature-covered prefix are discarded instead of failing
	// verification — they were never acknowledged as durable. Crash
	// recovery sets this; client-side evidence verification keeps it
	// false so any truncation shows up as tampering.
	RecoverTruncated bool
	// MaxCounterLag accepts a persisted counter up to this far behind the
	// group's stable value — the state left by a crash between a counter
	// increment and the matching signature flush. Recovery passes a small
	// bound and immediately re-anchors; clients keep the strict zero.
	MaxCounterLag uint64
}

// VerifyResult is the outcome of a successful verification.
type VerifyResult struct {
	// Entries are the verified tuples, in file order.
	Entries []*Entry
	// Counter is the rollback-counter value of the verified signature.
	Counter uint64
	// CommittedBytes is the length of the verified file prefix. With
	// RecoverTruncated, bytes past it are crash debris and can be cut off.
	CommittedBytes int64
	// Batches is the number of signature records (commit points) in the
	// verified prefix: group commit anchors several chained entries per
	// signature, so Batches <= len(Entries) once batching is on.
	Batches int
	// MaxBatch is the largest number of entries covered by one signature
	// record.
	MaxBatch int
}

// VerifyFile checks a persisted log's integrity: hash chain, enclave
// signature, and counter freshness. It returns the verified entries. It
// runs outside the enclave — verification requires no secrets, which is what
// lets clients audit the provider. A signature record may cover any number
// of chained entries (group commit); the chain makes each batch
// tamper-evident as a unit.
func VerifyFile(path string, opts VerifyOptions) ([]*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return VerifyReader(f, opts)
}

// VerifyReader verifies a persisted log from an in-memory reader.
func VerifyReader(r io.Reader, opts VerifyOptions) ([]*Entry, error) {
	res, err := VerifyReaderResult(r, opts)
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// VerifyReaderResult verifies a persisted log and reports the verified
// counter value and committed prefix length alongside the entries.
func VerifyReaderResult(r io.Reader, opts VerifyOptions) (*VerifyResult, error) {
	recs, err := readRecords(r, opts.RecoverTruncated)
	if err != nil {
		return nil, err
	}
	var entries []*Entry
	var chain [32]byte
	seq := uint64(0)
	// The commit point is the state as of the last valid signature record;
	// with RecoverTruncated, anything after it is crash debris.
	sawSig := false
	commit := struct {
		entries int
		chain   [32]byte
		end     int64
		counter uint64
	}{end: int64(len(fileMagic))}
	batches := 0
	maxBatch := 0
	sinceSig := 0
	// tornAt marks where a tolerant scan stopped making sense of entries.
	tornAt := -1
scan:
	for i := range recs {
		rec := recs[i]
		switch rec.typ {
		case recEntry:
			raw := rec.payload
			if opts.Unseal != nil {
				if raw, err = opts.Unseal(raw); err != nil {
					if opts.RecoverTruncated {
						tornAt = i
						break scan
					}
					return nil, fmt.Errorf("%w: unseal: %v", ErrTampered, err)
				}
			}
			e, err := UnmarshalEntry(raw)
			if err != nil {
				if opts.RecoverTruncated {
					tornAt = i
					break scan
				}
				return nil, fmt.Errorf("%w: %v", ErrTampered, err)
			}
			if e.Seq != seq {
				if opts.RecoverTruncated {
					tornAt = i
					break scan
				}
				return nil, fmt.Errorf("%w: sequence gap at %d", ErrTampered, seq)
			}
			seq++
			sinceSig++
			chain = chainNext(chain, raw)
			entries = append(entries, e)
		case recSig:
			// Every signature record is validated, not just the final
			// commit point: a batched log with a corrupt or forged
			// intermediate signature is not the log the enclave wrote,
			// even when the entries themselves still chain.
			// Counter values may legitimately regress between records (a
			// recovery that re-anchored on a rebuilt counter group), so
			// rollback is judged against the live group, not file-locally.
			sigChain, counter, sig, perr := parseSig(rec.payload)
			bad := ""
			switch {
			case perr != nil:
				bad = perr.Error()
			case sigChain != chain:
				bad = "chain hash mismatch"
			case opts.Pub != nil && !enclave.VerifySignature(opts.Pub, sigDigest(sigChain, counter), sig):
				bad = "signature invalid"
			}
			if bad != "" {
				if opts.RecoverTruncated {
					tornAt = i
					break scan
				}
				return nil, fmt.Errorf("%w: signature record %d: %s", ErrTampered, batches, bad)
			}
			sawSig = true
			commit.entries = len(entries)
			commit.chain = chain
			commit.end = rec.end
			commit.counter = counter
			batches++
			if sinceSig > maxBatch {
				maxBatch = sinceSig
			}
			sinceSig = 0
		default:
			return nil, fmt.Errorf("%w: unknown record type %q", ErrTampered, rec.typ)
		}
	}
	if tornAt >= 0 {
		// A malformed entry is forgivable only as uncommitted debris. Any
		// signature record beyond it proves the damage sits inside the
		// committed prefix — that is tampering, not a torn tail.
		for _, rec := range recs[tornAt+1:] {
			if rec.typ == recSig {
				return nil, fmt.Errorf("%w: corrupted entry inside signed prefix", ErrTampered)
			}
		}
	}
	if !sawSig {
		if len(entries) == 0 || opts.RecoverTruncated {
			// Nothing was ever committed (or only debris survives) — but an
			// empty log still has to satisfy the quorum: if the group's
			// counter has moved, committed history has been rolled away.
			if err := checkFreshness(commit.counter, opts); err != nil {
				return nil, err
			}
			return &VerifyResult{CommittedBytes: commit.end}, nil
		}
		return nil, fmt.Errorf("%w: missing signature record", ErrTampered)
	}
	if !opts.RecoverTruncated && sinceSig > 0 {
		// Strict verification demands the file end at a signed prefix:
		// trailing unsigned entries were never committed.
		return nil, fmt.Errorf("%w: %d entries after the last signature record", ErrTampered, sinceSig)
	}
	checkEntries := entries
	if opts.RecoverTruncated {
		checkEntries = entries[:commit.entries]
	}
	if err := checkFreshness(commit.counter, opts); err != nil {
		return nil, err
	}
	return &VerifyResult{
		Entries: checkEntries, Counter: commit.counter, CommittedBytes: commit.end,
		Batches: batches, MaxBatch: maxBatch,
	}, nil
}

// checkFreshness compares the log's committed counter against the rollback
// group's stable value. It applies to every accepted verification outcome,
// including an empty log: "no batches" with a non-zero group counter is a
// rollback, not a fresh start.
func checkFreshness(counter uint64, opts VerifyOptions) error {
	if opts.Protector == nil {
		return nil
	}
	stable, err := opts.Protector.Read(opts.Name)
	if err != nil {
		return err
	}
	if counter+opts.MaxCounterLag < stable {
		return fmt.Errorf("%w: log counter %d < group counter %d", ErrBadCounter, counter, stable)
	}
	return nil
}

// Recover rebuilds an audit log from its persisted file after a restart: the
// file is verified (chain, signature, counter freshness) and the entries are
// replayed into a fresh database. Recovery is torn-tail tolerant — records
// past the last signed prefix were never acknowledged as durable and are cut
// off (with group commit that prefix ends at the last *signed batch*) — and
// tolerates the persisted counter lagging the group by up to
// Config.RecoverMaxLag (the state a crash between an increment and its
// signature flush leaves behind). It re-anchors the chain at a fresh counter
// value before returning. Must run inside an enclave call.
func Recover(env *asyncall.Env, cfg Config, pub *ecdsa.PublicKey) (*Log, error) {
	db := sqldb.New()
	if cfg.Schema != "" {
		if _, err := db.Exec(cfg.Schema); err != nil {
			return nil, fmt.Errorf("audit: schema: %w", err)
		}
	}
	return recoverIntoDB(env, cfg, pub, db)
}

// recoverIntoDB rebuilds one log from its persisted file, replaying the
// verified entries into db (whose schema must already exist). Sharded
// recovery feeds every shard into one shared database.
func recoverIntoDB(env *asyncall.Env, cfg Config, pub *ecdsa.PublicKey, db *sqldb.DB) (*Log, error) {
	if cfg.Mode != ModeDisk {
		return nil, errors.New("audit: recovery requires disk mode")
	}
	l := newLogDB(cfg, db)
	opts := VerifyOptions{
		Pub: pub, Protector: cfg.Protector, Name: cfg.Name,
		RecoverTruncated: true, MaxCounterLag: cfg.RecoverMaxLag,
	}
	if cfg.Seal {
		opts.Unseal = func(blob []byte) ([]byte, error) {
			return env.Ctx.Unseal(blob, []byte(cfg.Name))
		}
	}
	// The file is read outside (ocall); verification — which may need the
	// enclave's unsealing key — runs inside on the in-memory copy.
	var raw []byte
	if err := env.Ocall(func() error {
		var err error
		raw, err = l.fs.ReadFile(l.path())
		return err
	}); err != nil {
		return nil, err
	}
	res, err := VerifyReaderResult(bytes.NewReader(raw), opts)
	if err != nil {
		return nil, err
	}
	for _, e := range res.Entries {
		st, err := l.insertStmt(e.Table, len(e.Values))
		if err != nil {
			return nil, err
		}
		args := make([]any, len(e.Values))
		for i, sv := range e.Values {
			args[i] = sv
		}
		if _, err := st.Exec(args...); err != nil {
			return nil, err
		}
		enc := e.Marshal()
		if err := env.Ctx.Alloc(int64(len(enc))); err != nil {
			return nil, err
		}
		l.heap += int64(len(enc))
		l.chain = chainNext(l.chain, enc)
		l.seq++
	}
	l.specChain = l.chain
	l.specSeq = l.seq
	l.counter = res.Counter
	l.sigCounter = res.Counter
	// Reopen for appending, cutting off any crash debris past the committed
	// prefix so future appends extend a verified file.
	if err := env.Ocall(func() error {
		f, err := l.fs.Append(l.path())
		if err != nil {
			return err
		}
		if int64(len(raw)) > res.CommittedBytes {
			if err := f.Truncate(res.CommittedBytes); err != nil {
				f.Close()
				return err
			}
		}
		l.file = f
		return nil
	}); err != nil {
		return nil, err
	}
	l.fileSize = res.CommittedBytes
	if cfg.Protector != nil {
		// Re-anchor at a fresh counter value: if the crash lost an in-flight
		// increment, the recovered log would otherwise keep signing at a
		// value behind the group and fail strict client verification.
		if c, err := l.incrementCounter(); err == nil {
			l.counter = c
			sig, err := l.signState(env, l.chain, l.counter)
			if err != nil {
				return nil, err
			}
			if err := env.Ocall(func() error {
				if err := writeRecord(l.file, recSig, sig); err != nil {
					return err
				}
				return l.file.Sync()
			}); err != nil {
				env.Ocall(func() error { l.file.Truncate(l.fileSize); return nil })
				return nil, err
			}
			mFsyncs.Inc()
			l.fileSize += recordSize(sig)
			l.sigCounter = l.counter
		} else {
			// No fresh value to be had right now; fall back to the stable
			// read. The next successful append or Reanchor closes the lag.
			c, rerr := l.readCounter()
			if rerr != nil {
				return nil, err
			}
			if c > l.counter {
				l.counter = c
			}
		}
	}
	return l, nil
}
