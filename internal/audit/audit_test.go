package audit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/rote"
)

const testSchema = `
	CREATE TABLE updates (time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
	CREATE TABLE advertisements (time INTEGER, repo TEXT, branch TEXT, cid TEXT);
`

type auditEnv struct {
	encl   *enclave.Enclave
	bridge *asyncall.Bridge
	group  *rote.Group
	dir    string
}

func newAuditEnv(t *testing.T) *auditEnv {
	t.Helper()
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{Code: []byte("libseal-audit"), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	group, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &auditEnv{encl: encl, bridge: bridge, group: group, dir: t.TempDir()}
}

func (e *auditEnv) diskConfig(name string) Config {
	return Config{Name: name, Schema: testSchema, Mode: ModeDisk, Dir: e.dir, Protector: e.group}
}

// call runs fn inside the enclave.
func (e *auditEnv) call(t *testing.T, fn func(env *asyncall.Env) error) {
	t.Helper()
	if err := e.bridge.Call(fn); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAndQuery(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, Config{Name: "git", Schema: testSchema, Mode: ModeMemory})
		if err != nil {
			return err
		}
		if err := l.Append(env, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return l.Append(env, "advertisements", 2, "r", "main", "c1")
	})
	res, err := l.Query("SELECT cid FROM advertisements WHERE repo = ?", "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].TextVal() != "c1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if l.Seq() != 2 {
		t.Fatalf("seq = %d", l.Seq())
	}
}

func TestPersistAndVerify(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		if err := l.Append(env, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	defer l.Close()
	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}
	if len(entries) != 2 || entries[1].Values[3].TextVal() != "c2" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestTamperedEntryDetected(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	l.Close()
	path := filepath.Join(e.dir, "git.lseal")
	data, _ := os.ReadFile(path)
	// Flip a byte inside the first entry record (past magic + header).
	data[len(fileMagic)+10] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	_, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey()})
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestDeletedEntryDetected(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		for i := 1; i <= 3; i++ {
			if err := l.Append(env, "updates", i, "r", "main", "c", "update"); err != nil {
				return err
			}
		}
		return nil
	})
	l.Close()
	path := filepath.Join(e.dir, "git.lseal")
	// Reconstruct the file without the middle entry: records are
	// [E0 S0 E1 S1 E2 S2]; drop E1+S1, keeping the final signature. The
	// chain breaks because the final signature covers all three.
	f, _ := os.Open(path)
	recs, err := readRecords(f, false)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := os.Create(path)
	out.Write(fileMagic)
	for i, r := range recs {
		if i == 2 || i == 3 {
			continue
		}
		writeRecord(out, r.typ, r.payload)
	}
	out.Close()
	if _, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey()}); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestForgedSignatureDetected(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	l.Close()
	// Verify against a different enclave's key: the provider cannot forge
	// entries with a non-LibSEAL key.
	other := newAuditEnv(t)
	path := filepath.Join(e.dir, "git.lseal")
	if _, err := VerifyFile(path, VerifyOptions{Pub: other.encl.PublicKey()}); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	e := newAuditEnv(t)
	path := filepath.Join(e.dir, "git.lseal")
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	// Snapshot the log, then append more (advancing the ROTE counter).
	oldLog, _ := os.ReadFile(path)
	e.call(t, func(env *asyncall.Env) error {
		return l.Append(env, "updates", 2, "r", "main", "c2", "update")
	})
	l.Close()
	// The provider restores the old version: counter freshness fails.
	os.WriteFile(path, oldLog, 0o644)
	_, err := VerifyFile(path, VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"})
	if !errors.Is(err, ErrBadCounter) {
		t.Fatalf("err = %v, want ErrBadCounter", err)
	}
}

func TestTrimRewritesChain(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		for i := 1; i <= 4; i++ {
			cid := "c" + string(rune('0'+i))
			if err := l.Append(env, "updates", i, "r", "main", cid, "update"); err != nil {
				return err
			}
		}
		if err := l.Append(env, "advertisements", 5, "r", "main", "c4"); err != nil {
			return err
		}
		return l.Trim(env, []string{
			"DELETE FROM advertisements",
			"DELETE FROM updates WHERE time NOT IN (SELECT MAX(time) FROM updates GROUP BY repo, branch)",
		})
	})
	defer l.Close()
	if n, _ := l.DB().TableRowCount("updates"); n != 1 {
		t.Fatalf("updates rows = %d, want 1", n)
	}
	// The rewritten file verifies and contains only the survivor.
	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Values[0].Int64() != 4 {
		t.Fatalf("entries = %+v", entries)
	}
	// Appending after a trim keeps the chain consistent.
	e.call(t, func(env *asyncall.Env) error {
		return l.Append(env, "updates", 6, "r", "dev", "d1", "update")
	})
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{Pub: e.encl.PublicKey()}); err != nil {
		t.Fatalf("post-trim append broke the chain: %v", err)
	}
}

func TestRecoverReplaysEntries(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("git"))
		if err != nil {
			return err
		}
		if err := l.Append(env, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return l.Append(env, "advertisements", 2, "r", "main", "c1")
	})
	seqBefore := l.Seq()
	chainBefore := l.ChainHash()
	l.Close()

	// Simulate a restart: recover from disk into a fresh Log.
	var recovered *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		recovered, err = Recover(env, e.diskConfig("git"), e.encl.PublicKey())
		return err
	})
	defer recovered.Close()
	if recovered.Seq() != seqBefore || recovered.ChainHash() != chainBefore {
		t.Fatalf("recovered seq/chain mismatch: %d vs %d", recovered.Seq(), seqBefore)
	}
	res, err := recovered.Query("SELECT COUNT(*) FROM updates")
	if err != nil || res.Rows[0][0].Int64() != 1 {
		t.Fatalf("recovered query = %v, %v", res, err)
	}
	// The recovered log keeps working.
	e.call(t, func(env *asyncall.Env) error {
		return recovered.Append(env, "updates", 3, "r", "main", "c2", "update")
	})
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{Pub: e.encl.PublicKey()}); err != nil {
		t.Fatalf("post-recovery append broke the chain: %v", err)
	}
}

func TestSealedLog(t *testing.T) {
	e := newAuditEnv(t)
	cfg := e.diskConfig("private")
	cfg.Seal = true
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "supersecret-cid", "update")
	})
	l.Close()
	raw, _ := os.ReadFile(filepath.Join(e.dir, "private.lseal"))
	if containsSub(raw, []byte("supersecret-cid")) {
		t.Fatal("sealed log leaks plaintext")
	}
	// Recovery unseals inside the enclave.
	var recovered *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		recovered, err = Recover(env, cfg, e.encl.PublicKey())
		return err
	})
	defer recovered.Close()
	res, err := recovered.Query("SELECT cid FROM updates")
	if err != nil || res.Rows[0][0].TextVal() != "supersecret-cid" {
		t.Fatalf("recovered = %v, %v", res, err)
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestMemoryModeWritesNoFiles(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, Config{Name: "mem", Schema: testSchema, Mode: ModeMemory, Dir: e.dir})
		if err != nil {
			return err
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})
	defer l.Close()
	if _, err := os.Stat(filepath.Join(e.dir, "mem.lseal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("memory mode created a file: %v", err)
	}
}

func TestEmptyFileVerifies(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.diskConfig("empty"))
		return err
	})
	l.Close()
	entries, err := VerifyFile(filepath.Join(e.dir, "empty.lseal"), VerifyOptions{Pub: e.encl.PublicKey()})
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty log: %v, %v", entries, err)
	}
}

func TestAppendAccountsEnclaveHeap(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, Config{Name: "heap", Schema: testSchema, Mode: ModeMemory})
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if err := l.Append(env, "updates", i, "r", "main", "c", "update"); err != nil {
				return err
			}
		}
		return nil
	})
	defer l.Close()
	grown := e.encl.HeapBytes()
	if grown <= 0 {
		t.Fatalf("enclave heap = %d after 10 appends, want > 0", grown)
	}
	// Trimming releases the heap held by discarded tuples.
	e.call(t, func(env *asyncall.Env) error {
		return l.Trim(env, []string{
			"DELETE FROM advertisements",
			"DELETE FROM updates WHERE time NOT IN (SELECT MAX(time) FROM updates GROUP BY repo, branch)",
		})
	})
	if after := e.encl.HeapBytes(); after >= grown {
		t.Fatalf("trim did not release heap: %d -> %d", grown, after)
	}
}

func TestAppendRespectsEnclaveMemLimit(t *testing.T) {
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{
		Code: []byte("tiny"), MaxThreads: 4, MemLimit: 256, Cost: enclave.ZeroCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	err = bridge.Call(func(env *asyncall.Env) error {
		l, err := New(env, Config{Name: "tiny", Schema: testSchema, Mode: ModeMemory})
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if err := l.Append(env, "updates", i, "r", "main", "c", "update"); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, enclave.ErrExceedsMemLimit) {
		t.Fatalf("err = %v, want ErrExceedsMemLimit", err)
	}
}
