package audit

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Sharded verification. A sharded log set is N shard files, each an
// ordinary audit log verified by the single-file pipeline, plus the epoch
// manifest sidecar. The driver below verifies the shards in parallel (the
// PR 7 worker pool runs per shard, with the worker budget divided among
// them), collects every shard's verified commit points, and then replays
// the manifest sidecar against them: each manifest's signature must verify
// under the enclave key, its epochs must be strictly increasing, its
// manifest-counter values non-decreasing, and — the cross-shard rollback
// check — every per-shard state a manifest attests must be a commit point
// the shard's own verification actually produced. A shard file rolled back
// to an earlier signed prefix still passes its own chain and signature
// checks, but the commit points the enclave bound into later manifests are
// gone from it, and the replay fails with ErrBadCounter naming the shard.
// That detection needs no live counter quorum: the evidence is entirely in
// the files.
//
// What the manifests cannot prove offline is their own tail: discarding the
// sidecar records after epoch k (or the shards' records after the states
// epoch k attests) is only caught by the freshness checks against the live
// rollback counters (the per-shard counters and the manifest counter), the
// same trust model as the single-file log's tail.

// ShardSet locates a log set on disk: either N shard files plus the
// manifest sidecar, or a single legacy log file.
type ShardSet struct {
	// Dir is the directory holding the set.
	Dir string
	// Name is the log-set name (file basenames derive from it).
	Name string
	// Shards is the number of shard files (1 for a single-file set).
	Shards int
	// Manifest is the sidecar path; empty for a single-file set.
	Manifest string
}

// Sharded reports whether the set carries an epoch-manifest sidecar.
func (ss *ShardSet) Sharded() bool { return ss.Manifest != "" }

// ShardPath is shard k's log file path.
func (ss *ShardSet) ShardPath(k int) string {
	if !ss.Sharded() {
		return filepath.Join(ss.Dir, ss.Name+".lseal")
	}
	return filepath.Join(ss.Dir, ShardName(ss.Name, k)+".lseal")
}

// FindShardSet inspects a directory for a log set. A manifest sidecar
// identifies a sharded set (its shard files must be contiguous from shard
// 0); without one, exactly one .lseal file identifies a single-file set.
func FindShardSet(dir string) (*ShardSet, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var manifests, logs []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), ".manifest"):
			manifests = append(manifests, e.Name())
		case strings.HasSuffix(e.Name(), ".lseal"):
			logs = append(logs, e.Name())
		}
	}
	switch {
	case len(manifests) > 1:
		return nil, fmt.Errorf("audit: %s holds multiple log sets (%s)", dir, strings.Join(manifests, ", "))
	case len(manifests) == 1:
		name := strings.TrimSuffix(manifests[0], ".manifest")
		ss := &ShardSet{Dir: dir, Name: name, Manifest: filepath.Join(dir, manifests[0])}
		for {
			if _, err := os.Stat(filepath.Join(dir, ShardName(name, ss.Shards)+".lseal")); err != nil {
				break
			}
			ss.Shards++
		}
		if ss.Shards == 0 {
			return nil, fmt.Errorf("%w: manifest %s without shard files", ErrTampered, manifests[0])
		}
		return ss, nil
	case len(logs) == 1:
		return &ShardSet{Dir: dir, Name: strings.TrimSuffix(logs[0], ".lseal"), Shards: 1}, nil
	case len(logs) == 0:
		return nil, fmt.Errorf("audit: no log files in %s", dir)
	default:
		return nil, fmt.Errorf("audit: %d log files in %s but no manifest sidecar", len(logs), dir)
	}
}

// ShardedStreamResult is the outcome of verifying a whole log set.
type ShardedStreamResult struct {
	// Sharded reports whether the set had a manifest sidecar (false for a
	// plain single-file log).
	Sharded bool
	// Shards holds each shard's own streaming result, indexed by shard.
	Shards []*StreamResult
	// Manifests is the number of epoch manifests verified; Epoch the last
	// manifest's epoch.
	Manifests int
	Epoch     uint64
	// TotalEntries / TotalBatches aggregate across shards (checkpointed
	// prefixes included); Tables counts entries per table across the set.
	TotalEntries int
	TotalBatches int
	Tables       map[string]int
	// CommittedBytes sums the shards' verified prefix lengths.
	CommittedBytes int64
	// Resumed reports whether any shard resumed from a checkpoint.
	Resumed bool
}

// VerifyPath verifies a log at a path that may be a single log file or a
// directory holding a sharded set, auto-detecting which. This is the
// recommended entry point; the per-file functions remain for callers that
// already know the layout.
func VerifyPath(path string, opts StreamOptions) (*ShardedStreamResult, error) {
	return VerifyPathContext(context.Background(), path, opts)
}

// VerifyPathContext is VerifyPath honouring a context: a cancelled or
// expired ctx stops every shard's pipeline and returns ctx.Err() instead of
// a verification verdict.
func VerifyPathContext(ctx context.Context, path string, opts StreamOptions) (*ShardedStreamResult, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		ss, err := FindShardSet(path)
		if err != nil {
			return nil, err
		}
		return VerifySetContext(ctx, ss, opts)
	}
	return VerifySetContext(ctx, &ShardSet{
		Dir:    filepath.Dir(path),
		Name:   strings.TrimSuffix(filepath.Base(path), ".lseal"),
		Shards: 1,
	}, opts)
}

// VerifyShardedDir verifies the log set found in dir. See VerifyPath.
func VerifyShardedDir(dir string, opts StreamOptions) (*ShardedStreamResult, error) {
	ss, err := FindShardSet(dir)
	if err != nil {
		return nil, err
	}
	return VerifySet(ss, opts)
}

// commitPoint is one (entries, chain head, counter) triple a signature
// record attests — the unit of the manifest cross-check.
type commitPoint struct {
	seq     uint64
	counter uint64
	chain   [32]byte
}

// commitSet is one shard's verified commit points. It is filled by that
// shard's merger goroutine (sequentially) and read only after the shard's
// verification returns.
type commitSet struct {
	baseSeq uint64 // resumed scans cannot enumerate points before this
	pts     map[commitPoint]struct{}
}

func newCommitSet() *commitSet {
	cs := &commitSet{pts: map[commitPoint]struct{}{}}
	// The empty log is a valid attested state (the creation manifest binds
	// it before any entry commits).
	cs.pts[commitPoint{}] = struct{}{}
	return cs
}

func (cs *commitSet) add(seq, counter uint64, chain [32]byte) {
	cs.pts[commitPoint{seq: seq, counter: counter, chain: chain}] = struct{}{}
}

// has reports whether a manifest-attested state is consistent with the
// shard's verified log: an enumerated commit point, or one inside the
// checkpointed prefix of a resumed scan (that prefix was verified — and its
// manifests replayed — by the run that wrote the checkpoint).
func (cs *commitSet) has(st ShardState) bool {
	if st.Seq < cs.baseSeq {
		return true
	}
	_, ok := cs.pts[commitPoint{seq: st.Seq, counter: st.Counter, chain: st.Chain}]
	return ok
}

// VerifySet verifies every shard of the set in parallel and replays the
// manifest sidecar against the shards' verified commit points.
func VerifySet(ss *ShardSet, opts StreamOptions) (*ShardedStreamResult, error) {
	return VerifySetContext(context.Background(), ss, opts)
}

// VerifySetContext is VerifySet honouring a context.
func VerifySetContext(ctx context.Context, ss *ShardSet, opts StreamOptions) (*ShardedStreamResult, error) {
	if opts.Resume != nil && ss.Shards > 1 {
		return nil, errors.New("audit: explicit Resume on a sharded set; use ResumeAuto")
	}
	totalWorkers := opts.Workers
	if totalWorkers <= 0 {
		totalWorkers = runtime.GOMAXPROCS(0)
	}
	perShard := totalWorkers / ss.Shards
	if perShard < 1 {
		perShard = 1
	}
	results := make([]*StreamResult, ss.Shards)
	errs := make([]error, ss.Shards)
	points := make([]*commitSet, ss.Shards)
	var wg sync.WaitGroup
	for k := 0; k < ss.Shards; k++ {
		points[k] = newCommitSet()
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k], errs[k] = verifyShard(ctx, ss, k, perShard, opts, points[k])
		}(k)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for k, err := range errs {
		if err != nil {
			if ss.Sharded() {
				return nil, fmt.Errorf("shard %d (%s): %w", k, filepath.Base(ss.ShardPath(k)), err)
			}
			return nil, err
		}
	}
	out := &ShardedStreamResult{
		Sharded: ss.Sharded(),
		Shards:  results,
		Tables:  map[string]int{},
	}
	for _, r := range results {
		out.TotalEntries += r.TotalEntries
		out.TotalBatches += r.TotalBatches
		out.CommittedBytes += r.CommittedBytes
		out.Resumed = out.Resumed || r.Resumed
		for t, n := range r.Tables {
			out.Tables[t] += n
		}
	}
	if ss.Sharded() {
		n, epoch, err := replayManifests(ss, &opts, points)
		if err != nil {
			return nil, err
		}
		out.Manifests = n
		out.Epoch = epoch
	}
	return out, nil
}

// verifyShard runs the streaming pipeline over one shard file, collecting
// its commit points and handling checkpoint/resume plumbing.
func verifyShard(ctx context.Context, ss *ShardSet, k, workers int, opts StreamOptions, cs *commitSet) (*StreamResult, error) {
	path := ss.ShardPath(k)
	sopts := opts
	sopts.Shard = k
	sopts.Workers = workers
	if ss.Sharded() {
		// Freshness is judged per shard against its own counter.
		sopts.Name = ShardName(ss.Name, k)
	} else if sopts.Name == "" {
		sopts.Name = ss.Name
	}
	ckptPath := path + ".ckpt"
	if opts.Checkpoint != nil {
		ccfg := *opts.Checkpoint
		if ccfg.Path == "" || ss.Sharded() {
			ccfg.Path = ckptPath
		}
		sopts.Checkpoint = &ccfg
	}
	if opts.ResumeAuto {
		loadFrom := ckptPath
		if sopts.Checkpoint != nil {
			loadFrom = sopts.Checkpoint.Path
		}
		if c, err := LoadCheckpoint(loadFrom); err == nil && c.Shard == k {
			sopts.Resume = c
		}
	}
	inner := opts.OnSegment
	sopts.OnSegment = func(si SegmentInfo) error {
		cs.add(si.EndSeq, si.Counter, si.Chain)
		if inner != nil {
			return inner(si)
		}
		return nil
	}
	run := func() (*StreamResult, error) {
		if sopts.Resume != nil {
			cs.baseSeq = sopts.Resume.Seq
			chain, err := sopts.Resume.chainHead()
			if err == nil {
				cs.add(sopts.Resume.Seq, sopts.Resume.Counter, chain)
			}
		} else {
			cs.baseSeq = 0
		}
		return VerifyFileStreamContext(ctx, path, sopts)
	}
	res, err := run()
	if err != nil && sopts.Resume != nil && errors.Is(err, ErrCheckpointStale) {
		// The auto-loaded checkpoint no longer matches the file (trimmed or
		// rewritten since): cold-scan for the true verdict.
		sopts.Resume = nil
		res, err = run()
	}
	return res, err
}

// replayManifests verifies the manifest sidecar against the shards'
// verified commit points. Returns the number of manifests verified and the
// last epoch.
func replayManifests(ss *ShardSet, opts *StreamOptions, points []*commitSet) (int, uint64, error) {
	raw, err := os.ReadFile(ss.Manifest)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: manifest sidecar: %v", ErrTampered, err)
	}
	ms, err := readManifests(bytes.NewReader(raw), opts.RecoverTruncated)
	if err != nil {
		return 0, 0, fmt.Errorf("manifest sidecar: %w", err)
	}
	if len(ms) == 0 && !opts.RecoverTruncated {
		// The writer creates the sidecar with an initial manifest; an empty
		// one means its records were stripped.
		return 0, 0, fmt.Errorf("%w: manifest sidecar holds no manifests", ErrTampered)
	}
	// The per-record checks (shard count, epoch/counter monotonicity,
	// signature) run on the same replayer the live mirror uses, so offline
	// and streaming replay cannot drift apart; only the membership check —
	// a set lookup here, a deferred obligation live — differs by caller.
	replayer := &ManifestReplayer{Name: ss.Name, Pub: opts.Pub, Shards: ss.Shards}
	for _, m := range ms {
		if err := replayer.Verify(m); err != nil {
			return 0, 0, err
		}
		for k, st := range m.Shards {
			if !points[k].has(st) {
				return 0, 0, fmt.Errorf(
					"%w: epoch manifest %d attests shard %d at seq=%d counter=%d, but the shard log holds no such commit point — shard rolled back",
					ErrBadCounter, m.Epoch, k, st.Seq, st.Counter)
			}
		}
	}
	lastEpoch, lastCounter := replayer.Epoch(), replayer.Counter()
	// The sidecar's own tail is guarded by the live manifest counter: a
	// provider that discards recent manifests (and the shard records they
	// attest) is caught here, exactly like a single-file tail rollback.
	if opts.Protector != nil {
		stable, err := opts.Protector.Read(ManifestCounterName(ss.Name))
		if err != nil {
			return 0, 0, err
		}
		if lastCounter+opts.MaxCounterLag < stable {
			return 0, 0, fmt.Errorf("%w: manifest counter %d < group counter %d", ErrBadCounter, lastCounter, stable)
		}
	}
	return len(ms), lastEpoch, nil
}
