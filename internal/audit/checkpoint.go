package audit

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"libseal/internal/enclave"
)

// Resumable verification checkpoints. A checkpoint is a small JSON sidecar
// recording the verified prefix state at a commit point: the offset just
// past a signature record, the chain head and counter that record attests,
// and running totals. A restarted verifier loads the sidecar, re-binds it
// to the log (the signature record at SigOffset must hash to SigHash, parse
// cleanly, carry a valid enclave ECDSA signature, and attest exactly the
// sidecar's chain head and counter — a log that was trimmed, rotated or
// swapped since, or a sidecar whose fields disagree with the signed record,
// fails with ErrCheckpointStale and the caller falls back to a cold scan),
// seeks to Offset and verifies only the suffix.
//
// Trust model: the sidecar itself is plain, unauthenticated JSON, so resume
// never *adopts* sidecar state on its own authority. The chain head and
// counter the scan restarts from must equal what the log's own signature
// record attests — verified under the enclave public key — which is
// exactly the evidence a cold scan would have checked at that offset. A
// forged sidecar (e.g. one claiming the current group counter over a
// rolled-back log copy) therefore cannot make a resumed scan accept what a
// cold scan would reject. Fields the signature does not cover (Seq and the
// running totals) are guarded by a self-digest (Sum) so sidecar rot is
// detected at load time and degrades to a cold scan rather than a bogus
// tampering verdict.
//
// Crash model: the sidecar is written to a temp file, fsynced, and
// atomically renamed over the previous checkpoint (the same discipline Trim
// uses for the log itself), so a crash mid-write leaves the previous valid
// checkpoint in place. Checkpoints are only ever taken at commit points of
// a fully verified prefix, so resuming can never skip an unverified byte:
// the worst a crash costs is re-verifying the segments since the last
// sidecar rotation.

const (
	checkpointVersion = 1

	// defaultCheckpointSegments / defaultCheckpointBytes bound how much
	// re-verification a crash can cost when CheckpointConfig doesn't say.
	defaultCheckpointSegments = 64
	defaultCheckpointBytes    = 4 << 20
)

// ErrCheckpointStale reports a checkpoint that does not match the log file
// it is being resumed against.
var ErrCheckpointStale = errors.New("audit: checkpoint does not match log file")

// CheckpointConfig tells the streaming verifier where and how often to
// persist resumable progress.
type CheckpointConfig struct {
	// Path is the sidecar file; it is atomically replaced on each write.
	Path string
	// EverySegments writes a checkpoint after this many committed segments
	// (default 64).
	EverySegments int
	// EveryBytes writes a checkpoint after this many verified entry bytes
	// (default 4 MiB). Whichever of the two thresholds trips first wins.
	EveryBytes int64
	// OnError observes checkpoint write failures; verification itself is
	// unaffected (a lost checkpoint only costs re-verification later).
	OnError func(error)
}

// Checkpoint is the persisted sidecar state.
type Checkpoint struct {
	Version int `json:"version"`
	// Shard is the shard ordinal this checkpoint belongs to (0 for
	// single-file logs; omitted from the JSON then, which keeps sidecars
	// written before sharding existed verifying under the same digest).
	Shard int `json:"shard,omitempty"`
	// Offset is the verified prefix length: the offset just past the
	// signature record the checkpoint was taken at.
	Offset int64 `json:"offset"`
	// Seq is the next expected entry sequence number (= entries verified).
	Seq uint64 `json:"seq"`
	// Chain is the hex chain head the signature record attests.
	Chain string `json:"chain"`
	// Counter is the rollback-counter value at the commit point.
	Counter uint64 `json:"counter"`
	// Batches / MaxBatch / Entries / Tables are running verification
	// totals for the checkpointed prefix.
	Batches  int            `json:"batches"`
	MaxBatch int            `json:"max_batch"`
	Entries  int            `json:"entries"`
	Tables   map[string]int `json:"tables,omitempty"`
	// SigOffset is the file offset of the signature record's header and
	// SigHash the hex SHA-256 of its payload; together they bind the
	// checkpoint to one specific log file.
	SigOffset int64  `json:"sig_offset"`
	SigHash   string `json:"sig_hash"`
	// Sum is a SHA-256 self-digest over every other field. It catches a
	// corrupted or hand-edited sidecar at load time — in particular fields
	// the log's signature record cannot vouch for (Seq, the totals) — so
	// the failure is ErrCheckpointStale (cold-scan fallback) instead of a
	// spurious tampering verdict halfway into a resumed scan.
	Sum string `json:"sum"`
}

// digest computes the checkpoint's self-integrity digest: SHA-256 over the
// canonical JSON of every field except Sum itself (encoding/json writes
// struct fields in declaration order and map keys sorted, so the encoding
// is deterministic).
func (c *Checkpoint) digest() string {
	cp := *c
	cp.Sum = ""
	data, _ := json.Marshal(&cp)
	return hexDigest(data)
}

func hexChain(c [32]byte) string { return hex.EncodeToString(c[:]) }

func hexDigest(b []byte) string {
	d := sha256.Sum256(b)
	return hex.EncodeToString(d[:])
}

// chainHead decodes the checkpoint's chain head.
func (c *Checkpoint) chainHead() ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(c.Chain)
	if err != nil || len(b) != 32 {
		return out, fmt.Errorf("%w: bad chain head", ErrCheckpointStale)
	}
	copy(out[:], b)
	return out, nil
}

// Save atomically persists the checkpoint: temp file, fsync, rename, and a
// best-effort fsync of the containing directory so the rename itself is
// durable.
func (c *Checkpoint) Save(path string) error {
	c.Sum = c.digest()
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadCheckpoint reads a checkpoint sidecar.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointStale, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpointStale, c.Version)
	}
	if c.Sum != c.digest() {
		return nil, fmt.Errorf("%w: sidecar integrity digest mismatch", ErrCheckpointStale)
	}
	if _, err := c.chainHead(); err != nil {
		return nil, err
	}
	return &c, nil
}

// matchFile verifies the checkpoint still describes this log file AND that
// the file authenticates the state a resumed scan would adopt: the record
// at SigOffset must be a signature record whose payload hashes to SigHash
// and ends exactly at the checkpointed Offset, it must parse, its ECDSA
// signature must verify under pub (when a key is available), and the chain
// head and counter it attests must equal the sidecar's. The sidecar is
// unauthenticated JSON; this is what stops a forged sidecar — say, one
// pairing a rolled-back log copy with the current group counter so the
// final freshness check passes — from making a resume report OK where a
// cold scan would fail. Any mismatch (including an invalid record
// signature, which a cold scan would surface as ErrTampered) returns
// ErrCheckpointStale so the caller falls back to the cold scan and gets
// the true verdict. The file position is left unchanged for the caller to
// seek.
func (c *Checkpoint) matchFile(f *os.File, pub *ecdsa.PublicKey) error {
	if c.SigOffset < int64(len(fileMagic)) || c.SigOffset+5 > c.Offset {
		return fmt.Errorf("%w: implausible offsets", ErrCheckpointStale)
	}
	var hdr [5]byte
	if _, err := f.ReadAt(hdr[:], c.SigOffset); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpointStale, err)
	}
	if hdr[0] != recSig {
		return fmt.Errorf("%w: no signature record at checkpoint", ErrCheckpointStale)
	}
	n := int64(uint32(hdr[1])<<24 | uint32(hdr[2])<<16 | uint32(hdr[3])<<8 | uint32(hdr[4]))
	if n > maxRecordBytes || c.SigOffset+5+n != c.Offset {
		return fmt.Errorf("%w: signature record does not end at checkpoint offset", ErrCheckpointStale)
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, c.SigOffset+5); err != nil {
		return fmt.Errorf("%w: %v", ErrCheckpointStale, err)
	}
	return c.MatchProof(payload, pub)
}

// readRecordPayload reads the record whose header sits at off in f,
// checking that it has the wanted type byte and ends exactly at end, and
// returns its payload.
func readRecordPayload(f *os.File, typ byte, off, end int64) ([]byte, error) {
	var hdr [5]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	if hdr[0] != typ {
		return nil, fmt.Errorf("audit: record at %d has type %q, want %q", off, hdr[0], typ)
	}
	n := int64(uint32(hdr[1])<<24 | uint32(hdr[2])<<16 | uint32(hdr[3])<<8 | uint32(hdr[4]))
	if n > maxRecordBytes || off+5+n != end {
		return nil, fmt.Errorf("audit: record at %d does not end at %d", off, end)
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+5); err != nil {
		return nil, err
	}
	return payload, nil
}

// SigProof reads the signature record with header at sigOff and end at
// offset from an open log file and returns its raw payload — what a
// replication feed hands a resuming subscriber so the subscriber can
// authenticate its checkpoint with Checkpoint.MatchProof. The feed itself
// proves nothing: a wrong or forged payload simply fails MatchProof on the
// client.
func SigProof(f *os.File, sigOff, offset int64) ([]byte, error) {
	if sigOff < int64(len(fileMagic)) || sigOff+5 > offset {
		return nil, fmt.Errorf("audit: implausible signature record offsets")
	}
	return readRecordPayload(f, recSig, sigOff, offset)
}

// ManifestRecordProof is SigProof's sidecar counterpart: the raw payload of
// the manifest record with header at recOff and end at offset, for the
// subscriber to authenticate with MatchManifestProof.
func ManifestRecordProof(f *os.File, recOff, offset int64) ([]byte, error) {
	if recOff < int64(len(manifestMagic)) || recOff+5 > offset {
		return nil, fmt.Errorf("audit: implausible manifest record offsets")
	}
	return readRecordPayload(f, recManifest, recOff, offset)
}

// MatchProof authenticates the checkpoint against the raw payload of the
// signature record claimed to sit at SigOffset — the second half of
// matchFile, split out so a mirror can validate a proof fetched over the
// network from an untrusted feed instead of read from a local file. The
// payload must hash to SigHash, end exactly at Offset, parse as a signature
// record, verify under pub (when a key is available), and attest exactly the
// sidecar's chain head and counter. Any mismatch is ErrCheckpointStale: the
// caller falls back to a cold scan, never adopts the state.
func (c *Checkpoint) MatchProof(payload []byte, pub *ecdsa.PublicKey) error {
	if c.SigOffset < int64(len(fileMagic)) || c.SigOffset+5 > c.Offset {
		return fmt.Errorf("%w: implausible offsets", ErrCheckpointStale)
	}
	if c.SigOffset+5+int64(len(payload)) != c.Offset {
		return fmt.Errorf("%w: signature record does not end at checkpoint offset", ErrCheckpointStale)
	}
	if hexDigest(payload) != c.SigHash {
		return fmt.Errorf("%w: signature record hash mismatch", ErrCheckpointStale)
	}
	chain, counter, sig, err := parseSig(payload)
	if err != nil {
		return fmt.Errorf("%w: unparseable signature record at checkpoint: %v", ErrCheckpointStale, err)
	}
	if pub != nil && !enclave.VerifySignature(pub, sigDigest(chain, counter), sig) {
		return fmt.Errorf("%w: signature record at checkpoint fails ECDSA check", ErrCheckpointStale)
	}
	want, err := c.chainHead()
	if err != nil {
		return err
	}
	if chain != want || counter != c.Counter {
		return fmt.Errorf("%w: sidecar chain/counter disagree with signed record", ErrCheckpointStale)
	}
	return nil
}
