package audit

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"libseal/internal/asyncall"
)

// shardConfig returns a sharded disk config. ManifestEvery is set far in
// the future so manifests appear only at creation, explicit WriteManifest
// calls and trims — keeping the tests deterministic.
func (e *auditEnv) shardConfig(name string, shards int) ShardedConfig {
	return ShardedConfig{Config: e.diskConfig(name), Shards: shards, ManifestEvery: time.Hour}
}

func (e *auditEnv) verifyDir(opts VerifyOptions) (*ShardedStreamResult, error) {
	return VerifyShardedDir(e.dir, StreamOptions{
		VerifyOptions: opts,
		OnSegment:     func(SegmentInfo) error { return nil },
	})
}

// keyForShard finds a connection key the sharded log routes to shard k.
func keyForShard(s *ShardedLog, k int) uint64 {
	for key := uint64(0); ; key++ {
		if s.ShardFor(key) == k {
			return key
		}
	}
}

// TestShardedAppendVerify drives concurrent appends over many connection
// keys across four shards and checks the invariants the design rests on:
// the aggregate sequence number, the on-disk layout (shard files plus one
// manifest sidecar), a passing whole-set verification, and per-connection
// order preserved within each shard stream.
func TestShardedAppendVerify(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 4))
		return err
	})

	const keys = 16
	const perKey = 5
	var wg sync.WaitGroup
	errs := make([]error, keys)
	for c := 0; c < keys; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				err := e.bridge.Call(func(env *asyncall.Env) error {
					return s.Append(env, uint64(c), "updates", i, fmt.Sprintf("key%d", c), "main", fmt.Sprintf("c%d-%d", c, i), "update")
				})
				if err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("key %d: %v", c, err)
		}
	}
	if s.Seq() != keys*perKey {
		t.Fatalf("aggregate seq = %d, want %d", s.Seq(), keys*perKey)
	}
	e.call(t, func(env *asyncall.Env) error { return s.WriteManifest(env) })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for k := 0; k < 4; k++ {
		if _, err := os.Stat(filepath.Join(e.dir, ShardName("git", k)+".lseal")); err != nil {
			t.Fatalf("shard file %d: %v", k, err)
		}
	}
	if _, err := os.Stat(filepath.Join(e.dir, ManifestFileName("git"))); err != nil {
		t.Fatalf("manifest sidecar: %v", err)
	}

	// Verify the set, collecting every entry per shard to check ordering.
	var mu sync.Mutex
	perShard := make(map[int][]*Entry)
	res, err := VerifyShardedDir(e.dir, StreamOptions{
		VerifyOptions: VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"},
		OnSegment: func(si SegmentInfo) error {
			mu.Lock()
			perShard[si.Shard] = append(perShard[si.Shard], si.Entries...)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatalf("sharded verify: %v", err)
	}
	if !res.Sharded || len(res.Shards) != 4 {
		t.Fatalf("Sharded=%v shards=%d", res.Sharded, len(res.Shards))
	}
	if res.TotalEntries != keys*perKey {
		t.Fatalf("TotalEntries = %d, want %d", res.TotalEntries, keys*perKey)
	}
	if res.Manifests < 2 { // creation manifest + explicit WriteManifest
		t.Fatalf("Manifests = %d, want >= 2", res.Manifests)
	}
	if res.Tables["updates"] != keys*perKey {
		t.Fatalf("Tables = %v", res.Tables)
	}
	// One connection's entries all land in one shard, in staged order: the
	// per-key time column (values[0]) must be strictly increasing within the
	// shard's delivered stream.
	lastTime := map[string]int64{}
	seenIn := map[string]int{}
	total := 0
	for k, entries := range perShard {
		for _, en := range entries {
			key := en.Values[1].TextVal()
			if prev, ok := seenIn[key]; ok && prev != k {
				t.Fatalf("key %s split across shards %d and %d", key, prev, k)
			}
			seenIn[key] = k
			tv := en.Values[0].Int64()
			if last, ok := lastTime[key]; ok && tv <= last {
				t.Fatalf("key %s out of order in shard %d: %d after %d", key, k, tv, last)
			}
			lastTime[key] = tv
			total++
		}
	}
	if total != keys*perKey {
		t.Fatalf("streamed %d entries, want %d", total, keys*perKey)
	}
}

// TestShardedSingleShardLegacyLayout pins the compatibility contract: one
// shard means the historical single-file layout — same file name, no
// manifest sidecar — and VerifyShardedDir degrades to plain verification.
func TestShardedSingleShardLegacyLayout(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 1))
		if err != nil {
			return err
		}
		return s.Append(env, 7, "updates", 1, "r", "main", "c1", "update")
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(e.dir, "git.lseal")); err != nil {
		t.Fatalf("legacy file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(e.dir, ManifestFileName("git"))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("manifest sidecar should not exist for 1 shard: %v", err)
	}
	res, err := e.verifyDir(VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharded || res.TotalEntries != 1 {
		t.Fatalf("Sharded=%v entries=%d", res.Sharded, res.TotalEntries)
	}
}

// TestShardRollbackDetectedByManifest is the PR's core security regression:
// rolling one shard back to an earlier — internally consistent, correctly
// signed — prefix of itself must fail whole-set verification offline (nil
// protector), because later epoch manifests attest a commit point the
// truncated shard no longer holds. Restoring the full shard file makes the
// same offline verification pass.
func TestShardRollbackDetectedByManifest(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 2))
		return err
	})
	k0 := keyForShard(s, 0)
	k1 := keyForShard(s, 1)
	shard0 := filepath.Join(e.dir, ShardName("git", 0)+".lseal")

	e.call(t, func(env *asyncall.Env) error {
		if err := s.Append(env, k0, "updates", 1, "r", "main", "c1", "update"); err != nil {
			return err
		}
		return s.Append(env, k1, "updates", 2, "r", "main", "c2", "update")
	})
	// Snapshot shard 0 at a commit point: an entirely valid earlier image.
	rolledBack, err := os.ReadFile(shard0)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 advances, and a manifest binds its new state cross-shard.
	e.call(t, func(env *asyncall.Env) error {
		if err := s.Append(env, k0, "updates", 3, "r", "main", "c3", "update"); err != nil {
			return err
		}
		return s.WriteManifest(env)
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(shard0)
	if err != nil {
		t.Fatal(err)
	}

	// Offline verification options: no protector, so the only rollback
	// evidence is in the files themselves.
	offline := VerifyOptions{Pub: e.encl.PublicKey()}

	// The intact set verifies offline.
	if _, err := e.verifyDir(offline); err != nil {
		t.Fatalf("intact set: %v", err)
	}

	// Roll shard 0 back. Its own chain and signatures still verify — only
	// the manifest replay can notice.
	if err := os.WriteFile(shard0, rolledBack, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFileStream(shard0, StreamOptions{
		VerifyOptions: VerifyOptions{Pub: e.encl.PublicKey()},
		OnSegment:     func(SegmentInfo) error { return nil },
	}); err != nil {
		t.Fatalf("rolled-back shard should pass single-file verification: %v", err)
	}
	_, err = e.verifyDir(offline)
	if !errors.Is(err, ErrBadCounter) {
		t.Fatalf("rolled-back shard: err = %v, want ErrBadCounter", err)
	}
	if want := "shard rolled back"; err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the rollback", err)
	}

	// Restore the full image: offline verification passes again.
	if err := os.WriteFile(shard0, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.verifyDir(offline); err != nil {
		t.Fatalf("restored set: %v", err)
	}
}

// TestShardedManifestSidecarStripped checks that deleting or emptying the
// manifest sidecar of a sharded set is itself tampering.
func TestShardedManifestSidecarStripped(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 2))
		if err != nil {
			return err
		}
		return s.Append(env, 1, "updates", 1, "r", "main", "c1", "update")
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(e.dir, ManifestFileName("git"))

	// Truncate the sidecar to just its magic: no manifests left.
	if err := os.WriteFile(manifest, []byte(manifestMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.verifyDir(VerifyOptions{Pub: e.encl.PublicKey()}); !errors.Is(err, ErrTampered) {
		t.Fatalf("stripped sidecar: err = %v, want ErrTampered", err)
	}

	// Removing it entirely leaves two shard files and no manifest — an
	// ambiguous directory, also rejected.
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	if _, err := e.verifyDir(VerifyOptions{Pub: e.encl.PublicKey()}); err == nil {
		t.Fatal("missing sidecar accepted")
	}
}

// TestShardedTrimPartition trims a sharded log and checks the survivors are
// re-partitioned, re-sequenced and re-verifiable, with the manifest sidecar
// rewritten to attest the post-trim states.
func TestShardedTrimPartition(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 3))
		if err != nil {
			return err
		}
		for i := 0; i < 30; i++ {
			if err := s.Append(env, uint64(i%7), "updates", i, "r", "main", fmt.Sprintf("c%d", i), "update"); err != nil {
				return err
			}
		}
		return s.Trim(env, []string{"DELETE FROM updates WHERE time < 20"})
	})
	if s.Seq() != 10 {
		t.Fatalf("post-trim aggregate seq = %d, want 10", s.Seq())
	}
	res, err := s.Query("SELECT COUNT(*) FROM updates")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int64(); got != 10 {
		t.Fatalf("post-trim rows = %d, want 10", got)
	}
	// The trimmed log keeps appending.
	e.call(t, func(env *asyncall.Env) error {
		return s.Append(env, 3, "updates", 99, "r", "main", "c99", "update")
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	vres, err := e.verifyDir(VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"})
	if err != nil {
		t.Fatalf("post-trim verify: %v", err)
	}
	if vres.TotalEntries != 11 {
		t.Fatalf("post-trim verified entries = %d, want 11", vres.TotalEntries)
	}
}

// TestShardedRecover closes a sharded log and reopens it with
// RecoverSharded: sequence numbers, epoch continuity and appendability must
// survive, and the recovered set must verify.
func TestShardedRecover(t *testing.T) {
	e := newAuditEnv(t)
	cfg := e.shardConfig("git", 2)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < 6; i++ {
			if err := s.Append(env, uint64(i), "updates", i, "r", "main", fmt.Sprintf("c%d", i), "update"); err != nil {
				return err
			}
		}
		return s.WriteManifest(env)
	})
	epochBefore := s.Epoch()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var r *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		r, err = RecoverSharded(env, cfg, e.encl.PublicKey())
		return err
	})
	if r.Seq() != 6 {
		t.Fatalf("recovered seq = %d, want 6", r.Seq())
	}
	if r.Epoch() <= epochBefore {
		t.Fatalf("recovered epoch = %d, want > %d", r.Epoch(), epochBefore)
	}
	e.call(t, func(env *asyncall.Env) error {
		if err := r.Append(env, 1, "updates", 6, "r", "main", "c6", "update"); err != nil {
			return err
		}
		return r.WriteManifest(env)
	})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := e.verifyDir(VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"})
	if err != nil {
		t.Fatalf("post-recovery verify: %v", err)
	}
	if res.TotalEntries != 7 {
		t.Fatalf("entries = %d, want 7", res.TotalEntries)
	}
}

// TestShardedVerifyResumeAuto checks the checkpoint/resume plumbing over a
// sharded set: a first verification writes per-shard sidecars, a second one
// with ResumeAuto resumes from them (including manifest replay against the
// checkpointed base) and reports whole-set totals.
func TestShardedVerifyResumeAuto(t *testing.T) {
	e := newAuditEnv(t)
	var s *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		s, err = NewSharded(env, e.shardConfig("git", 2))
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := s.Append(env, uint64(i%5), "updates", i, "r", "main", fmt.Sprintf("c%d", i), "update"); err != nil {
				return err
			}
		}
		return s.WriteManifest(env)
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	opts := StreamOptions{
		VerifyOptions: VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"},
		Checkpoint:    &CheckpointConfig{EverySegments: 1},
		OnSegment:     func(SegmentInfo) error { return nil },
	}
	cold, err := VerifyShardedDir(e.dir, opts)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	for k := 0; k < 2; k++ {
		ckpt := filepath.Join(e.dir, ShardName("git", k)+".lseal.ckpt")
		c, err := LoadCheckpoint(ckpt)
		if err != nil {
			t.Fatalf("shard %d checkpoint: %v", k, err)
		}
		if c.Shard != k {
			t.Fatalf("shard %d checkpoint records shard %d", k, c.Shard)
		}
	}

	opts.ResumeAuto = true
	warm, err := VerifyShardedDir(e.dir, opts)
	if err != nil {
		t.Fatalf("resumed verify: %v", err)
	}
	if !warm.Resumed {
		t.Fatal("resumed run not marked Resumed")
	}
	if warm.TotalEntries != cold.TotalEntries || warm.TotalBatches != cold.TotalBatches {
		t.Fatalf("resumed totals %d/%d != cold %d/%d",
			warm.TotalEntries, warm.TotalBatches, cold.TotalEntries, cold.TotalBatches)
	}
	if warm.Manifests != cold.Manifests || warm.Epoch != cold.Epoch {
		t.Fatalf("resumed manifests %d/%d != cold %d/%d",
			warm.Manifests, warm.Epoch, cold.Manifests, cold.Epoch)
	}
}

// TestManifestRoundtrip exercises the manifest codec directly: marshal,
// parse back, digest stability, and rejection of corrupted frames.
func TestManifestRoundtrip(t *testing.T) {
	m := &Manifest{
		Epoch:   7,
		Counter: 3,
		Shards: []ShardState{
			{Chain: [32]byte{1, 2}, Seq: 10, Counter: 4},
			{Chain: [32]byte{3, 4}, Seq: 12, Counter: 5},
		},
	}
	m.Sig.R = []byte{9}
	m.Sig.S = []byte{8}
	buf := marshalManifest(m)
	got, err := parseManifest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Counter != m.Counter || len(got.Shards) != 2 ||
		got.Shards[1] != m.Shards[1] {
		t.Fatalf("roundtrip = %+v", got)
	}
	if !bytes.Equal(manifestDigest("git", m), manifestDigest("git", got)) {
		t.Fatal("digest not stable across roundtrip")
	}
	// The digest binds the log name: a sidecar transplanted from another
	// deployment must not verify.
	if bytes.Equal(manifestDigest("git", m), manifestDigest("other", m)) {
		t.Fatal("digest ignores the log name")
	}
	// Truncated and trailing-garbage payloads are rejected.
	if _, err := parseManifest(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := parseManifest(append(append([]byte{}, buf...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A zero-shard manifest is meaningless.
	if _, err := parseManifest(marshalManifest(&Manifest{Epoch: 1, Sig: m.Sig})); err == nil {
		t.Fatal("zero-shard manifest accepted")
	}
}

// TestShardRouting pins the routing function: deterministic, stable across
// calls, single-shard sets always route to 0, and keys spread over shards.
func TestShardRouting(t *testing.T) {
	e := newAuditEnv(t)
	var s1, s4 *ShardedLog
	e.call(t, func(env *asyncall.Env) error {
		var err error
		if s4, err = NewSharded(env, e.shardConfig("git", 4)); err != nil {
			return err
		}
		cfg := e.shardConfig("solo", 1)
		cfg.Dir = filepath.Join(e.dir, "solo")
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return err
		}
		s1, err = NewSharded(env, cfg)
		return err
	})
	defer s4.Close()
	defer s1.Close()

	hit := make(map[int]int)
	for key := uint64(0); key < 256; key++ {
		k := s4.ShardFor(key)
		if k != s4.ShardFor(key) {
			t.Fatalf("unstable routing for key %d", key)
		}
		if k < 0 || k >= 4 {
			t.Fatalf("key %d routed to shard %d", key, k)
		}
		hit[k]++
		if s1.ShardFor(key) != 0 {
			t.Fatalf("single-shard set routed key %d to %d", key, s1.ShardFor(key))
		}
	}
	for k := 0; k < 4; k++ {
		if hit[k] == 0 {
			t.Fatalf("no keys routed to shard %d: %v", k, hit)
		}
	}
}
