package audit

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"libseal/internal/sqldb"
)

// FuzzVerifyReader is a differential fuzzer over the two verifier
// implementations: for arbitrary log images, the sequential verifier and
// the parallel segmented pipeline must reach the same verdict — the same
// error string, or deeply equal results — in both strict and tolerant
// mode, and every rejection must be a classified integrity error. Any
// divergence is a seam an attacker could slip a forged log through
// (accepted by one verifier, rejected by the other).
func FuzzVerifyReader(f *testing.F) {
	key := testKey(f)
	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add(synthLog(f, key, 3, 1))
	f.Add(synthLog(f, key, 9, 4))
	f.Add(appendUnsigned(f, synthLog(f, key, 4, 2), 4, 2))
	// A bare signature record and a torn header.
	{
		var buf bytes.Buffer
		if _, err := WriteSyntheticBatches(&buf, key, []SyntheticBatch{{Counter: 1}}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:len(buf.Bytes())-3])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tolerant := range []bool{false, true} {
			opts := VerifyOptions{RecoverTruncated: tolerant}
			seqRes, seqErr := VerifyReaderResult(bytes.NewReader(data), opts)
			for _, workers := range []int{1, 4} {
				strRes, strErr := VerifyReaderStream(bytes.NewReader(data),
					StreamOptions{VerifyOptions: opts, Workers: workers})
				if (seqErr == nil) != (strErr == nil) {
					t.Fatalf("tolerant=%v workers=%d: verdict mismatch: sequential err=%v, stream err=%v",
						tolerant, workers, seqErr, strErr)
				}
				if seqErr != nil {
					if seqErr.Error() != strErr.Error() {
						t.Fatalf("tolerant=%v workers=%d: error mismatch:\n  sequential: %v\n  stream:     %v",
							tolerant, workers, seqErr, strErr)
					}
					if !errors.Is(seqErr, ErrTampered) && !errors.Is(seqErr, ErrBadCounter) {
						t.Fatalf("unclassified verification error: %v", seqErr)
					}
					continue
				}
				if !reflect.DeepEqual(seqRes, &strRes.VerifyResult) {
					t.Fatalf("tolerant=%v workers=%d: result mismatch:\n  sequential: %+v\n  stream:     %+v",
						tolerant, workers, seqRes, strRes.VerifyResult)
				}
			}
		}
	})
}

// FuzzCodecRoundTrip checks that the entry codec accepts exactly the
// canonical encodings: any input UnmarshalEntry accepts must re-encode to
// the identical bytes (the hash chain runs over this encoding, so a
// non-canonical accepted form would let two different byte strings decode
// to the same entry while chaining differently).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(SyntheticEntry(0).Marshal())
	f.Add((&Entry{Seq: 7, Table: "t", Values: []sqldb.Value{
		sqldb.Null(), sqldb.Int(-1), sqldb.Float(0.5), sqldb.Text("x"), sqldb.Blob([]byte{0, 255}),
	}}).Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEntry(data)
		if err != nil {
			return
		}
		enc := e.Marshal()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical encoding:\n  in:  %x\n  out: %x", data, enc)
		}
		e2, err := UnmarshalEntry(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("decode not stable:\n  first:  %+v\n  second: %+v", e, e2)
		}
	})
}
