package audit

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"libseal/internal/enclave"
)

// Segmented log scanning. A persisted log is a stream of entry records
// delimited by signature records; every signature record is a commit point
// carrying the chain head it attests. That makes the signature records
// natural cut points for parallel verification: a sequential scanner splits
// the stream into segments — the entries since the previous signature plus
// the signature that closes them — and hands each segment its *claimed*
// starting chain head (the previous signature's attested head). A worker can
// then recompute the segment's hashes and check its signature independently
// of every other segment: if segment k verifies, its claimed end head is the
// true chain head after its last entry, so segment k+1's claimed start is
// trustworthy by induction and the stitched result equals the sequential
// scan's byte for byte.
//
// The scanner does only cheap structural work (record framing, signature
// field splitting); hashing, ECDSA verification and entry decoding — the
// dominant costs — happen in the workers.

// maxRecordBytes caps a single record's payload length. The writers never
// produce records anywhere near this large; a length field claiming more is
// either corruption or a malicious log, and bounding it keeps a hostile
// input from forcing multi-gigabyte allocations during verification.
const maxRecordBytes = 1 << 28

// errOversized classifies a record whose length field exceeds
// maxRecordBytes. Shared by the sequential and streaming scanners so both
// paths report the identical error.
func errOversized(n uint32) error {
	return fmt.Errorf("%w: oversized record (%d bytes)", ErrTampered, n)
}

// readPayload reads an n-byte record payload. Large payloads are read
// through a growing buffer rather than allocated up front, so a forged
// length field costs memory proportional to the bytes actually present,
// not to the claim. Short reads return io.ReadFull-style errors.
func readPayload(r io.Reader, n uint32) ([]byte, error) {
	if n <= 1<<16 {
		b := make([]byte, n)
		_, err := io.ReadFull(r, b)
		return b, err
	}
	var buf bytes.Buffer
	got, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if got < int64(n) {
		if got == 0 {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	return buf.Bytes(), nil
}

// segment is one signature-delimited slice of the record stream: the entry
// payloads since the previous commit point plus (except for a trailing
// unsigned segment) the signature record that closes them.
type segment struct {
	index      int      // dispatch ordinal; equals the count of signed segments before it
	startSeq   uint64   // expected sequence number of the first entry
	startChain [32]byte // claimed chain head before the first entry
	payloads   [][]byte // raw entry payloads (sealed if the log is sealed)

	hasSig      bool
	sigRaw      []byte   // raw signature record payload (checkpoint binding)
	sigChain    [32]byte // claimed chain head after the last entry
	counter     uint64
	sigVal      enclave.Signature
	sigParseErr error
	sigOff      int64 // file offset of the signature record's header
	end         int64 // file offset just past the signature record (commit point)

	res  segResult
	done chan struct{}
}

// segResult is a worker's verdict on one segment.
type segResult struct {
	entries  []*Entry
	err      error  // formatted entry-level failure (nil otherwise)
	entryErr bool   // err was raised at an entry record
	sigBad   string // non-empty: the signature record failed (parse/chain/ECDSA)
	bytes    int64  // entry payload bytes, for telemetry
}

// scanEnd is what the scanner learned about the stream beyond the dispatched
// segments; the merger consults it to reproduce the sequential verifier's
// error precedence exactly.
type scanEnd struct {
	// streamErr is a record-framing failure (bad magic, truncated record,
	// oversized record). In strict mode it preempts every other verdict —
	// the sequential verifier parses the whole stream before checking
	// anything — except that bad magic fails both modes.
	streamErr error
	badMagic  bool
	// unknownErr is the first unknown-record-type error; it applies only
	// when everything dispatched before it verified.
	unknownErr error
	// totalSigs counts every signature record in the stream, including ones
	// after the scanner stopped dispatching. A tolerant scan that tears
	// inside the signed prefix must detect any later signature record as
	// proof of tampering.
	totalSigs int
	endOffset int64
}

// scanBase is the verified state the scan starts from: zero values for a
// cold scan, the checkpointed prefix state for a resumed one.
type scanBase struct {
	offset   int64
	seq      uint64
	chain    [32]byte
	counter  uint64
	batches  int
	maxBatch int
	entries  int
	tables   map[string]int
}

// scan reads the record stream, dispatching signature-delimited segments to
// the work and order channels (same segments, same order; order is what the
// merger consumes). It always structurally scans to end of stream, even
// after it stops dispatching, so the merger can apply the sequential
// verifier's precedence rules. Runs as a goroutine; closes both channels on
// return.
func scanSegments(ctx context.Context, r io.Reader, base scanBase, resumed bool, work, order chan *segment, end *scanEnd) {
	defer close(work)
	defer close(order)
	br := bufio.NewReaderSize(r, 512<<10)
	off := base.offset
	if !resumed {
		magic := make([]byte, len(fileMagic))
		if _, err := io.ReadFull(br, magic); err != nil || string(magic) != string(fileMagic) {
			end.streamErr = fmt.Errorf("%w: bad magic", ErrTampered)
			end.badMagic = true
			end.endOffset = off
			return
		}
		off = int64(len(fileMagic))
	}
	dispatch := func(s *segment) bool {
		s.done = make(chan struct{})
		select {
		case work <- s:
		case <-ctx.Done():
			return false
		}
		select {
		case order <- s:
		case <-ctx.Done():
			return false
		}
		return true
	}
	var cur *segment
	idx := 0
	nextSeq := base.seq
	nextChain := base.chain
	dispatching := true
	var hdr [5]byte
	for {
		if ctx.Err() != nil {
			break
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				end.streamErr = fmt.Errorf("%w: truncated record header", ErrTampered)
			}
			break
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		if n > maxRecordBytes {
			end.streamErr = errOversized(n)
			break
		}
		payload, err := readPayload(br, n)
		if err != nil {
			end.streamErr = fmt.Errorf("%w: truncated record", ErrTampered)
			break
		}
		off += 5 + int64(n)
		switch hdr[0] {
		case recEntry:
			if !dispatching {
				continue
			}
			if cur == nil {
				cur = &segment{index: idx, startSeq: nextSeq, startChain: nextChain}
			}
			cur.payloads = append(cur.payloads, payload)
			nextSeq++
		case recSig:
			end.totalSigs++
			if !dispatching {
				continue
			}
			seg := cur
			if seg == nil {
				seg = &segment{index: idx, startSeq: nextSeq, startChain: nextChain}
			}
			cur = nil
			seg.hasSig = true
			seg.sigRaw = payload
			seg.sigOff = off - 5 - int64(n)
			seg.end = off
			ch, ctr, sv, perr := parseSig(payload)
			if perr != nil {
				// The claimed chain beyond this point is unknowable; the
				// verdict is already decided at this segment, so later
				// records are scanned structurally only.
				seg.sigParseErr = perr
				dispatching = false
			} else {
				seg.sigChain = ch
				seg.counter = ctr
				seg.sigVal = sv
				nextChain = ch
			}
			idx++
			if !dispatch(seg) {
				return
			}
		default:
			if end.unknownErr == nil {
				end.unknownErr = fmt.Errorf("%w: unknown record type %q", ErrTampered, hdr[0])
			}
			// Entries pending before the unknown record are processed by the
			// sequential verifier before it errors; dispatch them as a
			// trailing unsigned segment, then scan structurally.
			if dispatching && cur != nil {
				trailing := cur
				cur = nil
				if !dispatch(trailing) {
					return
				}
			}
			dispatching = false
		}
	}
	if dispatching && cur != nil {
		if !dispatch(cur) {
			return
		}
	}
	end.endOffset = off
}

// verifySegment recomputes one segment's hash chain, decodes its entries and
// checks its signature record against the claimed chain head. It is the
// expensive half of verification and runs concurrently across segments.
func verifySegment(seg *segment, opts *VerifyOptions) segResult {
	var res segResult
	chain := seg.startChain
	seq := seg.startSeq
	for _, raw := range seg.payloads {
		payload := raw
		if opts.Unseal != nil {
			var err error
			if payload, err = opts.Unseal(raw); err != nil {
				res.err = fmt.Errorf("%w: unseal: %v", ErrTampered, err)
				res.entryErr = true
				return res
			}
		}
		e, err := UnmarshalEntry(payload)
		if err != nil {
			res.err = fmt.Errorf("%w: %v", ErrTampered, err)
			res.entryErr = true
			return res
		}
		if e.Seq != seq {
			res.err = fmt.Errorf("%w: sequence gap at %d", ErrTampered, seq)
			res.entryErr = true
			return res
		}
		seq++
		chain = chainNext(chain, payload)
		res.entries = append(res.entries, e)
		res.bytes += int64(len(payload))
	}
	if seg.hasSig {
		switch {
		case seg.sigParseErr != nil:
			res.sigBad = seg.sigParseErr.Error()
		case seg.sigChain != chain:
			res.sigBad = "chain hash mismatch"
		case opts.Pub != nil && !enclave.VerifySignature(opts.Pub, sigDigest(seg.sigChain, seg.counter), seg.sigVal):
			res.sigBad = "signature invalid"
		}
	}
	return res
}
