package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/faultinject"
	"libseal/internal/rote"
)

// batchConfig returns a disk config with group commit enabled.
func (e *auditEnv) batchConfig(name string, batchMax int, delay time.Duration) Config {
	cfg := e.diskConfig(name)
	cfg.BatchMax = batchMax
	cfg.BatchDelay = delay
	return cfg
}

// Write-operation layout with group commit: the magic is write 0, and a
// committed batch of k entries issues 2k+2 writes (k entry header/payload
// pairs, then one signature header/payload pair).
func batchWrites(k int) int { return 2*k + 2 }

// TestGroupCommitConcurrentAppends drives appends from many goroutines with
// batching on and checks that every acknowledged entry lands durably, the
// file passes strict client verification, and each committed batch paid
// exactly one fsync and one signature.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.batchConfig("git", 8, 2*time.Millisecond))
		return err
	})

	fsyncs0 := mFsyncs.Value()
	sigs0 := mSignatures.Value()
	commits0 := mBatchCommits.Value()

	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := e.bridge.Call(func(env *asyncall.Env) error {
					return l.Append(env, "updates", g*perG+i, "r", "main", fmt.Sprintf("c%d-%d", g, i), "update")
				})
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	const total = goroutines * perG
	if l.Seq() != total {
		t.Fatalf("seq = %d, want %d", l.Seq(), total)
	}
	commits := mBatchCommits.Value() - commits0
	if got := mFsyncs.Value() - fsyncs0; got != commits {
		t.Fatalf("fsyncs = %d, want one per batch (%d)", got, commits)
	}
	if got := mSignatures.Value() - sigs0; got != commits {
		t.Fatalf("signatures = %d, want one per batch (%d)", got, commits)
	}
	if commits < 1 || commits > total {
		t.Fatalf("batch commits = %d for %d appends", commits, total)
	}
	t.Logf("committed %d appends in %d batches", total, commits)
	l.Close()

	entries, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatalf("strict verify of batched log: %v", err)
	}
	if len(entries) != total {
		t.Fatalf("verified entries = %d, want %d", len(entries), total)
	}
}

// TestGroupCommitAsyncBridge repeats the concurrent-append workload over the
// asynchronous call bridge, where a sleeping batch leader must never pin an
// lthread scheduler (the regression this guards against is a deadlock, not a
// wrong answer).
func TestGroupCommitAsyncBridge(t *testing.T) {
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{Code: []byte("libseal-audit"), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeAsync, AppSlots: 8, Schedulers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	group, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var l *Log
	if err := bridge.Call(func(env *asyncall.Env) error {
		l, err = New(env, Config{
			Name: "git", Schema: testSchema, Mode: ModeDisk, Dir: dir,
			Protector: group, BatchMax: 8, BatchDelay: 2 * time.Millisecond,
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := bridge.Call(func(env *asyncall.Env) error {
					return l.Append(env, "updates", g*perG+i, "r", "main", fmt.Sprintf("a%d-%d", g, i), "update")
				})
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if l.Seq() != goroutines*perG {
		t.Fatalf("seq = %d, want %d", l.Seq(), goroutines*perG)
	}
	l.Close()
	entries, err := VerifyFile(filepath.Join(dir, "git.lseal"), VerifyOptions{
		Pub: encl.PublicKey(), Protector: group, Name: "git",
	})
	if err != nil {
		t.Fatalf("strict verify: %v", err)
	}
	if len(entries) != goroutines*perG {
		t.Fatalf("verified entries = %d, want %d", len(entries), goroutines*perG)
	}
}

// TestGroupCommitSingleSigPerBatch stages one multi-row ticket and checks
// the on-disk shape directly: N chained entry records under one signature
// record, one counter increment for the whole batch.
func TestGroupCommitSingleSigPerBatch(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.batchConfig("git", 8, 0))
		if err != nil {
			return err
		}
		rows := make([]Row, 5)
		for i := range rows {
			rows[i] = Row{Table: "updates", Values: []any{i, "r", "main", fmt.Sprintf("c%d", i), "update"}}
		}
		tk, err := l.Stage(env, rows)
		if err != nil {
			return err
		}
		return tk.Wait(env)
	})
	l.Close()

	f, err := os.Open(filepath.Join(e.dir, "git.lseal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := VerifyReaderResult(f, VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(res.Entries))
	}
	if res.Batches != 1 || res.MaxBatch != 5 {
		t.Fatalf("batches = %d maxBatch = %d, want 1 batch of 5", res.Batches, res.MaxBatch)
	}
	// The whole batch consumed a single counter increment.
	if c, err := e.group.Read("git"); err != nil || c != 1 {
		t.Fatalf("counter = %d (%v), want 1", c, err)
	}
}

// TestGroupCommitCrashMidBatchRecovered tears a write in the middle of a
// batch: the batch's appends fail (never acknowledged), and recovery lands
// exactly on the last signed batch — every acknowledged entry survives,
// nothing unacknowledged is resurrected.
func TestGroupCommitCrashMidBatchRecovered(t *testing.T) {
	e := newAuditEnv(t)
	// Batch 1 (2 entries) occupies writes 1..6; batch 2 (3 entries) starts
	// at write 7. Tear its third entry's payload: write 11.
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.TornWrite("git.lseal", 1+batchWrites(2)+4),
	}}.Build()
	cfg := e.batchConfig("git", 8, 0)
	cfg.FS = in.FS(nil)

	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, cfg)
		if err != nil {
			return err
		}
		tk, err := l.Stage(env, []Row{
			{Table: "updates", Values: []any{1, "r", "main", "c1", "update"}},
			{Table: "updates", Values: []any{2, "r", "main", "c2", "update"}},
		})
		if err != nil {
			return err
		}
		return tk.Wait(env) // acknowledged: must survive the crash
	})

	err := e.bridge.Call(func(env *asyncall.Env) error {
		tk, err := l.Stage(env, []Row{
			{Table: "updates", Values: []any{3, "r", "main", "c3", "update"}},
			{Table: "updates", Values: []any{4, "r", "main", "c4", "update"}},
			{Table: "updates", Values: []any{5, "r", "main", "c5", "update"}},
		})
		if err != nil {
			return err
		}
		return tk.Wait(env)
	})
	if !errors.Is(err, faultinject.ErrTornWrite) {
		t.Fatalf("torn batch: %v, want ErrTornWrite", err)
	}
	if l.Seq() != 2 {
		t.Fatalf("seq advanced past the failed batch: %d", l.Seq())
	}
	l.Close()

	// The batch's counter increment happened before the torn flush, so the
	// persisted anchor lags the group by one.
	rcfg := e.batchConfig("git", 8, 0)
	rcfg.RecoverMaxLag = 1
	var rec *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		rec, err = Recover(env, rcfg, e.encl.PublicKey())
		return err
	})
	defer rec.Close()
	if rec.Seq() != 2 {
		t.Fatalf("recovered seq = %d, want the last signed batch (2)", rec.Seq())
	}
	res, err := rec.Query("SELECT cid FROM updates ORDER BY time")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].TextVal() != "c1" || res.Rows[1][0].TextVal() != "c2" {
		t.Fatalf("recovered rows = %v, want exactly the acknowledged batch", res.Rows)
	}
	// Re-anchored: strict client verification passes again.
	if _, err := VerifyFile(filepath.Join(e.dir, "git.lseal"), VerifyOptions{
		Pub: e.encl.PublicKey(), Protector: e.group, Name: "git",
	}); err != nil {
		t.Fatalf("post-recovery strict verify: %v", err)
	}
}

// TestBatchAbortPoisonsSuccessors checks pipeline poisoning: when a batch's
// commit fails, later staged batches chain off a head that never became
// durable, so they must fail with ErrBatchAborted rather than commit.
func TestBatchAbortPoisonsSuccessors(t *testing.T) {
	e := newAuditEnv(t)
	// Batch 1 (2 entries, sealed by BatchMax=2) dies at its signature
	// header: write 5.
	in := faultinject.Scenario{Rules: []faultinject.Rule{
		faultinject.TornWrite("git.lseal", 5),
	}}.Build()
	cfg := e.batchConfig("git", 2, 0)
	cfg.FS = in.FS(nil)

	e.call(t, func(env *asyncall.Env) error {
		l, err := New(env, cfg)
		if err != nil {
			return err
		}
		tkA, err := l.Stage(env, []Row{
			{Table: "updates", Values: []any{1, "r", "main", "c1", "update"}},
			{Table: "updates", Values: []any{2, "r", "main", "c2", "update"}},
		})
		if err != nil {
			return err
		}
		tkB, err := l.Stage(env, []Row{
			{Table: "updates", Values: []any{3, "r", "main", "c3", "update"}},
		})
		if err != nil {
			return err
		}
		if err := tkA.Wait(env); !errors.Is(err, faultinject.ErrTornWrite) {
			t.Errorf("batch 1: %v, want ErrTornWrite", err)
		}
		if err := tkB.Wait(env); !errors.Is(err, ErrBatchAborted) {
			t.Errorf("batch 2: %v, want ErrBatchAborted", err)
		}
		if l.Seq() != 0 {
			t.Errorf("seq = %d, want 0 (nothing durable)", l.Seq())
		}
		return nil
	})
}

// TestAppendTelemetryCountsErrorsSeparately checks that failed appends land
// in audit.append.errors and neither inflate audit.appends nor observe a
// latency sample.
func TestAppendTelemetryCountsErrorsSeparately(t *testing.T) {
	e := newAuditEnv(t)
	appends0 := mAppends.Value()
	errs0 := mAppendErrors.Value()
	lat0 := mAppendLatency.Count()

	e.call(t, func(env *asyncall.Env) error {
		l, err := New(env, Config{Name: "git", Schema: testSchema, Mode: ModeMemory})
		if err != nil {
			return err
		}
		// Unconvertible value: the append fails before reaching the chain.
		if err := l.Append(env, "updates", struct{}{}, "r", "main", "c1", "update"); err == nil {
			t.Error("append of unconvertible value succeeded")
		}
		return l.Append(env, "updates", 1, "r", "main", "c1", "update")
	})

	if got := mAppendErrors.Value() - errs0; got != 1 {
		t.Fatalf("append errors = %d, want 1", got)
	}
	if got := mAppends.Value() - appends0; got != 1 {
		t.Fatalf("appends = %d, want 1 (failures must not count)", got)
	}
	if got := mAppendLatency.Count() - lat0; got != 1 {
		t.Fatalf("latency samples = %d, want 1 (success only)", got)
	}
}

// TestStageFailureLeavesNoPartialGroup pins Stage's atomicity promise: a
// group whose insert fails part-way must leave no rows behind — otherwise a
// later Trim, which rebuilds the signed log from the database, would fold
// never-staged rows into the verified chain. Each failed Stage call counts
// as one staging error, not one per row.
func TestStageFailureLeavesNoPartialGroup(t *testing.T) {
	e := newAuditEnv(t)
	errs0 := mAppendErrors.Value()
	e.call(t, func(env *asyncall.Env) error {
		l, err := New(env, Config{Name: "git", Schema: testSchema, Mode: ModeMemory})
		if err != nil {
			return err
		}
		// Row 2's arity does not match the table, which only surfaces at
		// insert time — after row 1 already went in.
		_, err = l.Stage(env, []Row{
			{Table: "updates", Values: []any{1, "r", "main", "c1", "update"}},
			{Table: "updates", Values: []any{2, "r"}},
		})
		if err == nil {
			t.Error("mid-group insert failure did not fail Stage")
		}
		if n, err := l.DB().TableRowCount("updates"); err != nil || n != 0 {
			t.Errorf("rows after failed group = %d (%v), want 0", n, err)
		}
		if got := mAppendErrors.Value() - errs0; got != 1 {
			t.Errorf("append errors after insert failure = %d, want 1 per Stage call", got)
		}
		// A pre-pipeline conversion failure is also one error, and equally
		// traceless.
		_, err = l.Stage(env, []Row{
			{Table: "updates", Values: []any{3, "r", "main", "c3", "update"}},
			{Table: "updates", Values: []any{struct{}{}, "r", "main", "c4", "update"}},
		})
		if err == nil {
			t.Error("unconvertible value did not fail Stage")
		}
		if got := mAppendErrors.Value() - errs0; got != 2 {
			t.Errorf("append errors after conversion failure = %d, want 2", got)
		}
		// The chain state is untouched: a clean append still works from seq 0.
		if err := l.Append(env, "updates", 5, "r", "main", "c5", "update"); err != nil {
			return err
		}
		if l.Seq() != 1 {
			t.Errorf("seq = %d, want 1", l.Seq())
		}
		if n, _ := l.DB().TableRowCount("updates"); n != 1 {
			t.Errorf("rows after clean append = %d, want 1", n)
		}
		return nil
	})
}

// sigPayloadOffsets walks the on-disk record stream and returns the byte
// offset of every signature record's payload.
func sigPayloadOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := len(fileMagic)
	for off < len(data) {
		if off+5 > len(data) {
			t.Fatalf("truncated record header at %d", off)
		}
		n := int(binary.BigEndian.Uint32(data[off+1 : off+5]))
		if data[off] == recSig {
			offs = append(offs, off+5)
		}
		off += 5 + n
	}
	return offs
}

// TestIntermediateSignatureCorruptionDetected pins down that a batched log
// is rejected when ANY signature record is corrupted, not only the final
// commit point: a log whose intermediate batch signature does not verify is
// not the log the enclave wrote, even though the entries still chain up to
// a valid final signature.
func TestIntermediateSignatureCorruptionDetected(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.batchConfig("git", 4, 0))
		if err != nil {
			return err
		}
		// Two batches: E E E S | E E S.
		tk, err := l.Stage(env, []Row{
			{Table: "updates", Values: []any{1, "r", "main", "c1", "update"}},
			{Table: "updates", Values: []any{2, "r", "main", "c2", "update"}},
			{Table: "updates", Values: []any{3, "r", "main", "c3", "update"}},
		})
		if err != nil {
			return err
		}
		if err := tk.Wait(env); err != nil {
			return err
		}
		tk, err = l.Stage(env, []Row{
			{Table: "updates", Values: []any{4, "r", "main", "c4", "update"}},
			{Table: "updates", Values: []any{5, "r", "main", "c5", "update"}},
		})
		if err != nil {
			return err
		}
		return tk.Wait(env)
	})
	l.Close()

	path := filepath.Join(e.dir, "git.lseal")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := VerifyOptions{Pub: e.encl.PublicKey(), Protector: e.group, Name: "git"}
	if _, err := VerifyFile(path, opts); err != nil {
		t.Fatalf("pristine log rejected: %v", err)
	}
	sigs := sigPayloadOffsets(t, pristine)
	if len(sigs) != 2 {
		t.Fatalf("signature records = %d, want 2", len(sigs))
	}

	flip := func(off int) {
		data := append([]byte(nil), pristine...)
		data[off] ^= 0xff
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt the intermediate signature: strict verification must refuse,
	// and so must torn-tail-tolerant verification — a signature record
	// beyond the damage proves it sits inside the committed prefix.
	flip(sigs[0] + 40)
	if _, err := VerifyFile(path, opts); !errors.Is(err, ErrTampered) {
		t.Fatalf("intermediate sig corruption: err = %v, want ErrTampered", err)
	}
	tolerant := opts
	tolerant.RecoverTruncated = true
	if _, err := VerifyFile(path, tolerant); !errors.Is(err, ErrTampered) {
		t.Fatalf("tolerant verify of mid-file sig corruption: err = %v, want ErrTampered", err)
	}

	// Corrupt the final signature: strict refuses; tolerant treats it as a
	// torn tail and falls back to the first batch's commit point — whose
	// counter lags the group by the lost batch's increment, so recovery's
	// lag allowance is needed to get past rollback detection.
	flip(sigs[1] + 40)
	if _, err := VerifyFile(path, opts); !errors.Is(err, ErrTampered) {
		t.Fatalf("final sig corruption: err = %v, want ErrTampered", err)
	}
	tolerant.MaxCounterLag = 1
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := VerifyReaderResult(f, tolerant)
	if err != nil {
		t.Fatalf("tolerant verify of torn final sig: %v", err)
	}
	if len(res.Entries) != 3 || res.Batches != 1 {
		t.Fatalf("tolerant result = %d entries / %d batches, want 3 / 1", len(res.Entries), res.Batches)
	}
}
