package audit

import (
	"errors"
	"sync"
	"testing"
	"time"

	"libseal/internal/asyncall"
)

// admissionConfig is a group-commit disk config with a staging budget.
func (e *auditEnv) admissionConfig(maxStaged int, admitTimeout time.Duration) Config {
	cfg := e.batchConfig("git", 2, 0)
	cfg.MaxStaged = maxStaged
	cfg.AdmitTimeout = admitTimeout
	return cfg
}

func row(i int) Row {
	return Row{Table: "updates", Values: []any{i, "r", "main", "c", "update"}}
}

func TestAdmissionShedsImmediatelyWhenFull(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.admissionConfig(2, 0))
		return err
	})
	defer l.Close()
	shed0 := mAdmitShed.Value()
	e.call(t, func(env *asyncall.Env) error {
		// Fill the budget: two staged-but-not-durable entries.
		t1, err := l.Stage(env, []Row{row(1), row(2)})
		if err != nil {
			return err
		}
		// Zero AdmitTimeout: the over-budget stage is shed on the spot.
		if _, err := l.Stage(env, []Row{row(3)}); !errors.Is(err, ErrOverloaded) {
			t.Errorf("over-budget stage: %v, want ErrOverloaded", err)
		}
		if err := t1.Wait(env); err != nil {
			return err
		}
		// The pipeline drained; admission opens again.
		return l.Append(env, "updates", 4, "r", "main", "c", "update")
	})
	if got := mAdmitShed.Value() - shed0; got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
	if l.Seq() != 3 {
		t.Fatalf("seq = %d, want 3 (shed entry must not be durable)", l.Seq())
	}
	// The shed row must not linger in the database either: a trim would
	// otherwise fold a never-acknowledged row into the verified chain.
	res, err := l.Query("SELECT COUNT(*) FROM updates")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int64(); n != 3 {
		t.Fatalf("rows in db = %d, want 3", n)
	}
}

func TestAdmissionWaitsForDrain(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.admissionConfig(2, 5*time.Second))
		return err
	})
	defer l.Close()
	waits0, shed0 := mAdmitWaits.Value(), mAdmitShed.Value()
	staged := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := e.bridge.Call(func(env *asyncall.Env) error {
			t1, err := l.Stage(env, []Row{row(1), row(2)})
			if err != nil {
				return err
			}
			close(staged)
			// Hold the full pipeline briefly, then commit: the parked
			// appender below must ride the drain, not time out.
			time.Sleep(50 * time.Millisecond)
			return t1.Wait(env)
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-staged
	e.call(t, func(env *asyncall.Env) error {
		return l.Append(env, "updates", 3, "r", "main", "c", "update")
	})
	wg.Wait()
	if got := mAdmitWaits.Value() - waits0; got < 1 {
		t.Fatalf("admission waits = %d, want >= 1", got)
	}
	if got := mAdmitShed.Value() - shed0; got != 0 {
		t.Fatalf("shed count = %d, want 0", got)
	}
	if l.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", l.Seq())
	}
}

func TestAdmissionTimeoutSheds(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.admissionConfig(2, 30*time.Millisecond))
		return err
	})
	defer l.Close()
	staged := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := e.bridge.Call(func(env *asyncall.Env) error {
			t1, err := l.Stage(env, []Row{row(1), row(2)})
			if err != nil {
				return err
			}
			close(staged)
			<-release // stall the pipeline well past the admit timeout
			return t1.Wait(env)
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-staged
	start := time.Now()
	err := e.bridge.Call(func(env *asyncall.Env) error {
		return l.Append(env, "updates", 3, "r", "main", "c", "update")
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("append against stalled pipeline: %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed took %v, want ~AdmitTimeout", elapsed)
	}
	close(release)
	wg.Wait()
	if l.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", l.Seq())
	}
}

func TestAdmissionAdmitsOversizedGroupOnEmptyPipeline(t *testing.T) {
	e := newAuditEnv(t)
	var l *Log
	e.call(t, func(env *asyncall.Env) error {
		var err error
		l, err = New(env, e.admissionConfig(2, 0))
		if err != nil {
			return err
		}
		// A group larger than the whole budget must still make progress
		// when the pipeline is idle.
		t1, err := l.Stage(env, []Row{row(1), row(2), row(3), row(4)})
		if err != nil {
			return err
		}
		return t1.Wait(env)
	})
	defer l.Close()
	if l.Seq() != 4 {
		t.Fatalf("seq = %d, want 4", l.Seq())
	}
}
