package audit

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/telemetry"
)

// Parallel segmented verification: a scanner goroutine cuts the record
// stream at signature records (stream.go), a worker pool recomputes each
// segment's hash chain and ECDSA signature concurrently, and the merger
// below stitches the per-segment verdicts back together in file order.
// The merger reproduces the sequential verifier's semantics exactly —
// identical error strings, identical precedence, identical VerifyResult —
// so callers can treat the two paths as interchangeable; the test suite
// holds them to that on every golden vector and corruption case.

// Verification telemetry (audit.verify.*): segment/entry/byte throughput,
// per-segment and whole-run latency, and checkpoint/resume activity for
// the resumable CLI path.
var (
	mVerifyRuns        = telemetry.NewCounter("audit.verify.runs", "calls")
	mVerifyFailures    = telemetry.NewCounter("audit.verify.failures", "calls")
	mVerifySegments    = telemetry.NewCounter("audit.verify.segments", "segments")
	mVerifyEntries     = telemetry.NewCounter("audit.verify.entries", "entries")
	mVerifyBytes       = telemetry.NewCounter("audit.verify.bytes", "bytes")
	mVerifyWorkers     = telemetry.NewGauge("audit.verify.workers", "goroutines")
	mVerifySegLatency  = telemetry.NewHistogram("audit.verify.segment.latency", "ns")
	mVerifyLatency     = telemetry.NewHistogram("audit.verify.latency", "ns")
	mVerifyCheckpoints = telemetry.NewCounter("audit.verify.checkpoints", "writes")
	mVerifyResumes     = telemetry.NewCounter("audit.verify.resumes", "calls")
)

// SegmentInfo describes one committed (signature-closed, fully verified)
// segment, delivered to StreamOptions.OnSegment in file order.
//
// Segment delivery is provisional: the segment's hash chain and signature
// have been checked, but whole-log properties — counter freshness against
// the rollback group above all — are only decided once the scan finishes.
// Entries must not be trusted (acted on, exported, replayed) until
// VerifyReaderStream/VerifyFileStream returns a nil error; a log that
// streams plausible segments can still turn out rolled back or torn.
type SegmentInfo struct {
	// Shard is the shard ordinal this segment belongs to (StreamOptions.
	// Shard; 0 for single-file scans).
	Shard int
	// Index is the segment's ordinal within this scan, starting at 0.
	Index int
	// Entries are the segment's verified entries. The slice is only valid
	// during the callback; the pipeline releases it afterwards so a scan
	// never holds more than the in-flight window of segments in memory.
	Entries []*Entry
	// Counter is the rollback-counter value the segment's signature attests.
	Counter uint64
	// EndSeq is the total number of verified entries through this segment
	// (checkpointed prefix included on a resumed scan).
	EndSeq uint64
	// Chain is the chain head the segment's signature record attests.
	Chain [32]byte
	// CommittedBytes is the verified prefix length through this segment.
	CommittedBytes int64
}

// StreamOptions extends VerifyOptions with the streaming pipeline's knobs.
type StreamOptions struct {
	VerifyOptions

	// Workers is the number of concurrent segment verifiers; 0 means
	// GOMAXPROCS. 1 still runs the pipeline (scanner and verifier overlap)
	// but verifies segments one at a time.
	Workers int

	// SegmentBuffer bounds the in-flight segment window (scanned but not
	// yet merged); 0 means 2×Workers. Together with the worker count it
	// caps the pipeline's memory footprint at roughly
	// (SegmentBuffer+Workers+1) segments.
	SegmentBuffer int

	// OnSegment, when set, receives each committed segment in file order
	// and the pipeline stops accumulating entries: the final
	// VerifyResult.Entries is nil and memory stays bounded regardless of
	// log size. Returning an error aborts the scan with that error.
	//
	// Deliveries are provisional until the verify call returns nil: the
	// whole-log verdict (counter freshness in particular) is not known
	// yet, so a callback must buffer or be prepared to discard its effects
	// if verification ultimately fails. See SegmentInfo.
	OnSegment func(SegmentInfo) error

	// Checkpoint, when set, persists resumable progress to a sidecar file
	// as segments commit.
	Checkpoint *CheckpointConfig

	// Resume, when set, starts the scan from a previously persisted
	// checkpoint instead of byte 0. VerifyFileStream authenticates the
	// checkpoint against the file's own signed record before adopting it
	// (ErrCheckpointStale on mismatch); VerifyReaderStream trusts the
	// caller to have positioned the reader at Resume.Offset AND to have
	// authenticated the checkpoint — resuming an unvalidated sidecar
	// through the reader path bypasses rollback protection.
	Resume *Checkpoint

	// ResumeAuto, on the path-based entry points (VerifyPath /
	// VerifyShardedDir), loads and authenticates each shard's own
	// checkpoint sidecar (<shard file>.ckpt) automatically; shards whose
	// sidecar is missing, stale or mismatched fall back to a cold scan
	// instead of failing. Ignored by the reader/stream entry points, which
	// take an explicit Resume.
	ResumeAuto bool

	// Shard stamps SegmentInfo deliveries and checkpoints with a shard
	// ordinal; the sharded driver sets it, single-file callers leave it 0.
	Shard int
}

// StreamResult is the outcome of a streaming verification. The embedded
// VerifyResult covers what this scan itself verified (for a cold scan that
// is the whole log, making it byte-identical to VerifyReaderResult's
// answer); the Total fields fold in the checkpointed prefix on a resumed
// scan.
type StreamResult struct {
	VerifyResult

	// TotalEntries / TotalBatches / TotalMaxBatch describe the whole log:
	// the checkpointed prefix plus this scan. On a cold scan they equal
	// the embedded VerifyResult fields.
	TotalEntries  int
	TotalBatches  int
	TotalMaxBatch int
	// Tables counts verified entries per table across the whole log.
	Tables map[string]int
	// Resumed reports whether the scan started from a checkpoint.
	Resumed bool
	// Segments is the number of committed segments this scan verified.
	Segments int
}

// VerifyFileStream verifies a persisted log with the parallel segmented
// pipeline. With opts.Resume it authenticates the checkpoint against the
// file — the signature record it is bound to must hash to the recorded
// digest, verify under opts.Pub, and attest the sidecar's chain head and
// counter — and continues from the checkpointed offset; a checkpoint that
// does not match the file (trimmed, swapped, forged or corrupted since)
// fails with ErrCheckpointStale so the caller can fall back to a cold
// scan.
func VerifyFileStream(path string, opts StreamOptions) (*StreamResult, error) {
	return VerifyFileStreamContext(context.Background(), path, opts)
}

// VerifyFileStreamContext is VerifyFileStream honouring a context: a
// cancelled or expired ctx stops the pipeline and returns ctx.Err() instead
// of a verification verdict.
func VerifyFileStreamContext(ctx context.Context, path string, opts StreamOptions) (*StreamResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Resume != nil {
		if err := opts.Resume.matchFile(f, opts.Pub); err != nil {
			return nil, err
		}
		if _, err := f.Seek(opts.Resume.Offset, io.SeekStart); err != nil {
			return nil, err
		}
	}
	return VerifyReaderStreamContext(ctx, f, opts)
}

// VerifyReaderStream runs the parallel segmented verification pipeline over
// a record stream. Without OnSegment it returns a VerifyResult identical to
// VerifyReaderResult's; with OnSegment it streams segments to the callback
// and keeps memory bounded.
func VerifyReaderStream(r io.Reader, opts StreamOptions) (*StreamResult, error) {
	return VerifyReaderStreamContext(context.Background(), r, opts)
}

// VerifyReaderStreamContext is VerifyReaderStream honouring a context.
func VerifyReaderStreamContext(ctx context.Context, r io.Reader, opts StreamOptions) (*StreamResult, error) {
	start := time.Now()
	mVerifyRuns.Inc()
	res, err := runStreamVerify(ctx, r, &opts)
	mVerifyLatency.Observe(time.Since(start))
	if err != nil {
		mVerifyFailures.Inc()
	}
	return res, err
}

func runStreamVerify(parent context.Context, r io.Reader, opts *StreamOptions) (*StreamResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := opts.SegmentBuffer
	if window <= 0 {
		window = 2 * workers
	}

	base := scanBase{offset: int64(len(fileMagic)), tables: map[string]int{}}
	resumed := false
	if opts.Resume != nil {
		c := opts.Resume
		chain, err := c.chainHead()
		if err != nil {
			return nil, err
		}
		base = scanBase{
			offset: c.Offset, seq: c.Seq, chain: chain, counter: c.Counter,
			batches: c.Batches, maxBatch: c.MaxBatch, entries: c.Entries,
			tables: map[string]int{},
		}
		for t, n := range c.Tables {
			base.tables[t] = n
		}
		resumed = true
		mVerifyResumes.Inc()
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	work := make(chan *segment, workers)
	order := make(chan *segment, window)
	end := &scanEnd{}

	// Once the merger sees the first in-order failure the verdict is
	// decided: the scanner must still scan structurally to EOF (the merger
	// needs totalSigs/streamErr for error precedence), but hashing and
	// ECDSA-checking the remaining segments is pure waste — on a large
	// corrupt log, most of the file's worth. The flag lets workers fall
	// through to close(seg.done) without verifying.
	var skipVerify atomic.Bool

	var wg sync.WaitGroup
	mVerifyWorkers.Add(int64(workers))
	defer mVerifyWorkers.Add(-int64(workers))
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seg := range work {
				if ctx.Err() == nil && !skipVerify.Load() {
					t0 := time.Now()
					seg.res = verifySegment(seg, &opts.VerifyOptions)
					mVerifySegLatency.Observe(time.Since(t0))
				}
				close(seg.done)
			}
		}()
	}
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		scanSegments(ctx, r, base, resumed, work, order, end)
	}()
	// Whatever happens below, unwind the pipeline before returning.
	drain := func() {
		cancel()
		for seg := range order {
			<-seg.done
		}
		<-scanDone
		wg.Wait()
	}

	m := &merger{base: base, opts: opts, resumed: resumed, skipVerify: &skipVerify}
	var cbErr error
	for seg := range order {
		<-seg.done
		if !m.consume(seg) {
			if m.failed == nil {
				// OnSegment asked to abort; not a verification verdict.
				cbErr = m.cbErr
			}
			break
		}
	}
	if cbErr != nil {
		drain()
		return nil, cbErr
	}
	// The verdict can depend on the whole structural scan (strict-mode
	// truncation preempts everything; a tolerant tear must look for later
	// signature records), so wait for the scanner even after a failure.
	for seg := range order {
		<-seg.done
	}
	<-scanDone
	wg.Wait()
	if err := parent.Err(); err != nil {
		// Caller cancellation is not a verification verdict: a partial scan
		// must never be reported as OK or as tampering.
		return nil, err
	}
	return m.finish(end)
}

// merger folds per-segment verdicts into the final result, in file order,
// mirroring VerifyReaderResult's scan loop state machine.
type merger struct {
	base    scanBase
	opts    *StreamOptions
	resumed bool

	entries  []*Entry // accumulated only when OnSegment is nil
	tables   map[string]int
	batches  int // valid signature records seen this scan
	maxBatch int
	count    int // entries committed this scan
	commit   struct {
		end     int64
		counter uint64
		chain   [32]byte
	}
	segments int

	trailing int // entries after the last signature record

	failed     *segment // first failing segment, in file order
	failedRes  segResult
	cbErr      error
	skipVerify *atomic.Bool // tells workers the verdict is already decided

	ckptSegs  int
	ckptBytes int64
}

// consume merges one segment's verdict; returns false when merging must
// stop (verification failure or callback abort).
func (m *merger) consume(seg *segment) bool {
	if m.tables == nil {
		m.tables = map[string]int{}
		m.commit.end = m.base.offset
		m.commit.counter = m.base.counter
		m.commit.chain = m.base.chain
	}
	r := seg.res
	if r.err != nil || (seg.hasSig && r.sigBad != "") {
		m.failed = seg
		m.failedRes = r
		if m.skipVerify != nil {
			// The verdict is fixed at this segment; later segments only
			// need the scanner's structural pass, not hash/ECDSA work.
			m.skipVerify.Store(true)
		}
		return false
	}
	if !seg.hasSig {
		// Trailing unsigned entries: verified but uncommitted. The stream
		// ends here (only the last dispatched segment can be unsigned).
		m.trailing = len(r.entries)
		return true
	}
	mVerifySegments.Inc()
	mVerifyEntries.Add(int64(len(r.entries)))
	mVerifyBytes.Add(r.bytes)
	if m.opts.OnSegment != nil {
		info := SegmentInfo{
			Shard: m.opts.Shard, Index: seg.index, Entries: r.entries,
			Counter: seg.counter, CommittedBytes: seg.end,
			EndSeq: m.base.seq + uint64(m.count) + uint64(len(r.entries)),
			Chain:  seg.sigChain,
		}
		if err := m.opts.OnSegment(info); err != nil {
			m.cbErr = err
			return false
		}
	} else {
		m.entries = append(m.entries, r.entries...)
	}
	for _, e := range r.entries {
		m.tables[e.Table]++
	}
	m.count += len(r.entries)
	m.batches++
	if len(r.entries) > m.maxBatch {
		m.maxBatch = len(r.entries)
	}
	m.commit.end = seg.end
	m.commit.counter = seg.counter
	m.commit.chain = seg.sigChain
	m.segments++
	seg.res.entries = nil // release; the window has moved past this segment
	if cfg := m.opts.Checkpoint; cfg != nil {
		m.ckptSegs++
		m.ckptBytes += r.bytes
		every := cfg.EverySegments
		if every <= 0 {
			every = defaultCheckpointSegments
		}
		everyBytes := cfg.EveryBytes
		if everyBytes <= 0 {
			everyBytes = defaultCheckpointBytes
		}
		if m.ckptSegs >= every || m.ckptBytes >= everyBytes {
			m.writeCheckpoint(seg)
			m.ckptSegs = 0
			m.ckptBytes = 0
		}
	}
	return true
}

func (m *merger) writeCheckpoint(seg *segment) {
	cfg := m.opts.Checkpoint
	c := m.checkpointState()
	// The signature record's offset and payload hash bind the checkpoint
	// to this exact file; resume refuses a log that was trimmed or swapped
	// underneath it.
	c.SigOffset = seg.sigOff
	c.SigHash = hexDigest(seg.sigRaw)
	if err := c.Save(cfg.Path); err == nil {
		mVerifyCheckpoints.Inc()
	} else if cfg.OnError != nil {
		cfg.OnError(err)
	}
}

// checkpointState snapshots the merger's committed totals (base + this
// scan) as a Checkpoint, minus the sig-record binding fields.
func (m *merger) checkpointState() *Checkpoint {
	tables := map[string]int{}
	for t, n := range m.base.tables {
		tables[t] += n
	}
	for t, n := range m.tables {
		tables[t] += n
	}
	maxAll := m.base.maxBatch
	if m.maxBatch > maxAll {
		maxAll = m.maxBatch
	}
	return &Checkpoint{
		Version:  checkpointVersion,
		Shard:    m.opts.Shard,
		Offset:   m.commit.end,
		Seq:      m.base.seq + uint64(m.count),
		Chain:    hexChain(m.commit.chain),
		Counter:  m.commit.counter,
		Batches:  m.base.batches + m.batches,
		MaxBatch: maxAll,
		Entries:  m.base.entries + m.count,
		Tables:   tables,
	}
}

// finish computes the final verdict with the sequential verifier's exact
// precedence: bad magic and (in strict mode) stream framing errors preempt
// everything; then the first in-order segment failure; then an unknown
// record type; then the missing-signature and trailing-entry checks; then
// counter freshness.
func (m *merger) finish(end *scanEnd) (*StreamResult, error) {
	if m.tables == nil {
		// No segments were dispatched at all.
		m.tables = map[string]int{}
		m.commit.end = m.base.offset
		m.commit.counter = m.base.counter
		m.commit.chain = m.base.chain
	}
	opts := &m.opts.VerifyOptions
	strict := !opts.RecoverTruncated
	if end.badMagic {
		return nil, end.streamErr
	}
	if strict && end.streamErr != nil {
		return nil, end.streamErr
	}
	if f := m.failed; f != nil {
		r := m.failedRes
		var ferr error
		if r.err != nil {
			ferr = r.err
		} else {
			ferr = fmt.Errorf("%w: signature record %d: %s", ErrTampered, m.base.batches+m.batches, r.sigBad)
		}
		if strict {
			return nil, ferr
		}
		// Tolerant mode forgives the tear only as uncommitted debris: any
		// signature record beyond the torn record proves the damage sits
		// inside the signed prefix. Signature records before the tear are
		// exactly the closers of segments 0..index-1, plus this segment's
		// own signature when the tear is past it.
		sigsBefore := f.index
		if f.hasSig && r.err == nil {
			sigsBefore++ // tear is at the signature record itself
		}
		if end.totalSigs > sigsBefore {
			return nil, fmt.Errorf("%w: corrupted entry inside signed prefix", ErrTampered)
		}
		// Fall through: the verified prefix before the tear is the answer.
		m.trailing = 0
	} else if end.unknownErr != nil {
		return nil, end.unknownErr
	}
	sawSig := m.batches > 0 || m.base.batches > 0
	if !sawSig {
		if m.count+m.trailing == 0 || !strict {
			if err := checkFreshness(m.commit.counter, *opts); err != nil {
				return nil, err
			}
			return m.result(), nil
		}
		return nil, fmt.Errorf("%w: missing signature record", ErrTampered)
	}
	if strict && m.trailing > 0 {
		return nil, fmt.Errorf("%w: %d entries after the last signature record", ErrTampered, m.trailing)
	}
	if err := checkFreshness(m.commit.counter, *opts); err != nil {
		return nil, err
	}
	return m.result(), nil
}

func (m *merger) result() *StreamResult {
	maxAll := m.base.maxBatch
	if m.maxBatch > maxAll {
		maxAll = m.maxBatch
	}
	tables := map[string]int{}
	for t, n := range m.base.tables {
		tables[t] += n
	}
	for t, n := range m.tables {
		tables[t] += n
	}
	return &StreamResult{
		VerifyResult: VerifyResult{
			Entries:        m.entries,
			Counter:        m.commit.counter,
			CommittedBytes: m.commit.end,
			Batches:        m.batches,
			MaxBatch:       m.maxBatch,
		},
		TotalEntries:  m.base.entries + m.count,
		TotalBatches:  m.base.batches + m.batches,
		TotalMaxBatch: maxAll,
		Tables:        tables,
		Resumed:       m.resumed,
		Segments:      m.segments,
	}
}
