package audit

import (
	"path/filepath"
	"testing"

	"libseal/internal/asyncall"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
	"libseal/internal/ssm/gitssm"
)

func entry(seq uint64, table string, vals ...sqldb.Value) *Entry {
	return &Entry{Seq: seq, Table: table, Values: vals}
}

func gitEntryVals(time int64, repo, branch, cid, typ string) []sqldb.Value {
	return []sqldb.Value{sqldb.Int(time), sqldb.Text(repo), sqldb.Text(branch), sqldb.Text(cid), sqldb.Text(typ)}
}

func TestMergeInterleavesByLocalTime(t *testing.T) {
	mod := gitssm.New()
	parts := []PartialLog{
		{Instance: "node-a", Entries: []*Entry{
			entry(0, "updates", gitEntryVals(1, "r", "main", "c1", "create")...),
			entry(1, "updates", gitEntryVals(5, "r", "main", "c3", "update")...),
		}},
		{Instance: "node-b", Entries: []*Entry{
			entry(0, "updates", gitEntryVals(2, "r", "main", "c2", "update")...),
		}},
	}
	db, err := Merge(mod.Schema(), parts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT time, cid FROM updates ORDER BY time")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Global order: c1 (local 1), c2 (local 2), c3 (local 5) on a dense axis.
	wantCids := []string{"c1", "c2", "c3"}
	for i, row := range res.Rows {
		if row[0].Int64() != int64(i+1) || row[1].TextVal() != wantCids[i] {
			t.Fatalf("row %d = %v, want time=%d cid=%s", i, row, i+1, wantCids[i])
		}
	}
}

func TestMergePreservesPairGrouping(t *testing.T) {
	// Two advertisement tuples of one pair share a local timestamp and must
	// share the merged global timestamp, or the completeness invariant
	// would miscount branches per advertisement.
	mod := gitssm.New()
	parts := []PartialLog{{Instance: "a", Entries: []*Entry{
		entry(0, "updates", gitEntryVals(1, "r", "main", "c1", "create")...),
		entry(1, "updates", gitEntryVals(2, "r", "dev", "d1", "create")...),
		entry(2, "advertisements", sqldb.Int(3), sqldb.Text("r"), sqldb.Text("main"), sqldb.Text("c1")),
		entry(3, "advertisements", sqldb.Int(3), sqldb.Text("r"), sqldb.Text("dev"), sqldb.Text("d1")),
	}}}
	db, err := Merge(mod.Schema(), parts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT DISTINCT time FROM advertisements")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("advertisement times = %v, %v (pair split)", res, err)
	}
	// The merged log passes the invariants.
	violations, err := ssm.CheckInvariants(db, mod)
	if err != nil || len(violations) != 0 {
		t.Fatalf("merged clean log flagged: %v %v", violations, err)
	}
}

func TestMergeDetectsCrossInstanceViolation(t *testing.T) {
	// Instance A logged the push of c2; instance B served an advertisement
	// of the stale c1. Neither partial log alone can prove the rollback;
	// the merged log can.
	mod := gitssm.New()
	aOnly := []PartialLog{{Instance: "a", Entries: []*Entry{
		entry(0, "updates", gitEntryVals(1, "r", "main", "c1", "create")...),
		entry(1, "updates", gitEntryVals(2, "r", "main", "c2", "update")...),
	}}}
	bOnly := []PartialLog{{Instance: "b", Entries: []*Entry{
		entry(0, "advertisements", sqldb.Int(3), sqldb.Text("r"), sqldb.Text("main"), sqldb.Text("c1")),
	}}}
	for name, part := range map[string][]PartialLog{"a": aOnly, "b": bOnly} {
		db, err := Merge(mod.Schema(), part)
		if err != nil {
			t.Fatal(err)
		}
		v, err := ssm.CheckInvariants(db, mod)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 0 {
			t.Fatalf("partial log %s alone detected the violation: %v", name, v)
		}
	}
	db, err := Merge(mod.Schema(), append(aOnly, bOnly...))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ssm.CheckInvariants(db, mod)
	if err != nil {
		t.Fatal(err)
	}
	if v["git-soundness"] == nil {
		t.Fatalf("merged log missed the rollback: %v", v)
	}
}

func TestMergeRejectsMalformedEntries(t *testing.T) {
	mod := gitssm.New()
	if _, err := Merge(mod.Schema(), []PartialLog{{Instance: "a", Entries: []*Entry{
		{Seq: 0, Table: "updates"}, // no values
	}}}); err == nil {
		t.Fatal("entry without values accepted")
	}
	if _, err := Merge(mod.Schema(), []PartialLog{{Instance: "a", Entries: []*Entry{
		entry(0, "updates", sqldb.Text("not-a-time")),
	}}}); err == nil {
		t.Fatal("entry without integer time accepted")
	}
}

func TestMergeVerifiedEndToEnd(t *testing.T) {
	// Two LibSEAL instances persist partial logs; the client verifies and
	// merges them out of band.
	mod := gitssm.New()
	dir := t.TempDir()
	files := map[string]string{}
	opts := map[string]VerifyOptions{}

	for i, name := range []string{"inst-a", "inst-b"} {
		e := newAuditEnv(t)
		cfg := Config{Name: name, Schema: mod.Schema(), Mode: ModeDisk, Dir: dir}
		var l *Log
		e.call(t, func(env *asyncall.Env) error {
			var err error
			l, err = New(env, cfg)
			if err != nil {
				return err
			}
			if i == 0 {
				if err := l.Append(env, "updates", 1, "r", "main", "c1", "create"); err != nil {
					return err
				}
				return l.Append(env, "updates", 2, "r", "main", "c2", "update")
			}
			return l.Append(env, "advertisements", 1, "r", "main", "c2")
		})
		l.Close()
		files[name] = filepath.Join(dir, name+".lseal")
		opts[name] = VerifyOptions{Pub: e.encl.PublicKey()}
	}

	db, err := MergeVerified(mod.Schema(), files, opts)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.TableRowCount("updates")
	if err != nil || n != 2 {
		t.Fatalf("updates = %d, %v", n, err)
	}
	// inst-b's advertisement of c2 interleaves after inst-a's updates at
	// equal local time 1: tie broken by instance name, then re-timed. The
	// soundness invariant sees c2 advertised after... verify no false
	// positive for the matching cid at least once merged.
	if v, err := ssm.CheckInvariants(db, mod); err != nil {
		t.Fatal(err)
	} else if v["git-soundness"] != nil {
		// Acceptable: ordering ambiguity can make the advertisement precede
		// the matching update. The invariant must not crash; detection
		// semantics across instances depend on timestamp agreement.
		t.Logf("cross-instance ordering ambiguity: %v", v)
	}
}
