package audit

import (
	"bytes"
	"crypto/ecdsa"
	"encoding/binary"
	"fmt"

	"libseal/internal/enclave"
)

// Incremental verification. The offline verifiers (VerifyReaderResult, the
// PR 7 streaming pipeline) consume a complete file; a live mirror instead
// receives the same record stream in arbitrary byte chunks as the server
// commits batches. IncrementalVerifier is the chunk-feed form of the same
// verifier: it reassembles records from whatever bytes have arrived, applies
// exactly the per-record checks the sequential scan applies (entry decode,
// sequence, chain hash, signature parse + ECDSA), and reports each verified
// signature record — a durable commit point — through a callback. Freshness
// against a live counter quorum is deliberately out of scope: a mirror holds
// only the enclave's public key, so rollback is judged by continuity (see
// internal/audit/mirror) and by manifest replay via ManifestReplayer.
//
// The verifier is strict and latching: the first violation poisons it and
// every later Feed returns the same error. A torn record at the tail is not
// a violation — it is simply buffered until the remaining bytes arrive,
// which is the steady state of tailing a live log mid-batch.

// CommitInfo describes one verified commit point: the state as of a
// signature record that passed every check.
type CommitInfo struct {
	// Seq is the number of verified entries up to and including this commit.
	Seq uint64
	// Chain is the chain head the signature record attests.
	Chain [32]byte
	// Counter is the rollback-counter value bound into the signature.
	Counter uint64
	// Offset is the stream offset just past the signature record.
	Offset int64
	// SigOffset / SigHash bind the commit to the record: the offset of the
	// signature record's header and the hex SHA-256 of its payload (the same
	// binding Checkpoint carries).
	SigOffset int64
	SigHash   string
	// Entries is the number of entries in this batch (since the previous
	// signature record).
	Entries int
}

// IncrementalVerifier verifies an audit-log record stream fed in arbitrary
// byte chunks. Not safe for concurrent use.
type IncrementalVerifier struct {
	opts     VerifyOptions
	onCommit func(CommitInfo) error
	onEntry  func(*Entry) error

	buf      bytes.Buffer // undecoded tail of the stream
	sawMagic bool
	resumed  bool

	offset     int64 // stream offset of the next undecoded byte
	seq        uint64
	chain      [32]byte
	counter    uint64 // counter of the last verified signature record
	maxCounter uint64
	batches    int
	entries    int
	maxBatch   int
	sinceSig   int
	tables     map[string]int

	lastSigOff  int64
	lastSigHash string

	failed error
}

// NewIncrementalVerifier builds a chunk-feed verifier starting from the
// empty log state (expecting the file magic first). opts.Protector is
// ignored — incremental verification has no final verdict at which to check
// quorum freshness; callers judge freshness by continuity. onCommit, if
// non-nil, runs after every verified signature record; returning an error
// from it poisons the verifier. onEntry, if non-nil, observes each verified
// entry (the verifier does not retain entries).
func NewIncrementalVerifier(opts VerifyOptions, onCommit func(CommitInfo) error, onEntry func(*Entry) error) *IncrementalVerifier {
	return &IncrementalVerifier{
		opts:     opts,
		onCommit: onCommit,
		onEntry:  onEntry,
		tables:   make(map[string]int),
	}
}

// Resume adopts a checkpoint's verified-prefix state so the stream can be
// fed from c.Offset onward (no file magic expected). The caller must have
// authenticated the checkpoint against the log it is resuming — via
// Checkpoint.MatchProof on a fetched signature record, or matchFile locally
// — exactly as the offline resume path does; Resume itself trusts its input.
func (v *IncrementalVerifier) Resume(c *Checkpoint) error {
	chain, err := c.chainHead()
	if err != nil {
		return err
	}
	v.sawMagic = true
	v.resumed = true
	v.offset = c.Offset
	v.seq = c.Seq
	v.chain = chain
	v.counter = c.Counter
	v.maxCounter = c.Counter
	v.batches = c.Batches
	v.entries = c.Entries
	v.maxBatch = c.MaxBatch
	for t, n := range c.Tables {
		v.tables[t] = n
	}
	v.lastSigOff = c.SigOffset
	v.lastSigHash = c.SigHash
	return nil
}

// Feed consumes the next chunk of the record stream. It verifies every
// record that is now complete and returns the first violation found (wrapped
// in ErrTampered); incomplete trailing bytes are buffered for the next call.
// Once an error is returned the verifier is poisoned and returns it forever.
func (v *IncrementalVerifier) Feed(p []byte) error {
	if v.failed != nil {
		return v.failed
	}
	v.buf.Write(p)
	if err := v.drain(); err != nil {
		v.failed = err
		return err
	}
	return nil
}

func (v *IncrementalVerifier) drain() error {
	if !v.sawMagic {
		if v.buf.Len() < len(fileMagic) {
			return nil
		}
		magic := v.buf.Next(len(fileMagic))
		if !bytes.Equal(magic, fileMagic) {
			return fmt.Errorf("%w: bad magic", ErrTampered)
		}
		v.sawMagic = true
		v.offset = int64(len(fileMagic))
	}
	for {
		b := v.buf.Bytes()
		if len(b) < 5 {
			return nil
		}
		n := binary.BigEndian.Uint32(b[1:5])
		if n > maxRecordBytes {
			return errOversized(n)
		}
		if len(b) < 5+int(n) {
			return nil
		}
		typ := b[0]
		payload := make([]byte, n)
		copy(payload, b[5:5+n])
		v.buf.Next(5 + int(n))
		recOff := v.offset
		v.offset += 5 + int64(n)
		switch typ {
		case recEntry:
			if err := v.feedEntry(payload); err != nil {
				return err
			}
		case recSig:
			if err := v.feedSig(recOff, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown record type %q", ErrTampered, typ)
		}
	}
}

// feedEntry applies the per-entry checks of the sequential verifier: unseal,
// decode, sequence continuity, chain extension.
func (v *IncrementalVerifier) feedEntry(raw []byte) error {
	payload := raw
	if v.opts.Unseal != nil {
		var err error
		if payload, err = v.opts.Unseal(raw); err != nil {
			return fmt.Errorf("%w: unseal: %v", ErrTampered, err)
		}
	}
	e, err := UnmarshalEntry(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if e.Seq != v.seq {
		return fmt.Errorf("%w: sequence gap at %d", ErrTampered, v.seq)
	}
	v.seq++
	v.sinceSig++
	v.entries++
	v.chain = chainNext(v.chain, payload)
	v.tables[e.Table]++
	if v.onEntry != nil {
		return v.onEntry(e)
	}
	return nil
}

// feedSig applies the signature-record checks and publishes the commit.
func (v *IncrementalVerifier) feedSig(recOff int64, payload []byte) error {
	sigChain, counter, sig, perr := parseSig(payload)
	bad := ""
	switch {
	case perr != nil:
		bad = perr.Error()
	case sigChain != v.chain:
		bad = "chain hash mismatch"
	case v.opts.Pub != nil && !enclave.VerifySignature(v.opts.Pub, sigDigest(sigChain, counter), sig):
		bad = "signature invalid"
	}
	if bad != "" {
		return fmt.Errorf("%w: signature record %d: %s", ErrTampered, v.batches, bad)
	}
	v.counter = counter
	if counter > v.maxCounter {
		v.maxCounter = counter
	}
	v.batches++
	if v.sinceSig > v.maxBatch {
		v.maxBatch = v.sinceSig
	}
	batch := v.sinceSig
	v.sinceSig = 0
	v.lastSigOff = recOff
	v.lastSigHash = hexDigest(payload)
	if v.onCommit != nil {
		return v.onCommit(CommitInfo{
			Seq: v.seq, Chain: v.chain, Counter: counter,
			Offset: v.offset, SigOffset: recOff, SigHash: v.lastSigHash,
			Entries: batch,
		})
	}
	return nil
}

// Err returns the poisoning violation, nil while the stream is clean.
func (v *IncrementalVerifier) Err() error { return v.failed }

// Offset is the stream offset of the next undecoded byte: verified bytes
// plus any buffered partial record.
func (v *IncrementalVerifier) Offset() int64 { return v.offset + int64(v.buf.Len()) }

// Buffered is the number of received-but-undecoded bytes (a partial record
// mid-flight).
func (v *IncrementalVerifier) Buffered() int { return v.buf.Len() }

// Seq is the number of verified entries; Counter and MaxCounter the last and
// highest verified signature counters; Batches the verified commit count.
func (v *IncrementalVerifier) Seq() uint64        { return v.seq }
func (v *IncrementalVerifier) Counter() uint64    { return v.counter }
func (v *IncrementalVerifier) MaxCounter() uint64 { return v.maxCounter }
func (v *IncrementalVerifier) Batches() int       { return v.batches }
func (v *IncrementalVerifier) Entries() int       { return v.entries }

// Chain returns the current verified chain head.
func (v *IncrementalVerifier) Chain() [32]byte { return v.chain }

// Tables returns the per-table verified tuple counts (live map; callers must
// copy if they retain it).
func (v *IncrementalVerifier) Tables() map[string]int { return v.tables }

// Checkpoint snapshots the verified prefix as a resumable sidecar state, or
// nil before the first commit point. Only commit points are checkpointable:
// when unsigned entries trail the last signature record the snapshot still
// describes the last commit, so callers should take it from inside onCommit
// (where the stream is exactly at a commit point).
func (v *IncrementalVerifier) Checkpoint(shard int) *Checkpoint {
	if v.lastSigHash == "" || v.sinceSig != 0 {
		return nil
	}
	tables := make(map[string]int, len(v.tables))
	for t, n := range v.tables {
		tables[t] = n
	}
	return &Checkpoint{
		Version: checkpointVersion, Shard: shard,
		Offset: v.offset, Seq: v.seq, Chain: hexChain(v.chain), Counter: v.counter,
		Batches: v.batches, MaxBatch: v.maxBatch, Entries: v.entries, Tables: tables,
		SigOffset: v.lastSigOff, SigHash: v.lastSigHash,
	}
}

// ManifestReplayer applies the per-manifest checks of replayManifests — the
// shard count, strictly increasing epochs, non-decreasing manifest counter
// and the enclave signature — one manifest at a time, so a live mirror can
// replay the sidecar stream incrementally with the same semantics as the
// offline sharded verifier. Commit-point membership (does each attested
// shard state exist in the shard's verified history?) stays with the caller:
// offline it is a set lookup, live it is deferred until the shard stream
// catches up.
type ManifestReplayer struct {
	// Name is the log-set name bound into each manifest's digest.
	Name string
	// Pub verifies manifest signatures; nil skips the ECDSA check (the
	// structural and monotonicity checks still apply).
	Pub *ecdsa.PublicKey
	// Shards is the expected shard count; 0 disables the check.
	Shards int

	n       int
	epoch   uint64
	counter uint64
	seeded  bool
}

// Seed adopts a remembered (epoch, counter) floor — a mirror resuming from
// its checkpoint, or re-reading a rewritten sidecar — so the next manifest
// must strictly advance the epoch past it. Without seeding, the first
// manifest's epoch is accepted as-is, matching the offline replay.
func (r *ManifestReplayer) Seed(epoch, counter uint64) {
	r.epoch, r.counter, r.seeded = epoch, counter, true
}

// Verify checks one manifest and advances the replayer's floor. The error
// messages and semantics match the offline replayManifests record checks.
func (r *ManifestReplayer) Verify(m *Manifest) error {
	if r.Shards > 0 && len(m.Shards) != r.Shards {
		return fmt.Errorf("%w: manifest %d attests %d shards, set has %d", ErrTampered, r.n, len(m.Shards), r.Shards)
	}
	if (r.n > 0 || r.seeded) && m.Epoch <= r.epoch {
		return fmt.Errorf("%w: manifest %d: epoch %d not after %d", ErrTampered, r.n, m.Epoch, r.epoch)
	}
	if m.Counter < r.counter {
		return fmt.Errorf("%w: manifest %d: counter %d regressed below %d", ErrTampered, r.n, m.Counter, r.counter)
	}
	if r.Pub != nil && !enclave.VerifySignature(r.Pub, manifestDigest(r.Name, m), m.Sig) {
		return fmt.Errorf("%w: manifest %d (epoch %d): signature invalid", ErrTampered, r.n, m.Epoch)
	}
	r.epoch, r.counter = m.Epoch, m.Counter
	r.n++
	return nil
}

// Count, Epoch and Counter report the replayer's progress: manifests
// verified and the current epoch/counter floor.
func (r *ManifestReplayer) Count() int      { return r.n }
func (r *ManifestReplayer) Epoch() uint64   { return r.epoch }
func (r *ManifestReplayer) Counter() uint64 { return r.counter }

// IncrementalManifestReader reassembles manifest records from a sidecar
// byte stream fed in arbitrary chunks — the manifest counterpart of
// IncrementalVerifier's framing. Each complete record is parsed and handed
// to the callback; semantic validation is the callback's job (typically a
// ManifestReplayer). Latching, like IncrementalVerifier.
type IncrementalManifestReader struct {
	onManifest func(*Manifest) error

	buf      bytes.Buffer
	sawMagic bool
	offset   int64
	failed   error

	lastRecOff  int64
	lastRecHash string
}

// NewIncrementalManifestReader builds a chunk-feed sidecar reader starting
// at the file head (magic expected first).
func NewIncrementalManifestReader(onManifest func(*Manifest) error) *IncrementalManifestReader {
	return &IncrementalManifestReader{onManifest: onManifest}
}

// ResumeAt adopts a byte offset mid-sidecar (just past a previously read
// record); the stream must be fed from that offset and no magic is expected.
func (r *IncrementalManifestReader) ResumeAt(offset int64) {
	r.sawMagic = true
	r.offset = offset
}

// Feed consumes the next chunk of the sidecar stream, parsing every complete
// record. The first failure poisons the reader.
func (r *IncrementalManifestReader) Feed(p []byte) error {
	if r.failed != nil {
		return r.failed
	}
	r.buf.Write(p)
	if err := r.drain(); err != nil {
		r.failed = err
		return err
	}
	return nil
}

func (r *IncrementalManifestReader) drain() error {
	if !r.sawMagic {
		if r.buf.Len() < len(manifestMagic) {
			return nil
		}
		if !bytes.Equal(r.buf.Next(len(manifestMagic)), manifestMagic) {
			return fmt.Errorf("%w: bad manifest magic", ErrTampered)
		}
		r.sawMagic = true
		r.offset = int64(len(manifestMagic))
	}
	for {
		b := r.buf.Bytes()
		if len(b) < 5 {
			return nil
		}
		if b[0] != recManifest {
			return fmt.Errorf("%w: unknown manifest record type %q", ErrTampered, b[0])
		}
		n := binary.BigEndian.Uint32(b[1:5])
		if n > maxRecordBytes {
			return errOversized(n)
		}
		if len(b) < 5+int(n) {
			return nil
		}
		payload := make([]byte, n)
		copy(payload, b[5:5+n])
		r.buf.Next(5 + int(n))
		recOff := r.offset
		r.offset += 5 + int64(n)
		m, err := parseManifest(payload)
		if err != nil {
			return err
		}
		r.lastRecOff = recOff
		r.lastRecHash = hexDigest(payload)
		if r.onManifest != nil {
			if err := r.onManifest(m); err != nil {
				return err
			}
		}
	}
}

// Err returns the poisoning failure, nil while the stream is clean.
func (r *IncrementalManifestReader) Err() error { return r.failed }

// Offset is the sidecar offset just past the last fully parsed record.
func (r *IncrementalManifestReader) Offset() int64 { return r.offset }

// Buffered is the number of received-but-unparsed bytes.
func (r *IncrementalManifestReader) Buffered() int { return r.buf.Len() }

// LastRecord reports the header offset and payload hash of the last fully
// parsed record — the binding a mirror persists so a resumed session can
// demand proof (via MatchManifestProof) that the sidecar it reconnects to
// still carries that exact record at that exact place. Hash is empty before
// the first record.
func (r *IncrementalManifestReader) LastRecord() (off int64, hash string) {
	return r.lastRecOff, r.lastRecHash
}

// ResumeRecord adopts a persisted LastRecord binding alongside ResumeAt, so
// a restored reader keeps reporting the binding it resumed from.
func (r *IncrementalManifestReader) ResumeRecord(off int64, hash string) {
	r.lastRecOff, r.lastRecHash = off, hash
}

// MatchManifestProof authenticates a manifest-resume claim against the raw
// payload of the sidecar record said to sit at recOff: the record must end
// exactly at offset, hash to recHash, parse as a manifest, carry a valid
// enclave signature for the named set (when pub is non-nil), and attest
// exactly the remembered epoch and counter. It is the manifest counterpart
// of Checkpoint.MatchProof: the feed serving the payload is untrusted, so
// any mismatch is ErrCheckpointStale and the caller falls back to a cold
// sidecar re-read rather than adopting the offset.
func MatchManifestProof(payload []byte, name string, pub *ecdsa.PublicKey, offset, recOff int64, recHash string, epoch, counter uint64) error {
	if recOff < int64(len(manifestMagic)) || recOff+5+int64(len(payload)) != offset {
		return fmt.Errorf("%w: manifest record does not end at resume offset", ErrCheckpointStale)
	}
	if hexDigest(payload) != recHash {
		return fmt.Errorf("%w: manifest record hash mismatch", ErrCheckpointStale)
	}
	m, err := parseManifest(payload)
	if err != nil {
		return fmt.Errorf("%w: unparseable manifest record at resume point: %v", ErrCheckpointStale, err)
	}
	if pub != nil && !enclave.VerifySignature(pub, manifestDigest(name, m), m.Sig) {
		return fmt.Errorf("%w: manifest record at resume point fails ECDSA check", ErrCheckpointStale)
	}
	if m.Epoch != epoch || m.Counter != counter {
		return fmt.Errorf("%w: remembered epoch/counter disagree with signed manifest", ErrCheckpointStale)
	}
	return nil
}
