package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	var mu sync.Mutex
	var transitions []string
	// The cooldown timer runs on an injected clock: the test advances it
	// exactly to the expiry instead of sleeping past it.
	now := time.Unix(1000, 0)
	b := NewBreaker("test.breaker", BreakerConfig{
		Threshold: 3,
		Cooldown:  30 * time.Millisecond,
		Now:       func() time.Time { return now },
		OnStateChange: func(from, to State) {
			mu.Lock()
			transitions = append(transitions, from.String()+">"+to.String())
			mu.Unlock()
		},
	})
	if b.State() != Closed {
		t.Fatalf("initial state %v", b.State())
	}
	// Two failures: still closed.
	b.Failure()
	b.Failure()
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	// A success resets the streak; two more failures stay under threshold.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("streak did not reset on success")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state %v, want Open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed: %v", err)
	}
	// After the cooldown exactly one probe is admitted.
	now = now.Add(30 * time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want HalfOpen after cooldown", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe allowed: %v", err)
	}
	// Probe failure re-opens for another cooldown.
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state %v, want Open after failed probe", b.State())
	}
	now = now.Add(30 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	// Probe success closes.
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state %v, want Closed after successful probe", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"closed>open",
		"open>half-open", "half-open>open",
		"open>half-open", "half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	b := NewBreaker("test.straggler", BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	b.Failure()
	if b.State() != Open {
		t.Fatal("not open")
	}
	// In-flight calls from before the trip report their failures late; they
	// must not extend or double-count the open period.
	b.Failure()
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state %v", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.Threshold != 5 || cfg.Cooldown != 5*time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
}
