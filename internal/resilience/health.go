package resilience

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// CheckResult is one health probe's outcome.
type CheckResult struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// OK builds a passing result.
func OK(detail string) CheckResult { return CheckResult{OK: true, Detail: detail} }

// Unhealthy builds a failing result.
func Unhealthy(detail string) CheckResult { return CheckResult{OK: false, Detail: detail} }

// Probe reports one component's current health. Probes must be fast and
// non-blocking: they run on every scrape of the health endpoints.
type Probe func() CheckResult

// Health is a registry of liveness and readiness probes served over HTTP.
// Liveness (/healthz) answers "is this process functional at all" — a
// failure means restart me. Readiness (/readyz) answers "should traffic be
// routed here right now" — a failure means the instance is up but degraded
// (counter-quorum breaker open, audit log running on a stale anchor, a ROTE
// read quorum short), and a load balancer should prefer a healthy peer.
type Health struct {
	mu    sync.Mutex
	live  map[string]Probe
	ready map[string]Probe
}

// NewHealth creates an empty registry.
func NewHealth() *Health {
	return &Health{live: make(map[string]Probe), ready: make(map[string]Probe)}
}

// Liveness registers (or replaces) a liveness probe.
func (h *Health) Liveness(name string, p Probe) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live[name] = p
}

// Readiness registers (or replaces) a readiness probe.
func (h *Health) Readiness(name string, p Probe) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready[name] = p
}

// healthReport is the JSON body of a health endpoint response.
type healthReport struct {
	Status string                 `json:"status"` // "ok" or "unavailable"
	Checks map[string]CheckResult `json:"checks"`
}

// evaluate runs every probe in the set and reports the aggregate.
func (h *Health) evaluate(set map[string]Probe) healthReport {
	h.mu.Lock()
	probes := make(map[string]Probe, len(set))
	for name, p := range set {
		probes[name] = p
	}
	h.mu.Unlock()
	rep := healthReport{Status: "ok", Checks: make(map[string]CheckResult, len(probes))}
	names := make([]string, 0, len(probes))
	for name := range probes {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic probe order (probes may have side effects in tests)
	for _, name := range names {
		res := probes[name]()
		rep.Checks[name] = res
		if !res.OK {
			rep.Status = "unavailable"
		}
	}
	return rep
}

// serve renders one probe set as an HTTP response: 200 when every probe
// passes, 503 otherwise, with the per-check JSON either way.
func (h *Health) serve(w http.ResponseWriter, set map[string]Probe) {
	rep := h.evaluate(set)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if rep.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep) // encoding/json sorts map keys: deterministic body
}

// LiveHandler serves the liveness probes (/healthz).
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.serve(w, h.live)
	})
}

// ReadyHandler serves the readiness probes (/readyz).
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.serve(w, h.ready)
	})
}

// Mount attaches the health endpoints to a mux under the conventional
// paths /healthz and /readyz.
func (h *Health) Mount(mux *http.ServeMux) {
	mux.Handle("/healthz", h.LiveHandler())
	mux.Handle("/readyz", h.ReadyHandler())
}
