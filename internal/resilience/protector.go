package resilience

import (
	"context"
	"errors"
	"fmt"

	"libseal/internal/rote"
)

// CounterService is the quorum-client surface the breaker protects.
// rote.Group implements it.
type CounterService interface {
	IncrementContext(ctx context.Context, name string) (uint64, error)
	ReadContext(ctx context.Context, name string) (uint64, error)
}

// BreakerProtector wraps a rollback-counter quorum client with a circuit
// breaker. It satisfies both audit.RollbackProtector and
// audit.ContextRollbackProtector (structurally), so it slots directly into
// audit.Config.Protector: while the breaker is open, counter operations
// fail immediately with an error satisfying errors.Is(err, rote.ErrNoQuorum)
// — the audit log enters degraded mode at once instead of burning the full
// retry/backoff budget per batch, and the periodic Reanchor loop supplies
// the half-open probes that eventually re-close the breaker.
type BreakerProtector struct {
	svc CounterService
	b   *Breaker
}

// NewBreakerProtector wraps svc. The breaker's telemetry registers under
// the given name prefix.
func NewBreakerProtector(name string, svc CounterService, cfg BreakerConfig) *BreakerProtector {
	return &BreakerProtector{svc: svc, b: NewBreaker(name, cfg)}
}

// Breaker exposes the underlying breaker (for health probes and tests).
func (p *BreakerProtector) Breaker() *Breaker { return p.b }

// IncrementContext advances the counter through the breaker.
func (p *BreakerProtector) IncrementContext(ctx context.Context, name string) (uint64, error) {
	if err := p.b.Allow(); err != nil {
		return 0, fmt.Errorf("%w: %w", rote.ErrNoQuorum, err)
	}
	v, err := p.svc.IncrementContext(ctx, name)
	p.record(err)
	return v, err
}

// ReadContext reads the counter through the breaker.
func (p *BreakerProtector) ReadContext(ctx context.Context, name string) (uint64, error) {
	if err := p.b.Allow(); err != nil {
		return 0, fmt.Errorf("%w: %w", rote.ErrNoQuorum, err)
	}
	v, err := p.svc.ReadContext(ctx, name)
	p.record(err)
	return v, err
}

// Increment implements the context-free protector surface.
func (p *BreakerProtector) Increment(name string) (uint64, error) {
	return p.IncrementContext(context.Background(), name)
}

// Read implements the context-free protector surface.
func (p *BreakerProtector) Read(name string) (uint64, error) {
	return p.ReadContext(context.Background(), name)
}

// record classifies one call outcome for the breaker. Only availability
// failures (no quorum, timeout, cancellation) count against the streak; a
// quorum that answered — even with bad news like a rollback verdict — is a
// live quorum.
func (p *BreakerProtector) record(err error) {
	switch {
	case err == nil:
		p.b.Success()
	case errors.Is(err, rote.ErrNoQuorum),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		p.b.Failure()
	}
}
