package resilience

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHealthHandlers(t *testing.T) {
	h := NewHealth()
	h.Liveness("proc", func() CheckResult { return OK("up") })
	ready := true
	h.Readiness("quorum", func() CheckResult {
		if ready {
			return OK("4/4 nodes")
		}
		return Unhealthy("1/4 nodes")
	})

	mux := http.NewServeMux()
	h.Mount(mux)

	get := func(path string) (int, healthReport) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		var rep healthReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		return rec.Code, rep
	}

	if code, rep := get("/healthz"); code != 200 || rep.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, rep)
	}
	if code, rep := get("/readyz"); code != 200 || !rep.Checks["quorum"].OK {
		t.Fatalf("readyz = %d %+v", code, rep)
	}

	ready = false
	code, rep := get("/readyz")
	if code != http.StatusServiceUnavailable || rep.Status != "unavailable" {
		t.Fatalf("degraded readyz = %d %+v", code, rep)
	}
	if rep.Checks["quorum"].Detail != "1/4 nodes" {
		t.Fatalf("detail = %q", rep.Checks["quorum"].Detail)
	}
	// Liveness is independent of readiness.
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz while unready = %d", code)
	}
}
