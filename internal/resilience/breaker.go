// Package resilience is LibSEAL's availability layer: the pieces that keep
// the audited service degrading predictably — instead of stalling or
// failing open — when a dependency misbehaves. It provides a circuit
// breaker for the rollback-counter quorum client (a dead quorum must not
// burn the full retry/backoff budget on every append batch), a
// breaker-wrapped protector that slots into the audit log's anchor path,
// and a health registry surfacing liveness and readiness over HTTP so
// orchestration (load balancers, kubelets, operators) can route around a
// degraded instance.
//
// The design follows ReplicaTEE's observation that enclave replica groups
// need explicit membership transitions to survive restarts, and the classic
// circuit-breaker state machine: Closed (calls flow; consecutive failures
// are counted), Open (calls fail fast until a cooldown elapses) and
// HalfOpen (one probe is admitted; its outcome decides between Closed and
// another Open period).
package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"libseal/internal/telemetry"
)

// ErrOpen is returned by Breaker.Allow while the breaker is open: the
// protected dependency has failed repeatedly and calls are shed without
// being attempted.
var ErrOpen = errors.New("resilience: circuit breaker open")

// State is a circuit breaker's position.
type State int32

// Breaker states.
const (
	// Closed lets calls flow; consecutive failures are counted.
	Closed State = iota
	// HalfOpen admits a single probe after the cooldown; its outcome
	// closes or re-opens the breaker.
	HalfOpen
	// Open fails every call fast until the cooldown elapses.
	Open
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "?"
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. Zero picks the default of 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Zero picks the default of 5s.
	Cooldown time.Duration
	// OnStateChange, when set, is called (outside the breaker's lock) on
	// every state transition. Used by the server to log transitions.
	OnStateChange func(from, to State)
	// Now overrides the clock used for the open-cooldown timer. Nil uses
	// time.Now. Tests inject a fake clock so cooldown expiry is exact
	// instead of raced against real sleeps.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker: it watches the outcome of calls against one
// dependency and, after Threshold consecutive failures, fails subsequent
// calls fast for Cooldown before probing for recovery. All methods are safe
// for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight

	mState         *telemetry.Gauge
	mOpens         *telemetry.Counter
	mProbes        *telemetry.Counter
	mShortCircuits *telemetry.Counter
}

// NewBreaker creates a breaker whose telemetry registers under the given
// name prefix (<name>.state, <name>.opens, <name>.probes,
// <name>.short_circuits).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	return &Breaker{
		cfg:            cfg.withDefaults(),
		mState:         telemetry.NewGauge(name+".state", "state"),
		mOpens:         telemetry.NewCounter(name+".opens", "transitions"),
		mProbes:        telemetry.NewCounter(name+".probes", "calls"),
		mShortCircuits: telemetry.NewCounter(name+".short_circuits", "calls"),
	}
}

// State returns the breaker's current position. An elapsed cooldown is
// reflected as HalfOpen even before the next Allow, so health probes see
// the same state a caller would.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed. It returns nil while the
// breaker is closed, admits exactly one probe once the open cooldown has
// elapsed, and returns ErrOpen otherwise. A caller that proceeds must
// report the outcome via Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	var notify func(State, State)
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify(Open, HalfOpen)
		}
	}()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mShortCircuits.Inc()
			return ErrOpen
		}
		b.setStateLocked(HalfOpen)
		if b.cfg.OnStateChange != nil {
			notify = b.cfg.OnStateChange
		}
		fallthrough
	case HalfOpen:
		if b.probing {
			b.mShortCircuits.Inc()
			return ErrOpen
		}
		b.probing = true
		b.mProbes.Inc()
		return nil
	}
	return nil
}

// Success records a successful call: the failure streak resets and an open
// or half-open breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	from := b.state
	b.consecutive = 0
	b.probing = false
	if b.state != Closed {
		b.setStateLocked(Closed)
	}
	b.mu.Unlock()
	if from != Closed && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, Closed)
	}
}

// Failure records a failed call. A half-open probe failure re-opens the
// breaker immediately; while closed, the Threshold-th consecutive failure
// opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	from := b.state
	tripped := false
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.trip()
		tripped = true
	case Closed:
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.trip()
			tripped = true
		}
	case Open:
		// A straggler from before the trip; the breaker is already open.
	}
	b.mu.Unlock()
	if tripped && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, Open)
	}
}

// trip opens the breaker. Called with b.mu held.
func (b *Breaker) trip() {
	b.setStateLocked(Open)
	b.openedAt = b.cfg.Now()
	b.consecutive = 0
	b.mOpens.Inc()
}

// setStateLocked records a state transition. Called with b.mu held.
func (b *Breaker) setStateLocked(s State) {
	b.state = s
	b.mState.Set(int64(s))
}

// Describe renders the breaker state for health reporting.
func (b *Breaker) Describe() string {
	return fmt.Sprintf("state=%s", b.State())
}
