// Package httpparse implements a small HTTP/1.1 message parser and writer.
// LibSEAL's service-specific modules use it to parse the plaintext request
// and response streams observed at the TLS termination point (§5.1), and the
// simulated Apache/Squid services use it to speak the protocol.
package httpparse

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Errors returned by the parser.
var (
	ErrMalformed = errors.New("httpparse: malformed message")
	ErrTooLarge  = errors.New("httpparse: message exceeds size limit")
)

// MaxHeaderBytes caps the header section size.
const MaxHeaderBytes = 1 << 20

// MaxBodyBytes caps body sizes accepted by the parser (128 MiB, enough for
// the paper's 100 MB content-size sweep).
const MaxBodyBytes = 130 << 20

// Header is an ordered multimap of header fields with case-insensitive keys.
type Header struct {
	keys []string
	vals map[string][]string
}

// NewHeader returns an empty header collection.
func NewHeader() *Header {
	return &Header{vals: make(map[string][]string)}
}

// CanonicalKey normalises a header field name (Foo-Bar style). It works
// byte-wise on ASCII letters only: UTF-8-aware case mapping would expand
// invalid sequences into replacement characters, so a hostile field name
// could grow on every parse/re-encode cycle.
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}

// Set replaces all values of a field.
func (h *Header) Set(k, v string) {
	ck := CanonicalKey(k)
	if _, ok := h.vals[ck]; !ok {
		h.keys = append(h.keys, ck)
	}
	h.vals[ck] = []string{v}
}

// Add appends a value to a field.
func (h *Header) Add(k, v string) {
	ck := CanonicalKey(k)
	if _, ok := h.vals[ck]; !ok {
		h.keys = append(h.keys, ck)
	}
	h.vals[ck] = append(h.vals[ck], v)
}

// Get returns the first value of a field, or "".
func (h *Header) Get(k string) string {
	vs := h.vals[CanonicalKey(k)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Has reports whether the field is present.
func (h *Header) Has(k string) bool {
	_, ok := h.vals[CanonicalKey(k)]
	return ok
}

// Del removes a field.
func (h *Header) Del(k string) {
	ck := CanonicalKey(k)
	if _, ok := h.vals[ck]; !ok {
		return
	}
	delete(h.vals, ck)
	for i, key := range h.keys {
		if key == ck {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			break
		}
	}
}

// Keys returns the field names in first-seen order.
func (h *Header) Keys() []string { return append([]string(nil), h.keys...) }

// writeTo serialises the header section (without the terminating CRLF).
func (h *Header) writeTo(w io.Writer) error {
	for _, k := range h.keys {
		for _, v := range h.vals[k] {
			if _, err := fmt.Fprintf(w, "%s: %s\r\n", k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Request is a parsed HTTP request.
type Request struct {
	Method string
	Path   string
	Proto  string
	Header *Header
	Body   []byte
}

// Response is a parsed HTTP response.
type Response struct {
	Proto  string
	Status int
	Reason string
	Header *Header
	Body   []byte
}

// NewRequest builds a request with sensible defaults.
func NewRequest(method, path string, body []byte) *Request {
	r := &Request{Method: method, Path: path, Proto: "HTTP/1.1", Header: NewHeader(), Body: body}
	if len(body) > 0 {
		r.Header.Set("Content-Length", strconv.Itoa(len(body)))
	}
	return r
}

// NewResponse builds a response with sensible defaults.
func NewResponse(status int, body []byte) *Response {
	r := &Response{Proto: "HTTP/1.1", Status: status, Reason: StatusText(status), Header: NewHeader(), Body: body}
	r.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return r
}

// StatusText returns the reason phrase for common status codes.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 409:
		return "Conflict"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	}
	return "Unknown"
}

func readLine(br *bufio.Reader, limit int) (string, error) {
	var sb strings.Builder
	for {
		frag, err := br.ReadString('\n')
		sb.WriteString(frag)
		if err != nil {
			if err == io.EOF && sb.Len() > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		if strings.HasSuffix(sb.String(), "\n") {
			break
		}
		if sb.Len() > limit {
			return "", ErrTooLarge
		}
	}
	line := sb.String()
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

func readHeader(br *bufio.Reader) (*Header, error) {
	h := NewHeader()
	total := 0
	for {
		line, err := readLine(br, MaxHeaderBytes)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, ErrTooLarge
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		key := strings.TrimSpace(line[:colon])
		if key == "" {
			return nil, fmt.Errorf("%w: empty header name in %q", ErrMalformed, line)
		}
		h.Add(key, strings.TrimSpace(line[colon+1:]))
	}
}

func readBody(br *bufio.Reader, h *Header) ([]byte, error) {
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		var body bytes.Buffer
		for {
			sizeLine, err := readLine(br, 4096)
			if err != nil {
				return nil, err
			}
			if semi := strings.IndexByte(sizeLine, ';'); semi >= 0 {
				sizeLine = sizeLine[:semi]
			}
			size, err := strconv.ParseInt(strings.TrimSpace(sizeLine), 16, 64)
			if err != nil || size < 0 {
				return nil, fmt.Errorf("%w: chunk size %q", ErrMalformed, sizeLine)
			}
			if int64(body.Len())+size > MaxBodyBytes {
				return nil, ErrTooLarge
			}
			if size > 0 {
				if _, err := io.CopyN(&body, br, size); err != nil {
					return nil, err
				}
			}
			// Chunk data is followed by CRLF.
			if _, err := readLine(br, 16); err != nil {
				return nil, err
			}
			if size == 0 {
				return body.Bytes(), nil
			}
		}
	}
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.ParseInt(cl, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
	}
	if n > MaxBodyBytes {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ReadRequest parses one request from the reader.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br, MaxHeaderBytes)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	body, err := readBody(br, h)
	if err != nil {
		return nil, err
	}
	return &Request{Method: parts[0], Path: parts[1], Proto: parts[2], Header: h, Body: body}, nil
}

// ReadResponse parses one response from the reader.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br, MaxHeaderBytes)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformed, parts[1])
	}
	reason := ""
	if len(parts) == 3 {
		reason = parts[2]
	}
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	body, err := readBody(br, h)
	if err != nil {
		return nil, err
	}
	return &Response{Proto: parts[0], Status: status, Reason: reason, Header: h, Body: body}, nil
}

// Encode serialises the request.
func (r *Request) Encode(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s %s %s\r\n", r.Method, r.Path, r.Proto); err != nil {
		return err
	}
	if len(r.Body) > 0 && !r.Header.Has("Content-Length") && !r.Header.Has("Transfer-Encoding") {
		r.Header.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	if err := r.Header.writeTo(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\r\n"); err != nil {
		return err
	}
	_, err := w.Write(r.Body)
	return err
}

// Encode serialises the response.
func (r *Response) Encode(w io.Writer) error {
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	if _, err := fmt.Fprintf(w, "%s %d %s\r\n", r.Proto, r.Status, reason); err != nil {
		return err
	}
	if !r.Header.Has("Content-Length") && !r.Header.Has("Transfer-Encoding") {
		r.Header.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	if err := r.Header.writeTo(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\r\n"); err != nil {
		return err
	}
	_, err := w.Write(r.Body)
	return err
}

// Bytes serialises the request into a byte slice.
func (r *Request) Bytes() []byte {
	var buf bytes.Buffer
	_ = r.Encode(&buf)
	return buf.Bytes()
}

// Bytes serialises the response into a byte slice.
func (r *Response) Bytes() []byte {
	var buf bytes.Buffer
	_ = r.Encode(&buf)
	return buf.Bytes()
}

// ParseRequestBytes parses a request held fully in memory.
func ParseRequestBytes(b []byte) (*Request, error) {
	return ReadRequest(bufio.NewReader(bytes.NewReader(b)))
}

// ParseResponseBytes parses a response held fully in memory.
func ParseResponseBytes(b []byte) (*Response, error) {
	return ReadResponse(bufio.NewReader(bytes.NewReader(b)))
}

// Query extracts a query parameter from a request path, without decoding
// (the simulated services use simple token values).
func (r *Request) Query(key string) string {
	q := r.Path
	idx := strings.IndexByte(q, '?')
	if idx < 0 {
		return ""
	}
	for _, kv := range strings.Split(q[idx+1:], "&") {
		if eq := strings.IndexByte(kv, '='); eq >= 0 {
			if kv[:eq] == key {
				return kv[eq+1:]
			}
		} else if kv == key {
			return ""
		}
	}
	return ""
}

// PathOnly returns the request path without the query string.
func (r *Request) PathOnly() string {
	if idx := strings.IndexByte(r.Path, '?'); idx >= 0 {
		return r.Path[:idx]
	}
	return r.Path
}

// ErrIncomplete reports that a buffer does not yet hold a complete message;
// the caller should retry with more data. LibSEAL's pairing logic uses it to
// find message boundaries in the intercepted plaintext stream.
var ErrIncomplete = errors.New("httpparse: incomplete message")

func mapIncomplete(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrIncomplete
	}
	return err
}

// ConsumeRequest parses one complete request from the front of b, returning
// the number of bytes it occupied. It returns ErrIncomplete when b holds
// only a prefix of a request.
func ConsumeRequest(b []byte) (*Request, int, error) {
	r := bytes.NewReader(b)
	br := bufio.NewReaderSize(r, len(b)+16)
	req, err := ReadRequest(br)
	if err != nil {
		return nil, 0, mapIncomplete(err)
	}
	consumed := len(b) - r.Len() - br.Buffered()
	return req, consumed, nil
}

// ConsumeResponse parses one complete response from the front of b,
// returning the number of bytes it occupied. It returns ErrIncomplete when b
// holds only a prefix of a response.
func ConsumeResponse(b []byte) (*Response, int, error) {
	r := bytes.NewReader(b)
	br := bufio.NewReaderSize(r, len(b)+16)
	rsp, err := ReadResponse(br)
	if err != nil {
		return nil, 0, mapIncomplete(err)
	}
	consumed := len(b) - r.Len() - br.Buffered()
	return rsp, consumed, nil
}

// Clone returns a deep copy of the header collection.
func (h *Header) Clone() *Header {
	out := NewHeader()
	for _, k := range h.keys {
		for _, v := range h.vals[k] {
			out.Add(k, v)
		}
	}
	return out
}

// Clone returns a deep copy of the request (the body slice is shared).
func (r *Request) Clone() *Request {
	out := *r
	out.Header = r.Header.Clone()
	return &out
}
