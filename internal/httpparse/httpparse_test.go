package httpparse

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleRequest(t *testing.T) {
	raw := "GET /repo/info/refs?service=git-upload-pack HTTP/1.1\r\n" +
		"Host: git.example.com\r\n" +
		"Libseal-Check: git\r\n" +
		"\r\n"
	req, err := ParseRequestBytes([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Proto != "HTTP/1.1" {
		t.Fatalf("method/proto = %s %s", req.Method, req.Proto)
	}
	if req.PathOnly() != "/repo/info/refs" {
		t.Fatalf("path = %q", req.PathOnly())
	}
	if req.Query("service") != "git-upload-pack" {
		t.Fatalf("query = %q", req.Query("service"))
	}
	if req.Header.Get("libseal-check") != "git" {
		t.Fatal("case-insensitive header lookup failed")
	}
	if len(req.Body) != 0 {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestParseRequestWithBody(t *testing.T) {
	raw := "POST /upload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
	req, err := ParseRequestBytes([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello" {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestParseChunkedBody(t *testing.T) {
	raw := "POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
	req, err := ParseRequestBytes([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello world" {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestParseResponse(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nLibseal-Check-Result: ok\r\n\r\nhi"
	rsp, err := ParseResponseBytes([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Status != 200 || rsp.Reason != "OK" || string(rsp.Body) != "hi" {
		t.Fatalf("rsp = %+v", rsp)
	}
	if rsp.Header.Get("Libseal-Check-Result") != "ok" {
		t.Fatal("header missing")
	}
}

func TestRoundTripRequest(t *testing.T) {
	req := NewRequest("PUT", "/x/y", []byte("payload"))
	req.Header.Set("X-Custom", "v1")
	req.Header.Add("X-Multi", "a")
	req.Header.Add("X-Multi", "b")
	parsed, err := ParseRequestBytes(req.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Method != "PUT" || parsed.Path != "/x/y" || string(parsed.Body) != "payload" {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Header.Get("X-Custom") != "v1" {
		t.Fatal("custom header lost")
	}
}

func TestRoundTripResponse(t *testing.T) {
	rsp := NewResponse(404, []byte("nope"))
	parsed, err := ParseResponseBytes(rsp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Status != 404 || parsed.Reason != "Not Found" || string(parsed.Body) != "nope" {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(body []byte, hval string) bool {
		if strings.ContainsAny(hval, "\r\n") {
			return true // header injection is the caller's responsibility
		}
		req := NewRequest("POST", "/p", body)
		req.Header.Set("X-Val", hval)
		parsed, err := ParseRequestBytes(req.Bytes())
		if err != nil {
			return false
		}
		return bytes.Equal(parsed.Body, body) &&
			parsed.Header.Get("X-Val") == strings.TrimSpace(hval)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedMessages(t *testing.T) {
	cases := []string{
		"NOT A REQUEST\r\n\r\n",
		"GET /\r\n\r\n",                                // missing proto
		"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",          // no colon
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", // bad length
		"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
		"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
	}
	for _, raw := range cases {
		if _, err := ParseRequestBytes([]byte(raw)); err == nil {
			t.Errorf("ParseRequestBytes(%q) succeeded", raw)
		}
	}
	if _, err := ParseResponseBytes([]byte("HTTP/1.1 abc OK\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad status err = %v", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
	if _, err := ParseRequestBytes([]byte(raw)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestBodyTooLarge(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
	if _, err := ParseRequestBytes([]byte(raw)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestMultipleRequestsOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		NewRequest("GET", "/a", nil).Encode(&buf)
	}
	br := bufio.NewReader(&buf)
	for i := 0; i < 3; i++ {
		if _, err := ReadRequest(br); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestHeaderOps(t *testing.T) {
	h := NewHeader()
	h.Set("content-type", "text/plain")
	h.Add("Content-Type", "text/html")
	if got := h.Get("CONTENT-TYPE"); got != "text/plain" {
		t.Fatalf("Get = %q", got)
	}
	if !h.Has("Content-Type") {
		t.Fatal("Has = false")
	}
	h.Del("Content-Type")
	if h.Has("Content-Type") || len(h.Keys()) != 0 {
		t.Fatal("Del left residue")
	}
}

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-length":       "Content-Length",
		"LIBSEAL-CHECK":        "Libseal-Check",
		"libseal-check-result": "Libseal-Check-Result",
		"x":                    "X",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(404) != "Not Found" || StatusText(999) != "Unknown" {
		t.Fatal("StatusText mismatch")
	}
}

func TestConsumeRequestIncremental(t *testing.T) {
	full := NewRequest("POST", "/x", []byte("hello world")).Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ConsumeRequest(full[:cut]); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrIncomplete", cut, err)
		}
	}
	req, n, err := ConsumeRequest(full)
	if err != nil || n != len(full) || string(req.Body) != "hello world" {
		t.Fatalf("full parse: %v, n=%d", err, n)
	}
}

func TestConsumeRequestPipelined(t *testing.T) {
	a := NewRequest("GET", "/first", nil).Bytes()
	b := NewRequest("GET", "/second", nil).Bytes()
	buf := append(append([]byte{}, a...), b...)
	req1, n1, err := ConsumeRequest(buf)
	if err != nil || req1.Path != "/first" || n1 != len(a) {
		t.Fatalf("first: %v n=%d", err, n1)
	}
	req2, n2, err := ConsumeRequest(buf[n1:])
	if err != nil || req2.Path != "/second" || n2 != len(b) {
		t.Fatalf("second: %v n=%d", err, n2)
	}
}

func TestConsumeResponseIncremental(t *testing.T) {
	full := NewResponse(200, []byte("body")).Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ConsumeResponse(full[:cut]); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("prefix %d: err = %v, want ErrIncomplete", cut, err)
		}
	}
	rsp, n, err := ConsumeResponse(full)
	if err != nil || n != len(full) || rsp.Status != 200 {
		t.Fatalf("full parse: %v n=%d", err, n)
	}
}

func TestConsumeMalformedNotIncomplete(t *testing.T) {
	if _, _, err := ConsumeRequest([]byte("TOTAL GARBAGE\r\n\r\n")); errors.Is(err, ErrIncomplete) || err == nil {
		t.Fatalf("malformed reported as incomplete: %v", err)
	}
}
