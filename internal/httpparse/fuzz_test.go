package httpparse

import (
	"bytes"
	"testing"
)

// FuzzHTTPParse drives the request and response parsers with arbitrary
// bytes. The parsers sit on the untrusted side of the TLS terminator, so
// the bar is: never panic, never report consuming more bytes than exist,
// and anything accepted must re-encode to a form the parser accepts again
// and that is stable under a second encode (chunked messages are exempt
// from re-encoding: parsing decodes the body in place, deliberately not
// reversibly).
func FuzzHTTPParse(f *testing.F) {
	f.Add([]byte("GET /path?a=b HTTP/1.1\r\nHost: h\r\n\r\n"))
	f.Add([]byte("POST /u HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.0\nX: y\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, n, err := ConsumeRequest(data); err == nil {
			if n < 0 || n > len(data) {
				t.Fatalf("request consumed %d of %d bytes", n, len(data))
			}
			checkReencode(t, "request", req.Bytes(), req.Header,
				func(b []byte) ([]byte, *Header, error) {
					r, err := ParseRequestBytes(b)
					if err != nil {
						return nil, nil, err
					}
					return r.Bytes(), r.Header, nil
				})
		}
		if resp, n, err := ConsumeResponse(data); err == nil {
			if n < 0 || n > len(data) {
				t.Fatalf("response consumed %d of %d bytes", n, len(data))
			}
			checkReencode(t, "response", resp.Bytes(), resp.Header,
				func(b []byte) ([]byte, *Header, error) {
					r, err := ParseResponseBytes(b)
					if err != nil {
						return nil, nil, err
					}
					return r.Bytes(), r.Header, nil
				})
		}
	})
}

// checkReencode asserts the canonical encoding reparses and is a fixpoint.
func checkReencode(t *testing.T, kind string, enc []byte, h *Header,
	reparse func([]byte) ([]byte, *Header, error)) {
	t.Helper()
	if h.Has("Transfer-Encoding") {
		return
	}
	enc2, h2, err := reparse(enc)
	if err != nil {
		t.Fatalf("%s: canonical encoding rejected: %v\n  enc: %q", kind, err, enc)
	}
	if h2.Has("Transfer-Encoding") {
		return
	}
	if !bytes.Equal(enc2, enc) {
		t.Fatalf("%s: encoding not stable:\n  first:  %q\n  second: %q", kind, enc, enc2)
	}
}
