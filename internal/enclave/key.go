package enclave

import (
	"crypto/ecdsa"
	"crypto/rand"
	"math/big"
)

// Signature is an ECDSA signature produced inside an enclave.
type Signature struct {
	R, S []byte
}

// Sign signs digest with the enclave's report key. The private key is
// generated at launch inside the enclave and never leaves it; LibSEAL uses
// it to sign audit-log batches (§5.1).
func (c *Ctx) Sign(digest []byte) (Signature, error) {
	c.check()
	r, s, err := ecdsa.Sign(rand.Reader, c.e.reportKey, digest)
	if err != nil {
		return Signature{}, err
	}
	return Signature{R: r.Bytes(), S: s.Bytes()}, nil
}

// PublicKey returns the enclave's signing public key. It is safe to export:
// verifiers use it (together with an attestation quote binding it to the
// enclave measurement) to check audit-log signatures.
func (e *Enclave) PublicKey() *ecdsa.PublicKey {
	return &e.reportKey.PublicKey
}

// VerifySignature checks an enclave signature against a public key. It runs
// outside the enclave: verification needs no secrets.
func VerifySignature(pub *ecdsa.PublicKey, digest []byte, sig Signature) bool {
	r := new(big.Int).SetBytes(sig.R)
	s := new(big.Int).SetBytes(sig.S)
	return ecdsa.Verify(pub, digest, r, s)
}
