package enclave

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testEnclave(t *testing.T) *Enclave {
	t.Helper()
	p := NewPlatform()
	e, err := p.Launch(Config{Code: []byte("test-enclave"), MaxThreads: 4, Cost: ZeroCostModel()})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return e
}

func TestEcallRunsInside(t *testing.T) {
	e := testEnclave(t)
	ran := false
	err := e.Ecall(func(c *Ctx) error {
		ran = true
		if c.Enclave() != e {
			t.Error("ctx bound to wrong enclave")
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("Ecall err=%v ran=%v", err, ran)
	}
	if got := e.Stats().Ecalls; got != 1 {
		t.Fatalf("Ecalls = %d, want 1", got)
	}
}

func TestEcallPropagatesError(t *testing.T) {
	e := testEnclave(t)
	want := errors.New("boom")
	if err := e.Ecall(func(*Ctx) error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestCtxInvalidOutsideCall(t *testing.T) {
	e := testEnclave(t)
	var leaked *Ctx
	_ = e.Ecall(func(c *Ctx) error { leaked = c; return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("using a leaked Ctx after the ecall returned did not panic")
		}
	}()
	leaked.ChargeData(1)
}

func TestCtxInvalidDuringOcall(t *testing.T) {
	e := testEnclave(t)
	err := e.Ecall(func(c *Ctx) error {
		return c.Ocall(func() error {
			defer func() {
				if recover() == nil {
					t.Error("Ctx usable while outside during ocall")
				}
			}()
			c.ChargeData(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOcallCountsAndRestoresCtx(t *testing.T) {
	e := testEnclave(t)
	err := e.Ecall(func(c *Ctx) error {
		if err := c.Ocall(func() error { return nil }); err != nil {
			return err
		}
		c.ChargeData(1) // must be valid again
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Ocalls; got != 1 {
		t.Fatalf("Ocalls = %d, want 1", got)
	}
}

func TestTCSLimit(t *testing.T) {
	p := NewPlatform()
	e, err := p.Launch(Config{Code: []byte("x"), MaxThreads: 1, Cost: ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	inside := make(chan struct{})
	release := make(chan struct{})
	go e.Ecall(func(*Ctx) error {
		close(inside)
		<-release
		return nil
	})
	<-inside
	if err := e.TryEcall(func(*Ctx) error { return nil }); !errors.Is(err, ErrNoThreads) {
		t.Fatalf("TryEcall = %v, want ErrNoThreads", err)
	}
	close(release)
}

func TestEcallAfterDestroy(t *testing.T) {
	e := testEnclave(t)
	e.Destroy()
	if err := e.Ecall(func(*Ctx) error { return nil }); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v, want ErrDestroyed", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := testEnclave(t)
	msg := []byte("audit log chunk")
	aad := []byte("entry 7")
	var blob []byte
	if err := e.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicySigner, msg, aad)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, msg) {
		t.Fatal("sealed blob contains plaintext")
	}
	if err := e.Ecall(func(c *Ctx) error {
		got, err := c.Unseal(blob, aad)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("unsealed %q, want %q", got, msg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSealTamperDetected(t *testing.T) {
	e := testEnclave(t)
	var blob []byte
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicyMeasurement, []byte("secret"), nil)
		return err
	})
	blob[len(blob)-1] ^= 0xff
	err := e.Ecall(func(c *Ctx) error {
		_, err := c.Unseal(blob, nil)
		return err
	})
	if !errors.Is(err, ErrSealCorrupted) {
		t.Fatalf("err = %v, want ErrSealCorrupted", err)
	}
}

func TestSealWrongAADDetected(t *testing.T) {
	e := testEnclave(t)
	var blob []byte
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicyMeasurement, []byte("secret"), []byte("aad1"))
		return err
	})
	err := e.Ecall(func(c *Ctx) error {
		_, err := c.Unseal(blob, []byte("aad2"))
		return err
	})
	if !errors.Is(err, ErrSealCorrupted) {
		t.Fatalf("err = %v, want ErrSealCorrupted", err)
	}
}

func TestSealPolicyMeasurementIsolation(t *testing.T) {
	p := NewPlatform()
	e1, _ := p.Launch(Config{Code: []byte("enclave-A"), Cost: ZeroCostModel()})
	e2, _ := p.Launch(Config{Code: []byte("enclave-B"), Cost: ZeroCostModel()})
	var blob []byte
	_ = e1.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicyMeasurement, []byte("secret"), nil)
		return err
	})
	err := e2.Ecall(func(c *Ctx) error {
		_, err := c.Unseal(blob, nil)
		return err
	})
	if !errors.Is(err, ErrSealCorrupted) {
		t.Fatalf("different-measurement unseal err = %v, want ErrSealCorrupted", err)
	}
}

func TestSealPolicySignerSharing(t *testing.T) {
	p := NewPlatform()
	var signer SignerID
	copy(signer[:], "provider-authority")
	e1, _ := p.Launch(Config{Code: []byte("v1"), Signer: signer, Cost: ZeroCostModel()})
	e2, _ := p.Launch(Config{Code: []byte("v2"), Signer: signer, Cost: ZeroCostModel()})
	var blob []byte
	_ = e1.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicySigner, []byte("log"), nil)
		return err
	})
	if err := e2.Ecall(func(c *Ctx) error {
		got, err := c.Unseal(blob, nil)
		if err != nil {
			return err
		}
		if string(got) != "log" {
			t.Errorf("got %q", got)
		}
		return nil
	}); err != nil {
		t.Fatalf("same-signer unseal failed: %v", err)
	}
}

func TestSealCrossPlatformRejected(t *testing.T) {
	var signer SignerID
	e1, _ := NewPlatform().Launch(Config{Code: []byte("x"), Signer: signer, Cost: ZeroCostModel()})
	e2, _ := NewPlatform().Launch(Config{Code: []byte("x"), Signer: signer, Cost: ZeroCostModel()})
	var blob []byte
	_ = e1.Ecall(func(c *Ctx) error {
		var err error
		blob, err = c.Seal(PolicySigner, []byte("secret"), nil)
		return err
	})
	err := e2.Ecall(func(c *Ctx) error {
		_, err := c.Unseal(blob, nil)
		return err
	})
	if !errors.Is(err, ErrSealCorrupted) {
		t.Fatalf("cross-platform unseal err = %v, want ErrSealCorrupted", err)
	}
}

func TestQuoteVerify(t *testing.T) {
	p := NewPlatform()
	e, _ := p.Launch(Config{Code: []byte("libseal"), Cost: ZeroCostModel()})
	svc := NewAttestationService(p)
	var q Quote
	if err := e.Ecall(func(c *Ctx) error {
		var err error
		q, err = c.Quote([]byte("tls-cert-hash"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Verify(q); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := svc.VerifyIdentity(q, e.Measurement()); err != nil {
		t.Fatalf("VerifyIdentity: %v", err)
	}
}

func TestQuoteForgedMeasurementRejected(t *testing.T) {
	p := NewPlatform()
	e, _ := p.Launch(Config{Code: []byte("libseal"), Cost: ZeroCostModel()})
	svc := NewAttestationService(p)
	var q Quote
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		q, err = c.Quote(nil)
		return err
	})
	q.Measurement[0] ^= 1 // forge the identity
	if err := svc.Verify(q); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("forged quote Verify = %v, want ErrQuoteInvalid", err)
	}
}

func TestQuoteUntrustedPlatformRejected(t *testing.T) {
	good, evil := NewPlatform(), NewPlatform()
	e, _ := evil.Launch(Config{Code: []byte("libseal"), Cost: ZeroCostModel()})
	svc := NewAttestationService(good)
	var q Quote
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		q, err = c.Quote(nil)
		return err
	})
	if err := svc.Verify(q); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("untrusted platform quote = %v, want ErrQuoteInvalid", err)
	}
}

func TestMonotonicCounter(t *testing.T) {
	e := testEnclave(t)
	var id uint64
	if err := e.Ecall(func(c *Ctx) error {
		var err error
		id, err = c.CreateCounter()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 3; want++ {
		_ = e.Ecall(func(c *Ctx) error {
			got, err := c.IncrementCounter(id)
			if err != nil {
				return err
			}
			if got != want {
				t.Errorf("counter = %d, want %d", got, want)
			}
			return nil
		})
	}
	_ = e.Ecall(func(c *Ctx) error {
		got, err := c.ReadCounter(id)
		if err != nil || got != 3 {
			t.Errorf("ReadCounter = %d, %v; want 3", got, err)
		}
		return nil
	})
}

func TestCounterSurvivesEnclaveRestart(t *testing.T) {
	p := NewPlatform()
	e1, _ := p.Launch(Config{Code: []byte("same"), Cost: ZeroCostModel()})
	var id uint64
	_ = e1.Ecall(func(c *Ctx) error {
		id, _ = c.CreateCounter()
		_, err := c.IncrementCounter(id)
		return err
	})
	e1.Destroy()
	e2, _ := p.Launch(Config{Code: []byte("same"), Cost: ZeroCostModel()})
	_ = e2.Ecall(func(c *Ctx) error {
		got, err := c.ReadCounter(id)
		if err != nil || got != 1 {
			t.Errorf("restarted enclave counter = %d, %v; want 1", got, err)
		}
		return nil
	})
}

func TestCounterWrongOwnerRejected(t *testing.T) {
	p := NewPlatform()
	owner, _ := p.Launch(Config{Code: []byte("owner"), Cost: ZeroCostModel()})
	other, _ := p.Launch(Config{Code: []byte("other"), Cost: ZeroCostModel()})
	var id uint64
	_ = owner.Ecall(func(c *Ctx) error {
		id, _ = c.CreateCounter()
		return nil
	})
	err := other.Ecall(func(c *Ctx) error {
		_, err := c.IncrementCounter(id)
		return err
	})
	if !errors.Is(err, ErrUnknownCounter) {
		t.Fatalf("foreign increment = %v, want ErrUnknownCounter", err)
	}
}

func TestSignVerify(t *testing.T) {
	e := testEnclave(t)
	digest := bytes.Repeat([]byte{7}, 32)
	var sig Signature
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		sig, err = c.Sign(digest)
		return err
	})
	if !VerifySignature(e.PublicKey(), digest, sig) {
		t.Fatal("valid signature rejected")
	}
	bad := append([]byte(nil), digest...)
	bad[0] ^= 1
	if VerifySignature(e.PublicKey(), bad, sig) {
		t.Fatal("signature verified for different digest")
	}
}

func TestAllocMemLimit(t *testing.T) {
	p := NewPlatform()
	e, _ := p.Launch(Config{Code: []byte("x"), MemLimit: 1024, Cost: ZeroCostModel()})
	err := e.Ecall(func(c *Ctx) error {
		if err := c.Alloc(512); err != nil {
			return err
		}
		if err := c.Alloc(1024); !errors.Is(err, ErrExceedsMemLimit) {
			t.Errorf("over-limit Alloc = %v, want ErrExceedsMemLimit", err)
		}
		c.Free(512)
		return c.Alloc(1024)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Ecall(func(c *Ctx) error { c.Free(1024); return nil })
	if got := e.HeapBytes(); got != 0 {
		t.Fatalf("HeapBytes = %d, want 0", got)
	}
}

func TestEPCPagingAccounted(t *testing.T) {
	p := NewPlatform()
	cost := ZeroCostModel()
	cost.EPCBytes = 4096
	e, _ := p.Launch(Config{Code: []byte("x"), Cost: cost})
	_ = e.Ecall(func(c *Ctx) error {
		_ = c.Alloc(4096) // fits
		_ = c.Alloc(8192) // 8192 over
		return nil
	})
	if got := e.Stats().PagedBytes; got != 8192 {
		t.Fatalf("PagedBytes = %d, want 8192", got)
	}
}

func TestTransitionCostCharged(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := NewPlatform()
	cost := ZeroCostModel()
	cost.TransitionCycles = 2_000_000 // ~540µs per crossing at 3.7GHz
	e, _ := p.Launch(Config{Code: []byte("x"), Cost: cost})
	start := time.Now()
	_ = e.Ecall(func(*Ctx) error { return nil })
	if elapsed := time.Since(start); elapsed < 800*time.Microsecond {
		t.Fatalf("two crossings took %v, expected >= ~1ms of charged cost", elapsed)
	}
}

func TestTransitionContentionScales(t *testing.T) {
	m := DefaultCostModel()
	c1 := m.TransitionCost(1)
	c48 := m.TransitionCost(48)
	ratio := float64(c48) / float64(c1)
	// Paper: 8,500 cycles at 1 thread vs 170,000 at 48 — about 20x.
	if ratio < 15 || ratio > 25 {
		t.Fatalf("contention ratio = %.1f, want ~20", ratio)
	}
}

func TestConcurrentEcalls(t *testing.T) {
	e := testEnclave(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Ecall(func(*Ctx) error {
				mu.Lock()
				total++
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if total != 32 {
		t.Fatalf("total = %d, want 32", total)
	}
	if got := e.Stats().Ecalls; got != 32 {
		t.Fatalf("Ecalls = %d, want 32", got)
	}
}

func TestSealRoundTripProperty(t *testing.T) {
	e := testEnclave(t)
	f := func(msg, aad []byte) bool {
		var ok bool
		err := e.Ecall(func(c *Ctx) error {
			blob, err := c.Seal(PolicySigner, msg, aad)
			if err != nil {
				return err
			}
			got, err := c.Unseal(blob, aad)
			if err != nil {
				return err
			}
			ok = bytes.Equal(got, msg)
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	p := NewPlatform()
	e1, _ := p.Launch(Config{Code: []byte("code"), Cost: ZeroCostModel()})
	e2, _ := p.Launch(Config{Code: []byte("code"), Cost: ZeroCostModel()})
	e3, _ := p.Launch(Config{Code: []byte("other"), Cost: ZeroCostModel()})
	if e1.Measurement() != e2.Measurement() {
		t.Fatal("same code produced different measurements")
	}
	if e1.Measurement() == e3.Measurement() {
		t.Fatal("different code produced same measurement")
	}
}

func TestEnterResident(t *testing.T) {
	e := testEnclave(t)
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		_ = e.EnterResident(func(c *Ctx) {
			c.ChargeData(0)
			<-stop
		})
		close(done)
	}()
	close(stop)
	<-done
	if got := e.Stats().Ecalls; got != 1 {
		t.Fatalf("Ecalls = %d, want 1", got)
	}
}

func TestSigningKeyDeterministicPerPlatformAndCode(t *testing.T) {
	p := NewPlatform()
	e1, _ := p.Launch(Config{Code: []byte("same"), Cost: ZeroCostModel()})
	e2, _ := p.Launch(Config{Code: []byte("same"), Cost: ZeroCostModel()})
	e3, _ := p.Launch(Config{Code: []byte("other"), Cost: ZeroCostModel()})
	if e1.PublicKey().X.Cmp(e2.PublicKey().X) != 0 {
		t.Fatal("same platform+code produced different signing keys")
	}
	if e1.PublicKey().X.Cmp(e3.PublicKey().X) == 0 {
		t.Fatal("different code produced same signing key")
	}
	other := NewPlatform()
	e4, _ := other.Launch(Config{Code: []byte("same"), Cost: ZeroCostModel()})
	if e1.PublicKey().X.Cmp(e4.PublicKey().X) == 0 {
		t.Fatal("different platforms produced same signing key")
	}
}

func TestPlatformStateRoundTrip(t *testing.T) {
	p := NewPlatform()
	e, _ := p.Launch(Config{Code: []byte("persist"), Cost: ZeroCostModel()})
	var id uint64
	_ = e.Ecall(func(c *Ctx) error {
		id, _ = c.CreateCounter()
		_, err := c.IncrementCounter(id)
		return err
	})
	var sealed []byte
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		sealed, err = c.Seal(PolicyMeasurement, []byte("survives"), nil)
		return err
	})

	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalPlatform(data)
	if err != nil {
		t.Fatal(err)
	}
	// Same sealing keys, same counters, same signing keys, same attestation.
	e2, _ := restored.Launch(Config{Code: []byte("persist"), Cost: ZeroCostModel()})
	if e.PublicKey().X.Cmp(e2.PublicKey().X) != 0 {
		t.Fatal("signing key lost across platform restore")
	}
	_ = e2.Ecall(func(c *Ctx) error {
		got, err := c.Unseal(sealed, nil)
		if err != nil || string(got) != "survives" {
			t.Errorf("unseal after restore: %q, %v", got, err)
		}
		v, err := c.ReadCounter(id)
		if err != nil || v != 1 {
			t.Errorf("counter after restore = %d, %v", v, err)
		}
		return nil
	})
	svc := NewAttestationService(restored)
	var q Quote
	_ = e.Ecall(func(c *Ctx) error {
		var err error
		q, err = c.Quote(nil)
		return err
	})
	if err := svc.Verify(q); err != nil {
		t.Fatalf("quote from original platform rejected by restored verifier: %v", err)
	}
}

func TestLoadOrCreatePlatform(t *testing.T) {
	path := t.TempDir() + "/platform.state"
	p1, err := LoadOrCreatePlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := LoadOrCreatePlatform(path)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := p1.Launch(Config{Code: []byte("x"), Cost: ZeroCostModel()})
	e2, _ := p2.Launch(Config{Code: []byte("x"), Cost: ZeroCostModel()})
	if e1.PublicKey().X.Cmp(e2.PublicKey().X) != 0 {
		t.Fatal("LoadOrCreatePlatform did not restore the same platform")
	}
	if _, err := UnmarshalPlatform([]byte("garbage")); err == nil {
		t.Fatal("garbage state accepted")
	}
}
