package enclave

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"math/big"
)

// Quote is a remotely verifiable statement that an enclave with the embedded
// measurement, signed by the embedded authority, is running on a genuine
// platform and produced ReportData. It mirrors the SGX quoting-enclave flow:
// the platform's provisioned attestation key signs the report.
type Quote struct {
	Measurement Measurement
	Signer      SignerID
	ReportData  [64]byte
	SigR, SigS  []byte
}

// Quote asks the platform's quoting enclave to sign a report for this
// enclave over the given user data (at most 64 bytes, as in SGX).
func (c *Ctx) Quote(userData []byte) (Quote, error) {
	c.check()
	e := c.e
	var q Quote
	q.Measurement = e.meas
	q.Signer = e.signer
	copy(q.ReportData[:], userData)
	digest := q.digest()
	r, s, err := ecdsa.Sign(rand.Reader, e.platform.quotingKey, digest[:])
	if err != nil {
		return Quote{}, err
	}
	q.SigR, q.SigS = r.Bytes(), s.Bytes()
	return q, nil
}

func (q *Quote) digest() [32]byte {
	h := sha256.New()
	h.Write([]byte("libseal/quote/v1"))
	h.Write(q.Measurement[:])
	h.Write(q.Signer[:])
	h.Write(q.ReportData[:])
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// AttestationService verifies quotes against a set of trusted platforms. It
// plays the role of the Intel attestation service: clients hand it a quote
// and learn whether it came from a genuine enclave.
type AttestationService struct {
	trusted []*ecdsa.PublicKey
}

// NewAttestationService builds a verifier trusting the given platforms.
func NewAttestationService(platforms ...*Platform) *AttestationService {
	s := &AttestationService{}
	for _, p := range platforms {
		s.trusted = append(s.trusted, &p.quotingKey.PublicKey)
	}
	return s
}

// Verify checks the quote signature against all trusted platforms and
// returns nil if any matches.
func (s *AttestationService) Verify(q Quote) error {
	digest := q.digest()
	r := new(big.Int).SetBytes(q.SigR)
	sc := new(big.Int).SetBytes(q.SigS)
	for _, pub := range s.trusted {
		if ecdsa.Verify(pub, digest[:], r, sc) {
			return nil
		}
	}
	return ErrQuoteInvalid
}

// VerifyIdentity additionally pins the expected measurement, defeating
// attempts to present a quote from a different (e.g. non-LibSEAL) enclave.
func (s *AttestationService) VerifyIdentity(q Quote, want Measurement) error {
	if err := s.Verify(q); err != nil {
		return err
	}
	if q.Measurement != want {
		return ErrQuoteInvalid
	}
	return nil
}
