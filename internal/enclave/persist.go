package enclave

import (
	"bytes"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"libseal/internal/vfs"
)

// Platform persistence. A real SGX machine's fuse key and provisioned
// attestation key live in hardware and survive reboots; the simulation
// equivalent is serialising the platform's secrets to a state file. Loading
// the file is the analogue of launching enclaves on the same physical
// machine, which is what makes sealed data and monotonic counters
// recoverable across process restarts. The state file is as sensitive as
// the hardware it stands in for; it exists so that the CLI tools can
// demonstrate restart recovery.
//
// The v2 format appends a SHA-256 checksum so a torn or corrupted state
// file is detected at load instead of yielding silently wrong counters, and
// saves go through write-temp + fsync + rename so a crash mid-save leaves
// the previous intact state in place. v1 files (no checksum) still load.

// ErrBadPlatformState reports a malformed platform state blob.
var ErrBadPlatformState = errors.New("enclave: malformed platform state")

var (
	platformStateMagic   = []byte("LSEALPLATFORM2\n")
	platformStateMagicV1 = []byte("LSEALPLATFORM1\n")
)

// Marshal serialises the platform's secrets and counter state, with a
// trailing SHA-256 checksum over everything before it.
func (p *Platform) Marshal() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	buf.Write(platformStateMagic)
	buf.Write(p.fuseKey[:])
	keyDER, err := x509.MarshalECPrivateKey(p.quotingKey)
	if err != nil {
		return nil, fmt.Errorf("enclave: marshal quoting key: %w", err)
	}
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(keyDER)))
	buf.Write(l[:])
	buf.Write(keyDER)
	binary.BigEndian.PutUint32(l[:], uint32(len(p.counters)))
	buf.Write(l[:])
	var u64 [8]byte
	for id, ctr := range p.counters {
		binary.BigEndian.PutUint64(u64[:], id)
		buf.Write(u64[:])
		buf.Write(ctr.owner[:])
		binary.BigEndian.PutUint64(u64[:], ctr.value)
		buf.Write(u64[:])
	}
	binary.BigEndian.PutUint64(u64[:], p.nextCounter)
	buf.Write(u64[:])
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// UnmarshalPlatform restores a platform from Marshal output. v2 blobs are
// checksum-verified; v1 blobs (written before the checksum existed) are
// accepted as-is.
func UnmarshalPlatform(data []byte) (*Platform, error) {
	if len(data) < len(platformStateMagic) {
		return nil, ErrBadPlatformState
	}
	body := data[len(platformStateMagic):]
	switch {
	case bytes.HasPrefix(data, platformStateMagic):
		if len(body) < sha256.Size {
			return nil, ErrBadPlatformState
		}
		sum := sha256.Sum256(data[:len(data)-sha256.Size])
		if !bytes.Equal(sum[:], data[len(data)-sha256.Size:]) {
			return nil, fmt.Errorf("%w: checksum mismatch (torn or corrupted state file)", ErrBadPlatformState)
		}
		body = body[:len(body)-sha256.Size]
	case bytes.HasPrefix(data, platformStateMagicV1):
	default:
		return nil, ErrBadPlatformState
	}
	return unmarshalPlatformBody(bytes.NewReader(body))
}

func unmarshalPlatformBody(r *bytes.Reader) (*Platform, error) {
	p := &Platform{counters: make(map[uint64]*hardwareCounter)}
	if _, err := r.Read(p.fuseKey[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	var l [4]byte
	if _, err := r.Read(l[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	keyDER := make([]byte, binary.BigEndian.Uint32(l[:]))
	if _, err := r.Read(keyDER); err != nil {
		return nil, ErrBadPlatformState
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("%w: quoting key: %v", ErrBadPlatformState, err)
	}
	p.quotingKey = key
	if _, err := r.Read(l[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	n := binary.BigEndian.Uint32(l[:])
	var u64 [8]byte
	for i := uint32(0); i < n; i++ {
		if _, err := r.Read(u64[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		id := binary.BigEndian.Uint64(u64[:])
		ctr := &hardwareCounter{}
		if _, err := r.Read(ctr.owner[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		if _, err := r.Read(u64[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		ctr.value = binary.BigEndian.Uint64(u64[:])
		p.counters[id] = ctr
	}
	if _, err := r.Read(u64[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	p.nextCounter = binary.BigEndian.Uint64(u64[:])
	return p, nil
}

// LoadOrCreatePlatform restores the platform from path, or creates a fresh
// one and persists it there.
func LoadOrCreatePlatform(path string) (*Platform, error) {
	return LoadOrCreatePlatformFS(nil, path)
}

// LoadOrCreatePlatformFS is LoadOrCreatePlatform over an explicit
// filesystem (nil for the real one); the seam exists for fault injection.
// A present-but-corrupt state file is an error, not grounds for silently
// minting a fresh platform: that would reset every monotonic counter.
func LoadOrCreatePlatformFS(fsys vfs.FS, path string) (*Platform, error) {
	fsys = vfs.Default(fsys)
	if data, err := fsys.ReadFile(path); err == nil {
		return UnmarshalPlatform(data)
	}
	p := NewPlatform()
	data, err := p.Marshal()
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(fsys, path, data); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveState re-persists the platform (e.g. after counter increments).
func (p *Platform) SaveState(path string) error {
	return p.SaveStateFS(nil, path)
}

// SaveStateFS is SaveState over an explicit filesystem (nil for the real
// one). The write is atomic: temp file, fsync, rename.
func (p *Platform) SaveStateFS(fsys vfs.FS, path string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return writeFileAtomic(vfs.Default(fsys), path, data)
}

// writeFileAtomic commits data to path via write-temp + fsync + rename, so
// a crash at any point leaves either the old file or the new one — never a
// torn mixture.
func writeFileAtomic(fsys vfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	os.Chmod(tmp, 0o600) // best-effort: the state holds platform secrets
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
