package enclave

import (
	"bytes"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// Platform persistence. A real SGX machine's fuse key and provisioned
// attestation key live in hardware and survive reboots; the simulation
// equivalent is serialising the platform's secrets to a state file. Loading
// the file is the analogue of launching enclaves on the same physical
// machine, which is what makes sealed data and monotonic counters
// recoverable across process restarts. The state file is as sensitive as
// the hardware it stands in for; it exists so that the CLI tools can
// demonstrate restart recovery.

// ErrBadPlatformState reports a malformed platform state blob.
var ErrBadPlatformState = errors.New("enclave: malformed platform state")

var platformStateMagic = []byte("LSEALPLATFORM1\n")

// Marshal serialises the platform's secrets and counter state.
func (p *Platform) Marshal() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	buf.Write(platformStateMagic)
	buf.Write(p.fuseKey[:])
	keyDER, err := x509.MarshalECPrivateKey(p.quotingKey)
	if err != nil {
		return nil, fmt.Errorf("enclave: marshal quoting key: %w", err)
	}
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(keyDER)))
	buf.Write(l[:])
	buf.Write(keyDER)
	binary.BigEndian.PutUint32(l[:], uint32(len(p.counters)))
	buf.Write(l[:])
	var u64 [8]byte
	for id, ctr := range p.counters {
		binary.BigEndian.PutUint64(u64[:], id)
		buf.Write(u64[:])
		buf.Write(ctr.owner[:])
		binary.BigEndian.PutUint64(u64[:], ctr.value)
		buf.Write(u64[:])
	}
	binary.BigEndian.PutUint64(u64[:], p.nextCounter)
	buf.Write(u64[:])
	return buf.Bytes(), nil
}

// UnmarshalPlatform restores a platform from Marshal output.
func UnmarshalPlatform(data []byte) (*Platform, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(platformStateMagic))
	if _, err := r.Read(magic); err != nil || !bytes.Equal(magic, platformStateMagic) {
		return nil, ErrBadPlatformState
	}
	p := &Platform{counters: make(map[uint64]*hardwareCounter)}
	if _, err := r.Read(p.fuseKey[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	var l [4]byte
	if _, err := r.Read(l[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	keyDER := make([]byte, binary.BigEndian.Uint32(l[:]))
	if _, err := r.Read(keyDER); err != nil {
		return nil, ErrBadPlatformState
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return nil, fmt.Errorf("%w: quoting key: %v", ErrBadPlatformState, err)
	}
	p.quotingKey = key
	if _, err := r.Read(l[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	n := binary.BigEndian.Uint32(l[:])
	var u64 [8]byte
	for i := uint32(0); i < n; i++ {
		if _, err := r.Read(u64[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		id := binary.BigEndian.Uint64(u64[:])
		ctr := &hardwareCounter{}
		if _, err := r.Read(ctr.owner[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		if _, err := r.Read(u64[:]); err != nil {
			return nil, ErrBadPlatformState
		}
		ctr.value = binary.BigEndian.Uint64(u64[:])
		p.counters[id] = ctr
	}
	if _, err := r.Read(u64[:]); err != nil {
		return nil, ErrBadPlatformState
	}
	p.nextCounter = binary.BigEndian.Uint64(u64[:])
	return p, nil
}

// LoadOrCreatePlatform restores the platform from path, or creates a fresh
// one and persists it there.
func LoadOrCreatePlatform(path string) (*Platform, error) {
	if data, err := os.ReadFile(path); err == nil {
		return UnmarshalPlatform(data)
	}
	p := NewPlatform()
	data, err := p.Marshal()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveState re-persists the platform (e.g. after counter increments).
func (p *Platform) SaveState(path string) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}
