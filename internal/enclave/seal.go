package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"time"

	"libseal/internal/telemetry"
)

// Sealing telemetry: counts and AES-GCM latency for the audit log's
// persistence path (§6.3).
var (
	mSeals         = telemetry.NewCounter("enclave.seals", "calls")
	mUnseals       = telemetry.NewCounter("enclave.unseals", "calls")
	mSealLatency   = telemetry.NewHistogram("enclave.seal.latency", "ns")
	mUnsealLatency = telemetry.NewHistogram("enclave.unseal.latency", "ns")
)

// SealPolicy selects the identity the sealing key is bound to.
type SealPolicy int

const (
	// PolicyMeasurement (MRENCLAVE) binds sealed data to the exact enclave
	// code; only the identical enclave on the same platform can unseal.
	PolicyMeasurement SealPolicy = iota
	// PolicySigner (MRSIGNER) binds sealed data to the signing authority;
	// any enclave from the same authority on the same platform can unseal.
	// LibSEAL uses this so the audit log survives enclave upgrades and can
	// be shared across instances signed by the provider (§6.3).
	PolicySigner
)

// sealKey derives the 128-bit sealing key for the given policy from the
// platform fuse key and the enclave identity, mirroring EGETKEY.
func (e *Enclave) sealKey(policy SealPolicy) []byte {
	mac := hmac.New(sha256.New, e.platform.fuseKey[:])
	switch policy {
	case PolicySigner:
		mac.Write([]byte("seal/signer"))
		mac.Write(e.signer[:])
	default:
		mac.Write([]byte("seal/measurement"))
		mac.Write(e.meas[:])
	}
	return mac.Sum(nil)[:16]
}

// Seal encrypts and integrity-protects plaintext so that it can be stored on
// untrusted persistent storage. aad is authenticated but not encrypted.
func (c *Ctx) Seal(policy SealPolicy, plaintext, aad []byte) ([]byte, error) {
	c.check()
	e := c.e
	e.stats.Seals.Add(1)
	mSeals.Inc()
	defer telemetry.ObserveSince(mSealLatency, "enclave.seal", time.Now())
	block, err := aes.NewCipher(e.sealKey(policy))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	out := make([]byte, 1, 1+len(nonce)+len(plaintext)+gcm.Overhead())
	out[0] = byte(policy)
	out = append(out, nonce...)
	return gcm.Seal(out, nonce, plaintext, aad), nil
}

// Unseal decrypts a blob produced by Seal. It fails with ErrSealCorrupted if
// the blob was tampered with, the aad differs, or the unsealing enclave does
// not satisfy the seal policy.
func (c *Ctx) Unseal(blob, aad []byte) ([]byte, error) {
	c.check()
	e := c.e
	e.stats.Unseals.Add(1)
	mUnseals.Inc()
	defer telemetry.ObserveSince(mUnsealLatency, "enclave.unseal", time.Now())
	if len(blob) < 1 {
		return nil, ErrSealCorrupted
	}
	policy := SealPolicy(blob[0])
	if policy != PolicyMeasurement && policy != PolicySigner {
		return nil, ErrSealCorrupted
	}
	block, err := aes.NewCipher(e.sealKey(policy))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	rest := blob[1:]
	if len(rest) < gcm.NonceSize() {
		return nil, ErrSealCorrupted
	}
	nonce, ct := rest[:gcm.NonceSize()], rest[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, aad)
	if err != nil {
		return nil, ErrSealCorrupted
	}
	return pt, nil
}
