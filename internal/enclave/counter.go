package enclave

import (
	"crypto/rand"
	"encoding/binary"
	"time"
)

// hardwareCounter is one SGX platform monotonic counter. It survives enclave
// restarts (it lives on the Platform) and is deliberately slow to increment,
// reproducing why LibSEAL replaces it with the ROTE protocol (§5.1).
type hardwareCounter struct {
	owner Measurement
	value uint64
}

// CreateCounter provisions a new platform monotonic counter owned by the
// calling enclave's measurement and returns its id.
func (c *Ctx) CreateCounter() (uint64, error) {
	c.check()
	e := c.e
	p := e.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextCounter++
	id := p.nextCounter
	p.counters[id] = &hardwareCounter{owner: e.meas}
	return id, nil
}

// IncrementCounter bumps the counter and returns the new value. It pays the
// hardware counter latency from the cost model; real SGX counters take on
// the order of 100 ms and have limited write endurance.
func (c *Ctx) IncrementCounter(id uint64) (uint64, error) {
	c.check()
	e := c.e
	if d := e.cost.HardwareCounterLatency; d > 0 {
		time.Sleep(d) // NVRAM write: the CPU is not busy, so sleep not burn.
	}
	p := e.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	ctr, ok := p.counters[id]
	if !ok || ctr.owner != e.meas {
		return 0, ErrUnknownCounter
	}
	ctr.value++
	return ctr.value, nil
}

// ReadCounter returns the counter's current value.
func (c *Ctx) ReadCounter(id uint64) (uint64, error) {
	c.check()
	e := c.e
	p := e.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	ctr, ok := p.counters[id]
	if !ok || ctr.owner != e.meas {
		return 0, ErrUnknownCounter
	}
	return ctr.value, nil
}

// Random fills buf with cryptographically secure random bytes generated
// inside the enclave (RDRAND), avoiding an ocall to the host RNG — one of
// the transition-reduction optimisations of §4.2.
func (c *Ctx) Random(buf []byte) error {
	c.check()
	_, err := rand.Read(buf)
	return err
}

// RandomUint64 returns an in-enclave random 64-bit value.
func (c *Ctx) RandomUint64() (uint64, error) {
	var b [8]byte
	if err := c.Random(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
