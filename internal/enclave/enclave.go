// Package enclave provides a software-simulated Intel SGX trusted execution
// environment. It reproduces the properties LibSEAL relies on — isolated
// enclave state reachable only through a registered ecall interface, costed
// enclave transitions, EPC paging penalties, sealing, attestation and
// monotonic counters — charging real CPU time according to a calibrated cost
// model so that benchmarks measure genuine behaviour.
package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"libseal/internal/telemetry"
)

// Process-wide telemetry for the enclave interface: transition counts feed
// the §6.8 contention analysis, paging feeds the §2.5 EPC-pressure story.
var (
	mTransitions = telemetry.NewCounter("enclave.transitions", "crossings")
	mEcalls      = telemetry.NewCounter("enclave.ecalls", "calls")
	mOcalls      = telemetry.NewCounter("enclave.ocalls", "calls")
	mAsyncEcalls = telemetry.NewCounter("enclave.async_ecalls", "calls")
	mAsyncOcalls = telemetry.NewCounter("enclave.async_ocalls", "calls")
	mPagedBytes  = telemetry.NewCounter("enclave.paged_bytes", "bytes")
)

// Measurement identifies the code and configuration loaded into an enclave
// (SGX MRENCLAVE).
type Measurement [32]byte

// SignerID identifies the authority that signed an enclave (SGX MRSIGNER).
type SignerID [32]byte

// Errors returned by enclave operations.
var (
	ErrNoThreads       = errors.New("enclave: all TCS slots busy")
	ErrNotInside       = errors.New("enclave: operation requires enclave context")
	ErrAlreadyInside   = errors.New("enclave: nested ecall not permitted")
	ErrDestroyed       = errors.New("enclave: enclave destroyed")
	ErrUnknownCounter  = errors.New("enclave: unknown monotonic counter")
	ErrSealCorrupted   = errors.New("enclave: sealed blob corrupted or wrong key")
	ErrQuoteInvalid    = errors.New("enclave: quote signature invalid")
	ErrInterfaceCheck  = errors.New("enclave: interface check failed")
	ErrExceedsMemLimit = errors.New("enclave: allocation exceeds enclave memory limit")
)

// Platform models one SGX-capable machine: the CPU fuse key from which
// sealing keys derive, the quoting infrastructure, and hardware monotonic
// counters that survive enclave restarts.
type Platform struct {
	mu      sync.Mutex
	fuseKey [32]byte
	// quotingKey is the per-platform attestation key, certified by the
	// (simulated) Intel attestation service.
	quotingKey *ecdsa.PrivateKey

	counters    map[uint64]*hardwareCounter
	nextCounter uint64
}

// NewPlatform creates a fresh simulated SGX machine with its own fuse key and
// provisioned attestation key.
func NewPlatform() *Platform {
	p := &Platform{counters: make(map[uint64]*hardwareCounter)}
	if _, err := rand.Read(p.fuseKey[:]); err != nil {
		panic("enclave: platform entropy unavailable: " + err.Error())
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		panic("enclave: quoting key generation failed: " + err.Error())
	}
	p.quotingKey = key
	return p
}

// Config describes an enclave to launch.
type Config struct {
	// Code is the enclave's identity input; its SHA-256 becomes the
	// measurement.
	Code []byte
	// Signer identifies the signing authority (MRSIGNER). Sealing with
	// PolicySigner binds to it.
	Signer SignerID
	// MaxThreads is the number of TCS slots, i.e. the maximum number of
	// threads that may be inside the enclave simultaneously. SGX enclaves
	// cannot grow this dynamically (§4.3 footnote).
	MaxThreads int
	// MemLimit caps total enclave heap. Zero means unlimited (paging costs
	// still apply past the EPC size).
	MemLimit int64
	// Cost is the performance model. The zero value charges nothing.
	Cost CostModel
}

// Enclave is a launched enclave instance.
type Enclave struct {
	platform *Platform
	meas     Measurement
	signer   SignerID
	cost     CostModel
	memLimit int64

	tcs chan struct{} // TCS slot tokens

	destroyed atomic.Bool

	// callers counts threads currently executing an enclave call (including
	// resident scheduler threads), feeding the contention term of the cost
	// model: on SGX, transition cost grows with the number of threads using
	// the enclave (§6.8: 8,500 cycles alone vs 170,000 with 48 threads).
	callers    atomic.Int64
	maxCallers atomic.Int64

	heapBytes atomic.Int64

	stats Stats

	// reportKey authenticates local reports and signs audit-log entries; it
	// is generated inside the enclave at launch and never leaves it.
	reportKey *ecdsa.PrivateKey
}

// Stats counts enclave interface activity. All fields are updated atomically
// and may be read concurrently via snapshot.
type Stats struct {
	Ecalls      atomic.Int64
	Ocalls      atomic.Int64
	AsyncEcalls atomic.Int64
	AsyncOcalls atomic.Int64
	PagedBytes  atomic.Int64
	Seals       atomic.Int64
	Unseals     atomic.Int64
}

// StatsSnapshot is a plain copy of the counters at one instant.
type StatsSnapshot struct {
	Ecalls      int64
	Ocalls      int64
	AsyncEcalls int64
	AsyncOcalls int64
	PagedBytes  int64
	Seals       int64
	Unseals     int64
}

// Launch creates and initialises an enclave on the platform, measuring the
// supplied code identity.
func (p *Platform) Launch(cfg Config) (*Enclave, error) {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 4
	}
	// The signing (report) key derives deterministically from the platform
	// fuse key and the enclave measurement, like an EGETKEY-derived key:
	// relaunching the same enclave code on the same platform recovers the
	// same key, which is what lets audit-log signatures verify across
	// restarts (§5.1: the pair is "created during enclave provisioning").
	meas := sha256.Sum256(cfg.Code)
	key, err := deriveSigningKey(p.fuseKey, meas)
	if err != nil {
		return nil, fmt.Errorf("enclave: report key derivation: %w", err)
	}
	e := &Enclave{
		platform:  p,
		meas:      meas,
		signer:    cfg.Signer,
		cost:      cfg.Cost,
		memLimit:  cfg.MemLimit,
		tcs:       make(chan struct{}, cfg.MaxThreads),
		reportKey: key,
	}
	for i := 0; i < cfg.MaxThreads; i++ {
		e.tcs <- struct{}{}
	}
	return e, nil
}

// Measurement returns the enclave's MRENCLAVE value.
func (e *Enclave) Measurement() Measurement { return e.meas }

// Signer returns the enclave's MRSIGNER value.
func (e *Enclave) Signer() SignerID { return e.signer }

// Cost returns the active cost model.
func (e *Enclave) Cost() CostModel { return e.cost }

// Destroy tears the enclave down; subsequent ecalls fail.
func (e *Enclave) Destroy() { e.destroyed.Store(true) }

// Ctx is the capability to act inside the enclave. It is handed to ecall
// bodies and must not be retained past the call (mirroring the rule that
// enclave execution ends when the ecall returns).
type Ctx struct {
	e     *Enclave
	valid bool
}

// Enclave returns the enclave this context executes in.
func (c *Ctx) Enclave() *Enclave {
	c.check()
	return c.e
}

func (c *Ctx) check() {
	if c == nil || !c.valid {
		panic(ErrNotInside)
	}
}

// chargeTransition pays for one boundary crossing at current contention.
func (e *Enclave) chargeTransition() {
	mTransitions.Inc()
	n := e.callers.Load()
	for {
		m := e.maxCallers.Load()
		if n <= m || e.maxCallers.CompareAndSwap(m, n) {
			break
		}
	}
	burn(e.cost.TransitionCost(int(n)))
}

// MaxCallers reports the highest concurrent-caller count observed, a
// diagnostic for the contention model.
func (e *Enclave) MaxCallers() int64 { return e.maxCallers.Load() }

// Ecall enters the enclave and runs fn inside it. It blocks while all TCS
// slots are busy, pays the transition cost in both directions, and returns
// fn's error. This is the synchronous path; the asyncall package layers the
// paper's asynchronous mechanism on top of TryEcall/ecallLocked.
func (e *Enclave) Ecall(fn func(*Ctx) error) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	e.callers.Add(1)
	defer e.callers.Add(-1)
	<-e.tcs
	defer func() { e.tcs <- struct{}{} }()
	return e.ecallLocked(fn)
}

// TryEcall is like Ecall but fails immediately with ErrNoThreads when no TCS
// slot is free.
func (e *Enclave) TryEcall(fn func(*Ctx) error) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	select {
	case <-e.tcs:
	default:
		return ErrNoThreads
	}
	e.callers.Add(1)
	defer e.callers.Add(-1)
	defer func() { e.tcs <- struct{}{} }()
	return e.ecallLocked(fn)
}

// ecallLocked runs fn holding a TCS slot, charging both crossings.
func (e *Enclave) ecallLocked(fn func(*Ctx) error) error {
	e.stats.Ecalls.Add(1)
	mEcalls.Inc()
	e.chargeTransition()
	ctx := Ctx{e: e, valid: true}
	err := fn(&ctx)
	ctx.valid = false
	e.chargeTransition()
	return err
}

// EnterResident permanently binds the calling goroutine to a TCS slot and
// runs fn inside the enclave until it returns. It pays the transition cost
// only once on entry and once on exit: this is the "threads permanently
// associated with the enclave" mode of §3 (R4) used by the async-call
// scheduler threads. fn may run for the lifetime of the enclave.
func (e *Enclave) EnterResident(fn func(*Ctx)) error {
	if e.destroyed.Load() {
		return ErrDestroyed
	}
	<-e.tcs
	defer func() { e.tcs <- struct{}{} }()
	e.callers.Add(1)
	defer e.callers.Add(-1)
	e.stats.Ecalls.Add(1)
	mEcalls.Inc()
	e.chargeTransition()
	ctx := Ctx{e: e, valid: true}
	fn(&ctx)
	ctx.valid = false
	e.chargeTransition()
	return nil
}

// Ocall leaves the enclave to run fn in untrusted code and re-enters when fn
// returns, paying both crossings. The enclave context is unusable while
// outside.
func (c *Ctx) Ocall(fn func() error) error {
	c.check()
	e := c.e
	e.stats.Ocalls.Add(1)
	mOcalls.Inc()
	c.valid = false
	e.chargeTransition()
	err := fn()
	e.chargeTransition()
	c.valid = true
	return err
}

// NoteAsyncEcall records one ecall served through the asynchronous slot
// mechanism and charges the slot handoff cost (paid by the caller outside).
func (e *Enclave) NoteAsyncEcall() {
	e.stats.AsyncEcalls.Add(1)
	mAsyncEcalls.Inc()
	burn(e.cost.AsyncCallCost())
}

// NoteAsyncOcall records one ocall served through the asynchronous slot
// mechanism (the lthread task parks and an application thread runs the
// function outside; no hardware transition happens) and charges the slot
// handoff cost.
func (e *Enclave) NoteAsyncOcall() {
	e.stats.AsyncOcalls.Add(1)
	mAsyncOcalls.Inc()
	burn(e.cost.AsyncCallCost())
}

// Alloc accounts for size bytes of enclave heap. Once the enclave working
// set exceeds the EPC, the paging penalty for the overflow is charged.
func (c *Ctx) Alloc(size int64) error {
	c.check()
	e := c.e
	total := e.heapBytes.Add(size)
	if e.memLimit > 0 && total > e.memLimit {
		e.heapBytes.Add(-size)
		return ErrExceedsMemLimit
	}
	if over := total - e.cost.EPCBytes; over > 0 && e.cost.EPCBytes > 0 {
		paged := min64(size, over)
		e.stats.PagedBytes.Add(paged)
		mPagedBytes.Add(paged)
		burn(e.cost.PagingCost(paged))
	}
	return nil
}

// Free releases previously allocated enclave heap.
func (c *Ctx) Free(size int64) {
	c.check()
	c.e.heapBytes.Add(-size)
}

// HeapBytes reports the current enclave heap usage.
func (e *Enclave) HeapBytes() int64 { return e.heapBytes.Load() }

// ChargeData pays the in-enclave processing surcharge for touching n bytes
// of protected memory (memory-encryption-engine cache penalty).
func (c *Ctx) ChargeData(n int) {
	c.check()
	burn(c.e.cost.DataCost(n))
}

// Stats returns a snapshot of interface counters.
func (e *Enclave) Stats() StatsSnapshot {
	return StatsSnapshot{
		Ecalls:      e.stats.Ecalls.Load(),
		Ocalls:      e.stats.Ocalls.Load(),
		AsyncEcalls: e.stats.AsyncEcalls.Load(),
		AsyncOcalls: e.stats.AsyncOcalls.Load(),
		PagedBytes:  e.stats.PagedBytes.Load(),
		Seals:       e.stats.Seals.Load(),
		Unseals:     e.stats.Unseals.Load(),
	}
}

// ResetStats zeroes the interface counters (used between benchmark phases).
func (e *Enclave) ResetStats() {
	e.stats.Ecalls.Store(0)
	e.stats.Ocalls.Store(0)
	e.stats.AsyncEcalls.Store(0)
	e.stats.AsyncOcalls.Store(0)
	e.stats.PagedBytes.Store(0)
	e.stats.Seals.Store(0)
	e.stats.Unseals.Store(0)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// kdfReader expands a seed into a deterministic byte stream (counter-mode
// SHA-256), used to derive per-enclave keys from platform secrets.
type kdfReader struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func (r *kdfReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			h := sha256.New()
			h.Write(r.seed[:])
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], r.counter)
			h.Write(c[:])
			r.counter++
			r.buf = h.Sum(nil)
		}
		k := copy(p[n:], r.buf)
		r.buf = r.buf[k:]
		n += k
	}
	return n, nil
}

// deriveSigningKey deterministically derives the enclave's ECDSA signing key
// from the platform fuse key and the enclave measurement. The private scalar
// is sampled from the key-derivation stream directly (ecdsa.GenerateKey
// deliberately randomises its input consumption, which would defeat
// determinism).
func deriveSigningKey(fuseKey [32]byte, meas Measurement) (*ecdsa.PrivateKey, error) {
	mac := hmac.New(sha256.New, fuseKey[:])
	mac.Write([]byte("report-key"))
	mac.Write(meas[:])
	var seed [32]byte
	copy(seed[:], mac.Sum(nil))
	curve := elliptic.P256()
	order := curve.Params().N
	r := &kdfReader{seed: seed}
	buf := make([]byte, 32)
	for {
		if _, err := r.Read(buf); err != nil {
			return nil, err
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() <= 0 || d.Cmp(order) >= 0 {
			continue // rejection-sample into [1, N)
		}
		priv := &ecdsa.PrivateKey{D: d}
		priv.PublicKey.Curve = curve
		priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
		return priv, nil
	}
}
