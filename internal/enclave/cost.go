package enclave

import (
	"time"
)

// CostModel describes the performance characteristics of the simulated SGX
// platform. The defaults are calibrated against the figures published in the
// LibSEAL paper (§2.5, §4.2, §6.8): an enclave transition costs 8,400 CPU
// cycles with a single thread and degrades roughly linearly to 170,000 cycles
// with 48 concurrent threads; enclave memory beyond the EPC limit pays a
// paging penalty; and in-enclave code pays an extra factor on cache misses,
// which we approximate as a per-byte processing surcharge.
//
// All costs are charged as real CPU time (calibrated busy-spinning) so that
// benchmarks measure genuine wall-clock behaviour instead of replaying
// hard-coded numbers.
type CostModel struct {
	// ClockGHz is the reference CPU frequency used to convert cycles to
	// wall-clock time. The paper's testbed is a Xeon E3-1280 v5 at 3.70 GHz.
	ClockGHz float64

	// TransitionCycles is the base cost of one enclave crossing
	// (ecall enter, ecall exit, ocall exit or ocall re-enter) when a single
	// thread uses the enclave.
	TransitionCycles int64

	// TransitionContention is the additional fraction of TransitionCycles
	// charged per extra concurrently-transitioning thread. The paper reports
	// a 20x degradation from 1 to 48 threads, i.e. roughly 0.40 per thread.
	TransitionContention float64

	// EPCBytes is the usable enclave page cache size. Memory allocated
	// beyond it pays EPCPagingCycles per 4 KiB page.
	EPCBytes int64

	// EPCPagingCycles is the cost of evicting/loading one EPC page once the
	// enclave working set exceeds EPCBytes.
	EPCPagingCycles int64

	// InEnclaveCyclesPerByte approximates the memory-encryption-engine
	// overhead for touching data inside the enclave (cache-miss
	// encrypt/decrypt penalty). Charged by ChargeData.
	InEnclaveCyclesPerByte float64

	// AsyncCallCycles is the cost of handing a call over via the shared
	// async-call slot array instead of a hardware transition: one cache-line
	// round trip plus scheduler wakeup, far below TransitionCycles.
	AsyncCallCycles int64

	// HardwareCounterLatency is the latency of one SGX hardware monotonic
	// counter increment. Real platform counters take on the order of
	// 80-250 ms, which is why LibSEAL replaces them with ROTE.
	HardwareCounterLatency time.Duration
}

// DefaultCostModel returns the cost model calibrated against the paper's
// testbed (SGX v1, Xeon E3-1280 v5 @ 3.70 GHz, 128 MB EPC), scaled down by
// the given factor so that full benchmark sweeps finish in reasonable time
// while preserving every relative shape. scale=1 reproduces absolute costs.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockGHz:               3.70,
		TransitionCycles:       8400,
		TransitionContention:   0.40,
		EPCBytes:               128 << 20,
		EPCPagingCycles:        40000,
		InEnclaveCyclesPerByte: 0.30,
		AsyncCallCycles:        600,
		HardwareCounterLatency: 80 * time.Millisecond,
	}
}

// ZeroCostModel returns a model in which every operation is free. Unit tests
// use it so that functional behaviour can be exercised at full speed.
func ZeroCostModel() CostModel {
	return CostModel{ClockGHz: 3.70, EPCBytes: 128 << 20}
}

// cyclesToDuration converts a cycle count into wall-clock time under the
// model's reference clock.
func (m CostModel) cyclesToDuration(cycles float64) time.Duration {
	if cycles <= 0 || m.ClockGHz <= 0 {
		return 0
	}
	return time.Duration(cycles / m.ClockGHz)
}

// TransitionCost returns the wall-clock cost of a single enclave crossing
// when `threads` threads are concurrently performing transitions.
func (m CostModel) TransitionCost(threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	cycles := float64(m.TransitionCycles) * (1 + m.TransitionContention*float64(threads-1))
	return m.cyclesToDuration(cycles)
}

// AsyncCallCost returns the wall-clock cost of one asynchronous call handoff.
func (m CostModel) AsyncCallCost() time.Duration {
	return m.cyclesToDuration(float64(m.AsyncCallCycles))
}

// PagingCost returns the cost of paging `bytes` of enclave memory that fall
// beyond the EPC limit.
func (m CostModel) PagingCost(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	pages := (bytes + 4095) / 4096
	return m.cyclesToDuration(float64(pages * m.EPCPagingCycles))
}

// DataCost returns the in-enclave processing surcharge for touching `bytes`
// bytes of protected memory.
func (m CostModel) DataCost(bytes int) time.Duration {
	return m.cyclesToDuration(float64(bytes) * m.InEnclaveCyclesPerByte)
}

// burn consumes approximately d of real CPU time. It busy-spins rather than
// sleeping because enclave transitions occupy the CPU on real hardware; this
// keeps multi-core scalability experiments honest.
func burn(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		// Busy spin. time.Since costs ~20-30ns per call, fine at the
		// microsecond granularity of transition costs.
	}
}
