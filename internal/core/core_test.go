package core

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/enclave"
	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/pki"
	"libseal/internal/sqldb"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/tlsterm"
	"libseal/internal/vfs"
)

// slowRenameFS stretches the trim rewrite's rename (performed while core
// holds logMu) past Go's 1ms mutex starvation threshold, forcing handoff
// ordering on logMu so concurrent stagers and trimmers interleave in FIFO
// order rather than the barging fast path.
type slowRenameFS struct{ vfs.OS }

func (s slowRenameFS) Rename(oldpath, newpath string) error {
	time.Sleep(2 * time.Millisecond)
	return s.OS.Rename(oldpath, newpath)
}

type coreEnv struct {
	ca     *pki.CA
	pool   *pki.Pool
	cert   *pki.Certificate
	key    *ecdsa.PrivateKey
	encl   *enclave.Enclave
	bridge *asyncall.Bridge
}

func newCoreEnv(t *testing.T) *coreEnv {
	t.Helper()
	ca, _ := pki.NewCA("ca")
	key, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	cert, _ := ca.Issue("svc", &key.PublicKey, nil)
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{Code: []byte("libseal-core"), MaxThreads: 8, Cost: enclave.ZeroCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	return &coreEnv{ca: ca, pool: pki.NewPool(ca), cert: cert, key: key, encl: encl, bridge: bridge}
}

// gitBackend is a trivial in-test Git service: branches per repo, with
// switchable misbehaviour.
type gitBackend struct {
	refs       map[string]map[string]string // repo -> branch -> cid
	rollback   map[string]string            // branch -> stale cid to advertise
	hideRef    map[string]bool              // branch -> omit from advertisements
	teleportTo map[string]string            // branch -> foreign cid
}

func newGitBackend() *gitBackend {
	return &gitBackend{
		refs:       map[string]map[string]string{},
		rollback:   map[string]string{},
		hideRef:    map[string]bool{},
		teleportTo: map[string]string{},
	}
}

func (g *gitBackend) handle(req *httpparse.Request) *httpparse.Response {
	parts := strings.Split(strings.TrimPrefix(req.PathOnly(), "/"), "/")
	if len(parts) < 3 || parts[0] != "git" {
		return httpparse.NewResponse(404, nil)
	}
	repo := parts[1]
	switch {
	case req.Method == "POST" && parts[2] == "git-receive-pack":
		if g.refs[repo] == nil {
			g.refs[repo] = map[string]string{}
		}
		for _, line := range strings.Split(string(req.Body), "\n") {
			f := strings.Fields(line)
			if len(f) != 3 {
				continue
			}
			switch f[0] {
			case "create", "update":
				g.refs[repo][f[1]] = f[2]
			case "delete":
				delete(g.refs[repo], f[1])
			}
		}
		return httpparse.NewResponse(200, []byte("ok"))
	case req.Method == "GET" && parts[2] == "info":
		var body strings.Builder
		for branch, cid := range g.refs[repo] {
			if g.hideRef[branch] {
				continue
			}
			if stale, ok := g.rollback[branch]; ok {
				cid = stale
			}
			if foreign, ok := g.teleportTo[branch]; ok {
				cid = foreign
			}
			fmt.Fprintf(&body, "ref %s %s\n", branch, cid)
		}
		return httpparse.NewResponse(200, []byte(body.String()))
	}
	return httpparse.NewResponse(404, nil)
}

// serveConn runs an HTTP-over-LibSEAL loop for one connection.
func serveConn(t *testing.T, ls *LibSEAL, conn net.Conn, backend *gitBackend) {
	t.Helper()
	go func() {
		ssl := ls.TLS().NewSSL(conn)
		if err := ssl.Accept(); err != nil {
			return
		}
		defer ssl.Close()
		br := bufio.NewReader(ssl)
		for {
			req, err := httpparse.ReadRequest(br)
			if err != nil {
				return
			}
			rsp := backend.handle(req)
			if _, err := ssl.Write(rsp.Bytes()); err != nil {
				return
			}
		}
	}()
}

// gitClient issues requests over one secured connection.
type gitClient struct {
	conn *tlsterm.Conn
	br   *bufio.Reader
}

func dialGit(t *testing.T, env *coreEnv, ls *LibSEAL, backend *gitBackend) *gitClient {
	t.Helper()
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	serveConn(t, ls, sConn, backend)
	conn, err := tlsterm.Connect(cConn, &tlsterm.ClientConfig{Roots: env.pool, ServerName: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &gitClient{conn: conn, br: bufio.NewReader(conn)}
}

func (c *gitClient) do(t *testing.T, req *httpparse.Request) *httpparse.Response {
	t.Helper()
	if _, err := c.conn.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	rsp, err := httpparse.ReadResponse(c.br)
	if err != nil {
		t.Fatal(err)
	}
	return rsp
}

func (c *gitClient) push(t *testing.T, repo string, lines ...string) {
	rsp := c.do(t, httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack", []byte(strings.Join(lines, "\n"))))
	if rsp.Status != 200 {
		t.Fatalf("push status %d", rsp.Status)
	}
}

func (c *gitClient) fetch(t *testing.T, repo string, check bool) *httpparse.Response {
	req := httpparse.NewRequest("GET", "/git/"+repo+"/info/refs?service=git-upload-pack", nil)
	if check {
		req.Header.Set(CheckHeader, "1")
	}
	return c.do(t, req)
}

func newGitLibSEAL(t *testing.T, env *coreEnv, cfg Config) *LibSEAL {
	t.Helper()
	cfg.TLS.Cert = env.cert
	cfg.TLS.Key = env.key
	cfg.TLS.Opts = tlsterm.AllOptimizations()
	ls, err := New(env.bridge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	return ls
}

func TestEndToEndCleanWorkload(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	rsp := c.fetch(t, "repo", false)
	if !strings.Contains(string(rsp.Body), "main c2") {
		t.Fatalf("fetch body = %q", rsp.Body)
	}

	if result, err := ls.CheckNow(); err != nil || result != "ok" {
		t.Fatalf("CheckNow = %q, %v", result, err)
	}
	st := ls.StatsSnapshot()
	if st.Pairs != 3 || st.Tuples != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// The audit log contains what flowed over the wire.
	res, err := ls.Log().Query("SELECT COUNT(*) FROM updates")
	if err != nil || res.Rows[0][0].Int64() != 2 {
		t.Fatalf("updates count: %v %v", res, err)
	}
}

func TestEndToEndDetectsRollback(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1" // service misbehaves
	c.fetch(t, "repo", false)

	result, err := ls.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(result, "git-soundness") {
		t.Fatalf("result = %q, want soundness violation", result)
	}
	v := ls.Violations()
	if len(v) == 0 || v[0].Invariant != "git-soundness" {
		t.Fatalf("violations = %+v", v)
	}
}

func TestEndToEndDetectsReferenceDeletion(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "create dev d1")
	backend.hideRef["dev"] = true
	c.fetch(t, "repo", false)

	result, _ := ls.CheckNow()
	if !strings.Contains(result, "git-completeness") {
		t.Fatalf("result = %q, want completeness violation", result)
	}
}

func TestCheckHeaderInBandResult(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	rsp := c.fetch(t, "repo", true)
	if got := rsp.Header.Get(CheckResultHeader); got != "ok" {
		t.Fatalf("%s = %q, want ok", CheckResultHeader, got)
	}

	// After an attack, the header reports the violation in-band.
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1"
	c.fetch(t, "repo", false) // poisoned advertisement gets logged
	rsp = c.fetch(t, "repo", true)
	if got := rsp.Header.Get(CheckResultHeader); !strings.Contains(got, "git-soundness") {
		t.Fatalf("%s = %q, want violation", CheckResultHeader, got)
	}
}

func TestCheckRateLimiting(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:           gitssm.New(),
		AuditMode:        audit.ModeMemory,
		CheckMinInterval: time.Hour,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	c.push(t, "repo", "create main c1")
	rsp := c.fetch(t, "repo", true)
	if got := rsp.Header.Get(CheckResultHeader); got != "ok" {
		t.Fatalf("first check = %q", got)
	}
	rsp = c.fetch(t, "repo", true)
	if got := rsp.Header.Get(CheckResultHeader); got != "rate-limited" {
		t.Fatalf("second check = %q, want rate-limited", got)
	}
}

func TestPeriodicCheckAndTrim(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:     gitssm.New(),
		AuditMode:  audit.ModeMemory,
		CheckEvery: 5,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	for i := 0; i < 12; i++ {
		c.push(t, "repo", fmt.Sprintf("update main c%d", i))
	}
	st := ls.StatsSnapshot()
	if st.Trims < 2 {
		t.Fatalf("trims = %d, want >= 2", st.Trims)
	}
	// Trimming kept only the latest update.
	n, _ := ls.Log().DB().TableRowCount("updates")
	if n > 3 {
		t.Fatalf("updates after periodic trim = %d", n)
	}
	if result, _ := ls.CheckNow(); result != "ok" {
		t.Fatalf("result = %q", result)
	}
}

func TestPersistentModeSurvivesRestart(t *testing.T) {
	env := newCoreEnv(t)
	dir := t.TempDir()
	ls := newGitLibSEAL(t, env, Config{
		Module:    gitssm.New(),
		AuditMode: audit.ModeDisk,
		AuditDir:  dir,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	c.push(t, "repo", "create main c1")
	ls.Close()

	// Verify the persisted log out-of-band with the enclave's public key.
	entries, err := audit.VerifyFile(dir+"/git.lseal", audit.VerifyOptions{Pub: env.encl.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Table != "updates" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestLoggingDisabledMode(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{}) // no module: LibSEAL-process mode
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	c.push(t, "repo", "create main c1")
	if _, err := ls.CheckNow(); !errors.Is(err, ErrLoggingDisabled) {
		t.Fatalf("CheckNow = %v, want ErrLoggingDisabled", err)
	}
	if ls.Log() != nil {
		t.Fatal("log created despite nil module")
	}
}

func TestPipelinedRequestsPairedInOrder(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	// Send two requests back-to-back before reading any response.
	req1 := httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1"))
	req2 := httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("update main c2"))
	buf := append(req1.Bytes(), req2.Bytes()...)
	if _, err := c.conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := httpparse.ReadResponse(c.br); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ls.Log().Query("SELECT cid FROM updates ORDER BY time")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("rows = %v, %v", res, err)
	}
	if res.Rows[0][0].TextVal() != "c1" || res.Rows[1][0].TextVal() != "c2" {
		t.Fatalf("pairing out of order: %v", res.Rows)
	}
}

func TestOnViolationCallback(t *testing.T) {
	env := newCoreEnv(t)
	var fired []string
	ls := newGitLibSEAL(t, env, Config{
		Module:    gitssm.New(),
		AuditMode: audit.ModeMemory,
		OnViolation: func(name string, _ *sqldb.Result) {
			fired = append(fired, name)
		},
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1"
	c.fetch(t, "repo", false)
	ls.CheckNow()
	if len(fired) != 1 || fired[0] != "git-soundness" {
		t.Fatalf("callback fired = %v", fired)
	}
}

func TestMultipleConnectionsShareLog(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c1 := dialGit(t, env, ls, backend)
	c2 := dialGit(t, env, ls, backend)
	c1.push(t, "repo", "create main c1")
	c2.push(t, "repo", "create dev d1")
	res, err := ls.Log().Query("SELECT COUNT(*) FROM updates")
	if err != nil || res.Rows[0][0].Int64() != 2 {
		t.Fatalf("shared log count: %v %v", res, err)
	}
}

func TestNonHTTPTrafficDoesNotBreakConnection(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	// Raw echo service speaking a non-HTTP protocol through LibSEAL.
	go func() {
		ssl := ls.TLS().NewSSL(sConn)
		if err := ssl.Accept(); err != nil {
			return
		}
		defer ssl.Close()
		buf := make([]byte, 1024)
		for {
			n, err := ssl.Read(buf)
			if err != nil {
				return
			}
			if _, err := ssl.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	conn, err := tlsterm.Connect(cConn, &tlsterm.ClientConfig{Roots: env.pool, ServerName: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("BINARY\x00PROTOCOL")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := io.ReadFull(conn, buf[:15]); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverExistingAcrossRestart(t *testing.T) {
	env := newCoreEnv(t)
	dir := t.TempDir()
	backend := newGitBackend()

	// First life: log a push, then "crash" (close everything).
	ls1 := newGitLibSEAL(t, env, Config{
		Module: gitssm.New(), AuditMode: audit.ModeDisk, AuditDir: dir,
	})
	c1 := dialGit(t, env, ls1, backend)
	c1.push(t, "repo", "create main c1")
	c1.push(t, "repo", "update main c2")
	ls1.Close()

	// Second life: same enclave (same platform + keys) recovers the log.
	ls2 := newGitLibSEAL(t, env, Config{
		Module: gitssm.New(), AuditMode: audit.ModeDisk, AuditDir: dir,
		RecoverExisting: true,
	})
	res, err := ls2.Log().Query("SELECT COUNT(*) FROM updates")
	if err != nil || res.Rows[0][0].Int64() != 2 {
		t.Fatalf("recovered updates = %v, %v", res, err)
	}
	// The recovered instance keeps detecting violations with history that
	// predates the restart.
	backend.rollback["main"] = "c1"
	c2 := dialGit(t, env, ls2, backend)
	c2.fetch(t, "repo", false)
	result, err := ls2.CheckNow()
	if err != nil || !strings.Contains(result, "git-soundness") {
		t.Fatalf("post-recovery detection: %q %v", result, err)
	}
}

func TestLastCheckResultLifecycle(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	if got := ls.LastCheckResult(); got != "none" {
		t.Fatalf("initial = %q", got)
	}
	if _, err := ls.CheckNow(); err != nil {
		t.Fatal(err)
	}
	if got := ls.LastCheckResult(); got != "ok" {
		t.Fatalf("after check = %q", got)
	}
	if err := ls.TrimNow(); err != nil {
		t.Fatal(err)
	}
	if got := ls.StatsSnapshot().Trims; got != 1 {
		t.Fatalf("trims = %d", got)
	}
}

func TestTrimNowWithoutModule(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{})
	if err := ls.TrimNow(); !errors.Is(err, ErrLoggingDisabled) {
		t.Fatalf("err = %v, want ErrLoggingDisabled", err)
	}
}

func TestInjectHeader(t *testing.T) {
	rsp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	out, ok := injectHeader(rsp, "Libseal-Check-Result", "ok")
	if !ok {
		t.Fatal("injection failed")
	}
	parsed, err := httpparse.ParseResponseBytes(out)
	if err != nil || parsed.Header.Get("Libseal-Check-Result") != "ok" || string(parsed.Body) != "ok" {
		t.Fatalf("parsed = %+v, %v", parsed, err)
	}
	// Non-HTTP data is left alone.
	if _, ok := injectHeader([]byte("BINARY\x00DATA"), "X", "y"); ok {
		t.Fatal("injected into non-HTTP data")
	}
	if _, ok := injectHeader([]byte("HTTP/1.1 200 OK no-crlf"), "X", "y"); ok {
		t.Fatal("injected without CRLF")
	}
}

func TestTimeBasedPeriodicChecks(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:        gitssm.New(),
		AuditMode:     audit.ModeMemory,
		CheckInterval: 10 * time.Millisecond,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)
	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1"
	c.fetch(t, "repo", false)
	// Without any client-triggered check, the periodic checker must find
	// the violation on its own.
	deadline := time.Now().Add(3 * time.Second)
	for len(ls.Violations()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic checker never detected the violation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := ls.Violations(); v[0].Invariant != "git-soundness" {
		t.Fatalf("violations = %+v", v)
	}
	// Trimming ran too.
	if ls.StatsSnapshot().Trims == 0 {
		t.Fatal("periodic trimming never ran")
	}
	// Close must stop the background checker cleanly.
	ls.Close()
}

// TestPipelinedPairsConcurrentTrimNoDeadlock pins the staging lock rule: Trim
// quiesces the group-commit lane while holding the log-order lock, and the
// lane drains only once every batch leader reaches its durability wait — so a
// connection must stage all pairs of one write in a single logMu critical
// section. The regression this guards against re-acquired logMu between two
// pipelined pairs: a trim slotted into that window held logMu while waiting
// for a leader that was blocked on logMu, hanging the instance. The server
// here answers both pipelined requests with one write, so each round stages
// two pairs, while trim goroutines trim as fast as they can. The audit FS
// slows the trim rewrite's rename so each trim holds logMu past the mutex's
// 1ms starvation threshold, and two trimmers run so that while one trims,
// the stager and the other trimmer queue behind it in FIFO order — handoff
// then reliably slots a trimmer into any gap between the two stagings.
func TestPipelinedPairsConcurrentTrimNoDeadlock(t *testing.T) {
	env := newCoreEnv(t)
	dir := t.TempDir()
	ls := newGitLibSEAL(t, env, Config{
		Module:          gitssm.New(),
		AuditMode:       audit.ModeDisk,
		AuditDir:        dir,
		AuditFS:         slowRenameFS{},
		AuditBatchMax:   8,
		AuditBatchDelay: time.Millisecond,
	})
	backend := newGitBackend()

	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	go func() {
		ssl := ls.TLS().NewSSL(sConn)
		if err := ssl.Accept(); err != nil {
			return
		}
		defer ssl.Close()
		br := bufio.NewReader(ssl)
		for {
			req1, err := httpparse.ReadRequest(br)
			if err != nil {
				return
			}
			req2, err := httpparse.ReadRequest(br)
			if err != nil {
				return
			}
			out := append(backend.handle(req1).Bytes(), backend.handle(req2).Bytes()...)
			if _, err := ssl.Write(out); err != nil {
				return
			}
		}
	}()
	conn, err := tlsterm.Connect(cConn, &tlsterm.ClientConfig{Roots: env.pool, ServerName: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	stopTrim := make(chan struct{})
	var trimmers sync.WaitGroup
	for i := 0; i < 2; i++ {
		trimmers.Add(1)
		go func() {
			defer trimmers.Done()
			for {
				select {
				case <-stopTrim:
					return
				default:
					ls.TrimNow()
				}
			}
		}()
	}

	const rounds = 25
	done := make(chan error, 1)
	go func() {
		for r := 0; r < rounds; r++ {
			req1 := httpparse.NewRequest("POST", "/git/repo/git-receive-pack",
				[]byte(fmt.Sprintf("create a%d c1", r)))
			req2 := httpparse.NewRequest("POST", "/git/repo/git-receive-pack",
				[]byte(fmt.Sprintf("create b%d c2", r)))
			if _, err := conn.Write(append(req1.Bytes(), req2.Bytes()...)); err != nil {
				done <- fmt.Errorf("round %d write: %w", r, err)
				return
			}
			for i := 0; i < 2; i++ {
				if _, err := httpparse.ReadResponse(br); err != nil {
					done <- fmt.Errorf("round %d response %d: %w", r, i, err)
					return
				}
			}
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined writes deadlocked against concurrent trims")
	}
	close(stopTrim)
	trimmers.Wait()
	if st := ls.StatsSnapshot(); st.Pairs != 2*rounds {
		t.Fatalf("pairs = %d, want %d", st.Pairs, 2*rounds)
	}
}

// TestConcurrentConnectionsBatchedDisk drives many connections in parallel
// against one disk-mode instance with group commit on: connection state is
// sharded, so parsing/pairing proceeds concurrently while pairs enter the
// commit sequence under the narrow log-order lock, and periodic check+trim
// interleaves with the batched appends. Run under -race this doubles as the
// locking regression test for the sharded design.
func TestConcurrentConnectionsBatchedDisk(t *testing.T) {
	env := newCoreEnv(t)
	dir := t.TempDir()
	ls := newGitLibSEAL(t, env, Config{
		Module:          gitssm.New(),
		AuditMode:       audit.ModeDisk,
		AuditDir:        dir,
		AuditBatchMax:   8,
		AuditBatchDelay: 2 * time.Millisecond,
		CheckEvery:      10,
	})

	const clients = 8
	const pushes = 5
	// Each client gets its own backend (the test backend is not safe for
	// concurrent use); the shared component under test is the instance.
	conns := make([]*gitClient, clients)
	for i := range conns {
		conns[i] = dialGit(t, env, ls, newGitBackend())
	}
	errs := make(chan error, clients)
	for i, c := range conns {
		go func(i int, c *gitClient) {
			for j := 0; j < pushes; j++ {
				req := httpparse.NewRequest("POST", "/git/repo/git-receive-pack",
					[]byte(fmt.Sprintf("create b%d-%d c%d", i, j, j)))
				if _, err := c.conn.Write(req.Bytes()); err != nil {
					errs <- fmt.Errorf("client %d write: %w", i, err)
					return
				}
				if _, err := httpparse.ReadResponse(c.br); err != nil {
					errs <- fmt.Errorf("client %d read: %w", i, err)
					return
				}
			}
			errs <- nil
		}(i, c)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Release the enclave threads parked in the connections' SSL_read
	// ecalls before issuing more ecalls.
	for _, c := range conns {
		c.conn.Close()
	}

	st := ls.StatsSnapshot()
	if st.Pairs != clients*pushes || st.Tuples != clients*pushes {
		t.Fatalf("stats = %+v, want %d pairs and tuples", st, clients*pushes)
	}
	if result, err := ls.CheckNow(); err != nil || result != "ok" {
		t.Fatalf("CheckNow = %q, %v", result, err)
	}
	ls.Close()
	// The batched, trimmed log still passes client-side verification.
	if _, err := audit.VerifyFile(dir+"/git.lseal", audit.VerifyOptions{Pub: env.encl.PublicKey()}); err != nil {
		t.Fatalf("verify batched log: %v", err)
	}
}
