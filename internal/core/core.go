// Package core implements LibSEAL itself: the secure audit library that
// terminates TLS connections inside a trusted execution environment, logs
// service-relevant request/response data into a tamper-evident relational
// audit log, and checks service integrity invariants expressed as SQL
// queries (paper §3, Fig. 1).
//
// A LibSEAL instance owns an enclave bridge, the enclave-resident TLS
// library, the audit log and one service-specific module. Services obtain
// TLS connections via TLS().NewSSL and otherwise remain unmodified — the
// interception, pairing, logging, checking and trimming all happen inside
// the SSL_read/SSL_write path.
//
// # Locking
//
// Connection state is sharded: each connection's parse/pair buffers are
// guarded by that connection's own tracker mutex, so independent
// connections extract requests and pair responses in parallel. Pairs enter
// the commit sequence under a single narrow log-order lock (logMu) that
// covers only SSM tuple extraction and staging into the audit log — the
// point that fixes the order of entries in the hash chain — plus the
// check/trim bookkeeping. Durability waits happen outside both locks, which
// is what lets concurrent connections fill one group-commit batch. The lock
// hierarchy is tracker → logMu → audit-internal, and every enclave-side
// acquisition of a lock that may be contended goes through asyncall.Lock so
// no lthread ever sleeps holding its scheduler's thread. One extra rule keeps
// group commit deadlock-free against Trim (which quiesces the commit lane
// while holding logMu): all pairs of one write are staged within a single
// logMu critical section, and logMu is not re-acquired until every resulting
// ticket has been waited — a pending batch leader never blocks on logMu.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
	"libseal/internal/telemetry"
	"libseal/internal/tlsterm"
	"libseal/internal/vfs"
)

// Invariant-check telemetry: check latency is the paper's headline cost for
// in-band integrity verification (§7.3). Per-invariant histograms are
// registered at Open under "audit.check.inv.<name>".
var (
	mChecks          = telemetry.NewCounter("audit.checks", "calls")
	mChecksCoalesced = telemetry.NewCounter("audit.checks.coalesced", "calls")
	mCheckLatency    = telemetry.NewHistogram("audit.check.latency", "ns")
	mTrimsSkipped    = telemetry.NewCounter("audit.trims.skipped", "calls")
)

// Check header names (§5.2, "Result notification").
const (
	// CheckHeader on a request triggers an invariant check.
	CheckHeader = "Libseal-Check"
	// CheckResultHeader carries the most recent check result in-band.
	CheckResultHeader = "Libseal-Check-Result"
)

// ErrLoggingDisabled is returned by check operations when the instance runs
// without a service-specific module (TLS termination only).
var ErrLoggingDisabled = errors.New("core: logging disabled (no service module)")

// Config assembles a LibSEAL instance.
type Config struct {
	// TLS configures the enclave TLS library (certificate, key, client
	// authentication, §4.2 optimisations).
	TLS tlsterm.LibraryConfig
	// Module is the service-specific module. Nil disables auditing: the
	// instance only terminates TLS (the paper's "LibSEAL-process" mode).
	Module ssm.Module
	// AuditMode selects in-memory or persistent logging.
	AuditMode audit.Mode
	// AuditDir is the persistence directory for disk mode.
	AuditDir string
	// AuditShards partitions the audit log across this many independent
	// group-commit pipelines (files, fsync streams, rollback counters),
	// routed by connection so per-connection order is preserved, with a
	// signed cross-shard epoch manifest binding the shards together. Values
	// <= 1 keep the single-log layout. See audit.ShardedConfig.
	AuditShards int
	// AuditManifestEvery is the minimum interval between epoch manifests
	// when sharding; zero selects the audit package default.
	AuditManifestEvery time.Duration
	// Protector provides rollback protection for the persisted log.
	Protector audit.RollbackProtector
	// SealLog encrypts persisted entries for log privacy.
	SealLog bool
	// AuditFS overrides the filesystem used for audit-log persistence; nil
	// uses the real one. The seam exists for fault injection.
	AuditFS vfs.FS
	// AnchorTimeout bounds each rollback-counter operation on the request
	// path when the protector supports cancellation.
	AnchorTimeout time.Duration
	// DegradedLimit, when positive, lets up to this many appends proceed
	// under a stale counter anchor while the counter quorum is unreachable,
	// instead of failing SSL writes. See audit.Config.DegradedLimit.
	DegradedLimit int
	// RecoverMaxLag tolerates the persisted counter lagging the group by up
	// to this much during RecoverExisting. See audit.Config.RecoverMaxLag.
	RecoverMaxLag uint64
	// RecoverExisting resumes from a persisted log (verifying its chain,
	// signature and counter freshness) instead of truncating it. The
	// enclave must be launched from the same platform and code so its keys
	// match.
	RecoverExisting bool
	// AuditBatchMax enables group commit in the audit log: up to this many
	// entries share one signature record, fsync and counter increment.
	// Values <= 1 keep the conservative entry-at-a-time behaviour. See
	// audit.Config.BatchMax.
	AuditBatchMax int
	// AuditBatchDelay is how long a batch leader waits for concurrent
	// appends to fill a non-full batch. See audit.Config.BatchDelay.
	AuditBatchDelay time.Duration
	// AuditMaxStaged bounds the staged-but-not-durable entries in the
	// group-commit pipeline (admission control); over-budget appends are
	// shed with audit.ErrOverloaded. Zero disables the bound. See
	// audit.Config.MaxStaged.
	AuditMaxStaged int
	// AuditAdmitTimeout is how long an over-budget append may wait for the
	// pipeline to drain before being shed. See audit.Config.AdmitTimeout.
	AuditAdmitTimeout time.Duration
	// CheckEvery runs invariant checks and trimming after this many logged
	// request/response pairs. Zero disables pair-count checks.
	CheckEvery int
	// CheckInterval runs invariant checks and trimming on a wall-clock
	// period — the paper's default checking mode (§5.2). Zero disables
	// time-based checks.
	CheckInterval time.Duration
	// CheckMinInterval rate-limits client-triggered checks to defeat
	// denial-of-service via the check header (§6.3). Zero means no limit.
	CheckMinInterval time.Duration
	// CheckAsync moves budget- and timer-triggered invariant checks off the
	// critical path: the check captures a copy-on-write snapshot of the
	// audit database plus the chain position under logMu in O(tables), and
	// a background goroutine evaluates the invariants against the snapshot
	// while appends continue. Client-triggered checks and CheckNow stay
	// synchronous (the response must carry the result) but also evaluate on
	// a snapshot, outside logMu. See DESIGN.md §15.
	CheckAsync bool
	// NoIndexes disables the SQL executor's hash-index planner for this
	// instance's audit database (indexed-vs-scan ablation; see
	// sqldb.SetIndexing).
	NoIndexes bool
	// OnViolation, when set, is called for each invariant with a non-empty
	// violation set after any check.
	OnViolation func(invariant string, violations *sqldb.Result)
}

// Violation records one detected integrity violation.
type Violation struct {
	Invariant string
	Detected  time.Time
	Rows      *sqldb.Result
	// ChainSeq is the chain position the check attests: the number of
	// entries staged into the audit log (durable plus in-flight) when the
	// check's snapshot was captured. The violation was present within the
	// first ChainSeq logged entries.
	ChainSeq uint64
}

// LibSEAL is one audit-library instance.
type LibSEAL struct {
	cfg    Config
	bridge *asyncall.Bridge
	tls    *tlsterm.Library
	log    *audit.ShardedLog

	// connMu guards only the tracker map; each tracker carries its own
	// lock, so connections make progress independently.
	connMu sync.Mutex
	conns  map[uint64]*connTracker

	// logMu is the narrow log-order lock: it serialises SSM tuple
	// extraction and the staging of pairs into the audit log (the point
	// that fixes hash-chain order) along with check/trim state. It is
	// never held across a durability wait — and, since PR 9, never across
	// invariant evaluation either: checks capture a snapshot under logMu
	// and evaluate it with the lock released.
	logMu      sync.Mutex
	pairTime   int64
	sinceCheck int
	lastCheck  time.Time
	lastResult string
	violations []Violation
	stats      Stats

	// prepared invariant/trim statements, parsed once at New. A nil stmt
	// records a parse failure surfaced as "error:<name>" at check time,
	// preserving the unprepared behaviour.
	prepared      []preparedInvariant
	trimStmts     []*sqldb.Stmt
	trimProbeable bool

	// Async checking: checkCh (capacity 1) carries pending check requests
	// to the worker; an already-pending request absorbs new triggers
	// (coalescing). checkMu/checkClosed gate scheduling against Close.
	checkMu         sync.Mutex
	checkClosed     bool
	checkCh         chan struct{}
	checkerDone     chan struct{}
	checksCoalesced atomic.Int64

	stopPeriodic chan struct{}
	periodicDone chan struct{}
}

// preparedInvariant is one invariant with its statement parsed at New and
// its per-invariant latency histogram.
type preparedInvariant struct {
	name string
	stmt *sqldb.Stmt
	hist *telemetry.Histogram
}

// Stats counts audit activity.
type Stats struct {
	Pairs      int64
	Tuples     int64
	Checks     int64
	Trims      int64
	Violations int64
	// TrimFailures counts trims that could not complete (e.g. the counter
	// quorum was unreachable); the log keeps growing until one succeeds.
	TrimFailures int64
	// Reanchors counts degraded-mode gaps closed by a fresh counter anchor.
	Reanchors int64
	// ChecksCoalesced counts async check triggers absorbed by an already-
	// pending check.
	ChecksCoalesced int64
	// TrimsSkipped counts trim passes elided because the check's snapshot
	// showed nothing to trim, so the quiesce was never taken.
	TrimsSkipped int64
}

// connTracker pairs the request and response streams of one connection. Its
// mutex guards the buffers and pairing state; taking it never requires any
// other lock.
type connTracker struct {
	mu      sync.Mutex
	reqBuf  []byte
	rspBuf  []byte
	pending [][]byte // complete, unpaired request bytes (pipelining)
	// injectResult is set when the next response head should carry the
	// check-result header.
	injectResult string
}

// New builds a LibSEAL instance on the given enclave bridge. The audit log
// and TLS state are initialised inside the enclave.
func New(bridge *asyncall.Bridge, cfg Config) (*LibSEAL, error) {
	ls := &LibSEAL{
		cfg:        cfg,
		bridge:     bridge,
		conns:      make(map[uint64]*connTracker),
		lastResult: "none",
	}
	if cfg.Module != nil {
		auditCfg := audit.ShardedConfig{
			Config: audit.Config{
				Name:          cfg.Module.Name(),
				Schema:        cfg.Module.Schema(),
				Mode:          cfg.AuditMode,
				Dir:           cfg.AuditDir,
				Protector:     cfg.Protector,
				Seal:          cfg.SealLog,
				FS:            cfg.AuditFS,
				AnchorTimeout: cfg.AnchorTimeout,
				DegradedLimit: cfg.DegradedLimit,
				RecoverMaxLag: cfg.RecoverMaxLag,
				BatchMax:      cfg.AuditBatchMax,
				BatchDelay:    cfg.AuditBatchDelay,
				MaxStaged:     cfg.AuditMaxStaged,
				AdmitTimeout:  cfg.AuditAdmitTimeout,
			},
			Shards:        cfg.AuditShards,
			ManifestEvery: cfg.AuditManifestEvery,
		}
		err := bridge.Call(func(env *asyncall.Env) error {
			var err error
			if cfg.RecoverExisting && cfg.AuditMode == audit.ModeDisk {
				ls.log, err = audit.RecoverSharded(env, auditCfg, bridge.Enclave().PublicKey())
				return err
			}
			ls.log, err = audit.NewSharded(env, auditCfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		// Resume the logical clock past the recovered entries so new
		// tuples sort after them.
		if ls.log != nil {
			ls.pairTime = int64(ls.log.Seq())
			if cfg.NoIndexes {
				ls.log.DB().SetIndexing(false)
			}
			ls.prepareStatements()
		}
		cfg.TLS.Tap = (*sealTap)(ls)
	}
	tlsLib, err := tlsterm.NewLibrary(bridge, cfg.TLS)
	if err != nil {
		return nil, err
	}
	ls.tls = tlsLib
	if cfg.CheckAsync && ls.log != nil {
		ls.checkCh = make(chan struct{}, 1)
		ls.checkerDone = make(chan struct{})
		go ls.checkWorker()
	}
	if cfg.CheckInterval > 0 && ls.log != nil {
		ls.stopPeriodic = make(chan struct{})
		ls.periodicDone = make(chan struct{})
		go ls.periodicChecks(cfg.CheckInterval)
	}
	return ls, nil
}

// prepareStatements parses the module's invariant and trim SQL once so
// checks never re-parse on the hot path. Parse failures are kept as nil
// statements and surface as "error:<name>" at check time, matching the
// previous parse-at-check behaviour.
func (ls *LibSEAL) prepareStatements() {
	db := ls.log.DB()
	for _, inv := range ls.cfg.Module.Invariants() {
		p := preparedInvariant{
			name: inv.Name,
			hist: telemetry.NewHistogram("audit.check.inv."+inv.Name, "ns"),
		}
		if stmt, err := db.Prepare(inv.SQL); err == nil {
			p.stmt = stmt
		}
		ls.prepared = append(ls.prepared, p)
	}
	ls.trimProbeable = true
	for _, q := range ls.cfg.Module.TrimQueries() {
		stmts, err := db.PrepareScript(q)
		if err != nil {
			// Trim itself will report the parse error; we just cannot
			// predict its effect from a snapshot.
			ls.trimProbeable = false
			continue
		}
		ls.trimStmts = append(ls.trimStmts, stmts...)
	}
}

// periodicChecks runs the §5.2 default checking mode: invariants and
// trimming on a fixed wall-clock period.
func (ls *LibSEAL) periodicChecks(interval time.Duration) {
	defer close(ls.periodicDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ls.stopPeriodic:
			return
		case <-ticker.C:
			if ls.cfg.CheckAsync {
				ls.scheduleCheck()
			} else {
				ls.checkAndTrimNow()
			}
			_ = ls.bridge.Call(func(env *asyncall.Env) error {
				// If appends ran degraded (counter quorum unreachable), the
				// periodic tick doubles as the re-anchor retry loop.
				if ls.log.Status().Degraded {
					asyncall.Lock(env, &ls.logMu)
					if err := ls.log.Reanchor(env); err == nil {
						ls.stats.Reanchors++
					}
					ls.logMu.Unlock()
				}
				// Idle periods still get manifests: without writes the
				// request-path cadence never fires.
				_ = ls.log.ManifestIfDue(env)
				return nil
			})
		}
	}
}

// checkAndTrimNow runs a full synchronous check-and-trim round from host
// context (periodic ticks with CheckAsync off).
func (ls *LibSEAL) checkAndTrimNow() {
	_ = ls.bridge.Call(func(env *asyncall.Env) error {
		ls.checkAndTrim(env)
		return nil
	})
}

// TLS returns the drop-in TLS library services link against.
func (ls *LibSEAL) TLS() *tlsterm.Library { return ls.tls }

// Log returns the (possibly sharded) audit log; nil when auditing is
// disabled. An unsharded instance is a one-shard set, so existing callers
// keep working unchanged.
func (ls *LibSEAL) Log() *audit.ShardedLog { return ls.log }

// Bridge returns the underlying enclave bridge.
func (ls *LibSEAL) Bridge() *asyncall.Bridge { return ls.bridge }

// AuditLocation returns the persisted audit log's directory and set name —
// what a replication feed needs to locate the files. Both are empty when
// auditing is disabled or memory-only.
func (ls *LibSEAL) AuditLocation() (dir, name string) {
	if ls.log == nil || ls.cfg.AuditMode != audit.ModeDisk {
		return "", ""
	}
	return ls.cfg.AuditDir, ls.cfg.Module.Name()
}

// StatsSnapshot returns a copy of the audit counters.
func (ls *LibSEAL) StatsSnapshot() Stats {
	ls.logMu.Lock()
	s := ls.stats
	ls.logMu.Unlock()
	s.ChecksCoalesced = ls.checksCoalesced.Load()
	return s
}

// AuditStatus returns the audit log's degraded-mode state (zero when
// auditing is disabled).
func (ls *LibSEAL) AuditStatus() audit.Status {
	if ls.log == nil {
		return audit.Status{}
	}
	return ls.log.Status()
}

// Violations returns all violations detected so far.
func (ls *LibSEAL) Violations() []Violation {
	ls.logMu.Lock()
	defer ls.logMu.Unlock()
	return append([]Violation(nil), ls.violations...)
}

// LastCheckResult returns the in-band result string of the most recent
// invariant check ("ok", "violation:<names>", "rate-limited" or "none").
func (ls *LibSEAL) LastCheckResult() string {
	ls.logMu.Lock()
	defer ls.logMu.Unlock()
	return ls.lastResult
}

// sealTap adapts LibSEAL to the tlsterm.Tap interface. Methods run inside
// the enclave within SSL_read/SSL_write ecalls.
type sealTap LibSEAL

// OnData implements tlsterm.Tap.
func (t *sealTap) OnData(env *asyncall.Env, connID uint64, dir tlsterm.Direction, data []byte) ([]byte, error) {
	ls := (*LibSEAL)(t)
	if dir == tlsterm.DirRead {
		return nil, ls.onRead(env, connID, data)
	}
	return ls.onWrite(env, connID, data)
}

// OnClose implements tlsterm.Tap.
func (t *sealTap) OnClose(env *asyncall.Env, connID uint64) {
	ls := (*LibSEAL)(t)
	ls.connMu.Lock()
	delete(ls.conns, connID)
	ls.connMu.Unlock()
}

// tracker returns (creating if needed) the connection's state. connMu is
// held only for the map access; callers lock the tracker itself.
func (ls *LibSEAL) tracker(connID uint64) *connTracker {
	ls.connMu.Lock()
	defer ls.connMu.Unlock()
	tr, ok := ls.conns[connID]
	if !ok {
		tr = &connTracker{}
		ls.conns[connID] = tr
	}
	return tr
}

// onRead accumulates request plaintext and extracts complete requests. Only
// this connection's tracker is locked; other connections parse in parallel.
func (ls *LibSEAL) onRead(env *asyncall.Env, connID uint64, data []byte) error {
	tr := ls.tracker(connID)
	asyncall.Lock(env, &tr.mu)
	defer tr.mu.Unlock()
	tr.reqBuf = append(tr.reqBuf, data...)
	for {
		req, n, err := httpparse.ConsumeRequest(tr.reqBuf)
		if errors.Is(err, httpparse.ErrIncomplete) {
			return nil
		}
		if err != nil {
			// Not HTTP (or corrupted): keep the raw buffer as one pending
			// "request" so non-HTTP SSMs could still see it; reset.
			tr.pending = append(tr.pending, tr.reqBuf)
			tr.reqBuf = nil
			return nil
		}
		raw := append([]byte(nil), tr.reqBuf[:n]...)
		tr.reqBuf = tr.reqBuf[n:]
		tr.pending = append(tr.pending, raw)
		if req.Header.Has(CheckHeader) {
			// Run the check now so this response can carry the result. The
			// evaluation happens on a snapshot with logMu released, so other
			// connections keep appending while this one checks.
			_, tr.injectResult = ls.runCheckCycle(env, context.Background(), true)
		}
	}
}

// onWrite accumulates response plaintext, pairs completed responses with
// their requests, stages the pairs into the audit log, and injects the
// check-result header. Pairing runs under the tracker lock, staging under
// one logMu critical section, and the durability waits after both locks are
// released, so appends from concurrent connections can share one
// group-commit batch; the write still only succeeds once every staged entry
// is durable.
//
// The single staging section is load-bearing for deadlock freedom: Trim
// quiesces the group-commit lane while holding logMu, and the lane drains
// only when every batch leader reaches Ticket.Wait. A connection that leads
// an open batch must therefore never block on logMu again before all of its
// tickets are waited — which is why the pairs are cut out first, staged in
// one logMu hold, and the statistics for failed pairs are undone only after
// the last wait resolves.
func (ls *LibSEAL) onWrite(env *asyncall.Env, connID uint64, data []byte) ([]byte, error) {
	tr := ls.tracker(connID)
	asyncall.Lock(env, &tr.mu)

	out := data
	if tr.injectResult != "" {
		if rewritten, ok := injectHeader(data, CheckResultHeader, tr.injectResult); ok {
			out = rewritten
			tr.injectResult = ""
		}
	}

	// Pair using the (unmodified) response bytes: the audit log records
	// what the service produced.
	tr.rspBuf = append(tr.rspBuf, data...)
	var pairs []rawPair
	for {
		_, n, err := httpparse.ConsumeResponse(tr.rspBuf)
		if errors.Is(err, httpparse.ErrIncomplete) {
			break
		}
		if err != nil {
			// Not HTTP: flush as an opaque response.
			n = len(tr.rspBuf)
		}
		if len(tr.pending) == 0 {
			// Response without a recorded request (e.g. server push);
			// drop it — nothing to pair.
			tr.rspBuf = tr.rspBuf[n:]
			break
		}
		rawRsp := append([]byte(nil), tr.rspBuf[:n]...)
		tr.rspBuf = tr.rspBuf[n:]
		pairs = append(pairs, rawPair{req: tr.pending[0], rsp: rawRsp})
		tr.pending = tr.pending[1:]
		if len(tr.rspBuf) == 0 {
			break
		}
	}
	tr.mu.Unlock()

	tickets, checkDue, stageErr := ls.stagePairs(env, connID, pairs)

	// Every staged ticket must be waited on — a batch leader commits its
	// batch from inside Wait — even when a later pair failed to stage.
	err := stageErr
	var undoPairs, undoTuples int64
	for _, sp := range tickets {
		if werr := sp.ticket.Wait(env); werr != nil {
			// The pair never became durable: take it back out of the audit
			// statistics (below, once no wait is outstanding) so they count
			// acknowledged work only.
			undoPairs++
			undoTuples += sp.tuples
			if err == nil {
				err = fmt.Errorf("core: audit append: %w", werr)
			}
		}
	}
	if undoPairs > 0 {
		asyncall.Lock(env, &ls.logMu)
		ls.stats.Pairs -= undoPairs
		ls.stats.Tuples -= undoTuples
		ls.logMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if checkDue {
		ls.checkAndTrim(env)
	}
	if len(tickets) > 0 {
		// Epoch-manifest cadence rides the write path: after the waits no
		// lock is held, so binding the shards' durable states is off the
		// critical section. Best-effort — a failed manifest only widens the
		// cross-shard rollback window until the next one.
		_ = ls.log.ManifestIfDue(env)
	}
	if bytes.Equal(out, data) {
		return nil, nil
	}
	return out, nil
}

// rawPair is one request/response pair cut out of a connection's streams.
type rawPair struct {
	req, rsp []byte
}

// stagedPair is one pair's durability ticket plus the statistics to undo
// if the pair never becomes durable.
type stagedPair struct {
	ticket *audit.Ticket
	tuples int64
}

// stagePairs hands the pairs to the SSM and stages their tuples into the
// audit log's commit pipeline, one ticket per pair, under a single logMu
// critical section that serialises the commit order across connections.
// Staging every pair in one hold keeps pipelined pairs eligible for one
// group-commit batch and guarantees the caller is never a pending batch
// leader while blocked on logMu (see onWrite). The second result reports
// that the CheckEvery budget is exhausted — the caller runs the check once
// its entries are durable.
func (ls *LibSEAL) stagePairs(env *asyncall.Env, connID uint64, pairs []rawPair) ([]stagedPair, bool, error) {
	if len(pairs) == 0 {
		return nil, false, nil
	}
	asyncall.Lock(env, &ls.logMu)
	defer ls.logMu.Unlock()
	var tickets []stagedPair
	checkDue := false
	for _, p := range pairs {
		ls.pairTime++
		st := &ssm.State{Time: ls.pairTime, DB: ls.log.DB()}
		tuples, err := ls.cfg.Module.HandlePair(st, p.req, p.rsp)
		if err != nil {
			// Unparseable traffic is not a service integrity violation; it
			// is recorded as a statistic but does not fail the connection.
			continue
		}
		if len(tuples) > 0 {
			rows := make([]audit.Row, len(tuples))
			for i, tu := range tuples {
				rows[i] = audit.Row{Table: tu.Table, Values: tu.Values}
			}
			// All of one connection's pairs route to one shard (stable hash
			// of the connection ID), so per-connection order is preserved
			// while different connections fan out across shard pipelines.
			ticket, err := ls.log.Stage(env, connID, rows)
			if err != nil {
				return tickets, checkDue, fmt.Errorf("core: audit append: %w", err)
			}
			tickets = append(tickets, stagedPair{ticket: ticket, tuples: int64(len(tuples))})
			ls.stats.Tuples += int64(len(tuples))
		}
		ls.stats.Pairs++
		if len(tuples) > 0 && ls.cfg.CheckEvery > 0 {
			ls.sinceCheck++
			if ls.sinceCheck >= ls.cfg.CheckEvery {
				ls.sinceCheck = 0
				checkDue = true
			}
		}
	}
	return tickets, checkDue, nil
}

// checkAndTrim runs (or schedules) the CheckEvery invariant check and trim
// pass. With CheckAsync the request path only nudges the worker — the send
// never blocks, so an ecall cannot stall on a busy checker.
func (ls *LibSEAL) checkAndTrim(env *asyncall.Env) {
	if ls.cfg.CheckAsync {
		ls.scheduleCheck()
		return
	}
	out, _ := ls.runCheckCycle(env, context.Background(), false)
	if out != nil {
		ls.applyTrim(env, out)
	}
}

// checkCapture is everything a check needs from under logMu: a consistent
// copy-on-write snapshot of the audit database and the chain position it
// corresponds to. Capturing is O(tables); evaluation happens lock-free.
type checkCapture struct {
	snap     *sqldb.Snapshot
	chainSeq uint64
	start    time.Time
}

// checkOutcome is the result of evaluating one capture.
type checkOutcome struct {
	cap        *checkCapture
	result     string
	violations []Violation
	// trimCount is the number of rows the module's trim queries would
	// delete from the snapshot; -1 when unknown (unprobeable trim SQL).
	trimCount int
	// ctxErr is set when a CheckNowContext caller's context cancelled the
	// evaluation partway through.
	ctxErr error
}

// captureCheckLocked starts a check under logMu. It returns nil and a
// final result string when no evaluation should happen (auditing disabled
// or a rate-limited client trigger).
func (ls *LibSEAL) captureCheckLocked(clientTriggered bool) (*checkCapture, string) {
	if ls.log == nil {
		return nil, "disabled"
	}
	now := time.Now()
	if clientTriggered && ls.cfg.CheckMinInterval > 0 && now.Sub(ls.lastCheck) < ls.cfg.CheckMinInterval {
		ls.lastResult = "rate-limited"
		return nil, ls.lastResult
	}
	ls.lastCheck = now
	ls.stats.Checks++
	mChecks.Inc()
	return &checkCapture{
		snap: ls.log.DB().Snapshot(),
		// Durable entries plus staged-but-in-flight ones: exactly the rows
		// the snapshot contains. A later batch abort can retract in-flight
		// entries, so ChainSeq attests the speculative chain.
		chainSeq: ls.log.Seq() + uint64(ls.log.PendingStaged()),
		start:    now,
	}, ""
}

// evalCheck runs every prepared invariant against the capture's snapshot
// and probes the trim predicates. No locks are held; appends proceed
// concurrently. ctx is consulted between invariants: cancellation stops the
// evaluation early with result "cancelled" and ctxErr set — violations found
// up to that point are still published (they are real).
func (ls *LibSEAL) evalCheck(ctx context.Context, cap *checkCapture) *checkOutcome {
	out := &checkOutcome{cap: cap, trimCount: -1}
	defer telemetry.ObserveSince(mCheckLatency, "audit.check", cap.start)
	var violated []string
	for _, p := range ls.prepared {
		if err := ctx.Err(); err != nil {
			out.result = "cancelled"
			out.ctxErr = err
			return out
		}
		if p.stmt == nil {
			out.result = "error:" + p.name
			return out
		}
		t0 := time.Now()
		res, err := cap.snap.QueryStmt(p.stmt)
		if err != nil {
			out.result = "error:" + p.name
			return out
		}
		telemetry.ObserveSince(p.hist, "audit.check.inv."+p.name, t0)
		if !res.Empty() {
			violated = append(violated, p.name)
			out.violations = append(out.violations, Violation{
				Invariant: p.name, Detected: cap.start, Rows: res, ChainSeq: cap.chainSeq,
			})
		}
	}
	if len(violated) == 0 {
		out.result = "ok"
	} else {
		out.result = "violation:" + strings.Join(violated, ",")
	}
	if ls.trimProbeable {
		total := 0
		known := true
		for _, st := range ls.trimStmts {
			n, ok, err := cap.snap.CountMatches(st)
			if err != nil || !ok {
				known = false
				break
			}
			total += n
		}
		if known {
			out.trimCount = total
		}
	}
	return out
}

// publishCheckLocked records an outcome under logMu.
func (ls *LibSEAL) publishCheckLocked(out *checkOutcome) {
	ls.lastResult = out.result
	for _, v := range out.violations {
		ls.violations = append(ls.violations, v)
		ls.stats.Violations += int64(len(v.Rows.Rows))
	}
}

// notifyViolations delivers OnViolation callbacks outside every lock.
func (ls *LibSEAL) notifyViolations(out *checkOutcome) {
	if ls.cfg.OnViolation == nil {
		return
	}
	for _, v := range out.violations {
		ls.cfg.OnViolation(v.Invariant, v.Rows)
	}
}

// runCheckCycle is the synchronous capture → evaluate → publish sequence.
// logMu is held only for the two O(tables) bookkeeping sections; the
// invariant evaluation in between runs with the lock released, so appends
// are stalled for the snapshot capture, not the check. Returns nil when
// evaluation was skipped (disabled or rate-limited).
func (ls *LibSEAL) runCheckCycle(env *asyncall.Env, ctx context.Context, clientTriggered bool) (*checkOutcome, string) {
	asyncall.Lock(env, &ls.logMu)
	cap, early := ls.captureCheckLocked(clientTriggered)
	ls.logMu.Unlock()
	if cap == nil {
		return nil, early
	}
	out := ls.evalCheck(ctx, cap)
	asyncall.Lock(env, &ls.logMu)
	ls.publishCheckLocked(out)
	ls.logMu.Unlock()
	ls.notifyViolations(out)
	return out, out.result
}

// applyTrim applies the trim decision already computed against the check's
// snapshot: when the snapshot showed nothing to delete, the trim (and its
// append-stalling quiesce of every shard) is skipped entirely; otherwise
// the real trim runs under logMu against the live database.
func (ls *LibSEAL) applyTrim(env *asyncall.Env, out *checkOutcome) {
	if out.trimCount == 0 {
		asyncall.Lock(env, &ls.logMu)
		ls.stats.TrimsSkipped++
		ls.logMu.Unlock()
		mTrimsSkipped.Inc()
		return
	}
	asyncall.Lock(env, &ls.logMu)
	defer ls.logMu.Unlock()
	// A failed trim (say, the counter quorum is unreachable and the
	// rewrite must not degrade) is not the client's problem: the log
	// keeps growing and the next check retries. Only the append path
	// may fail the SSL write, since there durability is at stake.
	if err := ls.log.Trim(env, ls.cfg.Module.TrimQueries()); err != nil {
		ls.stats.TrimFailures++
	} else {
		ls.stats.Trims++
	}
}

// scheduleCheck nudges the async check worker. A pending nudge absorbs new
// ones (the next check sees their entries anyway via its snapshot), which
// is what bounds the worker's backlog at one.
func (ls *LibSEAL) scheduleCheck() {
	ls.checkMu.Lock()
	defer ls.checkMu.Unlock()
	if ls.checkClosed || ls.checkCh == nil {
		return
	}
	select {
	case ls.checkCh <- struct{}{}:
	default:
		ls.checksCoalesced.Add(1)
		mChecksCoalesced.Inc()
	}
}

// checkWorker is the background check goroutine (CheckAsync).
func (ls *LibSEAL) checkWorker() {
	defer close(ls.checkerDone)
	for range ls.checkCh {
		_ = ls.bridge.Call(func(env *asyncall.Env) error {
			out, _ := ls.runCheckCycle(env, context.Background(), false)
			if out != nil {
				ls.applyTrim(env, out)
			}
			return nil
		})
	}
}

// CheckNow runs the invariants immediately (Fig. 1, step 6) and returns the
// result string. It is always synchronous, even with CheckAsync: callers
// want the verdict, and the evaluation still runs on a snapshot outside
// logMu. It is CheckNowContext with a background context.
func (ls *LibSEAL) CheckNow() (string, error) {
	return ls.CheckNowContext(context.Background())
}

// CheckNowContext is CheckNow with cancellation: ctx is consulted before the
// check is dispatched and between invariant evaluations. A cancelled check
// returns ctx's error with result "cancelled"; violations found before the
// cancellation are still recorded and notified — detection is never undone.
func (ls *LibSEAL) CheckNowContext(ctx context.Context) (string, error) {
	if ls.log == nil {
		return "", ErrLoggingDisabled
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	var (
		result string
		out    *checkOutcome
	)
	err := ls.bridge.Call(func(env *asyncall.Env) error {
		out, result = ls.runCheckCycle(env, ctx, false)
		return nil
	})
	if err == nil && out != nil && out.ctxErr != nil {
		err = out.ctxErr
	}
	return result, err
}

// TrimNow applies the module's trimming queries immediately.
func (ls *LibSEAL) TrimNow() error {
	if ls.log == nil {
		return ErrLoggingDisabled
	}
	return ls.bridge.Call(func(env *asyncall.Env) error {
		asyncall.Lock(env, &ls.logMu)
		defer ls.logMu.Unlock()
		ls.stats.Trims++
		return ls.log.Trim(env, ls.cfg.Module.TrimQueries())
	})
}

// Close stops periodic checking and the async check worker, then releases
// the audit log's resources (in that order: the worker may still be
// evaluating against the log's database).
func (ls *LibSEAL) Close() error {
	if ls.stopPeriodic != nil {
		close(ls.stopPeriodic)
		<-ls.periodicDone
		ls.stopPeriodic = nil
	}
	if ls.checkCh != nil {
		ls.checkMu.Lock()
		if !ls.checkClosed {
			ls.checkClosed = true
			close(ls.checkCh)
		}
		ls.checkMu.Unlock()
		<-ls.checkerDone
	}
	if ls.log != nil {
		return ls.log.Close()
	}
	return nil
}

// injectHeader inserts a header line after the status line of a serialised
// HTTP response head. It reports false if data does not start with a parse-
// able status line (the header is then carried on a later response instead).
func injectHeader(data []byte, key, value string) ([]byte, bool) {
	idx := bytes.Index(data, []byte("\r\n"))
	if idx < 0 || !bytes.HasPrefix(data, []byte("HTTP/")) {
		return nil, false
	}
	var out bytes.Buffer
	out.Grow(len(data) + len(key) + len(value) + 4)
	out.Write(data[:idx+2])
	out.WriteString(key)
	out.WriteString(": ")
	out.WriteString(value)
	out.WriteString("\r\n")
	out.Write(data[idx+2:])
	return out.Bytes(), true
}
