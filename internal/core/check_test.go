package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"libseal/internal/audit"
	"libseal/internal/httpparse"
	"libseal/internal/ssm"
	"libseal/internal/ssm/gitssm"
)

// pairMod is a minimal instrumentation SSM: every pair logs exactly one
// tuple carrying its logical time, and the single "invariant" flags every
// row. A check's violation therefore captures the full table as seen by its
// snapshot, which lets tests compare what a check saw against the chain
// position it attests.
type pairMod struct{}

func (pairMod) Name() string   { return "pairs" }
func (pairMod) Schema() string { return "CREATE TABLE pairs (t INTEGER)" }
func (pairMod) HandlePair(st *ssm.State, req, rsp []byte) ([]ssm.Tuple, error) {
	return []ssm.Tuple{{Table: "pairs", Values: []any{st.Time}}}, nil
}
func (pairMod) Invariants() []ssm.Invariant {
	return []ssm.Invariant{{
		Name: "every-pair", Kind: "soundness",
		Description: "flags every logged pair (test instrumentation)",
		SQL:         "SELECT t FROM pairs",
	}}
}
func (pairMod) TrimQueries() []string { return nil }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCheckAsyncEndToEnd drives the clean Git workload with background
// checking on: the budget-triggered checks run on the worker, CheckNow
// stays synchronous, and Close drains the worker.
func TestCheckAsyncEndToEnd(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:     gitssm.New(),
		AuditMode:  audit.ModeMemory,
		CheckEvery: 1,
		CheckAsync: true,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	waitFor(t, "async check", func() bool { return ls.StatsSnapshot().Checks > 0 })
	waitFor(t, "check result", func() bool { return ls.LastCheckResult() == "ok" })

	// CheckNow is synchronous even with CheckAsync: the verdict comes back
	// on the calling goroutine.
	if result, err := ls.CheckNow(); err != nil || result != "ok" {
		t.Fatalf("CheckNow = %q, %v", result, err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// Triggers after Close must not panic or deadlock.
	ls.scheduleCheck()
}

// TestCheckAsyncDetectsRollback: a violation found by a background check is
// recorded with the chain position its snapshot attested.
func TestCheckAsyncDetectsRollback(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:     gitssm.New(),
		AuditMode:  audit.ModeMemory,
		CheckEvery: 1,
		CheckAsync: true,
	})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1"
	c.fetch(t, "repo", false)

	waitFor(t, "rollback violation", func() bool { return len(ls.Violations()) > 0 })
	v := ls.Violations()[0]
	if v.Invariant != "git-soundness" {
		t.Fatalf("invariant = %q", v.Invariant)
	}
	// The violating snapshot held the rolled-back advertisement plus one or
	// two update tuples — two when the worker had not yet trimmed the stale
	// c1 update, three otherwise. Either way the violation pins the chain
	// position it attested.
	if v.ChainSeq != 2 && v.ChainSeq != 3 {
		t.Fatalf("ChainSeq = %d, want 2 or 3: %+v", v.ChainSeq, v)
	}
}

// TestAsyncCheckChainPositionConsistency is the snapshot-isolation race
// test: clients append concurrently while the worker checks, and every
// check must see exactly the prefix its ChainSeq claims — with pairMod,
// a snapshot at chain position N contains the pairs timed 1..N, no more,
// no fewer, no tears. Run under -race.
func TestAsyncCheckChainPositionConsistency(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{
		Module:     pairMod{},
		AuditMode:  audit.ModeMemory,
		CheckEvery: 1,
		CheckAsync: true,
	})
	backend := newGitBackend()

	const clients, pushes = 3, 15
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c := dialGit(t, env, ls, backend)
		wg.Add(1)
		go func(c *gitClient, id int) {
			defer wg.Done()
			repo := fmt.Sprintf("repo%d", id)
			for j := 0; j < pushes; j++ {
				req := httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
					[]byte(fmt.Sprintf("update main c%d", j)))
				if _, err := c.conn.Write(req.Bytes()); err != nil {
					t.Error(err)
					return
				}
				rsp, err := httpparse.ReadResponse(c.br)
				if err != nil {
					t.Error(err)
					return
				}
				if rsp.Status != 200 {
					t.Errorf("push status %d", rsp.Status)
					return
				}
			}
		}(c, i)
	}
	wg.Wait()
	if err := ls.Close(); err != nil { // drains the worker
		t.Fatal(err)
	}

	viols := ls.Violations()
	if len(viols) == 0 {
		t.Fatal("no checks completed")
	}
	for _, v := range viols {
		n := uint64(len(v.Rows.Rows))
		if n != v.ChainSeq {
			t.Fatalf("check at chain position %d saw %d pairs", v.ChainSeq, n)
		}
		var max int64
		seen := make(map[int64]bool, len(v.Rows.Rows))
		for _, row := range v.Rows.Rows {
			tm := row[0].Int64()
			if seen[tm] {
				t.Fatalf("duplicate pair time %d at chain position %d", tm, v.ChainSeq)
			}
			seen[tm] = true
			if tm > max {
				max = tm
			}
		}
		if uint64(max) != v.ChainSeq {
			t.Fatalf("chain position %d but max pair time %d: not a prefix", v.ChainSeq, max)
		}
	}

	// Accounting: with CheckEvery=1 every push triggers the worker, and a
	// trigger either runs as a check or is absorbed by a pending one. The
	// nil trim set means every cycle's trim pass is skipped via the
	// snapshot probe, never quiescing the log.
	st := ls.StatsSnapshot()
	if st.Pairs != clients*pushes {
		t.Fatalf("pairs = %d, want %d", st.Pairs, clients*pushes)
	}
	if st.Checks+st.ChecksCoalesced != st.Pairs {
		t.Fatalf("checks %d + coalesced %d != pairs %d", st.Checks, st.ChecksCoalesced, st.Pairs)
	}
	if st.Trims != 0 || st.TrimsSkipped != st.Checks {
		t.Fatalf("trims = %d, skipped = %d, checks = %d", st.Trims, st.TrimsSkipped, st.Checks)
	}
}

// TestSyncCheckViolationChainSeq pins the sync path too: in-band and
// CheckNow checks stamp violations with the attested position.
func TestSyncCheckViolationChainSeq(t *testing.T) {
	env := newCoreEnv(t)
	ls := newGitLibSEAL(t, env, Config{Module: gitssm.New(), AuditMode: audit.ModeMemory})
	backend := newGitBackend()
	c := dialGit(t, env, ls, backend)

	c.push(t, "repo", "create main c1")
	c.push(t, "repo", "update main c2")
	backend.rollback["main"] = "c1"
	// First fetch logs the rolled-back advertisement; the second carries the
	// in-band check, which now sees it.
	c.fetch(t, "repo", false)
	rsp := c.fetch(t, "repo", true)
	result := rsp.Header.Get(CheckResultHeader)
	if result != "" && !strings.HasPrefix(result, "violation:") {
		t.Fatalf("in-band result = %q", result)
	}
	if r, err := ls.CheckNow(); err != nil || !strings.HasPrefix(r, "violation:") {
		t.Fatalf("CheckNow = %q, %v", r, err)
	}
	staged := ls.Log().Seq() + uint64(ls.Log().PendingStaged())
	for _, v := range ls.Violations() {
		if v.ChainSeq == 0 || v.ChainSeq > staged {
			t.Fatalf("bad ChainSeq %d (log at %d)", v.ChainSeq, staged)
		}
	}
}
