package dropbox

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/ssm/dropboxssm"
)

func commit(t *testing.T, s *Server, account string, commits ...dropboxssm.FileCommit) {
	t.Helper()
	body, _ := json.Marshal(dropboxssm.CommitBatchMsg{Account: account, Host: "h", Commits: commits})
	rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/dropbox/commit_batch", body))
	if rsp.Status != 200 {
		t.Fatalf("commit status %d", rsp.Status)
	}
}

func list(t *testing.T, s *Server, account string) map[string]dropboxssm.FileCommit {
	t.Helper()
	rsp := s.Handler().Handle(httpparse.NewRequest("GET", "/dropbox/list?account="+account+"&host=h", nil))
	if rsp.Status != 200 {
		t.Fatalf("list status %d", rsp.Status)
	}
	var out dropboxssm.ListRsp
	if err := json.Unmarshal(rsp.Body, &out); err != nil {
		t.Fatal(err)
	}
	files := map[string]dropboxssm.FileCommit{}
	for _, f := range out.Files {
		files[f.File] = f
	}
	return files
}

func TestCommitAndList(t *testing.T) {
	s := NewServer()
	content := bytes.Repeat([]byte("data"), 1000)
	bl := Blocklist(content)
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a.txt", Blocklist: bl, Size: int64(len(content))})
	files := list(t, s, "acct")
	if f, ok := files["a.txt"]; !ok || f.Blocklist != bl || f.Size != int64(len(content)) {
		t.Fatalf("files = %v", files)
	}
}

func TestDeletion(t *testing.T) {
	s := NewServer()
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "h", Size: 10})
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Size: -1})
	if files := list(t, s, "acct"); len(files) != 0 {
		t.Fatalf("deleted file listed: %v", files)
	}
	if s.FileCount("acct") != 0 {
		t.Fatal("file count nonzero after delete")
	}
}

func TestUpdateReplacesBlocklist(t *testing.T) {
	s := NewServer()
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "v1", Size: 10})
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "v2", Size: 12})
	files := list(t, s, "acct")
	if files["a"].Blocklist != "v2" {
		t.Fatalf("blocklist = %q", files["a"].Blocklist)
	}
}

func TestAccountsIsolated(t *testing.T) {
	s := NewServer()
	commit(t, s, "alice", dropboxssm.FileCommit{File: "a", Blocklist: "x", Size: 1})
	if files := list(t, s, "bob"); len(files) != 0 {
		t.Fatalf("cross-account leak: %v", files)
	}
}

func TestCorruptBlocklistFault(t *testing.T) {
	s := NewServer()
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "good", Size: 1})
	s.InjectBlocklistCorruption("a")
	files := list(t, s, "acct")
	if files["a"].Blocklist == "good" {
		t.Fatal("corruption not injected")
	}
}

func TestStaleMetadataFault(t *testing.T) {
	s := NewServer()
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "v1", Size: 1})
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "v2", Size: 1})
	s.InjectStaleMetadata("a")
	files := list(t, s, "acct")
	if files["a"].Blocklist != "v1" {
		t.Fatalf("stale fault: %q", files["a"].Blocklist)
	}
}

func TestFileLossFault(t *testing.T) {
	s := NewServer()
	commit(t, s, "acct", dropboxssm.FileCommit{File: "a", Blocklist: "x", Size: 1})
	commit(t, s, "acct", dropboxssm.FileCommit{File: "b", Blocklist: "y", Size: 1})
	s.InjectFileLoss("b")
	files := list(t, s, "acct")
	if _, ok := files["b"]; ok {
		t.Fatal("hidden file listed")
	}
	if _, ok := files["a"]; !ok {
		t.Fatal("unrelated file affected")
	}
}

func TestBlocklist(t *testing.T) {
	if Blocklist(nil) != "" {
		t.Fatal("empty content blocklist")
	}
	small := Blocklist([]byte("small"))
	if strings.Contains(small, ",") {
		t.Fatal("single block has separator")
	}
	big := make([]byte, BlockSize+1)
	if got := Blocklist(big); strings.Count(got, ",") != 1 {
		t.Fatalf("two-block file blocklist = %q", got)
	}
	// Deterministic and content-sensitive.
	if Blocklist([]byte("a")) == Blocklist([]byte("b")) {
		t.Fatal("blocklists collide")
	}
	if Blocklist([]byte("a")) != Blocklist([]byte("a")) {
		t.Fatal("blocklist not deterministic")
	}
}

func TestBadRequests(t *testing.T) {
	s := NewServer()
	if rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/dropbox/commit_batch", []byte("junk"))); rsp.Status != 400 {
		t.Fatalf("bad json -> %d", rsp.Status)
	}
	if rsp := s.Handler().Handle(httpparse.NewRequest("GET", "/elsewhere", nil)); rsp.Status != 404 {
		t.Fatalf("wrong path -> %d", rsp.Status)
	}
}
