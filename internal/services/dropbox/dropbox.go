// Package dropbox implements the block-based file storage service of the
// paper's evaluation (§6.1): files are split into 4 MB blocks identified by
// hashes; commit_batch messages upload new file metadata (the blocklist) and
// list requests return each account's current files. Fault injection covers
// blocklist corruption, stale metadata and silently lost files. The real
// Dropbox sits across a WAN; the evaluation reaches it through a Squid proxy
// over a simulated 76 ms link (§6.4).
package dropbox

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/services/apache"
	"libseal/internal/ssm/dropboxssm"
)

// BlockSize is Dropbox's 4 MB block granularity.
const BlockSize = 4 << 20

// fileMeta is the stored metadata of one file.
type fileMeta struct {
	blocklist string
	size      int64
}

// Faults injects integrity violations.
type Faults struct {
	// CorruptBlocklistOf rewrites the returned blocklist for these files.
	CorruptBlocklistOf map[string]bool
	// ServeStaleFor returns the previous blocklist for these files.
	ServeStaleFor map[string]bool
	// HideFiles omits these files from list responses.
	HideFiles map[string]bool
}

// Server is the Dropbox-like service.
type Server struct {
	mu       sync.Mutex
	accounts map[string]map[string]*fileMeta // account -> file -> meta
	previous map[string]map[string]string    // account -> file -> prior blocklist
	faults   Faults
	// ProcessingCost models server-side metadata work per request.
	ProcessingCost time.Duration
}

// NewServer creates an empty service.
func NewServer() *Server {
	return &Server{
		accounts: make(map[string]map[string]*fileMeta),
		previous: make(map[string]map[string]string),
		faults: Faults{
			CorruptBlocklistOf: make(map[string]bool),
			ServeStaleFor:      make(map[string]bool),
			HideFiles:          make(map[string]bool),
		},
	}
}

// InjectBlocklistCorruption corrupts the returned blocklist of a file.
func (s *Server) InjectBlocklistCorruption(file string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.CorruptBlocklistOf[file] = true
}

// InjectStaleMetadata serves the previous blocklist of a file.
func (s *Server) InjectStaleMetadata(file string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.ServeStaleFor[file] = true
}

// ClearFaults restores honest behaviour.
func (s *Server) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = Faults{
		CorruptBlocklistOf: make(map[string]bool),
		ServeStaleFor:      make(map[string]bool),
		HideFiles:          make(map[string]bool),
	}
}

// InjectFileLoss hides a file from list responses.
func (s *Server) InjectFileLoss(file string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.HideFiles[file] = true
}

// Blocklist computes the canonical blocklist of a file's content: one
// SHA-256 per 4 MB block, comma-joined. Exported for workload generators.
func Blocklist(content []byte) string {
	if len(content) == 0 {
		return ""
	}
	var hashes []string
	for off := 0; off < len(content); off += BlockSize {
		end := off + BlockSize
		if end > len(content) {
			end = len(content)
		}
		h := sha256.Sum256(content[off:end])
		hashes = append(hashes, hex.EncodeToString(h[:8]))
	}
	return strings.Join(hashes, ",")
}

// Handler exposes the API: POST /dropbox/commit_batch, GET /dropbox/list.
func (s *Server) Handler() apache.Handler {
	return apache.HandlerFunc(s.handle)
}

func (s *Server) handle(req *httpparse.Request) *httpparse.Response {
	if s.ProcessingCost > 0 {
		spinFor(s.ProcessingCost)
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/dropbox/") {
		return httpparse.NewResponse(404, nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch strings.TrimPrefix(path, "/dropbox/") {
	case "commit_batch":
		var msg dropboxssm.CommitBatchMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		files := s.accounts[msg.Account]
		if files == nil {
			files = make(map[string]*fileMeta)
			s.accounts[msg.Account] = files
		}
		prev := s.previous[msg.Account]
		if prev == nil {
			prev = make(map[string]string)
			s.previous[msg.Account] = prev
		}
		for _, c := range msg.Commits {
			if old, ok := files[c.File]; ok {
				prev[c.File] = old.blocklist
			}
			if c.Size == -1 {
				delete(files, c.File)
				continue
			}
			files[c.File] = &fileMeta{blocklist: c.Blocklist, size: c.Size}
		}
		return jsonRsp(map[string]int{"ok": 1})

	case "list":
		account := req.Query("account")
		files := s.accounts[account]
		var names []string
		for name := range files {
			if s.faults.HideFiles[name] {
				continue
			}
			names = append(names, name)
		}
		sort.Strings(names)
		out := dropboxssm.ListRsp{}
		for _, name := range names {
			meta := files[name]
			blocks := meta.blocklist
			if s.faults.ServeStaleFor[name] {
				if old, ok := s.previous[account][name]; ok {
					blocks = old
				}
			}
			if s.faults.CorruptBlocklistOf[name] {
				blocks = "deadbeef" + blocks
			}
			out.Files = append(out.Files, dropboxssm.FileCommit{
				File: name, Blocklist: blocks, Size: meta.size,
			})
		}
		return jsonRsp(out)
	}
	return httpparse.NewResponse(404, nil)
}

// FileCount reports an account's live file count (test introspection).
func (s *Server) FileCount(account string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.accounts[account])
}

func jsonRsp(v any) *httpparse.Response {
	body, err := json.Marshal(v)
	if err != nil {
		return httpparse.NewResponse(500, nil)
	}
	rsp := httpparse.NewResponse(200, body)
	rsp.Header.Set("Content-Type", "application/json")
	return rsp
}

func spinFor(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}
