package apache

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"libseal/internal/asyncall"
	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

func startServer(t *testing.T, cfg Config) (*netsim.Network, *Server) {
	t.Helper()
	nw := netsim.NewNetwork()
	l, err := nw.Listen("apache:443")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return nw, srv
}

func TestServeStaticNative(t *testing.T) {
	env, err := testutil.NewCertEnv("apache.test")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("x"), 1024)
	nw, srv := startServer(t, Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler:    &StaticHandler{Content: content},
		KeepAlive:  true,
	})
	client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("apache:443") },
		env.ClientConfig("apache.test"), true)
	defer client.Close()
	for i := 0; i < 5; i++ {
		rsp, err := client.Do(httpparse.NewRequest("GET", fmt.Sprintf("/file%d", i), nil))
		if err != nil {
			t.Fatal(err)
		}
		if rsp.Status != 200 || !bytes.Equal(rsp.Body, content) {
			t.Fatalf("rsp %d: status=%d len=%d", i, rsp.Status, len(rsp.Body))
		}
	}
	if srv.Served() != 5 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestServeViaLibSEALTerminator(t *testing.T) {
	env, err := testutil.NewCertEnv("apache.test")
	if err != nil {
		t.Fatal(err)
	}
	_, bridge, err := testutil.NewBridge(testutil.BridgeOptions{Mode: asyncall.ModeAsync})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	lib, err := tlsterm.NewLibrary(bridge, tlsterm.LibraryConfig{
		Cert: env.Cert, Key: env.Key, Opts: tlsterm.AllOptimizations(),
	})
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := startServer(t, Config{
		Terminator: lib.Terminator(),
		Handler:    &StaticHandler{Content: []byte("enclave content")},
		KeepAlive:  true,
		UseExData:  true,
	})
	client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("apache:443") },
		env.ClientConfig("apache.test"), true)
	defer client.Close()
	rsp, err := client.Do(httpparse.NewRequest("GET", "/x", nil))
	if err != nil || string(rsp.Body) != "enclave content" {
		t.Fatalf("rsp = %v, %v", rsp, err)
	}
}

func TestNonPersistentConnections(t *testing.T) {
	env, _ := testutil.NewCertEnv("apache.test")
	nw, srv := startServer(t, Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler:    &StaticHandler{Content: []byte("one-shot")},
		KeepAlive:  false,
	})
	client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("apache:443") },
		env.ClientConfig("apache.test"), false)
	for i := 0; i < 3; i++ {
		rsp, err := client.Do(httpparse.NewRequest("GET", "/", nil))
		if err != nil || rsp.Status != 200 {
			t.Fatalf("request %d: %v %v", i, rsp, err)
		}
		if rsp.Header.Get("Connection") != "close" {
			t.Fatal("missing Connection: close")
		}
	}
	if srv.Served() != 3 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestConcurrentClients(t *testing.T) {
	env, _ := testutil.NewCertEnv("apache.test")
	nw, _ := startServer(t, Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler:    &StaticHandler{Content: []byte("c")},
		KeepAlive:  true,
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("apache:443") },
				env.ClientConfig("apache.test"), true)
			defer client.Close()
			for j := 0; j < 10; j++ {
				if _, err := client.Do(httpparse.NewRequest("GET", "/", nil)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestReverseProxy(t *testing.T) {
	env, _ := testutil.NewCertEnv("apache.test")
	nw := netsim.NewNetwork()

	// Plain-HTTP backend.
	backendListener, _ := nw.Listen("backend:80")
	backend, _ := New(Config{
		Terminator: tlsterm.PlainTerminator{},
		Handler: HandlerFunc(func(req *httpparse.Request) *httpparse.Response {
			return httpparse.NewResponse(200, []byte("from backend "+req.Path))
		}),
	})
	go backend.Serve(backendListener)
	defer backend.Close()

	// TLS front-end proxying to it.
	frontListener, _ := nw.Listen("front:443")
	front, _ := New(Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler:    &ReverseProxy{Dial: func() (net.Conn, error) { return nw.Dial("backend:80") }},
		KeepAlive:  true,
	})
	go front.Serve(frontListener)
	defer front.Close()

	client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("front:443") },
		env.ClientConfig("apache.test"), true)
	defer client.Close()
	rsp, err := client.Do(httpparse.NewRequest("GET", "/repo", nil))
	if err != nil || string(rsp.Body) != "from backend /repo" {
		t.Fatalf("rsp = %v, %v", rsp, err)
	}
}

func TestReverseProxyBackendDown(t *testing.T) {
	env, _ := testutil.NewCertEnv("apache.test")
	nw, _ := startServer(t, Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler:    &ReverseProxy{Dial: func() (net.Conn, error) { return nil, fmt.Errorf("down") }},
		KeepAlive:  true,
	})
	client := testutil.NewHTTPClient(func() (net.Conn, error) { return nw.Dial("apache:443") },
		env.ClientConfig("apache.test"), true)
	defer client.Close()
	rsp, err := client.Do(httpparse.NewRequest("GET", "/", nil))
	if err != nil || rsp.Status != 502 {
		t.Fatalf("rsp = %v, %v", rsp, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
