// Package apache implements a multi-worker HTTP/1.1 server modelled on the
// Apache httpd deployments of the paper's evaluation (§6.4, §6.6): it serves
// static content, hosts application handlers, and can run as a reverse proxy
// in front of backend servers — the configuration used for the large-scale
// Git experiment. The server speaks TLS through a tlsterm.Terminator, so the
// same code runs against native TLS (the LibreSSL baseline) and LibSEAL.
package apache

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/tlsterm"
)

// Handler processes one request.
type Handler interface {
	Handle(req *httpparse.Request) *httpparse.Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *httpparse.Request) *httpparse.Response

// Handle implements Handler.
func (f HandlerFunc) Handle(req *httpparse.Request) *httpparse.Response { return f(req) }

// Config configures the server.
type Config struct {
	// Terminator performs TLS termination for accepted connections.
	Terminator tlsterm.Terminator
	// Handler serves requests.
	Handler Handler
	// KeepAlive allows persistent connections. The paper's §6.6 worst-case
	// experiments use non-persistent connections (one request each).
	KeepAlive bool
	// UseExData stores the current request path in the TLS object's
	// application data, as Apache does (§4.2, optimisation 3).
	UseExData bool
}

// Server is one Apache-like instance.
type Server struct {
	cfg     Config
	wg      sync.WaitGroup
	closed  atomic.Bool
	served  atomic.Int64
	lnMu    sync.Mutex
	current net.Listener
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	if cfg.Terminator == nil || cfg.Handler == nil {
		return nil, errors.New("apache: terminator and handler required")
	}
	return &Server{cfg: cfg}, nil
}

// Served reports the number of requests completed.
func (s *Server) Served() int64 { return s.served.Load() }

// Serve accepts connections until the listener closes. Like Apache's worker
// MPM, each connection is handled by its own worker.
func (s *Server) Serve(l net.Listener) error {
	s.lnMu.Lock()
	s.current = l
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight workers.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.lnMu.Lock()
	if s.current != nil {
		s.current.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
}

func (s *Server) handleConn(conn net.Conn) {
	stream, err := s.cfg.Terminator.Accept(conn)
	if err != nil {
		conn.Close()
		return
	}
	defer stream.Close()
	ssl, _ := stream.(*tlsterm.SSL)
	br := bufio.NewReader(stream)
	for {
		req, err := httpparse.ReadRequest(br)
		if err != nil {
			return
		}
		if s.cfg.UseExData && ssl != nil {
			// Apache stores the request in the TLS object (§4.2).
			_ = ssl.SetExData("r->the_request", req.Method+" "+req.Path)
		}
		// Decide persistence from the request before the handler can
		// observe or mutate it.
		keep := s.cfg.KeepAlive && !strings.EqualFold(req.Header.Get("Connection"), "close")
		rsp := s.cfg.Handler.Handle(req)
		if rsp == nil {
			rsp = httpparse.NewResponse(500, nil)
		}
		// A proxied response may carry the backend's Connection header;
		// the front end owns this hop's semantics.
		rsp.Header.Del("Connection")
		if !keep {
			rsp.Header.Set("Connection", "close")
		}
		if _, err := stream.Write(rsp.Bytes()); err != nil {
			return
		}
		s.served.Add(1)
		if !keep {
			return
		}
	}
}

// StaticHandler serves fixed content of a configurable size at any path,
// like the static-file workloads of §6.6. A nonzero ProcessingCost burns CPU
// per request to model application work.
type StaticHandler struct {
	Content        []byte
	ProcessingCost time.Duration
}

// Handle implements Handler.
func (h *StaticHandler) Handle(req *httpparse.Request) *httpparse.Response {
	if h.ProcessingCost > 0 {
		spinFor(h.ProcessingCost)
	}
	return httpparse.NewResponse(200, h.Content)
}

// spinFor busy-loops for d, modelling CPU-bound application work.
func spinFor(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// ReverseProxy forwards requests to a backend over a fresh plain connection,
// the deployment of the paper's Git experiment (§3.2, §6.4): LibSEAL at the
// proxy observes all traffic even when many backend instances serve it.
type ReverseProxy struct {
	// Dial opens a connection to (one of) the backend(s).
	Dial func() (net.Conn, error)
}

// Handle implements Handler.
func (p *ReverseProxy) Handle(req *httpparse.Request) *httpparse.Response {
	conn, err := p.Dial()
	if err != nil {
		return httpparse.NewResponse(502, []byte(err.Error()))
	}
	defer conn.Close()
	fwd := req.Clone()
	fwd.Header.Set("Connection", "close")
	if err := fwd.Encode(conn); err != nil {
		return httpparse.NewResponse(502, []byte(err.Error()))
	}
	rsp, err := httpparse.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return httpparse.NewResponse(502, []byte(fmt.Sprintf("backend: %v", err)))
	}
	return rsp
}
