package owncloud

import (
	"encoding/json"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/ssm/owncloudssm"
)

func do(t *testing.T, s *Server, path string, body any, out any) {
	t.Helper()
	b, _ := json.Marshal(body)
	rsp := s.Handler().Handle(httpparse.NewRequest("POST", path, b))
	if rsp.Status != 200 {
		t.Fatalf("%s -> %d", path, rsp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(rsp.Body, out); err != nil {
			t.Fatalf("%s response: %v", path, err)
		}
	}
}

func TestEditSessionLifecycle(t *testing.T) {
	s := NewServer()
	var join owncloudssm.JoinRsp
	do(t, s, "/owncloud/join", owncloudssm.JoinMsg{Doc: "d", Client: "alice"}, &join)
	if join.Snapshot != "" || join.Seq != 0 {
		t.Fatalf("fresh doc join = %+v", join)
	}
	var push owncloudssm.PushRsp
	do(t, s, "/owncloud/push", owncloudssm.PushMsg{Doc: "d", Client: "alice", Ops: []string{"a", "b"}}, &push)
	if push.Seq != 2 {
		t.Fatalf("push seq = %d", push.Seq)
	}
	var sync owncloudssm.SyncRsp
	do(t, s, "/owncloud/sync", owncloudssm.SyncMsg{Doc: "d", Client: "bob", Since: 0}, &sync)
	if sync.Seq != 2 || len(sync.Ops) != 2 || sync.Ops[0] != "a" {
		t.Fatalf("sync = %+v", sync)
	}
	do(t, s, "/owncloud/leave", owncloudssm.LeaveMsg{Doc: "d", Client: "alice", Snapshot: "ab", Seq: 2}, nil)
	var join2 owncloudssm.JoinRsp
	do(t, s, "/owncloud/join", owncloudssm.JoinMsg{Doc: "d", Client: "carol"}, &join2)
	if join2.Snapshot != "ab" || join2.Seq != 2 {
		t.Fatalf("join after leave = %+v", join2)
	}
}

func TestPartialSync(t *testing.T) {
	s := NewServer()
	do(t, s, "/owncloud/push", owncloudssm.PushMsg{Doc: "d", Client: "a", Ops: []string{"1", "2", "3"}}, nil)
	var sync owncloudssm.SyncRsp
	do(t, s, "/owncloud/sync", owncloudssm.SyncMsg{Doc: "d", Client: "b", Since: 2}, &sync)
	if len(sync.Ops) != 1 || sync.Ops[0] != "3" {
		t.Fatalf("partial sync = %+v", sync)
	}
}

func TestDropFault(t *testing.T) {
	s := NewServer()
	s.SetFaults(Faults{DropEveryNthOp: 2})
	do(t, s, "/owncloud/push", owncloudssm.PushMsg{Doc: "d", Client: "a", Ops: []string{"1", "2", "3", "4"}}, nil)
	var sync owncloudssm.SyncRsp
	do(t, s, "/owncloud/sync", owncloudssm.SyncMsg{Doc: "d", Client: "b", Since: 0}, &sync)
	if sync.Seq != 4 || len(sync.Ops) != 2 {
		t.Fatalf("drop fault: seq=%d ops=%v", sync.Seq, sync.Ops)
	}
}

func TestCorruptFault(t *testing.T) {
	s := NewServer()
	s.SetFaults(Faults{CorruptOps: true})
	do(t, s, "/owncloud/push", owncloudssm.PushMsg{Doc: "d", Client: "a", Ops: []string{"x"}}, nil)
	var sync owncloudssm.SyncRsp
	do(t, s, "/owncloud/sync", owncloudssm.SyncMsg{Doc: "d", Client: "b", Since: 0}, &sync)
	if sync.Ops[0] != "corrupted:x" {
		t.Fatalf("corrupt fault: %v", sync.Ops)
	}
}

func TestStaleSnapshotFault(t *testing.T) {
	s := NewServer()
	do(t, s, "/owncloud/leave", owncloudssm.LeaveMsg{Doc: "d", Client: "a", Snapshot: "v1", Seq: 1}, nil)
	do(t, s, "/owncloud/leave", owncloudssm.LeaveMsg{Doc: "d", Client: "b", Snapshot: "v2", Seq: 2}, nil)
	s.SetFaults(Faults{ServeStaleSnapshot: true})
	var join owncloudssm.JoinRsp
	do(t, s, "/owncloud/join", owncloudssm.JoinMsg{Doc: "d", Client: "c"}, &join)
	if join.Snapshot != "v1" {
		t.Fatalf("stale fault: %+v", join)
	}
}

func TestDocumentsIsolated(t *testing.T) {
	s := NewServer()
	do(t, s, "/owncloud/push", owncloudssm.PushMsg{Doc: "d1", Client: "a", Ops: []string{"x"}}, nil)
	var sync owncloudssm.SyncRsp
	do(t, s, "/owncloud/sync", owncloudssm.SyncMsg{Doc: "d2", Client: "b", Since: 0}, &sync)
	if sync.Seq != 0 || len(sync.Ops) != 0 {
		t.Fatalf("documents leaked: %+v", sync)
	}
	if got := s.Ops("d1"); len(got) != 1 {
		t.Fatalf("Ops = %v", got)
	}
}

func TestBadRequests(t *testing.T) {
	s := NewServer()
	if rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/owncloud/push", []byte("not json"))); rsp.Status != 400 {
		t.Fatalf("bad json -> %d", rsp.Status)
	}
	if rsp := s.Handler().Handle(httpparse.NewRequest("GET", "/owncloud/push", nil)); rsp.Status != 404 {
		t.Fatalf("GET -> %d", rsp.Status)
	}
	if rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/owncloud/unknown", []byte("{}"))); rsp.Status != 404 {
		t.Fatalf("unknown endpoint -> %d", rsp.Status)
	}
}
