// Package owncloud implements the collaborative document editing service of
// the paper's evaluation (§6.1): clients within an editing session exchange
// JSON-encoded updates through the server, which assigns the global order;
// departing clients upload snapshots that joining clients receive. Because
// the server must read and modify document content, client-side encryption
// is impossible — exactly the setting LibSEAL audits. Fault injection covers
// lost edits, altered edits and stale snapshots. A per-request processing
// cost models the PHP engine that bottlenecks the real deployment (§6.4).
package owncloud

import (
	"encoding/json"
	"strings"
	"sync"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/services/apache"
	"libseal/internal/ssm/owncloudssm"
)

// document is the server-side session state for one document.
type document struct {
	ops      []string // global op log; seq n is ops[n-1]
	snapshot string   // latest uploaded snapshot
	snapSeq  int64
	members  map[string]bool
}

// Faults injects integrity violations.
type Faults struct {
	// DropEveryNthOp silently discards every Nth relayed op in sync
	// responses while still advertising the full head sequence (lost
	// edits). Zero disables.
	DropEveryNthOp int
	// CorruptOps rewrites relayed op payloads (altered edits).
	CorruptOps bool
	// ServeStaleSnapshot hands joining clients an outdated snapshot.
	ServeStaleSnapshot bool
}

// Server is the ownCloud Documents service.
type Server struct {
	mu   sync.Mutex
	docs map[string]*document
	// staleSnapshots remembers the previous snapshot per doc for the
	// stale-snapshot fault.
	staleSnapshots map[string]string
	staleSeqs      map[string]int64

	faults Faults
	// ProcessingCost models the PHP engine per request.
	ProcessingCost time.Duration
	synced         int64
}

// NewServer creates an empty service.
func NewServer() *Server {
	return &Server{
		docs:           make(map[string]*document),
		staleSnapshots: make(map[string]string),
		staleSeqs:      make(map[string]int64),
	}
}

// SetFaults replaces the fault configuration.
func (s *Server) SetFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// Handler exposes the service API: POST /owncloud/{join,push,sync,leave}.
func (s *Server) Handler() apache.Handler {
	return apache.HandlerFunc(s.handle)
}

func (s *Server) handle(req *httpparse.Request) *httpparse.Response {
	if s.ProcessingCost > 0 {
		spinFor(s.ProcessingCost)
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/owncloud/") || req.Method != "POST" {
		return httpparse.NewResponse(404, nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch strings.TrimPrefix(path, "/owncloud/") {
	case "join":
		var msg owncloudssm.JoinMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		d := s.doc(msg.Doc)
		d.members[msg.Client] = true
		out := owncloudssm.JoinRsp{Snapshot: d.snapshot, Seq: d.snapSeq}
		if s.faults.ServeStaleSnapshot {
			if old, ok := s.staleSnapshots[msg.Doc]; ok {
				out.Snapshot = old
				out.Seq = s.staleSeqs[msg.Doc]
			}
		}
		return jsonRsp(out)

	case "push":
		var msg owncloudssm.PushMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		d := s.doc(msg.Doc)
		d.ops = append(d.ops, msg.Ops...)
		return jsonRsp(owncloudssm.PushRsp{Seq: int64(len(d.ops))})

	case "sync":
		var msg owncloudssm.SyncMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		d := s.doc(msg.Doc)
		head := int64(len(d.ops))
		var ops []string
		for seq := msg.Since + 1; seq <= head; seq++ {
			op := d.ops[seq-1]
			s.synced++
			if n := s.faults.DropEveryNthOp; n > 0 && s.synced%int64(n) == 0 {
				continue // lost edit: op dropped, head still advertised
			}
			if s.faults.CorruptOps {
				op = "corrupted:" + op
			}
			ops = append(ops, op)
		}
		return jsonRsp(owncloudssm.SyncRsp{Ops: ops, Seq: head})

	case "leave":
		var msg owncloudssm.LeaveMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		d := s.doc(msg.Doc)
		// Remember the previous snapshot for the stale-snapshot fault.
		if d.snapshot != "" {
			s.staleSnapshots[msg.Doc] = d.snapshot
			s.staleSeqs[msg.Doc] = d.snapSeq
		}
		d.snapshot = msg.Snapshot
		d.snapSeq = msg.Seq
		delete(d.members, msg.Client)
		return jsonRsp(map[string]int{"ok": 1})
	}
	return httpparse.NewResponse(404, nil)
}

func (s *Server) doc(name string) *document {
	d, ok := s.docs[name]
	if !ok {
		d = &document{members: make(map[string]bool)}
		s.docs[name] = d
	}
	return d
}

// Ops returns the server's op log for a document (test introspection).
func (s *Server) Ops(doc string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[doc]
	if !ok {
		return nil
	}
	return append([]string(nil), d.ops...)
}

func jsonRsp(v any) *httpparse.Response {
	body, err := json.Marshal(v)
	if err != nil {
		return httpparse.NewResponse(500, nil)
	}
	rsp := httpparse.NewResponse(200, body)
	rsp.Header.Set("Content-Type", "application/json")
	return rsp
}

func spinFor(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}
