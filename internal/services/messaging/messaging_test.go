package messaging

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
	"libseal/internal/ssm/messagingssm"
)

func do(t *testing.T, s *Server, path string, body any, out any) {
	t.Helper()
	b, _ := json.Marshal(body)
	rsp := s.Handler().Handle(httpparse.NewRequest("POST", path, b))
	if rsp.Status != 200 {
		t.Fatalf("%s -> %d", path, rsp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(rsp.Body, out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendAndInbox(t *testing.T) {
	s := NewServer()
	var ack messagingssm.SendAck
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "alice", To: "bob", Body: "hi"}, &ack)
	if ack.ID == "" || ack.Seq != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "carol", To: "bob", Body: "yo"}, nil)
	var inbox messagingssm.InboxRsp
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "bob", Since: 0}, &inbox)
	if inbox.Seq != 2 || len(inbox.Messages) != 2 || inbox.Messages[0].Body != "hi" {
		t.Fatalf("inbox = %+v", inbox)
	}
	// Incremental fetch.
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "bob", Since: 1}, &inbox)
	if len(inbox.Messages) != 1 || inbox.Messages[0].Body != "yo" {
		t.Fatalf("incremental inbox = %+v", inbox)
	}
	if s.MailboxSize("bob") != 2 {
		t.Fatal("mailbox size")
	}
}

func TestMailboxesIsolated(t *testing.T) {
	s := NewServer()
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "a", To: "bob", Body: "x"}, nil)
	var inbox messagingssm.InboxRsp
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "carol", Since: 0}, &inbox)
	if len(inbox.Messages) != 0 || inbox.Seq != 0 {
		t.Fatalf("leak: %+v", inbox)
	}
}

func TestDropFault(t *testing.T) {
	s := NewServer()
	s.SetFaults(Faults{DropEveryNth: 2})
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "a", To: "b", Body: "1"}, nil)
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "a", To: "b", Body: "2"}, nil)
	var inbox messagingssm.InboxRsp
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "b", Since: 0}, &inbox)
	if inbox.Seq != 2 || len(inbox.Messages) != 1 {
		t.Fatalf("drop fault: %+v", inbox)
	}
}

func TestCorruptFault(t *testing.T) {
	s := NewServer()
	s.SetFaults(Faults{CorruptBodies: true})
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "a", To: "b", Body: "x"}, nil)
	var inbox messagingssm.InboxRsp
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "b", Since: 0}, &inbox)
	if inbox.Messages[0].Body != "corrupted:x" {
		t.Fatalf("corrupt fault: %+v", inbox)
	}
}

func TestMisdeliverFault(t *testing.T) {
	s := NewServer()
	do(t, s, "/messaging/send", messagingssm.SendMsg{From: "a", To: "bob", Body: "private"}, nil)
	s.SetFaults(Faults{MisdeliverTo: "eve"})
	var inbox messagingssm.InboxRsp
	do(t, s, "/messaging/inbox", messagingssm.InboxMsg{User: "eve", Since: 0}, &inbox)
	if len(inbox.Messages) != 1 || inbox.Messages[0].To != "bob" {
		t.Fatalf("misdeliver fault: %+v", inbox)
	}
}

func TestBadRequests(t *testing.T) {
	s := NewServer()
	if rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/messaging/send", []byte("junk"))); rsp.Status != 400 {
		t.Fatalf("bad json -> %d", rsp.Status)
	}
	if rsp := s.Handler().Handle(httpparse.NewRequest("GET", "/messaging/send", nil)); rsp.Status != 404 {
		t.Fatalf("GET -> %d", rsp.Status)
	}
}

// TestEndToEndDetection drives the messaging service through the module the
// way LibSEAL would and checks all three violation classes.
func TestEndToEndDetection(t *testing.T) {
	mod := messagingssm.New()
	type scenario struct {
		name      string
		faults    Faults
		invariant string
	}
	for _, sc := range []scenario{
		{"drop", Faults{DropEveryNth: 1}, "messaging-delivery-completeness"},
		{"corrupt", Faults{CorruptBodies: true}, "messaging-delivery-soundness"},
		{"misdeliver", Faults{MisdeliverTo: "eve"}, "messaging-recipient"},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := NewServer()
			db, logPair := newAuditPipe(t, mod)
			send := func(from, to, body string) {
				b, _ := json.Marshal(messagingssm.SendMsg{From: from, To: to, Body: body})
				req := httpparse.NewRequest("POST", "/messaging/send", b)
				logPair(req, s.Handler().Handle(req))
			}
			fetch := func(user string) {
				b, _ := json.Marshal(messagingssm.InboxMsg{User: user, Since: 0})
				req := httpparse.NewRequest("POST", "/messaging/inbox", b)
				logPair(req, s.Handler().Handle(req))
			}
			send("alice", "bob", "hello bob")
			s.SetFaults(sc.faults)
			fetch("bob")
			fetch("eve")
			violations, err := checkInvariants(db, mod)
			if err != nil {
				t.Fatal(err)
			}
			if !violations[sc.invariant] {
				t.Fatalf("%s not detected: %v", sc.invariant, violations)
			}
		})
	}
}

// newAuditPipe builds a module-backed database and a pair logger.
func newAuditPipe(t *testing.T, mod *messagingssm.Module) (*sqldb.DB, func(*httpparse.Request, *httpparse.Response)) {
	t.Helper()
	db := sqldb.New()
	if _, err := db.Exec(mod.Schema()); err != nil {
		t.Fatal(err)
	}
	var logical int64
	logPair := func(req *httpparse.Request, rsp *httpparse.Response) {
		t.Helper()
		logical++
		tuples, err := mod.HandlePair(&ssm.State{Time: logical, DB: db}, req.Bytes(), rsp.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tuples {
			ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, logPair
}

// checkInvariants reports which invariants are violated.
func checkInvariants(db *sqldb.DB, mod *messagingssm.Module) (map[string]bool, error) {
	res, err := ssm.CheckInvariants(db, mod)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for name := range res {
		out[name] = true
	}
	return out, nil
}
