// Package messaging implements an XMPP-style instant messaging service, the
// fourth application scenario of the paper's motivation (§2.2): clients
// exchange messages relayed through a central provider, whose faults or bugs
// may drop, modify or misdeliver them (§2.2 cites a jabberd CVE). Fault
// injection covers all three failure classes so the messaging SSM can be
// exercised end to end.
package messaging

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/services/apache"
	"libseal/internal/ssm/messagingssm"
)

// message is one stored mailbox entry.
type message struct {
	id     string
	from   string
	to     string
	body   string
	seq    int64
	hidden bool // dropped by fault injection
}

// Faults injects integrity violations.
type Faults struct {
	// DropEveryNth silently drops every Nth delivered message while the
	// inbox response still advertises the full head sequence.
	DropEveryNth int
	// CorruptBodies rewrites message bodies on delivery.
	CorruptBodies bool
	// MisdeliverTo, when set, reroutes deliveries of other users' messages
	// into this user's inbox responses.
	MisdeliverTo string
}

// Server is the messaging service.
type Server struct {
	mu        sync.Mutex
	mailboxes map[string][]*message
	nextID    int64
	delivered int64
	faults    Faults
	// ProcessingCost models per-message server work.
	ProcessingCost time.Duration
}

// NewServer creates an empty service.
func NewServer() *Server {
	return &Server{mailboxes: make(map[string][]*message)}
}

// SetFaults replaces the fault configuration.
func (s *Server) SetFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// Handler exposes the API: POST /messaging/{send,inbox}.
func (s *Server) Handler() apache.Handler {
	return apache.HandlerFunc(s.handle)
}

func (s *Server) handle(req *httpparse.Request) *httpparse.Response {
	if s.ProcessingCost > 0 {
		start := time.Now()
		for time.Since(start) < s.ProcessingCost {
		}
	}
	path := req.PathOnly()
	if !strings.HasPrefix(path, "/messaging/") || req.Method != "POST" {
		return httpparse.NewResponse(404, nil)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch strings.TrimPrefix(path, "/messaging/") {
	case "send":
		var msg messagingssm.SendMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		s.nextID++
		box := s.mailboxes[msg.To]
		m := &message{
			id:   fmt.Sprintf("m-%06d", s.nextID),
			from: msg.From, to: msg.To, body: msg.Body,
			seq: int64(len(box)) + 1,
		}
		s.mailboxes[msg.To] = append(box, m)
		return jsonRsp(messagingssm.SendAck{ID: m.id, Seq: m.seq})

	case "inbox":
		var msg messagingssm.InboxMsg
		if err := json.Unmarshal(req.Body, &msg); err != nil {
			return httpparse.NewResponse(400, nil)
		}
		box := s.mailboxes[msg.User]
		out := messagingssm.InboxRsp{Seq: int64(len(box))}
		for _, m := range box {
			if m.seq <= msg.Since {
				continue
			}
			s.delivered++
			if n := s.faults.DropEveryNth; n > 0 && s.delivered%int64(n) == 0 {
				continue // dropped message; head sequence still advertised
			}
			body := m.body
			if s.faults.CorruptBodies {
				body = "corrupted:" + body
			}
			out.Messages = append(out.Messages, messagingssm.Delivered{
				ID: m.id, From: m.from, To: m.to, Body: body,
			})
		}
		if victim := s.faults.MisdeliverTo; victim == msg.User {
			// Leak another user's most recent message into this inbox.
			for user, other := range s.mailboxes {
				if user == msg.User || len(other) == 0 {
					continue
				}
				m := other[len(other)-1]
				out.Messages = append(out.Messages, messagingssm.Delivered{
					ID: m.id, From: m.from, To: m.to, Body: m.body,
				})
				break
			}
		}
		return jsonRsp(out)
	}
	return httpparse.NewResponse(404, nil)
}

// MailboxSize reports a user's stored message count.
func (s *Server) MailboxSize(user string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mailboxes[user])
}

func jsonRsp(v any) *httpparse.Response {
	body, err := json.Marshal(v)
	if err != nil {
		return httpparse.NewResponse(500, nil)
	}
	rsp := httpparse.NewResponse(200, body)
	rsp.Header.Set("Content-Type", "application/json")
	return rsp
}
