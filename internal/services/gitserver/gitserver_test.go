package gitserver

import (
	"strings"
	"testing"

	"libseal/internal/httpparse"
)

func push(t *testing.T, s *Server, repo string, lines ...string) {
	t.Helper()
	rsp := s.Handler().Handle(httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
		[]byte(strings.Join(lines, "\n"))))
	if rsp.Status != 200 {
		t.Fatalf("push status %d", rsp.Status)
	}
}

func advertise(t *testing.T, s *Server, repo string) map[string]string {
	t.Helper()
	rsp := s.Handler().Handle(httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil))
	if rsp.Status != 200 {
		t.Fatalf("advertise status %d", rsp.Status)
	}
	refs := map[string]string{}
	for _, line := range strings.Split(string(rsp.Body), "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == "ref" {
			refs[f[1]] = f[2]
		}
	}
	return refs
}

func TestPushAndAdvertise(t *testing.T) {
	s := NewServer()
	push(t, s, "r", "create main c1")
	push(t, s, "r", "update main c2", "create dev d1")
	refs := advertise(t, s, "r")
	if refs["main"] != "c2" || refs["dev"] != "d1" {
		t.Fatalf("refs = %v", refs)
	}
	if id, ok := s.Head("r", "main"); !ok || id != "c2" {
		t.Fatalf("Head = %q %v", id, ok)
	}
}

func TestDeleteBranch(t *testing.T) {
	s := NewServer()
	push(t, s, "r", "create main c1", "create dev d1")
	push(t, s, "r", "delete dev d1")
	refs := advertise(t, s, "r")
	if _, ok := refs["dev"]; ok {
		t.Fatal("deleted branch still advertised")
	}
}

func TestRollbackFault(t *testing.T) {
	s := NewServer()
	push(t, s, "r", "create main c1")
	push(t, s, "r", "update main c2")
	s.InjectRollback("r", "main", "c1")
	if refs := advertise(t, s, "r"); refs["main"] != "c1" {
		t.Fatalf("rollback not injected: %v", refs)
	}
	// The stored repository is untouched: the attack is advertisement-only.
	if id, _ := s.Head("r", "main"); id != "c2" {
		t.Fatalf("repository state corrupted: %s", id)
	}
	s.ClearFaults()
	if refs := advertise(t, s, "r"); refs["main"] != "c2" {
		t.Fatal("faults not cleared")
	}
}

func TestTeleportFault(t *testing.T) {
	s := NewServer()
	push(t, s, "r", "create main c1", "create dev d9")
	s.InjectTeleport("r", "main", "d9")
	if refs := advertise(t, s, "r"); refs["main"] != "d9" {
		t.Fatalf("teleport not injected: %v", refs)
	}
}

func TestRefDeletionFault(t *testing.T) {
	s := NewServer()
	push(t, s, "r", "create main c1", "create dev d1")
	s.InjectRefDeletion("r", "dev")
	refs := advertise(t, s, "r")
	if _, ok := refs["dev"]; ok {
		t.Fatal("hidden ref still advertised")
	}
	if refs["main"] != "c1" {
		t.Fatal("unrelated ref affected")
	}
}

func TestUnknownEndpoints(t *testing.T) {
	s := NewServer()
	for _, req := range []*httpparse.Request{
		httpparse.NewRequest("GET", "/not-git/x/info/refs", nil),
		httpparse.NewRequest("PUT", "/git/r/git-receive-pack", nil),
		httpparse.NewRequest("GET", "/git/r", nil),
	} {
		if rsp := s.Handler().Handle(req); rsp.Status != 404 {
			t.Errorf("%s %s -> %d, want 404", req.Method, req.Path, rsp.Status)
		}
	}
}

func TestAdvertiseEmptyRepo(t *testing.T) {
	s := NewServer()
	if refs := advertise(t, s, "void"); len(refs) != 0 {
		t.Fatalf("empty repo advertised refs: %v", refs)
	}
}

func TestCommitIDChains(t *testing.T) {
	a := commitID("", "m1", "t1")
	b := commitID(a, "m2", "t2")
	b2 := commitID(a, "m2", "t2")
	if b != b2 {
		t.Fatal("commit ID not deterministic")
	}
	if a == b {
		t.Fatal("chained commits collide")
	}
	if len(a) != 40 {
		t.Fatalf("ID length %d, want 40", len(a))
	}
}

func TestHistoryGeneratorReplay(t *testing.T) {
	s := NewServer()
	g := NewHistoryGenerator("repo", 42)
	for i := 0; i < 300; i++ {
		push(t, s, "repo", g.PushLines())
	}
	refs := advertise(t, s, "repo")
	heads := g.Heads()
	if len(refs) != len(heads) {
		t.Fatalf("server has %d refs, generator %d", len(refs), len(heads))
	}
	for branch, id := range heads {
		if refs[branch] != id {
			t.Fatalf("branch %s: server %s, generator %s", branch, refs[branch], id)
		}
	}
}

func TestHistoryGeneratorDeterministic(t *testing.T) {
	g1 := NewHistoryGenerator("r", 7)
	g2 := NewHistoryGenerator("r", 7)
	for i := 0; i < 100; i++ {
		if g1.PushLines() != g2.PushLines() {
			t.Fatalf("generators diverged at step %d", i)
		}
	}
}
