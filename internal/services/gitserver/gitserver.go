// Package gitserver implements the Git service of the paper's evaluation: an
// in-memory Git object store (commits forming a hash chain, branch and tag
// pointers) behind a smart-HTTP-style interface, plus fault injection for
// the teleport, rollback and reference-deletion attacks of Torres-Arias et
// al. (§6.1) that Git's own hash chain cannot detect. A workload generator
// replays synthetic commit histories like the paper's replay of real
// repositories (§6.4).
package gitserver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/services/apache"
)

// Commit is one node of a repository's commit graph. Its ID is the hash of
// its content and parent, giving Git's integrity chain for file contents.
type Commit struct {
	ID      string
	Parent  string
	Message string
	Tree    string // stands in for the content snapshot
}

// Repo is one repository: a commit store plus branch/tag pointers.
type Repo struct {
	Commits  map[string]*Commit
	Branches map[string]string // name -> commit ID
	Tags     map[string]string
}

func newRepo() *Repo {
	return &Repo{
		Commits:  make(map[string]*Commit),
		Branches: make(map[string]string),
		Tags:     make(map[string]string),
	}
}

// commitID hashes a commit, chaining the parent ID.
func commitID(parent, message, tree string) string {
	h := sha256.Sum256([]byte(parent + "\x00" + message + "\x00" + tree))
	return hex.EncodeToString(h[:20]) // git-sized 40-hex-char ID
}

// Faults injects the integrity attacks of §6.1 into advertisements. The
// stored repository is untouched — exactly the class of violation that
// clients cannot see without LibSEAL.
type Faults struct {
	// RollbackRefs maps "repo/branch" to an older commit ID to advertise.
	RollbackRefs map[string]string
	// TeleportRefs maps "repo/branch" to a commit ID from another branch.
	TeleportRefs map[string]string
	// HiddenRefs lists "repo/branch" references omitted from
	// advertisements.
	HiddenRefs map[string]bool
}

// Server is the Git service.
type Server struct {
	mu     sync.Mutex
	repos  map[string]*Repo
	faults Faults
	// ProcessingCost models the server-side pack/object work per request.
	ProcessingCost time.Duration
}

// NewServer creates an empty Git service.
func NewServer() *Server {
	return &Server{
		repos: make(map[string]*Repo),
		faults: Faults{
			RollbackRefs: make(map[string]string),
			TeleportRefs: make(map[string]string),
			HiddenRefs:   make(map[string]bool),
		},
	}
}

// InjectRollback makes future advertisements of repo/branch return the
// current commit's ancestor (or the given ID).
func (s *Server) InjectRollback(repo, branch, oldID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.RollbackRefs[repo+"/"+branch] = oldID
}

// InjectTeleport makes future advertisements of repo/branch point at the
// head of another branch.
func (s *Server) InjectTeleport(repo, branch, foreignID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.TeleportRefs[repo+"/"+branch] = foreignID
}

// InjectRefDeletion hides repo/branch from future advertisements.
func (s *Server) InjectRefDeletion(repo, branch string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.HiddenRefs[repo+"/"+branch] = true
}

// ClearFaults restores honest behaviour.
func (s *Server) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = Faults{
		RollbackRefs: make(map[string]string),
		TeleportRefs: make(map[string]string),
		HiddenRefs:   make(map[string]bool),
	}
}

// Head returns a branch's current commit ID.
func (s *Server) Head(repo, branch string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[repo]
	if !ok {
		return "", false
	}
	id, ok := r.Branches[branch]
	return id, ok
}

// Handler exposes the service over the smart-HTTP-style protocol:
//
//	GET  /git/<repo>/info/refs          advertisement: "ref <branch> <cid>\n"*
//	POST /git/<repo>/git-receive-pack   push: "<create|update|delete> <branch> <cid>\n"*
func (s *Server) Handler() apache.Handler {
	return apache.HandlerFunc(s.handle)
}

func (s *Server) handle(req *httpparse.Request) *httpparse.Response {
	if s.ProcessingCost > 0 {
		spinFor(s.ProcessingCost)
	}
	parts := strings.Split(strings.TrimPrefix(req.PathOnly(), "/"), "/")
	if len(parts) < 3 || parts[0] != "git" {
		return httpparse.NewResponse(404, []byte("not a git endpoint"))
	}
	repoName := parts[1]
	endpoint := strings.Join(parts[2:], "/")
	switch {
	case req.Method == "GET" && strings.HasPrefix(endpoint, "info/refs"):
		return s.advertise(repoName)
	case req.Method == "POST" && endpoint == "git-receive-pack":
		return s.receivePack(repoName, string(req.Body))
	}
	return httpparse.NewResponse(404, nil)
}

// advertise returns the (possibly maliciously altered) ref advertisement.
func (s *Server) advertise(repoName string) *httpparse.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[repoName]
	if !ok {
		return httpparse.NewResponse(200, nil) // empty repo
	}
	type ref struct{ name, id string }
	var refs []ref
	for branch, id := range r.Branches {
		key := repoName + "/" + branch
		if s.faults.HiddenRefs[key] {
			continue
		}
		if old, ok := s.faults.RollbackRefs[key]; ok {
			id = old
		}
		if foreign, ok := s.faults.TeleportRefs[key]; ok {
			id = foreign
		}
		refs = append(refs, ref{branch, id})
	}
	for tag, id := range r.Tags {
		key := repoName + "/" + tag
		if s.faults.HiddenRefs[key] {
			continue
		}
		refs = append(refs, ref{tag, id})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].name < refs[j].name })
	var body strings.Builder
	for _, rf := range refs {
		fmt.Fprintf(&body, "ref %s %s\n", rf.name, rf.id)
	}
	return httpparse.NewResponse(200, []byte(body.String()))
}

// receivePack applies push commands and stores the new commits.
func (s *Server) receivePack(repoName, body string) *httpparse.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[repoName]
	if !ok {
		r = newRepo()
		s.repos[repoName] = r
	}
	for _, line := range strings.Split(body, "\n") {
		f := strings.Fields(line)
		if len(f) != 3 {
			continue
		}
		typ, branch, cid := f[0], f[1], f[2]
		switch typ {
		case "create", "update":
			parent := r.Branches[branch]
			r.Commits[cid] = &Commit{ID: cid, Parent: parent}
			r.Branches[branch] = cid
		case "delete":
			delete(r.Branches, branch)
		}
	}
	return httpparse.NewResponse(200, []byte("ok"))
}

func spinFor(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// HistoryGenerator produces a synthetic commit history for one repository:
// a deterministic stream of pushes and fetches shaped like replaying a real
// repository's first few hundred commits (§6.4).
type HistoryGenerator struct {
	Repo     string
	rng      *rand.Rand
	branches []string
	heads    map[string]string
	commits  int
}

// NewHistoryGenerator creates a generator with a deterministic seed.
func NewHistoryGenerator(repo string, seed int64) *HistoryGenerator {
	return &HistoryGenerator{
		Repo:     repo,
		rng:      rand.New(rand.NewSource(seed)),
		branches: []string{"master"},
		heads:    map[string]string{},
	}
}

// PushLines returns the body of the next push request: usually one commit to
// an existing branch, occasionally a new branch or a deletion.
func (g *HistoryGenerator) PushLines() string {
	g.commits++
	switch {
	case g.rng.Intn(20) == 0: // new feature branch
		name := fmt.Sprintf("feature-%d", g.commits)
		g.branches = append(g.branches, name)
		id := commitID(g.heads["master"], fmt.Sprintf("branch %s", name), fmt.Sprintf("tree%d", g.commits))
		g.heads[name] = id
		return fmt.Sprintf("create %s %s", name, id)
	case len(g.branches) > 3 && g.rng.Intn(25) == 0: // delete an old branch
		idx := 1 + g.rng.Intn(len(g.branches)-1)
		name := g.branches[idx]
		g.branches = append(g.branches[:idx], g.branches[idx+1:]...)
		id := g.heads[name]
		delete(g.heads, name)
		return fmt.Sprintf("delete %s %s", name, id)
	default:
		name := g.branches[g.rng.Intn(len(g.branches))]
		id := commitID(g.heads[name], fmt.Sprintf("commit %d", g.commits), fmt.Sprintf("tree%d", g.commits))
		g.heads[name] = id
		return fmt.Sprintf("update %s %s", name, id)
	}
}

// Heads returns the generator's view of the branch heads (the client-side
// ground truth used to validate advertisements).
func (g *HistoryGenerator) Heads() map[string]string {
	out := make(map[string]string, len(g.heads))
	for k, v := range g.heads {
		out[k] = v
	}
	return out
}
