package squid

import (
	"net"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/services/apache"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

// proxySetup wires client -> squid -> origin with configurable terminators.
type proxySetup struct {
	nw     *netsim.Network
	env    *testutil.CertEnv
	origin *apache.Server
	proxy  *Proxy
}

func newProxySetup(t *testing.T, term func(*testutil.CertEnv) tlsterm.Terminator, upstreamLatency time.Duration) *proxySetup {
	t.Helper()
	env, err := testutil.NewCertEnv("origin.test")
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	if upstreamLatency > 0 {
		nw.SetLink("origin:443", netsim.LinkConfig{Latency: upstreamLatency})
	}

	// TLS origin server.
	originListener, _ := nw.Listen("origin:443")
	origin, _ := apache.New(apache.Config{
		Terminator: tlsterm.NewNativeTerminator(env.ServerConfig()),
		Handler: apache.HandlerFunc(func(req *httpparse.Request) *httpparse.Response {
			return httpparse.NewResponse(200, []byte("origin:"+req.Path))
		}),
		KeepAlive: true,
	})
	go origin.Serve(originListener)
	t.Cleanup(origin.Close)

	// Squid proxy: terminates client TLS, opens its own TLS to the origin.
	proxyListener, _ := nw.Listen("squid:3128")
	proxy, err := New(Config{
		Terminator:  term(env),
		Dial:        func() (net.Conn, error) { return nw.Dial("origin:443") },
		UpstreamTLS: &tlsterm.ClientConfig{Roots: env.Pool, ServerName: "origin.test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	go proxy.Serve(proxyListener)
	t.Cleanup(proxy.Close)

	return &proxySetup{nw: nw, env: env, origin: origin, proxy: proxy}
}

func (ps *proxySetup) client(persistent bool) *testutil.HTTPClient {
	// The paper's Dropbox clients disable certificate verification for the
	// proxy-terminated leg (§6.4).
	return testutil.NewHTTPClient(func() (net.Conn, error) { return ps.nw.Dial("squid:3128") },
		&tlsterm.ClientConfig{InsecureSkipVerify: true}, persistent)
}

func TestRelayThroughTwoTLSHops(t *testing.T) {
	ps := newProxySetup(t, func(env *testutil.CertEnv) tlsterm.Terminator {
		return tlsterm.NewNativeTerminator(env.ServerConfig())
	}, 0)
	client := ps.client(true)
	defer client.Close()
	rsp, err := client.Do(httpparse.NewRequest("GET", "/file", nil))
	if err != nil || string(rsp.Body) != "origin:/file" {
		t.Fatalf("rsp = %v, %v", rsp, err)
	}
	if ps.proxy.RelayedBytes() == 0 {
		t.Fatal("no bytes relayed")
	}
}

func TestRelayWithLibSEALTerminator(t *testing.T) {
	_, bridge, err := testutil.NewBridge(testutil.BridgeOptions{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	ps := newProxySetup(t, func(env *testutil.CertEnv) tlsterm.Terminator {
		lib, err := tlsterm.NewLibrary(bridge, tlsterm.LibraryConfig{
			Cert: env.Cert, Key: env.Key, Opts: tlsterm.AllOptimizations(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return lib.Terminator()
	}, 0)
	client := ps.client(true)
	rsp, err := client.Do(httpparse.NewRequest("GET", "/x", nil))
	if err != nil || string(rsp.Body) != "origin:/x" {
		t.Fatalf("rsp = %v, %v", rsp, err)
	}
	client.Close()
}

func TestWANLatencyPaid(t *testing.T) {
	const oneWay = 20 * time.Millisecond
	ps := newProxySetup(t, func(env *testutil.CertEnv) tlsterm.Terminator {
		return tlsterm.NewNativeTerminator(env.ServerConfig())
	}, oneWay)
	client := ps.client(true)
	defer client.Close()
	// First request includes the upstream handshake (2+ RTTs).
	if _, err := client.Do(httpparse.NewRequest("GET", "/warm", nil)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Do(httpparse.NewRequest("GET", "/timed", nil)); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 2*oneWay {
		t.Fatalf("request rtt = %v, want >= %v over the WAN link", rtt, 2*oneWay)
	}
}

func TestMultipleSequentialConnections(t *testing.T) {
	ps := newProxySetup(t, func(env *testutil.CertEnv) tlsterm.Terminator {
		return tlsterm.NewNativeTerminator(env.ServerConfig())
	}, 0)
	for i := 0; i < 3; i++ {
		client := ps.client(false)
		rsp, err := client.Do(httpparse.NewRequest("GET", "/n", nil))
		if err != nil || rsp.Status != 200 {
			t.Fatalf("conn %d: %v %v", i, rsp, err)
		}
		client.Close()
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
