// Package squid implements a forwarding proxy modelled on the Squid
// deployment of the paper's Dropbox experiment (§6.4): all client traffic is
// routed through the proxy, which terminates the client-side TLS connection
// (with LibSEAL, so every request and response is audited) and opens its own
// TLS connection to the upstream service. Two TLS hops mean two handshakes
// and double en-/decryption, which is why the paper measures higher overhead
// for Squid than Apache (§6.6).
package squid

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"libseal/internal/tlsterm"
)

// Config configures the proxy.
type Config struct {
	// Terminator terminates client connections (native or LibSEAL).
	Terminator tlsterm.Terminator
	// Dial opens a raw transport connection to the upstream service.
	Dial func() (net.Conn, error)
	// UpstreamTLS, when non-nil, wraps the upstream connection in TLS, the
	// proxy acting as client. Nil keeps the upstream leg plaintext.
	UpstreamTLS *tlsterm.ClientConfig
}

// Proxy is one Squid-like instance.
type Proxy struct {
	cfg     Config
	wg      sync.WaitGroup
	closed  atomic.Bool
	relayed atomic.Int64
	lnMu    sync.Mutex
	current net.Listener
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Terminator == nil || cfg.Dial == nil {
		return nil, errors.New("squid: terminator and dial required")
	}
	return &Proxy{cfg: cfg}, nil
}

// RelayedBytes reports the total bytes relayed in both directions.
func (p *Proxy) RelayedBytes() int64 { return p.relayed.Load() }

// Serve accepts and relays connections until the listener closes.
func (p *Proxy) Serve(l net.Listener) error {
	p.lnMu.Lock()
	p.current = l
	p.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if p.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight relays.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.lnMu.Lock()
	if p.current != nil {
		p.current.Close()
	}
	p.lnMu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) relay(conn net.Conn) {
	client, err := p.cfg.Terminator.Accept(conn)
	if err != nil {
		conn.Close()
		return
	}
	defer client.Close()

	raw, err := p.cfg.Dial()
	if err != nil {
		return
	}
	var upstream io.ReadWriteCloser = raw
	if p.cfg.UpstreamTLS != nil {
		tlsUp, err := tlsterm.Connect(raw, p.cfg.UpstreamTLS)
		if err != nil {
			raw.Close()
			return
		}
		upstream = tlsUp
	}
	defer upstream.Close()

	done := make(chan struct{}, 2)
	copyDir := func(dst io.Writer, src io.Reader) {
		buf := make([]byte, 32*1024)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				p.relayed.Add(int64(n))
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go copyDir(upstream, client)
	go copyDir(client, upstream)
	// When either direction ends, tear both down; the deferred Closes
	// unblock the other copier.
	<-done
}
