// Package tlsterm implements LibSEAL's TLS termination layer (§4): a secure
// channel protocol (ECDHE + HKDF + AES-GCM) exposed through an
// OpenSSL/LibreSSL-shaped API. The server side can run either natively
// in-process (AcceptNative — the paper's LibreSSL baseline) or inside a
// simulated SGX enclave (Library/SSL), where protocol code and session keys
// are enclave-resident, network BIOs and API wrappers stay outside, shadow
// structures expose sanitised connection state, and application callbacks
// are invoked through secure ocall trampolines.
package tlsterm

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/pki"
	"libseal/internal/telemetry"
)

// Termination-layer telemetry: handshake latency is the connection-setup
// cost of moving TLS inside the enclave (§7.1); record/byte counters size
// the steady-state interception workload.
var (
	mHandshakes       = telemetry.NewCounter("tlsterm.handshakes", "handshakes")
	mHandshakeLatency = telemetry.NewHistogram("tlsterm.handshake.latency", "ns")
	mRecordsRead      = telemetry.NewCounter("tlsterm.records.read", "records")
	mRecordsWritten   = telemetry.NewCounter("tlsterm.records.written", "records")
	mBytesRead        = telemetry.NewCounter("tlsterm.bytes.read", "bytes")
	mBytesWritten     = telemetry.NewCounter("tlsterm.bytes.written", "bytes")
)

func cryptoRandRead(b []byte) (int, error) { return rand.Read(b) }

// Direction distinguishes intercepted request and response data.
type Direction int

// Interception directions.
const (
	DirRead  Direction = iota // client -> service (requests)
	DirWrite                  // service -> client (responses)
)

func (d Direction) String() string {
	if d == DirRead {
		return "read"
	}
	return "write"
}

// Tap observes every byte of plaintext crossing the termination point. It
// executes inside the enclave, within the SSL_read/SSL_write ecall — this is
// where LibSEAL's audit logger attaches (Fig. 1, step 3).
type Tap interface {
	// OnData sees plaintext read from (DirRead) or written to (DirWrite)
	// the connection. For writes it may return a rewritten buffer (LibSEAL
	// uses this to inject the in-band Libseal-Check-Result header); a nil
	// return keeps the data unchanged. An error aborts the I/O operation.
	OnData(env *asyncall.Env, connID uint64, dir Direction, data []byte) ([]byte, error)
	// OnClose runs when the connection shuts down.
	OnClose(env *asyncall.Env, connID uint64)
}

// Optimizations toggles the transition-reduction techniques of §4.2.
// Disabling one reintroduces the enclave crossings it eliminates, which the
// §4.2 ablation benchmark measures.
type Optimizations struct {
	// MemoryPool preallocates outside buffers so the enclave does not ocall
	// malloc/free for every BIO object.
	MemoryPool bool
	// InEnclaveLocksRNG uses SGX-SDK locks and in-enclave randomness
	// instead of ocalls to pthreads and the random syscall.
	InEnclaveLocksRNG bool
	// ExDataOutside stores application-specific data attached to TLS
	// objects outside the enclave, avoiding ecalls on every access.
	ExDataOutside bool
}

// AllOptimizations enables every §4.2 technique (the paper's default).
func AllOptimizations() Optimizations {
	return Optimizations{MemoryPool: true, InEnclaveLocksRNG: true, ExDataOutside: true}
}

// LibraryConfig configures an enclave-backed TLS library instance.
type LibraryConfig struct {
	Cert              *pki.Certificate
	Key               *ecdsa.PrivateKey // provisioned into the enclave
	RequireClientCert bool
	ClientRoots       *pki.Pool
	Opts              Optimizations
	Tap               Tap
}

// insideState is the enclave-resident part of the library: the private key
// and all per-connection session secrets. It must only be touched from
// within an ecall.
type insideState struct {
	mu       sync.Mutex
	key      *ecdsa.PrivateKey
	sessions map[uint64]*session
}

type session struct {
	rd, wr     *sessionKeys
	peer       *pki.Certificate
	callbackID uint64
	exData     map[string]any // used when ExDataOutside is disabled
}

// Library is a LibSEAL TLS library instance bound to one enclave bridge.
// It is the drop-in replacement servers link against.
type Library struct {
	bridge *asyncall.Bridge
	cfg    LibraryConfig
	inside *insideState

	nextID atomic.Uint64

	cbMu      sync.Mutex
	callbacks map[uint64]func(state string)

	pool sync.Pool // outside memory pool for BIO buffers
}

// NewLibrary provisions a library instance. The private key is transferred
// into the enclave-resident state and the outside copy is not retained.
func NewLibrary(bridge *asyncall.Bridge, cfg LibraryConfig) (*Library, error) {
	if cfg.Cert == nil || cfg.Key == nil {
		return nil, fmt.Errorf("tlsterm: certificate and key required")
	}
	lib := &Library{
		bridge:    bridge,
		cfg:       cfg,
		inside:    &insideState{sessions: make(map[uint64]*session)},
		callbacks: make(map[uint64]func(string)),
	}
	lib.pool.New = func() any { b := make([]byte, 0, maxFramePayload+4); return &b }
	key := cfg.Key
	lib.cfg.Key = nil // the outside copy is dropped; only the enclave holds it
	err := bridge.Call(func(env *asyncall.Env) error {
		lib.inside.mu.Lock()
		defer lib.inside.mu.Unlock()
		lib.inside.key = key
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lib, nil
}

// GenerateEnclaveIdentity creates a fresh ECDSA key inside the enclave and
// returns its public half together with a quote whose report data commits to
// the key hash. A CA can then issue a certificate that clients verify as
// belonging to a genuine LibSEAL enclave (§6.3). Use the returned setter to
// install the issued certificate.
func GenerateEnclaveIdentity(bridge *asyncall.Bridge) (*ecdsa.PublicKey, enclave.Quote, *ecdsa.PrivateKey, error) {
	var pub *ecdsa.PublicKey
	var quote enclave.Quote
	var key *ecdsa.PrivateKey
	err := bridge.Call(func(env *asyncall.Env) error {
		var err error
		key, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return err
		}
		pub = &key.PublicKey
		cert := &pki.Certificate{PubKey: pub}
		keyHash := cert.KeyHash()
		quote, err = env.Ctx.Quote(keyHash[:])
		return err
	})
	if err != nil {
		return nil, enclave.Quote{}, nil, err
	}
	return pub, quote, key, nil
}

// Bridge returns the enclave bridge the library uses.
func (lib *Library) Bridge() *asyncall.Bridge { return lib.bridge }

// ShadowSSL is the sanitised, outside-resident copy of a connection's TLS
// state (§4.1 "Shadowing"). It deliberately contains no key material; tests
// assert this by reflection.
type ShadowSSL struct {
	State        string
	Established  bool
	PeerSubject  string
	BytesRead    int64
	BytesWritten int64
}

// SSL is one terminated TLS connection: the OpenSSL SSL* equivalent. The
// struct itself lives outside the enclave; secrets stay inside, referenced
// by ID.
type SSL struct {
	lib  *Library
	id   uint64
	conn net.Conn
	br   *bufio.Reader

	// readMu serialises SSL_read (and the handshake); writeMu serialises
	// SSL_write; stateMu guards the shadow structure and ex_data so that
	// outside code can inspect them while I/O is blocked.
	readMu  sync.Mutex
	writeMu sync.Mutex
	stateMu sync.Mutex

	shadow   ShadowSSL
	leftover []byte
	exData   map[string]any
	closed   bool
}

// NewSSL wraps an accepted transport connection.
func (lib *Library) NewSSL(conn net.Conn) *SSL {
	return &SSL{
		lib:    lib,
		id:     lib.nextID.Add(1),
		conn:   conn,
		br:     bufio.NewReader(conn),
		shadow: ShadowSSL{State: "init"},
		exData: make(map[string]any),
	}
}

// SetInfoCallback registers an application callback invoked on handshake
// state transitions. The function itself stays outside the enclave; enclave
// code reaches it through an ocall trampoline keyed by the connection ID,
// mirroring the paper's secure-callback listing (§4.1).
func (s *SSL) SetInfoCallback(cb func(state string)) {
	s.lib.cbMu.Lock()
	s.lib.callbacks[s.id] = cb
	s.lib.cbMu.Unlock()
}

// invokeCallback is the outside half of the callback trampoline.
func (lib *Library) invokeCallback(id uint64, state string) {
	lib.cbMu.Lock()
	cb := lib.callbacks[id]
	lib.cbMu.Unlock()
	if cb != nil {
		cb(state)
	}
}

// fireCallback runs inside the enclave and performs the trampoline ocall if
// a callback is registered.
func (s *SSL) fireCallback(env *asyncall.Env, state string) {
	s.lib.cbMu.Lock()
	registered := s.lib.callbacks[s.id] != nil
	s.lib.cbMu.Unlock()
	if !registered {
		return
	}
	_ = env.Ocall(func() error {
		s.lib.invokeCallback(s.id, state)
		return nil
	})
}

// chargeUnoptimized models the extra crossings that the §4.2 optimisations
// eliminate: without the memory pool every BIO buffer is malloc'd/freed via
// ocall, and without SDK locks/RNG each record operation ocalls into
// pthreads or the random syscall.
func (s *SSL) chargeUnoptimized(env *asyncall.Env) error {
	if !s.lib.cfg.Opts.MemoryPool {
		if err := env.Ocall(func() error { return nil }); err != nil { // malloc
			return err
		}
		if err := env.Ocall(func() error { return nil }); err != nil { // free
			return err
		}
	}
	if !s.lib.cfg.Opts.InEnclaveLocksRNG {
		if err := env.Ocall(func() error { return nil }); err != nil { // pthread lock
			return err
		}
	}
	return nil
}

// getBuf obtains a BIO buffer from the outside memory pool.
func (lib *Library) getBuf() *[]byte { return lib.pool.Get().(*[]byte) }

// putBuf returns a buffer to the pool.
func (lib *Library) putBuf(b *[]byte) {
	*b = (*b)[:0]
	lib.pool.Put(b)
}

// bioReadFrame reads one frame from the network BIO via ocall: the socket
// lives outside the enclave.
func (s *SSL) bioReadFrame(env *asyncall.Env) (byte, []byte, error) {
	var ftype byte
	var payload []byte
	err := env.Ocall(func() error {
		var err error
		ftype, payload, err = readFrame(s.br)
		return err
	})
	return ftype, payload, err
}

// bioWriteFrames writes frames to the network BIO via one ocall. Small
// frame groups are coalesced through the memory pool to issue one transport
// write; large transfers are written frame by frame to avoid doubling the
// data in flight.
func (s *SSL) bioWriteFrames(env *asyncall.Env, frames [][]byte) error {
	return env.Ocall(func() error {
		total := 0
		for _, f := range frames {
			total += len(f)
		}
		if len(frames) > 1 && total <= maxFramePayload {
			buf := s.lib.getBuf()
			defer s.lib.putBuf(buf)
			out := *buf
			for _, f := range frames {
				out = append(out, f...)
			}
			_, err := s.conn.Write(out)
			return err
		}
		for _, f := range frames {
			if _, err := s.conn.Write(f); err != nil {
				return err
			}
		}
		return nil
	})
}

// Accept runs the server-side handshake inside the enclave (SSL_accept).
func (s *SSL) Accept() error {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	hsStart := time.Now()
	var peer *pki.Certificate
	err := s.lib.bridge.Call(func(env *asyncall.Env) error {
		s.fireCallback(env, "accept:start")
		if err := s.chargeUnoptimized(env); err != nil {
			return err
		}
		tr := &transcript{}

		ftype, payload, err := s.bioReadFrame(env)
		if err != nil {
			return err
		}
		if ftype != frameClientHello {
			return fmt.Errorf("%w: expected ClientHello, got frame %d", ErrHandshakeFailed, ftype)
		}
		env.Ctx.ChargeData(len(payload))
		ch, err := parseClientHello(payload)
		if err != nil {
			return err
		}
		tr.add(payload)

		if !s.lib.cfg.Opts.InEnclaveLocksRNG {
			// Entropy fetched from the host via ocall.
			if err := env.Ocall(func() error { return nil }); err != nil {
				return err
			}
		}
		eph, err := generateEphemeral()
		if err != nil {
			return err
		}
		sh := &serverHello{
			EphPub:   eph.PublicKey().Bytes(),
			Cert:     s.lib.cfg.Cert.Marshal(),
			WantCert: s.lib.cfg.RequireClientCert,
		}
		if err := env.Ctx.Random(sh.Random[:]); err != nil {
			return err
		}
		s.lib.inside.mu.Lock()
		key := s.lib.inside.key
		s.lib.inside.mu.Unlock()
		sigTr := &transcript{}
		sigTr.add(payload)
		sigTr.add(sh.Random[:])
		sigTr.add(sh.EphPub)
		sigTr.add(sh.Cert)
		if sh.SigR, sh.SigS, err = signTranscript(key, sigTr); err != nil {
			return err
		}
		shBytes := sh.marshal()
		tr.add(shBytes)
		if err := s.bioWriteFrames(env, [][]byte{frameBytes(frameServerHello, shBytes)}); err != nil {
			return err
		}

		shared, err := ecdhShared(eph, ch.EphPub)
		if err != nil {
			return err
		}
		keys, err := deriveKeys(shared, ch.Random[:], sh.Random[:])
		if err != nil {
			return err
		}

		ftype, payload, err = s.bioReadFrame(env)
		if err != nil {
			return err
		}
		if ftype != frameClientFinished {
			return fmt.Errorf("%w: expected ClientFinished, got frame %d", ErrHandshakeFailed, ftype)
		}
		env.Ctx.ChargeData(len(payload))
		cfPlain, err := keys.client.open(frameClientFinished, payload)
		if err != nil {
			return err
		}
		cf, err := parseClientFinished(cfPlain)
		if err != nil {
			return err
		}
		if !macEqual(cf.MAC, finishedMAC(keys.finKey, tr, "client finished")) {
			return ErrFinishedMismatch
		}
		if s.lib.cfg.RequireClientCert {
			if !cf.HasCert {
				return ErrCertRequired
			}
			peer, err = pki.Unmarshal(cf.Cert)
			if err != nil {
				return err
			}
			if s.lib.cfg.ClientRoots == nil {
				return fmt.Errorf("%w: no client roots configured", ErrCertUntrusted)
			}
			if err := s.lib.cfg.ClientRoots.Verify(peer); err != nil {
				return fmt.Errorf("%w: %v", ErrCertUntrusted, err)
			}
			if !verifyTranscript(peer.PubKey, tr, cf.SigR, cf.SigS) {
				return fmt.Errorf("%w: client transcript signature invalid", ErrHandshakeFailed)
			}
		}
		tr.add(cfPlain)

		sf := finishedMAC(keys.finKey, tr, "server finished")
		ct, err := keys.server.seal(frameServerFinished, sf)
		if err != nil {
			return err
		}
		if err := s.bioWriteFrames(env, [][]byte{frameBytes(frameServerFinished, ct)}); err != nil {
			return err
		}

		s.lib.inside.mu.Lock()
		s.lib.inside.sessions[s.id] = &session{
			rd:     keys.client,
			wr:     keys.server,
			peer:   peer,
			exData: make(map[string]any),
		}
		s.lib.inside.mu.Unlock()
		s.fireCallback(env, "accept:done")
		return nil
	})
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if err != nil {
		s.shadow.State = "error"
		return err
	}
	// Synchronise the sanitised shadow copy (no key material).
	mHandshakes.Inc()
	telemetry.ObserveSince(mHandshakeLatency, "tlsterm.handshake", hsStart)
	s.shadow.State = "established"
	s.shadow.Established = true
	if peer != nil {
		s.shadow.PeerSubject = peer.Subject
	}
	return nil
}

// lookupSession fetches the enclave-resident session. Must run inside.
func (lib *Library) lookupSession(id uint64) (*session, error) {
	lib.inside.mu.Lock()
	defer lib.inside.mu.Unlock()
	sess, ok := lib.inside.sessions[id]
	if !ok {
		return nil, ErrClosed
	}
	return sess, nil
}

// Read decrypts application data (SSL_read). Plaintext passes through the
// Tap inside the enclave before being returned to the caller.
func (s *SSL) Read(p []byte) (int, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	if len(s.leftover) == 0 {
		var plaintext []byte
		eof := false
		err := s.lib.bridge.Call(func(env *asyncall.Env) error {
			sess, err := s.lib.lookupSession(s.id)
			if err != nil {
				return err
			}
			if err := s.chargeUnoptimized(env); err != nil {
				return err
			}
			ftype, payload, err := s.bioReadFrame(env)
			if err != nil {
				return err
			}
			switch ftype {
			case frameAppData:
				env.Ctx.ChargeData(len(payload))
				pt, err := sess.rd.open(frameAppData, payload)
				if err != nil {
					return err
				}
				mRecordsRead.Inc()
				mBytesRead.Add(int64(len(pt)))
				if tap := s.lib.cfg.Tap; tap != nil {
					if _, err := tap.OnData(env, s.id, DirRead, pt); err != nil {
						return err
					}
				}
				plaintext = pt
			case frameAlert:
				eof = true
			default:
				return fmt.Errorf("tlsterm: unexpected frame type %d", ftype)
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		if eof {
			return 0, io.EOF
		}
		s.leftover = plaintext
		s.stateMu.Lock()
		s.shadow.BytesRead += int64(len(plaintext))
		s.stateMu.Unlock()
	}
	n := copy(p, s.leftover)
	s.leftover = s.leftover[n:]
	return n, nil
}

// Write encrypts and sends application data (SSL_write). Plaintext passes
// through the Tap inside the enclave before encryption.
func (s *SSL) Write(p []byte) (int, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.stateMu.Lock()
	closed := s.closed
	s.stateMu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	total := 0
	err := s.lib.bridge.Call(func(env *asyncall.Env) error {
		sess, err := s.lib.lookupSession(s.id)
		if err != nil {
			return err
		}
		if err := s.chargeUnoptimized(env); err != nil {
			return err
		}
		payload := p
		if tap := s.lib.cfg.Tap; tap != nil {
			rewritten, err := tap.OnData(env, s.id, DirWrite, payload)
			if err != nil {
				return err
			}
			if rewritten != nil {
				payload = rewritten
			}
		}
		var frames [][]byte
		rest := payload
		for len(rest) > 0 {
			chunk := rest
			if len(chunk) > maxRecordPlaintext {
				chunk = chunk[:maxRecordPlaintext]
			}
			env.Ctx.ChargeData(len(chunk))
			frame, err := sess.wr.sealFrame(frameAppData, chunk)
			if err != nil {
				return err
			}
			frames = append(frames, frame)
			mRecordsWritten.Inc()
			mBytesWritten.Add(int64(len(chunk)))
			total += len(chunk)
			rest = rest[len(chunk):]
			if !s.lib.cfg.Opts.MemoryPool {
				// One malloc ocall per record buffer without the pool.
				if err := env.Ocall(func() error { return nil }); err != nil {
					return err
				}
			}
		}
		return s.bioWriteFrames(env, frames)
	})
	if err != nil {
		return 0, err
	}
	s.stateMu.Lock()
	s.shadow.BytesWritten += int64(total)
	s.stateMu.Unlock()
	// Report the caller's byte count even if the tap rewrote the payload,
	// preserving io.Writer semantics for the application.
	return len(p), nil
}

// Close tears the session down (SSL_shutdown + free).
func (s *SSL) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	_ = s.lib.bridge.Call(func(env *asyncall.Env) error {
		s.lib.inside.mu.Lock()
		sess, ok := s.lib.inside.sessions[s.id]
		delete(s.lib.inside.sessions, s.id)
		s.lib.inside.mu.Unlock()
		if tap := s.lib.cfg.Tap; tap != nil {
			tap.OnClose(env, s.id)
		}
		if ok {
			if ct, err := sess.wr.seal(frameAlert, nil); err == nil {
				_ = s.bioWriteFrames(env, [][]byte{frameBytes(frameAlert, ct)})
			}
		}
		return nil
	})
	s.lib.cbMu.Lock()
	delete(s.lib.callbacks, s.id)
	s.lib.cbMu.Unlock()
	s.stateMu.Lock()
	s.shadow.State = "closed"
	s.shadow.Established = false
	s.stateMu.Unlock()
	return s.conn.Close()
}

// Shadow returns the sanitised outside view of the connection state.
func (s *SSL) Shadow() ShadowSSL {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.shadow
}

// ID returns the connection identifier used by taps.
func (s *SSL) ID() uint64 { return s.id }

// PeerSubject returns the authenticated client subject, if any.
func (s *SSL) PeerSubject() string {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.shadow.PeerSubject
}

// SetExData attaches application data to the connection, like
// SSL_set_ex_data. With the ExDataOutside optimisation the value stays in
// the outside shadow object; otherwise every access crosses into the
// enclave (§4.2, optimisation 3).
func (s *SSL) SetExData(key string, v any) error {
	if s.lib.cfg.Opts.ExDataOutside {
		s.stateMu.Lock()
		s.exData[key] = v
		s.stateMu.Unlock()
		return nil
	}
	return s.lib.bridge.Call(func(env *asyncall.Env) error {
		sess, err := s.lib.lookupSession(s.id)
		if err != nil {
			return err
		}
		s.lib.inside.mu.Lock()
		sess.exData[key] = v
		s.lib.inside.mu.Unlock()
		return nil
	})
}

// GetExData retrieves application data attached with SetExData.
func (s *SSL) GetExData(key string) (any, error) {
	if s.lib.cfg.Opts.ExDataOutside {
		s.stateMu.Lock()
		defer s.stateMu.Unlock()
		return s.exData[key], nil
	}
	var out any
	err := s.lib.bridge.Call(func(env *asyncall.Env) error {
		sess, err := s.lib.lookupSession(s.id)
		if err != nil {
			return err
		}
		s.lib.inside.mu.Lock()
		out = sess.exData[key]
		s.lib.inside.mu.Unlock()
		return nil
	})
	return out, err
}
