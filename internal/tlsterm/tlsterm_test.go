package tlsterm

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/enclave"
	"libseal/internal/netsim"
	"libseal/internal/pki"
)

type testEnv struct {
	ca     *pki.CA
	pool   *pki.Pool
	cert   *pki.Certificate
	key    *ecdsa.PrivateKey
	bridge *asyncall.Bridge
	encl   *enclave.Enclave
}

func newTestEnv(t *testing.T, mode asyncall.Mode) *testEnv {
	t.Helper()
	ca, err := pki.NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Issue("server.test", &key.PublicKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform()
	encl, err := platform.Launch(enclave.Config{
		Code:       []byte("libseal-tls"),
		MaxThreads: 8,
		Cost:       enclave.ZeroCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: mode, AppSlots: 8, Schedulers: 2, TasksPerScheduler: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	return &testEnv{ca: ca, pool: pki.NewPool(ca), cert: cert, key: key, bridge: bridge, encl: encl}
}

func clientCfg(env *testEnv) *ClientConfig {
	return &ClientConfig{Roots: env.pool, ServerName: "server.test"}
}

// startNative runs a native (baseline) server echo handler on one end of a
// pipe and returns the client end plus a done channel.
func echoNative(t *testing.T, env *testEnv, serverConn net.Conn) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		sc, err := AcceptNative(serverConn, &ServerConfig{Cert: env.cert, Key: env.key})
		if err != nil {
			done <- err
			return
		}
		defer sc.Close()
		_, err = io.Copy(sc, sc)
		done <- err
	}()
	return done
}

func TestNativeHandshakeAndEcho(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	done := echoNative(t, env, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("secure payload "), 100)
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("echo mismatch")
	}
	client.Close()
	if err := <-done; err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("server: %v", err)
	}
}

func TestNativeLargeTransfer(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	echoNative(t, env, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	msg := make([]byte, 300_000) // spans many records
	rand.Read(msg)
	go client.Write(msg)
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("large echo mismatch")
	}
}

func TestClientRejectsUntrustedCert(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	otherCA, _ := pki.NewCA("other")
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	go AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
	_, err := Connect(cConn, &ClientConfig{Roots: pki.NewPool(otherCA), ServerName: "server.test"})
	if !errors.Is(err, ErrCertUntrusted) {
		t.Fatalf("err = %v, want ErrCertUntrusted", err)
	}
}

func TestClientRejectsWrongServerName(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	go AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
	_, err := Connect(cConn, &ClientConfig{Roots: env.pool, ServerName: "evil.test"})
	if !errors.Is(err, ErrCertUntrusted) {
		t.Fatalf("err = %v, want ErrCertUntrusted", err)
	}
}

func TestInsecureSkipVerify(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	echoNative(t, env, sConn)
	// The Dropbox/Squid deployment: certificate verification disabled.
	client, err := Connect(cConn, &ClientConfig{InsecureSkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
}

func TestClientAuthentication(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	clientKey, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	clientCert, _ := env.ca.Issue("alice", &clientKey.PublicKey, nil)

	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	result := make(chan string, 1)
	go func() {
		sc, err := AcceptNative(sConn, &ServerConfig{
			Cert: env.cert, Key: env.key,
			RequireClientCert: true, ClientRoots: env.pool,
		})
		if err != nil {
			result <- "error: " + err.Error()
			return
		}
		defer sc.Close()
		result <- sc.PeerCertificate().Subject
	}()
	cfg := clientCfg(env)
	cfg.Cert, cfg.Key = clientCert, clientKey
	client, err := Connect(cConn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := <-result; got != "alice" {
		t.Fatalf("server saw peer %q, want alice", got)
	}
}

func TestClientAuthMissingCertRejected(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	go AcceptNative(sConn, &ServerConfig{
		Cert: env.cert, Key: env.key,
		RequireClientCert: true, ClientRoots: env.pool,
	})
	if _, err := Connect(cConn, clientCfg(env)); !errors.Is(err, ErrCertRequired) {
		t.Fatalf("err = %v, want ErrCertRequired", err)
	}
}

// startLibrary spins up an enclave-backed library server handling one
// connection with an echo loop.
func echoLibrary(t *testing.T, lib *Library, serverConn net.Conn) (*SSL, chan error) {
	t.Helper()
	ssl := lib.NewSSL(serverConn)
	done := make(chan error, 1)
	go func() {
		if err := ssl.Accept(); err != nil {
			done <- err
			return
		}
		buf := make([]byte, 32*1024)
		for {
			n, err := ssl.Read(buf)
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				ssl.Close()
				done <- err
				return
			}
			if _, err := ssl.Write(buf[:n]); err != nil {
				done <- err
				return
			}
		}
	}()
	return ssl, done
}

func testLibraryEcho(t *testing.T, mode asyncall.Mode) {
	env := newTestEnv(t, mode)
	lib, err := NewLibrary(env.bridge, LibraryConfig{
		Cert: env.cert, Key: env.key, Opts: AllOptimizations(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl, done := echoLibrary(t, lib, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("through the enclave "), 50)
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("echo mismatch")
	}
	client.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	sh := ssl.Shadow()
	if sh.State != "closed" || sh.BytesRead != int64(len(msg)) || sh.BytesWritten != int64(len(msg)) {
		t.Fatalf("shadow = %+v", sh)
	}
}

func TestLibraryEchoSync(t *testing.T)  { testLibraryEcho(t, asyncall.ModeSync) }
func TestLibraryEchoAsync(t *testing.T) { testLibraryEcho(t, asyncall.ModeAsync) }

// recordingTap captures everything crossing the termination point.
type recordingTap struct {
	mu     sync.Mutex
	reads  map[uint64][]byte
	writes map[uint64][]byte
	closed []uint64
}

func newRecordingTap() *recordingTap {
	return &recordingTap{reads: map[uint64][]byte{}, writes: map[uint64][]byte{}}
}

func (tp *recordingTap) OnData(env *asyncall.Env, id uint64, dir Direction, data []byte) ([]byte, error) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if dir == DirRead {
		tp.reads[id] = append(tp.reads[id], data...)
	} else {
		tp.writes[id] = append(tp.writes[id], data...)
	}
	return nil, nil
}

func (tp *recordingTap) OnClose(env *asyncall.Env, id uint64) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	tp.closed = append(tp.closed, id)
}

func TestTapObservesAllPlaintext(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	tap := newRecordingTap()
	lib, err := NewLibrary(env.bridge, LibraryConfig{
		Cert: env.cert, Key: env.key, Opts: AllOptimizations(), Tap: tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl, done := echoLibrary(t, lib, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	request := []byte("GET /secret HTTP/1.1\r\n\r\n")
	client.Write(request)
	buf := make([]byte, len(request))
	io.ReadFull(client, buf)
	client.Close()
	<-done

	tap.mu.Lock()
	defer tap.mu.Unlock()
	if !bytes.Equal(tap.reads[ssl.ID()], request) {
		t.Fatalf("tap reads = %q, want %q", tap.reads[ssl.ID()], request)
	}
	if !bytes.Equal(tap.writes[ssl.ID()], request) {
		t.Fatalf("tap writes = %q", tap.writes[ssl.ID()])
	}
	if len(tap.closed) != 1 || tap.closed[0] != ssl.ID() {
		t.Fatalf("tap closed = %v", tap.closed)
	}
}

func TestTapErrorAbortsIO(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	tapErr := errors.New("audit log full")
	lib, err := NewLibrary(env.bridge, LibraryConfig{
		Cert: env.cert, Key: env.key, Opts: AllOptimizations(),
		Tap: failTap{err: tapErr},
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl := lib.NewSSL(sConn)
	acceptDone := make(chan error, 1)
	readErr := make(chan error, 1)
	go func() {
		err := ssl.Accept()
		acceptDone <- err
		if err != nil {
			return
		}
		buf := make([]byte, 128)
		_, err = ssl.Read(buf)
		readErr <- err
	}()
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := <-acceptDone; err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("data"))
	if err := <-readErr; !errors.Is(err, tapErr) {
		t.Fatalf("Read err = %v, want tap error", err)
	}
}

type failTap struct{ err error }

func (f failTap) OnData(*asyncall.Env, uint64, Direction, []byte) ([]byte, error) {
	return nil, f.err
}
func (f failTap) OnClose(*asyncall.Env, uint64) {}

func TestShadowContainsNoKeyMaterial(t *testing.T) {
	// The shadow structure must be plain data: no pointers, slices, or any
	// field that could smuggle session keys outside.
	typ := reflect.TypeOf(ShadowSSL{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch f.Type.Kind() {
		case reflect.String, reflect.Bool, reflect.Int64:
		default:
			t.Errorf("ShadowSSL field %s has kind %s; shadow fields must be scalar", f.Name, f.Type.Kind())
		}
		if strings.Contains(strings.ToLower(f.Name), "key") {
			t.Errorf("ShadowSSL field %s looks like key material", f.Name)
		}
	}
}

func TestInfoCallbackTrampoline(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	lib, err := NewLibrary(env.bridge, LibraryConfig{Cert: env.cert, Key: env.key, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl := lib.NewSSL(sConn)
	var mu sync.Mutex
	var states []string
	ssl.SetInfoCallback(func(state string) {
		mu.Lock()
		states = append(states, state)
		mu.Unlock()
	})
	done := make(chan error, 1)
	go func() { done <- ssl.Accept() }()
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) != 2 || states[0] != "accept:start" || states[1] != "accept:done" {
		t.Fatalf("callback states = %v", states)
	}
	// The callback ocalls must be visible in the enclave interface stats.
	if env.encl.Stats().Ocalls < 2 {
		t.Fatalf("expected callback trampoline ocalls, stats = %+v", env.encl.Stats())
	}
}

func TestExDataOutsideAvoidsEcalls(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	lib, err := NewLibrary(env.bridge, LibraryConfig{Cert: env.cert, Key: env.key, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl, _ := echoLibrary(t, lib, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	before := env.encl.Stats().Ecalls
	if err := ssl.SetExData("request", "GET /"); err != nil {
		t.Fatal(err)
	}
	v, err := ssl.GetExData("request")
	if err != nil || v != "GET /" {
		t.Fatalf("GetExData = %v, %v", v, err)
	}
	if got := env.encl.Stats().Ecalls; got != before {
		t.Fatalf("ex_data access performed %d ecalls, want 0", got-before)
	}
}

func TestExDataInsideCostsEcalls(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	opts := AllOptimizations()
	opts.ExDataOutside = false
	lib, err := NewLibrary(env.bridge, LibraryConfig{Cert: env.cert, Key: env.key, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	ssl, _ := echoLibrary(t, lib, sConn)
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Wait for handshake to finish so the session exists.
	deadline := time.Now().Add(5 * time.Second)
	for ssl.Shadow().State != "established" {
		if time.Now().After(deadline) {
			t.Fatal("handshake never completed")
		}
		time.Sleep(time.Millisecond)
	}
	before := env.encl.Stats().Ecalls
	if err := ssl.SetExData("k", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ssl.GetExData("k"); err != nil {
		t.Fatal(err)
	}
	if got := env.encl.Stats().Ecalls - before; got != 2 {
		t.Fatalf("ex_data access performed %d ecalls, want 2", got)
	}
}

func TestOptimizationsReduceOcalls(t *testing.T) {
	runOnce := func(opts Optimizations) enclave.StatsSnapshot {
		env := newTestEnv(t, asyncall.ModeSync)
		lib, err := NewLibrary(env.bridge, LibraryConfig{Cert: env.cert, Key: env.key, Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
		_, done := echoLibrary(t, lib, sConn)
		client, err := Connect(cConn, clientCfg(env))
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 40_000)
		client.Write(msg)
		buf := make([]byte, len(msg))
		io.ReadFull(client, buf)
		client.Close()
		<-done
		return env.encl.Stats()
	}
	optimized := runOnce(AllOptimizations())
	unoptimized := runOnce(Optimizations{})
	if unoptimized.Ocalls <= optimized.Ocalls {
		t.Fatalf("optimizations did not reduce ocalls: %d (on) vs %d (off)",
			optimized.Ocalls, unoptimized.Ocalls)
	}
	// The paper reports up to 49% fewer ocalls; require a substantial cut.
	reduction := float64(unoptimized.Ocalls-optimized.Ocalls) / float64(unoptimized.Ocalls)
	if reduction < 0.25 {
		t.Fatalf("ocall reduction only %.0f%%: %d -> %d", reduction*100, unoptimized.Ocalls, optimized.Ocalls)
	}
}

func TestConcurrentLibraryConnections(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeAsync)
	lib, err := NewLibrary(env.bridge, LibraryConfig{Cert: env.cert, Key: env.key, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}
	const conns = 8
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
			_, done := echoLibrary(t, lib, sConn)
			client, err := Connect(cConn, clientCfg(env))
			if err != nil {
				t.Error(err)
				return
			}
			msg := []byte("concurrent")
			client.Write(msg)
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(client, buf); err != nil {
				t.Error(err)
			}
			client.Close()
			<-done
		}()
	}
	wg.Wait()
}

func TestRecordSealOpenProperty(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 12)
	rand.Read(key)
	rand.Read(iv)
	f := func(data []byte) bool {
		if len(data) > maxRecordPlaintext {
			data = data[:maxRecordPlaintext]
		}
		enc, _ := newSessionKeys(key, iv)
		dec, _ := newSessionKeys(key, iv)
		ct, err := enc.seal(frameAppData, data)
		if err != nil {
			return false
		}
		pt, err := dec.open(frameAppData, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTamperDetected(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 12)
	rand.Read(key)
	rand.Read(iv)
	enc, _ := newSessionKeys(key, iv)
	dec, _ := newSessionKeys(key, iv)
	ct, _ := enc.seal(frameAppData, []byte("payload"))
	ct[0] ^= 1
	if _, err := dec.open(frameAppData, ct); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
}

func TestRecordReplayRejected(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 12)
	rand.Read(key)
	rand.Read(iv)
	enc, _ := newSessionKeys(key, iv)
	dec, _ := newSessionKeys(key, iv)
	ct, _ := enc.seal(frameAppData, []byte("payload"))
	if _, err := dec.open(frameAppData, ct); err != nil {
		t.Fatal(err)
	}
	// Replaying the same ciphertext must fail: the sequence number moved.
	if _, err := dec.open(frameAppData, ct); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestEnclaveIdentityCertFlow(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	platform := enclave.NewPlatform()
	encl, _ := platform.Launch(enclave.Config{Code: []byte("libseal-prod"), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	pub, quote, key, err := GenerateEnclaveIdentity(bridge)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := env.ca.Issue("libseal.prod", pub, &quote)
	if err != nil {
		t.Fatal(err)
	}
	svc := enclave.NewAttestationService(platform)
	lib, err := NewLibrary(bridge, LibraryConfig{Cert: cert, Key: key, Opts: AllOptimizations()})
	if err != nil {
		t.Fatal(err)
	}

	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	_, done := echoLibrary(t, lib, sConn)
	// The client verifies the chain AND the enclave binding in-handshake.
	client, err := Connect(cConn, &ClientConfig{
		Roots:      env.pool,
		ServerName: "libseal.prod",
		VerifyPeer: func(c *pki.Certificate) error {
			return env.pool.VerifyEnclaveBinding(c, svc, encl.Measurement())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done
}
