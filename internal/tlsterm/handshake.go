package tlsterm

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"libseal/internal/pki"
)

// The handshake implements a TLS-1.3-style flow over the frame layer:
//
//	C -> S  ClientHello:    clientRandom || ephemeral ECDHE public key
//	S -> C  ServerHello:    serverRandom || ephemeral key || certificate
//	                        || ECDSA signature over the transcript
//	C -> S  ClientFinished: (encrypted) HMAC over the transcript, plus an
//	                        optional client certificate and transcript
//	                        signature for mutual authentication
//	S -> C  ServerFinished: (encrypted) HMAC over the transcript
//
// Both sides derive AES-128-GCM record keys from the ECDHE shared secret
// via HKDF-SHA256 keyed with both randoms.

// Handshake-level errors.
var (
	ErrHandshakeFailed  = errors.New("tlsterm: handshake failed")
	ErrCertRequired     = errors.New("tlsterm: peer certificate required")
	ErrCertUntrusted    = errors.New("tlsterm: peer certificate untrusted")
	ErrFinishedMismatch = errors.New("tlsterm: finished MAC mismatch")
)

type keySchedule struct {
	client *sessionKeys
	server *sessionKeys
	finKey []byte
}

// deriveKeys computes both directions' record keys.
func deriveKeys(shared, clientRandom, serverRandom []byte) (*keySchedule, error) {
	salt := append(append([]byte{}, clientRandom...), serverRandom...)
	prk := hkdfExtract(salt, shared)
	ck, err := newSessionKeys(hkdfExpand(prk, "libseal client key", 16), hkdfExpand(prk, "libseal client iv", 12))
	if err != nil {
		return nil, err
	}
	sk, err := newSessionKeys(hkdfExpand(prk, "libseal server key", 16), hkdfExpand(prk, "libseal server iv", 12))
	if err != nil {
		return nil, err
	}
	return &keySchedule{client: ck, server: sk, finKey: hkdfExpand(prk, "libseal finished", 32)}, nil
}

func finishedMAC(finKey []byte, transcript *transcript, label string) []byte {
	h := transcript.sum()
	mac := sha256.New()
	mac.Write(finKey)
	mac.Write([]byte(label))
	mac.Write(h[:])
	return mac.Sum(nil)
}

// transcript accumulates the handshake messages.
type transcript struct{ buf bytes.Buffer }

func (t *transcript) add(b []byte) { t.buf.Write(b) }
func (t *transcript) sum() [32]byte {
	return sha256.Sum256(t.buf.Bytes())
}

// clientHello encoding.
type clientHello struct {
	Random [32]byte
	EphPub []byte // uncompressed P-256 point
}

func (m *clientHello) marshal() []byte {
	var buf bytes.Buffer
	buf.Write(m.Random[:])
	writeLV(&buf, m.EphPub)
	return buf.Bytes()
}

func parseClientHello(b []byte) (*clientHello, error) {
	r := bytes.NewReader(b)
	m := &clientHello{}
	if _, err := r.Read(m.Random[:]); err != nil {
		return nil, ErrHandshakeFailed
	}
	var err error
	if m.EphPub, err = readLV(r); err != nil {
		return nil, err
	}
	return m, nil
}

// serverHello encoding.
type serverHello struct {
	Random   [32]byte
	EphPub   []byte
	Cert     []byte // marshalled pki.Certificate
	SigR     []byte // over SHA-256(clientHello || random || ephPub || cert)
	SigS     []byte
	WantCert bool // server requests client authentication
}

func (m *serverHello) marshal() []byte {
	var buf bytes.Buffer
	buf.Write(m.Random[:])
	writeLV(&buf, m.EphPub)
	writeLV(&buf, m.Cert)
	writeLV(&buf, m.SigR)
	writeLV(&buf, m.SigS)
	if m.WantCert {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	return buf.Bytes()
}

func parseServerHello(b []byte) (*serverHello, error) {
	r := bytes.NewReader(b)
	m := &serverHello{}
	if _, err := r.Read(m.Random[:]); err != nil {
		return nil, ErrHandshakeFailed
	}
	var err error
	if m.EphPub, err = readLV(r); err != nil {
		return nil, err
	}
	if m.Cert, err = readLV(r); err != nil {
		return nil, err
	}
	if m.SigR, err = readLV(r); err != nil {
		return nil, err
	}
	if m.SigS, err = readLV(r); err != nil {
		return nil, err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return nil, ErrHandshakeFailed
	}
	m.WantCert = flag == 1
	return m, nil
}

// clientFinished encoding (sent encrypted).
type clientFinished struct {
	MAC     []byte
	Cert    []byte // optional client certificate
	SigR    []byte // client transcript signature
	SigS    []byte
	HasCert bool
}

func (m *clientFinished) marshal() []byte {
	var buf bytes.Buffer
	writeLV(&buf, m.MAC)
	if m.HasCert {
		buf.WriteByte(1)
		writeLV(&buf, m.Cert)
		writeLV(&buf, m.SigR)
		writeLV(&buf, m.SigS)
	} else {
		buf.WriteByte(0)
	}
	return buf.Bytes()
}

func parseClientFinished(b []byte) (*clientFinished, error) {
	r := bytes.NewReader(b)
	m := &clientFinished{}
	var err error
	if m.MAC, err = readLV(r); err != nil {
		return nil, err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return nil, ErrHandshakeFailed
	}
	if flag == 1 {
		m.HasCert = true
		if m.Cert, err = readLV(r); err != nil {
			return nil, err
		}
		if m.SigR, err = readLV(r); err != nil {
			return nil, err
		}
		if m.SigS, err = readLV(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func writeLV(buf *bytes.Buffer, b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	buf.Write(l[:])
	buf.Write(b)
}

func readLV(r *bytes.Reader) ([]byte, error) {
	var l [4]byte
	if _, err := r.Read(l[:]); err != nil {
		return nil, ErrHandshakeFailed
	}
	n := binary.BigEndian.Uint32(l[:])
	if int(n) > r.Len() {
		return nil, ErrHandshakeFailed
	}
	out := make([]byte, n)
	if n > 0 {
		if _, err := r.Read(out); err != nil {
			return nil, ErrHandshakeFailed
		}
	}
	return out, nil
}

// signTranscript signs the handshake transcript hash with an ECDSA key.
func signTranscript(key *ecdsa.PrivateKey, t *transcript) (rb, sb []byte, err error) {
	h := t.sum()
	r, s, err := ecdsa.Sign(rand.Reader, key, h[:])
	if err != nil {
		return nil, nil, fmt.Errorf("tlsterm: transcript signature: %w", err)
	}
	return r.Bytes(), s.Bytes(), nil
}

func verifyTranscript(pub *ecdsa.PublicKey, t *transcript, rb, sb []byte) bool {
	h := t.sum()
	return ecdsa.Verify(pub, h[:], new(big.Int).SetBytes(rb), new(big.Int).SetBytes(sb))
}

// generateEphemeral creates a P-256 ECDHE key pair from the given entropy
// source (inside the enclave this is the in-enclave RNG).
func generateEphemeral() (*ecdh.PrivateKey, error) {
	return ecdh.P256().GenerateKey(rand.Reader)
}

// ecdhShared computes the shared secret from our private key and the peer's
// encoded public point.
func ecdhShared(priv *ecdh.PrivateKey, peerPub []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: bad ephemeral key", ErrHandshakeFailed)
	}
	return priv.ECDH(pub)
}

// verifyServerCert runs the client-side certificate checks.
func verifyServerCert(cfg *ClientConfig, cert *pki.Certificate) error {
	if cfg.InsecureSkipVerify {
		return nil
	}
	if cfg.Roots == nil {
		return fmt.Errorf("%w: no roots configured", ErrCertUntrusted)
	}
	if err := cfg.Roots.Verify(cert); err != nil {
		return fmt.Errorf("%w: %v", ErrCertUntrusted, err)
	}
	if cfg.ServerName != "" && cert.Subject != cfg.ServerName {
		return fmt.Errorf("%w: certificate for %q, want %q", ErrCertUntrusted, cert.Subject, cfg.ServerName)
	}
	if cfg.VerifyPeer != nil {
		return cfg.VerifyPeer(cert)
	}
	return nil
}
