package tlsterm

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types on the wire.
const (
	frameClientHello    byte = 1
	frameServerHello    byte = 2
	frameClientFinished byte = 3
	frameServerFinished byte = 4
	frameAlert          byte = 21
	frameAppData        byte = 23
)

// maxRecordPlaintext is the largest plaintext carried by one record,
// matching TLS.
const maxRecordPlaintext = 16384

// maxFramePayload bounds any frame on the wire.
const maxFramePayload = maxRecordPlaintext + 1024

// Errors of the record layer.
var (
	ErrRecordTooLarge = errors.New("tlsterm: record exceeds maximum size")
	ErrBadRecord      = errors.New("tlsterm: record authentication failed")
	ErrClosed         = errors.New("tlsterm: connection closed")
)

// writeFrame emits one frame: type(1) || length(3) || payload.
func writeFrame(w io.Writer, ftype byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return ErrRecordTooLarge
	}
	hdr := [4]byte{ftype, byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameBytes serialises a frame into a fresh buffer.
func frameBytes(ftype byte, payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	out[0] = ftype
	out[1], out[2], out[3] = byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload))
	copy(out[4:], payload)
	return out
}

// readFrame parses one frame from the stream.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > maxFramePayload {
		return 0, nil, ErrRecordTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// sessionKeys holds one direction's record protection state.
type sessionKeys struct {
	aead cipher.AEAD
	iv   [12]byte
	seq  uint64
}

func newSessionKeys(key, iv []byte) (*sessionKeys, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sk := &sessionKeys{aead: aead}
	copy(sk.iv[:], iv)
	return sk, nil
}

func (sk *sessionKeys) nonce() [12]byte {
	var n [12]byte
	copy(n[:], sk.iv[:])
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], sk.seq)
	for i := 0; i < 8; i++ {
		n[4+i] ^= seqb[i]
	}
	return n
}

// seal encrypts one record, consuming a sequence number.
func (sk *sessionKeys) seal(ftype byte, plaintext []byte) ([]byte, error) {
	if len(plaintext) > maxRecordPlaintext {
		return nil, ErrRecordTooLarge
	}
	nonce := sk.nonce()
	aad := [9]byte{ftype}
	binary.BigEndian.PutUint64(aad[1:], sk.seq)
	ct := sk.aead.Seal(nil, nonce[:], plaintext, aad[:])
	sk.seq++
	return ct, nil
}

// sealFrame encrypts one record directly into a complete wire frame
// (header + ciphertext) with a single allocation, avoiding the extra copy of
// framing separately — this matters for the large-transfer experiments.
func (sk *sessionKeys) sealFrame(ftype byte, plaintext []byte) ([]byte, error) {
	if len(plaintext) > maxRecordPlaintext {
		return nil, ErrRecordTooLarge
	}
	nonce := sk.nonce()
	aad := [9]byte{ftype}
	binary.BigEndian.PutUint64(aad[1:], sk.seq)
	frame := make([]byte, 4, 4+len(plaintext)+sk.aead.Overhead())
	frame = sk.aead.Seal(frame, nonce[:], plaintext, aad[:])
	sk.seq++
	n := len(frame) - 4
	frame[0] = ftype
	frame[1], frame[2], frame[3] = byte(n>>16), byte(n>>8), byte(n)
	return frame, nil
}

// open decrypts one record, consuming a sequence number.
func (sk *sessionKeys) open(ftype byte, ciphertext []byte) ([]byte, error) {
	nonce := sk.nonce()
	aad := [9]byte{ftype}
	binary.BigEndian.PutUint64(aad[1:], sk.seq)
	pt, err := sk.aead.Open(nil, nonce[:], ciphertext, aad[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	sk.seq++
	return pt, nil
}
