package tlsterm

import (
	"bufio"
	"crypto/ecdsa"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"libseal/internal/pki"
)

// ClientConfig configures the client side of a connection.
type ClientConfig struct {
	// Roots is the trusted CA pool.
	Roots *pki.Pool
	// ServerName, when set, must match the server certificate subject.
	ServerName string
	// VerifyPeer, when set, runs extra checks on the server certificate
	// (e.g. enclave quote verification via pki.Pool.VerifyEnclaveBinding).
	VerifyPeer func(*pki.Certificate) error
	// InsecureSkipVerify disables certificate verification, as the paper's
	// Dropbox/Squid deployment does (§6.4).
	InsecureSkipVerify bool
	// Cert and Key enable client authentication.
	Cert *pki.Certificate
	Key  *ecdsa.PrivateKey
}

// ServerConfig configures a server-side terminator.
type ServerConfig struct {
	// Cert is the server certificate presented to clients.
	Cert *pki.Certificate
	// Key is the certificate's private key.
	Key *ecdsa.PrivateKey
	// RequireClientCert demands and verifies client certificates against
	// ClientRoots, thwarting client-impersonation attacks (§6.3).
	RequireClientCert bool
	// ClientRoots verifies client certificates.
	ClientRoots *pki.Pool
}

// Conn is a secured stream. It implements net.Conn.
type Conn struct {
	raw      net.Conn
	br       *bufio.Reader
	rd       *sessionKeys
	wr       *sessionKeys
	leftover []byte
	peer     *pki.Certificate

	writeMu sync.Mutex
	readMu  sync.Mutex
	closed  bool
}

// PeerCertificate returns the authenticated peer certificate, or nil.
func (c *Conn) PeerCertificate() *pki.Certificate { return c.peer }

// Read returns decrypted application data.
func (c *Conn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.leftover) == 0 {
		ftype, payload, err := readFrame(c.br)
		if err != nil {
			return 0, err
		}
		switch ftype {
		case frameAppData:
			pt, err := c.rd.open(frameAppData, payload)
			if err != nil {
				return 0, err
			}
			c.leftover = pt
		case frameAlert:
			// close_notify (we do not distinguish alert levels).
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("tlsterm: unexpected frame type %d", ftype)
		}
	}
	n := copy(p, c.leftover)
	c.leftover = c.leftover[n:]
	return n, nil
}

// Write encrypts and sends application data.
func (c *Conn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxRecordPlaintext {
			chunk = chunk[:maxRecordPlaintext]
		}
		frame, err := c.wr.sealFrame(frameAppData, chunk)
		if err != nil {
			return total, err
		}
		if _, err := c.raw.Write(frame); err != nil {
			return total, err
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// Close sends a close alert and closes the transport.
func (c *Conn) Close() error {
	c.writeMu.Lock()
	if !c.closed {
		c.closed = true
		_ = writeFrame(c.raw, frameAlert, nil)
	}
	c.writeMu.Unlock()
	return c.raw.Close()
}

// LocalAddr returns the transport's local address.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr returns the transport's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline forwards to the transport.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline forwards to the transport.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline forwards to the transport.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

var _ net.Conn = (*Conn)(nil)

// Connect performs the client side of the handshake over conn.
func Connect(conn net.Conn, cfg *ClientConfig) (*Conn, error) {
	br := bufio.NewReader(conn)
	tr := &transcript{}

	eph, err := generateEphemeral()
	if err != nil {
		return nil, err
	}
	ch := &clientHello{EphPub: eph.PublicKey().Bytes()}
	if err := fillRandom(ch.Random[:]); err != nil {
		return nil, err
	}
	chBytes := ch.marshal()
	tr.add(chBytes)
	if err := writeFrame(conn, frameClientHello, chBytes); err != nil {
		return nil, err
	}

	ftype, payload, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	if ftype != frameServerHello {
		return nil, fmt.Errorf("%w: expected ServerHello, got frame %d", ErrHandshakeFailed, ftype)
	}
	sh, err := parseServerHello(payload)
	if err != nil {
		return nil, err
	}
	cert, err := pki.Unmarshal(sh.Cert)
	if err != nil {
		return nil, err
	}
	if err := verifyServerCert(cfg, cert); err != nil {
		return nil, err
	}
	// The server signs the transcript up to (and excluding) its signature.
	sigTr := &transcript{}
	sigTr.add(chBytes)
	sigTr.add(sh.Random[:])
	sigTr.add(sh.EphPub)
	sigTr.add(sh.Cert)
	if !verifyTranscript(cert.PubKey, sigTr, sh.SigR, sh.SigS) {
		return nil, fmt.Errorf("%w: server transcript signature invalid", ErrHandshakeFailed)
	}
	tr.add(payload)

	shared, err := ecdhShared(eph, sh.EphPub)
	if err != nil {
		return nil, err
	}
	keys, err := deriveKeys(shared, ch.Random[:], sh.Random[:])
	if err != nil {
		return nil, err
	}

	cf := &clientFinished{MAC: finishedMAC(keys.finKey, tr, "client finished")}
	if sh.WantCert {
		if cfg.Cert == nil || cfg.Key == nil {
			return nil, ErrCertRequired
		}
		cf.HasCert = true
		cf.Cert = cfg.Cert.Marshal()
		cf.SigR, cf.SigS, err = signTranscript(cfg.Key, tr)
		if err != nil {
			return nil, err
		}
	}
	cfBytes := cf.marshal()
	ct, err := keys.client.seal(frameClientFinished, cfBytes)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, frameClientFinished, ct); err != nil {
		return nil, err
	}
	tr.add(cfBytes)

	ftype, payload, err = readFrame(br)
	if err != nil {
		return nil, err
	}
	if ftype != frameServerFinished {
		return nil, fmt.Errorf("%w: expected ServerFinished, got frame %d", ErrHandshakeFailed, ftype)
	}
	sfPlain, err := keys.server.open(frameServerFinished, payload)
	if err != nil {
		return nil, err
	}
	want := finishedMAC(keys.finKey, tr, "server finished")
	if !macEqual(sfPlain, want) {
		return nil, ErrFinishedMismatch
	}

	return &Conn{raw: conn, br: br, rd: keys.server, wr: keys.client, peer: cert}, nil
}

// AcceptNative performs the server side of the handshake in-process, without
// an enclave. It is the "LibreSSL" baseline of the paper's evaluation.
func AcceptNative(conn net.Conn, cfg *ServerConfig) (*Conn, error) {
	br := bufio.NewReader(conn)
	tr := &transcript{}

	ftype, payload, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	if ftype != frameClientHello {
		return nil, fmt.Errorf("%w: expected ClientHello, got frame %d", ErrHandshakeFailed, ftype)
	}
	ch, err := parseClientHello(payload)
	if err != nil {
		return nil, err
	}
	tr.add(payload)

	eph, err := generateEphemeral()
	if err != nil {
		return nil, err
	}
	sh := &serverHello{EphPub: eph.PublicKey().Bytes(), Cert: cfg.Cert.Marshal(), WantCert: cfg.RequireClientCert}
	if err := fillRandom(sh.Random[:]); err != nil {
		return nil, err
	}
	sigTr := &transcript{}
	sigTr.add(payload)
	sigTr.add(sh.Random[:])
	sigTr.add(sh.EphPub)
	sigTr.add(sh.Cert)
	if sh.SigR, sh.SigS, err = signTranscript(cfg.Key, sigTr); err != nil {
		return nil, err
	}
	shBytes := sh.marshal()
	tr.add(shBytes)
	if err := writeFrame(conn, frameServerHello, shBytes); err != nil {
		return nil, err
	}

	shared, err := ecdhShared(eph, ch.EphPub)
	if err != nil {
		return nil, err
	}
	keys, err := deriveKeys(shared, ch.Random[:], sh.Random[:])
	if err != nil {
		return nil, err
	}

	ftype, payload, err = readFrame(br)
	if err != nil {
		return nil, err
	}
	if ftype != frameClientFinished {
		return nil, fmt.Errorf("%w: expected ClientFinished, got frame %d", ErrHandshakeFailed, ftype)
	}
	cfPlain, err := keys.client.open(frameClientFinished, payload)
	if err != nil {
		return nil, err
	}
	cf, err := parseClientFinished(cfPlain)
	if err != nil {
		return nil, err
	}
	if !macEqual(cf.MAC, finishedMAC(keys.finKey, tr, "client finished")) {
		return nil, ErrFinishedMismatch
	}
	var peer *pki.Certificate
	if cfg.RequireClientCert {
		if !cf.HasCert {
			return nil, ErrCertRequired
		}
		peer, err = pki.Unmarshal(cf.Cert)
		if err != nil {
			return nil, err
		}
		if cfg.ClientRoots == nil {
			return nil, fmt.Errorf("%w: no client roots configured", ErrCertUntrusted)
		}
		if err := cfg.ClientRoots.Verify(peer); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCertUntrusted, err)
		}
		if !verifyTranscript(peer.PubKey, tr, cf.SigR, cf.SigS) {
			return nil, fmt.Errorf("%w: client transcript signature invalid", ErrHandshakeFailed)
		}
	}
	tr.add(cfPlain)

	sf := finishedMAC(keys.finKey, tr, "server finished")
	ct, err := keys.server.seal(frameServerFinished, sf)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, frameServerFinished, ct); err != nil {
		return nil, err
	}

	return &Conn{raw: conn, br: br, rd: keys.client, wr: keys.server, peer: peer}, nil
}

func macEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

func fillRandom(b []byte) error {
	_, err := cryptoRandRead(b)
	return err
}
