package tlsterm

import (
	"io"
	"net"
)

// Stream is a secured, terminated connection as seen by a server.
type Stream interface {
	io.ReadWriteCloser
}

// Terminator abstracts who terminates TLS for a server: the native
// in-process implementation (the paper's LibreSSL baseline) or a LibSEAL
// enclave library. Servers written against it need no changes to switch —
// LibSEAL's drop-in property (R2).
type Terminator interface {
	// Accept performs the server-side handshake on a raw connection.
	Accept(conn net.Conn) (Stream, error)
}

// nativeTerminator terminates with AcceptNative.
type nativeTerminator struct {
	cfg *ServerConfig
}

// NewNativeTerminator returns the baseline in-process terminator.
func NewNativeTerminator(cfg *ServerConfig) Terminator {
	return &nativeTerminator{cfg: cfg}
}

// Accept implements Terminator.
func (n *nativeTerminator) Accept(conn net.Conn) (Stream, error) {
	return AcceptNative(conn, n.cfg)
}

// libraryTerminator terminates inside the enclave via a LibSEAL library.
type libraryTerminator struct {
	lib *Library
}

// Terminator adapts the library to the Terminator interface.
func (lib *Library) Terminator() Terminator {
	return &libraryTerminator{lib: lib}
}

// Accept implements Terminator.
func (l *libraryTerminator) Accept(conn net.Conn) (Stream, error) {
	ssl := l.lib.NewSSL(conn)
	if err := ssl.Accept(); err != nil {
		conn.Close()
		return nil, err
	}
	return ssl, nil
}

// PlainTerminator passes connections through without TLS; used for backend
// legs of reverse proxies.
type PlainTerminator struct{}

// Accept implements Terminator.
func (PlainTerminator) Accept(conn net.Conn) (Stream, error) { return conn, nil }
