package tlsterm

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"

	"libseal/internal/asyncall"
	"libseal/internal/netsim"
)

// tamperConn wraps a net.Conn and flips one byte at a chosen offset of the
// outgoing stream, modelling an in-path attacker.
type tamperConn struct {
	net.Conn
	offset  int
	written int
}

func (c *tamperConn) Write(p []byte) (int, error) {
	if c.offset >= c.written && c.offset < c.written+len(p) {
		mut := append([]byte(nil), p...)
		mut[c.offset-c.written] ^= 0xA5
		c.written += len(p)
		return c.Conn.Write(mut)
	}
	c.written += len(p)
	return c.Conn.Write(p)
}

// TestHandshakeTamperingAlwaysFails flips single bytes at many positions of
// the client's outgoing handshake stream; every mutation must make the
// handshake fail on at least one side — never succeed with altered state.
func TestHandshakeTamperingAlwaysFails(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	// Measure an unmodified handshake's client-side byte count first.
	probeC, probeS := netsim.Pipe(netsim.LinkConfig{})
	go func() {
		defer probeS.Close()
		AcceptNative(probeS, &ServerConfig{Cert: env.cert, Key: env.key})
	}()
	probe := &tamperConn{Conn: probeC, offset: 1 << 30}
	conn, err := Connect(probe, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	total := probe.written

	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		offset := r.Intn(total)
		cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
		serverErr := make(chan error, 1)
		go func() {
			// Closing the transport on failure unblocks the client, which
			// may otherwise wait for a response that will never come.
			defer sConn.Close()
			sc, err := AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
			if err != nil {
				serverErr <- err
				return
			}
			// If the handshake "succeeded", try to exchange data — the
			// finished MACs must have caught any tampering before this.
			buf := make([]byte, 4)
			if _, err := io.ReadFull(sc, buf); err != nil {
				serverErr <- err
				return
			}
			sc.Write(buf)
			serverErr <- nil
		}()
		client, err := Connect(&tamperConn{Conn: cConn, offset: offset}, clientCfg(env))
		if err == nil {
			// The client-side handshake passed (mutation may have hit
			// client-to-server data the client cannot check); the server
			// must have rejected it instead.
			client.Write([]byte("ping"))
			buf := make([]byte, 4)
			_, rerr := io.ReadFull(client, buf)
			serr := <-serverErr
			if rerr == nil && serr == nil {
				t.Fatalf("offset %d: tampered handshake succeeded end-to-end", offset)
			}
			client.Close()
			continue
		}
		cConn.Close()
	}
}

// TestRecordStreamTamperDetected flips bytes in application records; the
// receiver must reject them (AEAD) rather than deliver corrupted plaintext.
func TestRecordStreamTamperDetected(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	for _, offset := range []int{0, 3, 4, 10, 20} {
		cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
		received := make(chan error, 1)
		go func() {
			sc, err := AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
			if err != nil {
				received <- err
				return
			}
			buf := make([]byte, 64)
			_, err = sc.Read(buf)
			received <- err
		}()
		client, err := Connect(cConn, clientCfg(env))
		if err != nil {
			t.Fatal(err)
		}
		// Tamper with the first application record after the handshake.
		frame, err := client.wr.sealFrame(frameAppData, []byte("sensitive request"))
		if err != nil {
			t.Fatal(err)
		}
		frame[4+offset%len(frame[4:])] ^= 0xFF
		if _, err := cConn.Write(frame); err != nil {
			t.Fatal(err)
		}
		if err := <-received; !errors.Is(err, ErrBadRecord) {
			t.Fatalf("offset %d: server accepted tampered record: %v", offset, err)
		}
		client.Close()
	}
}

// TestRecordReorderingRejected swaps two records in flight; sequence-bound
// nonces must reject them.
func TestRecordReorderingRejected(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
	result := make(chan error, 1)
	go func() {
		sc, err := AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
		if err != nil {
			result <- err
			return
		}
		buf := make([]byte, 64)
		_, err = sc.Read(buf)
		result <- err
	}()
	client, err := Connect(cConn, clientCfg(env))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	f1, _ := client.wr.sealFrame(frameAppData, []byte("first"))
	f2, _ := client.wr.sealFrame(frameAppData, []byte("second"))
	// Deliver the second record first.
	cConn.Write(f2)
	cConn.Write(f1)
	if err := <-result; !errors.Is(err, ErrBadRecord) {
		t.Fatalf("reordered records accepted: %v", err)
	}
}

// TestSessionKeysAreConnectionSpecific ensures a record captured on one
// connection cannot be replayed into another (fresh ECDHE per handshake).
func TestSessionKeysAreConnectionSpecific(t *testing.T) {
	env := newTestEnv(t, asyncall.ModeSync)
	dial := func() (*Conn, *netsim.Conn) {
		cConn, sConn := netsim.Pipe(netsim.LinkConfig{})
		go func() {
			sc, err := AcceptNative(sConn, &ServerConfig{Cert: env.cert, Key: env.key})
			if err != nil {
				return
			}
			buf := make([]byte, 64)
			for {
				if _, err := sc.Read(buf); err != nil {
					return
				}
			}
		}()
		c, err := Connect(cConn, clientCfg(env))
		if err != nil {
			t.Fatal(err)
		}
		return c, cConn
	}
	c1, _ := dial()
	defer c1.Close()
	c2, raw2 := dial()
	defer c2.Close()
	// A frame sealed under connection 1's keys fails on connection 2.
	frame, _ := c1.wr.sealFrame(frameAppData, []byte("cross-session replay"))
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		_, err := c2.Read(buf)
		readErr <- err
	}()
	_ = raw2
	// Write the foreign frame directly into connection 2's transport from
	// the server side is not possible here; instead decrypt check: keys
	// must differ.
	if bytes.Equal(c1.wr.iv[:], c2.wr.iv[:]) {
		t.Fatal("two connections derived identical IVs")
	}
	if _, err := c2.rd.open(frameAppData, frame[4:]); err == nil {
		t.Fatal("record sealed for connection 1 opened under connection 2 keys")
	}
	c2.Close()
	<-readErr
	_ = frame
}
