package tlsterm

import (
	"crypto/hmac"
	"crypto/sha256"
)

// hkdfExtract implements HKDF-Extract with SHA-256 (RFC 5869).
func hkdfExtract(salt, ikm []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand implements HKDF-Expand with SHA-256 for lengths up to 8160
// bytes.
func hkdfExpand(prk []byte, info string, length int) []byte {
	var out []byte
	var prev []byte
	counter := byte(1)
	for len(out) < length {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write([]byte(info))
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
		counter++
	}
	return out[:length]
}
