// Package bench provides the workload harness of the evaluation: an HTTP
// client speaking the secure-channel protocol, a closed-loop load driver
// with latency statistics, and per-service workload generators. The
// benchmark suite at the repository root uses it to regenerate every figure
// and table of the paper.
package bench

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

// Client is the workload HTTP client; it lives in testutil so service tests
// can use it without import cycles.
type Client = testutil.HTTPClient

// NewClient builds a client. With persistent=false every request uses a
// fresh connection and pays a full handshake — the worst case measured in
// §6.6.
func NewClient(dial func() (net.Conn, error), cfg *tlsterm.ClientConfig, persistent bool) *Client {
	return testutil.NewHTTPClient(dial, cfg, persistent)
}

// Result aggregates a load run.
type Result struct {
	Requests   int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // requests per second
	Latency    LatencyStats
}

// LatencyStats summarises per-request latency.
type LatencyStats struct {
	Mean, P50, P95, P99, Min, Max time.Duration
}

func summarise(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return LatencyStats{
		Mean: sum / time.Duration(len(samples)),
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
		Min:  samples[0],
		Max:  samples[len(samples)-1],
	}
}

// Load describes a closed-loop run: Clients workers each issue requests
// back-to-back until the shared request budget is exhausted.
type Load struct {
	// Clients is the number of concurrent workers.
	Clients int
	// Requests is the total request budget across workers.
	Requests int
	// Warmup requests are issued but excluded from statistics.
	Warmup int
	// MakeClient builds one worker's client.
	MakeClient func(worker int) *Client
	// MakeRequest produces the i-th request for a worker.
	MakeRequest func(worker, seq int) *httpparse.Request
	// Validate, when set, checks each response; failures count as errors.
	Validate func(rsp *httpparse.Response) error
}

// Run executes the closed loop and aggregates results.
func (ld Load) Run() (Result, error) {
	if ld.Clients <= 0 || ld.Requests <= 0 || ld.MakeClient == nil || ld.MakeRequest == nil {
		return Result{}, errors.New("bench: incomplete load spec")
	}
	type sample struct {
		d   time.Duration
		err bool
	}
	var mu sync.Mutex
	var samples []time.Duration
	errCount := 0

	var budget = make(chan int, ld.Requests+ld.Warmup)
	for i := 0; i < ld.Requests+ld.Warmup; i++ {
		budget <- i
	}
	close(budget)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < ld.Clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := ld.MakeClient(worker)
			defer client.Close()
			seq := 0
			for global := range budget {
				req := ld.MakeRequest(worker, seq)
				seq++
				t0 := time.Now()
				rsp, err := client.Do(req)
				lat := time.Since(t0)
				if err == nil && ld.Validate != nil {
					err = ld.Validate(rsp)
				}
				warm := global < ld.Warmup
				mu.Lock()
				if err != nil {
					errCount++
				} else if !warm {
					samples = append(samples, lat)
				}
				mu.Unlock()
				if err != nil {
					// A failed connection cannot be reused.
					client.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Requests: len(samples),
		Errors:   errCount,
		Elapsed:  elapsed,
		Latency:  summarise(samples),
	}
	if elapsed > 0 {
		res.Throughput = float64(len(samples)) / elapsed.Seconds()
	}
	return res, nil
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%8.1f req/s  mean %8s  p50 %8s  p95 %8s  p99 %8s  (%d req, %d err)",
		r.Throughput, r.Latency.Mean.Round(time.Microsecond), r.Latency.P50.Round(time.Microsecond),
		r.Latency.P95.Round(time.Microsecond), r.Latency.P99.Round(time.Microsecond), r.Requests, r.Errors)
}
