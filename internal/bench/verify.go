package bench

import (
	"runtime"

	"libseal/internal/audit"
)

// VerifyLog is the post-run integrity check every bench and soak run ends
// with: it re-verifies the persisted audit log exactly as an auditing
// client would — strict mode, no truncation tolerance — using the parallel
// segmented pipeline with one worker per core. Returns the stream result so
// callers can report entry counts without materialising the entries.
func VerifyLog(path string, opts audit.VerifyOptions) (*audit.StreamResult, error) {
	return audit.VerifyFileStream(path, audit.StreamOptions{
		VerifyOptions: opts,
		Workers:       runtime.GOMAXPROCS(0),
		// The callback keeps the pipeline in streaming mode: entry counts
		// come from TotalEntries/Tables, nothing is accumulated, and memory
		// stays bounded however large the bench log grew.
		OnSegment: func(audit.SegmentInfo) error { return nil },
	})
}

// VerifyLogSet is VerifyLog for a whole directory: it auto-detects a sharded
// set (shard files plus the epoch-manifest sidecar) versus a single log
// file, verifies the shards in parallel and replays the manifests.
func VerifyLogSet(dir string, opts audit.VerifyOptions) (*audit.ShardedStreamResult, error) {
	return audit.VerifyPath(dir, audit.StreamOptions{
		VerifyOptions: opts,
		Workers:       runtime.GOMAXPROCS(0),
		OnSegment:     func(audit.SegmentInfo) error { return nil },
	})
}
