package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/httpparse"
	"libseal/internal/services/gitserver"
	"libseal/internal/sqldb"
	"libseal/internal/ssm"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/owncloudssm"
)

// LogFiller replays a synthetic request/response stream for one service
// through its SSM into a database, without the TLS/enclave pipeline. The
// Fig. 6 experiment uses it to measure invariant checking and trimming cost
// in isolation.
type LogFiller struct {
	Module ssm.Module
	DB     *sqldb.DB
	time   int64
	next   func(f *LogFiller) (req *httpparse.Request, rsp *httpparse.Response)
	state  any

	// Set by Attach: tuples then flow through a real audit.Log, so Check
	// and Trim pay the full fixed costs (enclave crossings, persistent
	// rewrite, counter increment, re-signing).
	log    *audit.Log
	bridge *asyncall.Bridge
}

// Attach routes the filler through a persistent audit log inside the given
// enclave bridge. cfg.Schema and cfg.Name default to the module's.
func (f *LogFiller) Attach(bridge *asyncall.Bridge, cfg audit.Config) error {
	if cfg.Schema == "" {
		cfg.Schema = f.Module.Schema()
	}
	if cfg.Name == "" {
		cfg.Name = f.Module.Name()
	}
	var l *audit.Log
	if err := bridge.Call(func(env *asyncall.Env) error {
		var err error
		l, err = audit.New(env, cfg)
		return err
	}); err != nil {
		return err
	}
	f.log = l
	f.bridge = bridge
	f.DB = l.DB()
	return nil
}

// Fill applies n request/response pairs.
func (f *LogFiller) Fill(n int) error {
	for i := 0; i < n; i++ {
		req, rsp := f.next(f)
		f.time++
		tuples, err := f.Module.HandlePair(&ssm.State{Time: f.time, DB: f.DB}, req.Bytes(), rsp.Bytes())
		if err != nil {
			return err
		}
		if f.log != nil {
			if err := f.bridge.Call(func(env *asyncall.Env) error {
				for _, tu := range tuples {
					if err := f.log.Append(env, tu.Table, tu.Values...); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
			continue
		}
		for _, tu := range tuples {
			ph := strings.TrimSuffix(strings.Repeat("?,", len(tu.Values)), ",")
			if _, err := f.DB.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%s)", tu.Table, ph), tu.Values...); err != nil {
				return err
			}
		}
	}
	return nil
}

// Check runs all invariants and returns the number of violations.
func (f *LogFiller) Check() (int, error) {
	v, err := ssm.CheckInvariants(f.DB, f.Module)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, res := range v {
		total += len(res.Rows)
	}
	return total, nil
}

// Trim applies the module's trimming queries. When attached to an audit
// log, the trim includes the chain rewrite, counter increment and
// re-signing of §5.1.
func (f *LogFiller) Trim() error {
	if f.log != nil {
		return f.bridge.Call(func(env *asyncall.Env) error {
			return f.log.Trim(env, f.Module.TrimQueries())
		})
	}
	for _, q := range f.Module.TrimQueries() {
		if _, err := f.DB.Exec(q); err != nil {
			return err
		}
	}
	return nil
}

// CheckTrim runs a full check-and-trim round inside the enclave (when
// attached) and returns its duration.
func (f *LogFiller) CheckTrim() (time.Duration, error) {
	start := time.Now()
	if f.bridge != nil {
		err := f.bridge.Call(func(env *asyncall.Env) error {
			if _, err := ssm.CheckInvariants(f.DB, f.Module); err != nil {
				return err
			}
			return f.log.Trim(env, f.Module.TrimQueries())
		})
		return time.Since(start), err
	}
	if _, err := f.Check(); err != nil {
		return 0, err
	}
	if err := f.Trim(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func newFiller(m ssm.Module, next func(*LogFiller) (*httpparse.Request, *httpparse.Response)) (*LogFiller, error) {
	db := sqldb.New()
	if _, err := db.Exec(m.Schema()); err != nil {
		return nil, err
	}
	return &LogFiller{Module: m, DB: db, next: next}, nil
}

type gitFillerState struct {
	gen   *gitserver.HistoryGenerator
	since int
}

// NewGitFiller replays a synthetic commit history: pushes with a ref
// advertisement every tenth pair.
func NewGitFiller(m ssm.Module) (*LogFiller, error) {
	f, err := newFiller(m, func(f *LogFiller) (*httpparse.Request, *httpparse.Response) {
		st := f.state.(*gitFillerState)
		st.since++
		if st.since%10 == 0 {
			var body strings.Builder
			for branch, cid := range st.gen.Heads() {
				fmt.Fprintf(&body, "ref %s %s\n", branch, cid)
			}
			return httpparse.NewRequest("GET", "/git/bench/info/refs", nil),
				httpparse.NewResponse(200, []byte(body.String()))
		}
		return httpparse.NewRequest("POST", "/git/bench/git-receive-pack", []byte(st.gen.PushLines())),
			httpparse.NewResponse(200, []byte("ok"))
	})
	if err != nil {
		return nil, err
	}
	f.state = &gitFillerState{gen: gitserver.NewHistoryGenerator("bench", 99)}
	return f, nil
}

type ownCloudFillerState struct {
	seq   int64
	turn  int
	ops   []string
	since int64
}

// NewOwnCloudFiller alternates pushes, syncs and session snapshots for one
// document edited by several clients.
func NewOwnCloudFiller(m ssm.Module) (*LogFiller, error) {
	f, err := newFiller(m, func(f *LogFiller) (*httpparse.Request, *httpparse.Response) {
		st := f.state.(*ownCloudFillerState)
		st.turn++
		switch st.turn % 5 {
		case 0: // a client leaves, uploading a snapshot
			body, _ := json.Marshal(owncloudssm.LeaveMsg{
				Doc: "doc", Client: "alice", Snapshot: strings.Repeat("x", 64), Seq: st.seq,
			})
			return httpparse.NewRequest("POST", "/owncloud/leave", body),
				httpparse.NewResponse(200, []byte(`{"ok":1}`))
		case 1, 2: // single-character edits (§6.4 workload)
			op := fmt.Sprintf("ins(%d,'a')", st.seq)
			st.ops = append(st.ops, op)
			st.seq++
			body, _ := json.Marshal(owncloudssm.PushMsg{Doc: "doc", Client: "alice", Ops: []string{op}})
			rsp, _ := json.Marshal(owncloudssm.PushRsp{Seq: st.seq})
			return httpparse.NewRequest("POST", "/owncloud/push", body),
				httpparse.NewResponse(200, rsp)
		default: // another client syncs
			ops := st.ops[st.since:]
			body, _ := json.Marshal(owncloudssm.SyncMsg{Doc: "doc", Client: "bob", Since: st.since})
			rsp, _ := json.Marshal(owncloudssm.SyncRsp{Ops: ops, Seq: st.seq})
			st.since = st.seq
			return httpparse.NewRequest("POST", "/owncloud/sync", body),
				httpparse.NewResponse(200, rsp)
		}
	})
	if err != nil {
		return nil, err
	}
	f.state = &ownCloudFillerState{}
	return f, nil
}

type dropboxFillerState struct {
	turn  int
	files map[string]string
}

// NewDropboxFiller creates and deletes files, interleaving full list
// requests, shaped like the Drago et al. personal-cloud benchmark.
func NewDropboxFiller(m ssm.Module) (*LogFiller, error) {
	f, err := newFiller(m, func(f *LogFiller) (*httpparse.Request, *httpparse.Response) {
		st := f.state.(*dropboxFillerState)
		st.turn++
		if st.turn%10 == 0 { // periodic list request (§6.1)
			var out dropboxssm.ListRsp
			for name, bl := range st.files {
				out.Files = append(out.Files, dropboxssm.FileCommit{File: name, Blocklist: bl, Size: 4096})
			}
			rsp, _ := json.Marshal(out)
			return httpparse.NewRequest("GET", "/dropbox/list?account=u&host=h", nil),
				httpparse.NewResponse(200, rsp)
		}
		name := fmt.Sprintf("file-%d.dat", st.turn%20)
		bl := fmt.Sprintf("%064d", st.turn)
		st.files[name] = bl
		body, _ := json.Marshal(dropboxssm.CommitBatchMsg{
			Account: "u", Host: "h",
			Commits: []dropboxssm.FileCommit{{File: name, Blocklist: bl, Size: 4096}},
		})
		return httpparse.NewRequest("POST", "/dropbox/commit_batch", body),
			httpparse.NewResponse(200, []byte(`{"ok":1}`))
	})
	if err != nil {
		return nil, err
	}
	f.state = &dropboxFillerState{files: map[string]string{}}
	return f, nil
}

// LogFootprint measures the serialised size of a trimmed audit log: the sum
// of the entry encodings of every retained tuple, and the tuple count. The
// §6.5 experiment divides them to obtain bytes per retained unit (branch
// pointer, update, file).
func LogFootprint(db *sqldb.DB) (bytes int64, tuples int) {
	for _, table := range db.Tables() {
		rows, err := db.TableRows(table)
		if err != nil {
			continue
		}
		for i, row := range rows {
			e := audit.Entry{Seq: uint64(i), Table: table, Values: row}
			bytes += int64(len(e.Marshal()))
			tuples++
		}
	}
	return bytes, tuples
}
