package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/httpparse"
	"libseal/internal/services/owncloud"
	"libseal/internal/ssm"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/ssm/owncloudssm"
)

func TestGitStackAllModes(t *testing.T) {
	for _, mode := range []SealMode{ModeNative, ModeProcess, ModeMem, ModeDisk} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			st, err := NewGitStack(StackOptions{Mode: mode}, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			client := st.NewClient(true)
			defer client.Close()
			rsp, err := client.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
			if err != nil || rsp.Status != 200 {
				t.Fatalf("push: %v %v", rsp, err)
			}
			rsp, err = client.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
			if err != nil || !strings.Contains(string(rsp.Body), "main c1") {
				t.Fatalf("fetch: %v %v", rsp, err)
			}
			if mode == ModeMem || mode == ModeDisk {
				if result, err := st.Seal.CheckNow(); err != nil || result != "ok" {
					t.Fatalf("CheckNow = %q %v", result, err)
				}
				n, err := st.Seal.Log().DB().TableRowCount("updates")
				if err != nil || n != 1 {
					t.Fatalf("updates = %d %v", n, err)
				}
			}
		})
	}
}

func TestGitStackDetectsInjectedAttack(t *testing.T) {
	st, err := NewGitStack(StackOptions{Mode: ModeMem}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client := st.NewClient(true)
	defer client.Close()
	client.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
	client.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("update main c2")))
	st.Backend.InjectRollback("r", "main", "c1")
	client.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
	result, err := st.Seal.CheckNow()
	if err != nil || !strings.Contains(result, "git-soundness") {
		t.Fatalf("result = %q %v", result, err)
	}
}

func TestOwnCloudStack(t *testing.T) {
	st, err := NewOwnCloudStack(StackOptions{Mode: ModeMem}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client := st.NewClient(true)
	defer client.Close()
	push, _ := json.Marshal(owncloudssm.PushMsg{Doc: "d", Client: "a", Ops: []string{"x"}})
	rsp, err := client.Do(httpparse.NewRequest("POST", "/owncloud/push", push))
	if err != nil || rsp.Status != 200 {
		t.Fatalf("push: %v %v", rsp, err)
	}
	if result, err := st.Seal.CheckNow(); err != nil || result != "ok" {
		t.Fatalf("CheckNow = %q %v", result, err)
	}
	// Inject a lost edit and observe detection through the whole stack.
	st.Service.SetFaults(owncloud.Faults{DropEveryNthOp: 1})
	sync, _ := json.Marshal(owncloudssm.SyncMsg{Doc: "d", Client: "b", Since: 0})
	if _, err := client.Do(httpparse.NewRequest("POST", "/owncloud/sync", sync)); err != nil {
		t.Fatal(err)
	}
	result, err := st.Seal.CheckNow()
	if err != nil || !strings.Contains(result, "owncloud-sync-completeness") {
		t.Fatalf("result = %q %v", result, err)
	}
}

func TestDropboxStack(t *testing.T) {
	st, err := NewDropboxStack(StackOptions{Mode: ModeMem}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client := st.NewDropboxClient(true)
	defer client.Close()
	body, _ := json.Marshal(dropboxssm.CommitBatchMsg{Account: "a", Host: "h",
		Commits: []dropboxssm.FileCommit{{File: "f", Blocklist: "b1", Size: 10}}})
	rsp, err := client.Do(httpparse.NewRequest("POST", "/dropbox/commit_batch", body))
	if err != nil || rsp.Status != 200 {
		t.Fatalf("commit: %v %v", rsp, err)
	}
	rsp, err = client.Do(httpparse.NewRequest("GET", "/dropbox/list?account=a&host=h", nil))
	if err != nil || !strings.Contains(string(rsp.Body), "b1") {
		t.Fatalf("list: %v %v", rsp, err)
	}
	if result, err := st.Seal.CheckNow(); err != nil || result != "ok" {
		t.Fatalf("CheckNow = %q %v", result, err)
	}
}

func TestStaticStackAsyncAndSync(t *testing.T) {
	for _, cm := range []asyncall.Mode{asyncall.ModeSync, asyncall.ModeAsync} {
		cm := cm
		t.Run(cm.String(), func(t *testing.T) {
			st, err := NewStaticStack(StackOptions{Mode: ModeProcess, CallMode: cm}, 1024, true)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			client := st.NewClient(true)
			defer client.Close()
			rsp, err := client.Do(httpparse.NewRequest("GET", "/c", nil))
			if err != nil || len(rsp.Body) != 1024 {
				t.Fatalf("rsp: %v %v", rsp, err)
			}
		})
	}
}

func TestSquidStack(t *testing.T) {
	st, err := NewSquidStack(StackOptions{Mode: ModeProcess}, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client := NewClient(st.Dial, st.ClientConfig(), true)
	defer client.Close()
	rsp, err := client.Do(httpparse.NewRequest("GET", "/x", nil))
	if err != nil || len(rsp.Body) != 512 {
		t.Fatalf("rsp: %v %v", rsp, err)
	}
}

func TestLoadDriver(t *testing.T) {
	st, err := NewStaticStack(StackOptions{Mode: ModeNative}, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := Load{
		Clients:     4,
		Requests:    40,
		Warmup:      8,
		MakeClient:  func(int) *Client { return st.NewClient(true) },
		MakeRequest: func(w, s int) *httpparse.Request { return httpparse.NewRequest("GET", "/", nil) },
		Validate: func(rsp *httpparse.Response) error {
			if rsp.Status != 200 {
				return fmt.Errorf("status %d", rsp.Status)
			}
			return nil
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 || res.Errors != 0 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Latency.P50 > res.Latency.P99 {
		t.Fatalf("latency percentiles inverted: %+v", res.Latency)
	}
	if res.String() == "" {
		t.Fatal("empty string rendering")
	}
	// Incomplete specs are rejected.
	if _, err := (Load{}).Run(); err == nil {
		t.Fatal("empty load accepted")
	}
}

func TestDiskModePersistsAcrossStack(t *testing.T) {
	dir := t.TempDir()
	st, err := NewGitStack(StackOptions{Mode: ModeDisk, AuditDir: dir, ROTELatency: time.Microsecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	client := st.NewClient(true)
	client.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
	client.Close()
	st.Close()
}

// TestCrossInstanceMergeDetection reproduces the §3.2 scale-out scenario end
// to end: two independent LibSEAL instances (separate enclaves, separate
// persisted logs) each observe half of a violation — one logs the pushes,
// the other logs a rolled-back advertisement. Neither partial log proves
// anything alone; verifying and merging both does.
func TestCrossInstanceMergeDetection(t *testing.T) {
	mod := gitssm.New()
	dir := t.TempDir()
	files := map[string]string{}
	opts := map[string]audit.VerifyOptions{}

	// run deploys one LibSEAL instance, drives it, and keeps its verified
	// partial log under the instance's name.
	run := func(instance string, drive func(st *GitStack, c *Client)) {
		st, err := NewGitStack(StackOptions{Mode: ModeDisk, AuditDir: dir}, 0)
		if err != nil {
			t.Fatal(err)
		}
		client := st.NewClient(true)
		drive(st, client)
		client.Close()
		st.Close()
		dst := dir + "/" + instance + ".lseal"
		if err := os.Rename(dir+"/git.lseal", dst); err != nil {
			t.Fatal(err)
		}
		files[instance] = dst
		opts[instance] = audit.VerifyOptions{Pub: st.Enclave.PublicKey()}
	}

	// Instance A terminates the pushes.
	run("inst-a", func(_ *GitStack, c *Client) {
		c.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
		c.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("update main c2")))
	})
	// Instance B terminates a fetch whose advertisement was rolled back.
	run("inst-b", func(st *GitStack, c *Client) {
		c.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
		st.Backend.InjectRollback("r", "main", "c1")
		// B's backend never saw c2; its advertisement of c1 is the stale
		// view a client behind this instance would receive.
		c.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
	})

	// Each partial log alone shows no soundness violation.
	for instance, path := range files {
		entries, err := audit.VerifyFile(path, opts[instance])
		if err != nil {
			t.Fatal(err)
		}
		db, err := audit.Merge(mod.Schema(), []audit.PartialLog{{Instance: instance, Entries: entries}})
		if err != nil {
			t.Fatal(err)
		}
		v, err := ssm.CheckInvariants(db, mod)
		if err != nil {
			t.Fatal(err)
		}
		if v["git-soundness"] != nil {
			t.Fatalf("partial log %s alone already shows the violation", instance)
		}
	}

	// The merged view interleaves A's c2 push before B's c1 advertisement
	// (by local logical time), exposing the rollback.
	db, err := audit.MergeVerified(mod.Schema(), files, opts)
	if err != nil {
		t.Fatal(err)
	}
	violations, err := ssm.CheckInvariants(db, mod)
	if err != nil {
		t.Fatal(err)
	}
	if violations["git-soundness"] == nil {
		t.Fatalf("merged cross-instance logs missed the rollback: %v", violations)
	}
}
