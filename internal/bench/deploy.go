package bench

import (
	"net"
	"os"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/core"
	"libseal/internal/enclave"
	"libseal/internal/faultinject"
	"libseal/internal/netsim"
	"libseal/internal/resilience"
	"libseal/internal/rote"
	"libseal/internal/services/apache"
	"libseal/internal/services/dropbox"
	"libseal/internal/services/gitserver"
	"libseal/internal/services/owncloud"
	"libseal/internal/services/squid"
	"libseal/internal/ssm"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

// SealMode selects the evaluation configuration of a deployment, matching
// the paper's native / LibSEAL-process / LibSEAL-mem / LibSEAL-disk curves.
type SealMode int

// Evaluation configurations.
const (
	// ModeNative terminates TLS in-process without an enclave (the
	// LibreSSL baseline).
	ModeNative SealMode = iota
	// ModeProcess terminates TLS inside the enclave but does not log
	// (isolates the SGX overhead).
	ModeProcess
	// ModeMem adds audit logging to an in-memory database.
	ModeMem
	// ModeDisk adds synchronous persistent logging with ROTE rollback
	// protection.
	ModeDisk
)

func (m SealMode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeProcess:
		return "LibSEAL-process"
	case ModeMem:
		return "LibSEAL-mem"
	case ModeDisk:
		return "LibSEAL-disk"
	}
	return "?"
}

// StackOptions tunes a deployment.
type StackOptions struct {
	Mode SealMode
	// Cost is the enclave cost model; zero-value charges nothing.
	Cost enclave.CostModel
	// CallMode selects sync or async enclave transitions (Table 2).
	CallMode asyncall.Mode
	// Schedulers and TasksPerScheduler size the async machinery
	// (Tables 3-4).
	Schedulers        int
	TasksPerScheduler int
	// AppSlots sizes the async request array (defaults to 48).
	AppSlots int
	// MaxThreads is the enclave TCS count.
	MaxThreads int
	// Opts are the §4.2 transition-reduction optimisations.
	Opts *tlsterm.Optimizations
	// CheckEvery enables periodic checking/trimming.
	CheckEvery int
	// CheckInterval is the wall-clock check cadence (zero keeps the
	// core default).
	CheckInterval time.Duration
	// CheckAsync evaluates scheduled checks on a background worker
	// against a copy-on-write snapshot instead of on the request path.
	CheckAsync bool
	// NoIndexes disables the audit database's hash indexes (the index
	// ablation).
	NoIndexes bool
	// AuditDir overrides the disk-mode log directory.
	AuditDir string
	// RecoverExisting resumes from a persisted log in AuditDir instead of
	// truncating it (disk mode; requires Platform so keys match).
	RecoverExisting bool
	// ROTELatency is the one-way latency to counter nodes (same cluster).
	ROTELatency time.Duration
	// ROTEF is the number of counter-node failures the group tolerates
	// (n = 3f+1 nodes); zero means f=1.
	ROTEF int
	// Group reuses an existing counter group instead of minting one, so a
	// restarted stack keeps its monotonic counters (disk mode).
	Group *rote.Group
	// Inject, when set, drives chaos: its node rules attach to the counter
	// group and its filesystem rules interpose on audit-log persistence.
	// Link rules are installed by the test via Stack.Net.SetLinkFault.
	Inject *faultinject.Injector
	// AnchorTimeout, DegradedLimit and RecoverMaxLag are the audit log's
	// robustness knobs; see core.Config.
	AnchorTimeout time.Duration
	DegradedLimit int
	RecoverMaxLag uint64
	// AuditBatchMax and AuditBatchDelay configure audit-log group commit:
	// up to AuditBatchMax entries share one signature, fsync and counter
	// increment, and a batch leader waits AuditBatchDelay for followers.
	// Zero values keep the conservative entry-at-a-time behaviour.
	AuditBatchMax   int
	AuditBatchDelay time.Duration
	// AuditShards partitions the disk-mode log across this many shard files
	// with a signed cross-shard epoch manifest; <= 1 keeps one file.
	AuditShards int
	// MaxStaged and AdmitTimeout configure admission control on the
	// group-commit pipeline: over-budget appends wait up to AdmitTimeout for
	// it to drain, then are shed with audit.ErrOverloaded. Zero MaxStaged
	// disables the bound.
	MaxStaged    int
	AdmitTimeout time.Duration
	// Breaker wraps the counter group in a circuit breaker (disk mode): a
	// run of quorum failures makes appends degrade immediately instead of
	// burning the retry budget per batch. Nil disables the breaker.
	Breaker *resilience.BreakerConfig
	// RetryPolicy overrides the counter group's request timeout/retry
	// policy (nil keeps rote.DefaultRetryPolicy).
	RetryPolicy *rote.RetryPolicy
	// Platform reuses an enclave platform across stacks, so a restarted
	// deployment keeps its keys and can verify its previous log.
	Platform *enclave.Platform
	// KeepAlive enables persistent connections on the front server.
	KeepAlive bool
	// UseExData makes the front server store request data in TLS ex_data.
	UseExData bool
}

func (o StackOptions) withDefaults() StackOptions {
	if o.MaxThreads == 0 {
		o.MaxThreads = 24
	}
	if o.Opts == nil {
		all := tlsterm.AllOptimizations()
		o.Opts = &all
	}
	return o
}

// Stack is a deployed service behind (optionally) LibSEAL.
type Stack struct {
	Net     *netsim.Network
	Env     *testutil.CertEnv
	Enclave *enclave.Enclave
	Bridge  *asyncall.Bridge
	Seal    *core.LibSEAL
	Group   *rote.Group
	// Breaker is the circuit breaker protecting the counter group (nil
	// unless StackOptions.Breaker was set).
	Breaker *resilience.Breaker

	// Addr is the front-end address clients dial.
	Addr string

	closers []func()
}

// Dial opens a raw transport connection to the stack's front end.
func (s *Stack) Dial() (net.Conn, error) { return s.Net.Dial(s.Addr) }

// ClientConfig returns the TLS client configuration for the front end.
func (s *Stack) ClientConfig() *tlsterm.ClientConfig {
	return s.Env.ClientConfig("libseal.test")
}

// NewClient builds a workload client against the stack.
func (s *Stack) NewClient(persistent bool) *Client {
	return NewClient(s.Dial, s.ClientConfig(), persistent)
}

// Close tears the deployment down in reverse construction order.
func (s *Stack) Close() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
}

// terminator builds the TLS termination layer for the configured mode and
// returns it together with the LibSEAL instance (nil in native mode).
func buildStack(opts StackOptions, module ssm.Module) (*Stack, tlsterm.Terminator, error) {
	opts = opts.withDefaults()
	st := &Stack{Net: netsim.NewNetwork(), Addr: "front:443"}
	env, err := testutil.NewCertEnv("libseal.test")
	if err != nil {
		return nil, nil, err
	}
	st.Env = env

	if opts.Mode == ModeNative {
		return st, tlsterm.NewNativeTerminator(env.ServerConfig()), nil
	}

	encl, bridge, err := testutil.NewBridge(testutil.BridgeOptions{
		Mode:              opts.CallMode,
		MaxThreads:        opts.MaxThreads,
		AppSlots:          opts.AppSlots,
		Schedulers:        opts.Schedulers,
		TasksPerScheduler: opts.TasksPerScheduler,
		Cost:              opts.Cost,
		Platform:          opts.Platform,
	})
	if err != nil {
		return nil, nil, err
	}
	st.Enclave = encl
	st.Bridge = bridge
	st.closers = append(st.closers, bridge.Close)

	cfg := core.Config{
		TLS: tlsterm.LibraryConfig{
			Cert: env.Cert, Key: env.Key, Opts: *opts.Opts,
		},
		CheckEvery:      opts.CheckEvery,
		CheckInterval:   opts.CheckInterval,
		CheckAsync:      opts.CheckAsync,
		NoIndexes:       opts.NoIndexes,
		AuditBatchMax:   opts.AuditBatchMax,
		AuditBatchDelay: opts.AuditBatchDelay,
	}
	switch opts.Mode {
	case ModeProcess:
		// TLS in the enclave, no logging.
	case ModeMem:
		cfg.Module = module
		cfg.AuditMode = audit.ModeMemory
	case ModeDisk:
		cfg.Module = module
		cfg.AuditMode = audit.ModeDisk
		dir := opts.AuditDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "libseal-audit-*")
			if err != nil {
				return nil, nil, err
			}
			st.closers = append(st.closers, func() { os.RemoveAll(tmp) })
			dir = tmp
		}
		cfg.AuditDir = dir
		cfg.AuditShards = opts.AuditShards
		group := opts.Group
		if group == nil {
			f := opts.ROTEF
			if f == 0 {
				f = 1
			}
			var err error
			group, err = rote.NewGroup(f, opts.ROTELatency)
			if err != nil {
				return nil, nil, err
			}
		}
		if opts.RetryPolicy != nil {
			group.SetRetryPolicy(*opts.RetryPolicy)
		}
		st.Group = group
		cfg.Protector = group
		if opts.Breaker != nil {
			bp := resilience.NewBreakerProtector("rote.breaker", group, *opts.Breaker)
			st.Breaker = bp.Breaker()
			cfg.Protector = bp
		}
		cfg.RecoverExisting = opts.RecoverExisting
		cfg.AnchorTimeout = opts.AnchorTimeout
		cfg.DegradedLimit = opts.DegradedLimit
		cfg.RecoverMaxLag = opts.RecoverMaxLag
		cfg.AuditMaxStaged = opts.MaxStaged
		cfg.AuditAdmitTimeout = opts.AdmitTimeout
		if opts.Inject != nil {
			opts.Inject.AttachGroup(group)
			cfg.AuditFS = opts.Inject.FS(nil)
		}
	}
	seal, err := core.New(bridge, cfg)
	if err != nil {
		return nil, nil, err
	}
	st.Seal = seal
	st.closers = append(st.closers, func() { seal.Close() })
	return st, seal.TLS().Terminator(), nil
}

// GitStack deploys the paper's Git experiment (§6.4): Apache in reverse
// proxy mode linked against LibSEAL, forwarding to a Git backend over plain
// HTTP, with the Git SSM auditing all traffic.
type GitStack struct {
	*Stack
	Backend *gitserver.Server
}

// NewGitStack builds the Git deployment. processingCost models the backend's
// per-request work.
func NewGitStack(opts StackOptions, processingCost time.Duration) (*GitStack, error) {
	st, term, err := buildStack(opts, gitssm.New())
	if err != nil {
		return nil, err
	}
	backend := gitserver.NewServer()
	backend.ProcessingCost = processingCost

	// Plain-HTTP Git backend.
	backendListener, err := st.Net.Listen("git-backend:80")
	if err != nil {
		return nil, err
	}
	backendSrv, err := apache.New(apache.Config{
		Terminator: tlsterm.PlainTerminator{},
		Handler:    backend.Handler(),
	})
	if err != nil {
		return nil, err
	}
	go backendSrv.Serve(backendListener)

	// Apache front end in reverse proxy mode.
	frontListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	front, err := apache.New(apache.Config{
		Terminator: term,
		Handler:    &apache.ReverseProxy{Dial: func() (net.Conn, error) { return st.Net.Dial("git-backend:80") }},
		KeepAlive:  true,
		UseExData:  opts.UseExData,
	})
	if err != nil {
		return nil, err
	}
	go front.Serve(frontListener)
	st.closers = append([]func(){front.Close, backendSrv.Close}, st.closers...)
	return &GitStack{Stack: st, Backend: backend}, nil
}

// OwnCloudStack deploys the collaborative editing experiment: Apache hosting
// the ownCloud handler directly, LibSEAL terminating TLS.
type OwnCloudStack struct {
	*Stack
	Service *owncloud.Server
}

// NewOwnCloudStack builds the ownCloud deployment. processingCost models the
// PHP engine, the bottleneck of the paper's deployment.
func NewOwnCloudStack(opts StackOptions, processingCost time.Duration) (*OwnCloudStack, error) {
	st, term, err := buildStack(opts, owncloudssm.New())
	if err != nil {
		return nil, err
	}
	svc := owncloud.NewServer()
	svc.ProcessingCost = processingCost
	frontListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	front, err := apache.New(apache.Config{
		Terminator: term,
		Handler:    svc.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		return nil, err
	}
	go front.Serve(frontListener)
	st.closers = append([]func(){front.Close}, st.closers...)
	return &OwnCloudStack{Stack: st, Service: svc}, nil
}

// DropboxStack deploys the Dropbox experiment (§6.4): clients reach the
// remote service through a local Squid proxy linked against LibSEAL; the
// proxy-to-Dropbox leg crosses a simulated 76 ms WAN and is itself TLS.
type DropboxStack struct {
	*Stack
	Service *dropbox.Server
}

// DropboxWANLatency is the paper's measured proxy-to-Dropbox latency.
const DropboxWANLatency = 38 * time.Millisecond // one-way; 76 ms RTT

// NewDropboxStack builds the Dropbox deployment.
func NewDropboxStack(opts StackOptions, wanOneWay time.Duration) (*DropboxStack, error) {
	st, term, err := buildStack(opts, dropboxssm.New())
	if err != nil {
		return nil, err
	}
	svc := dropbox.NewServer()

	// The remote Dropbox service, across the WAN.
	st.Net.SetLink("dropbox:443", netsim.LinkConfig{Latency: wanOneWay})
	dbListener, err := st.Net.Listen("dropbox:443")
	if err != nil {
		return nil, err
	}
	dbEnv, err := testutil.NewCertEnv("dropbox.test")
	if err != nil {
		return nil, err
	}
	dbSrv, err := apache.New(apache.Config{
		Terminator: tlsterm.NewNativeTerminator(dbEnv.ServerConfig()),
		Handler:    svc.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		return nil, err
	}
	go dbSrv.Serve(dbListener)

	// The local Squid proxy terminating client TLS with LibSEAL.
	proxyListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	proxy, err := squid.New(squid.Config{
		Terminator:  term,
		Dial:        func() (net.Conn, error) { return st.Net.Dial("dropbox:443") },
		UpstreamTLS: &tlsterm.ClientConfig{Roots: dbEnv.Pool, ServerName: "dropbox.test"},
	})
	if err != nil {
		return nil, err
	}
	go proxy.Serve(proxyListener)
	st.closers = append([]func(){proxy.Close, dbSrv.Close}, st.closers...)
	return &DropboxStack{Stack: st, Service: svc}, nil
}

// NewDropboxClientConfig returns the client configuration of the Dropbox
// experiment: certificate verification disabled for the proxy-terminated
// leg, as in the paper (§6.4).
func (s *DropboxStack) NewDropboxClient(persistent bool) *Client {
	return NewClient(s.Dial, &tlsterm.ClientConfig{InsecureSkipVerify: true}, persistent)
}

// CustomStack deploys any handler behind an Apache front end with the given
// module — the generic path for auditing new services.
func NewCustomStack(opts StackOptions, module ssm.Module, handler apache.Handler) (*Stack, error) {
	st, term, err := buildStack(opts, module)
	if err != nil {
		return nil, err
	}
	frontListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	front, err := apache.New(apache.Config{
		Terminator: term,
		Handler:    handler,
		KeepAlive:  true,
	})
	if err != nil {
		return nil, err
	}
	go front.Serve(frontListener)
	st.closers = append([]func(){front.Close}, st.closers...)
	return st, nil
}

// StaticStack deploys a plain Apache serving fixed-size content, used by the
// enclave-TLS overhead and async-call experiments (§6.6, §6.8).
type StaticStack struct {
	*Stack
	Server *apache.Server
}

// NewStaticStack builds the static-content deployment.
func NewStaticStack(opts StackOptions, contentSize int, keepAlive bool) (*StaticStack, error) {
	st, term, err := buildStack(opts, nil)
	if err != nil {
		return nil, err
	}
	content := make([]byte, contentSize)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	frontListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	front, err := apache.New(apache.Config{
		Terminator: term,
		Handler:    &apache.StaticHandler{Content: content},
		KeepAlive:  keepAlive,
		UseExData:  opts.UseExData,
	})
	if err != nil {
		return nil, err
	}
	go front.Serve(frontListener)
	st.closers = append([]func(){front.Close}, st.closers...)
	return &StaticStack{Stack: st, Server: front}, nil
}

// SquidStack deploys the Squid overhead experiment of §6.6: client -> Squid
// (TLS, optionally LibSEAL) -> origin Apache (TLS), content served by the
// origin.
type SquidStack struct {
	*Stack
	Proxy *squid.Proxy
}

// NewSquidStack builds the proxy deployment.
func NewSquidStack(opts StackOptions, contentSize int) (*SquidStack, error) {
	st, term, err := buildStack(opts, nil)
	if err != nil {
		return nil, err
	}
	originEnv, err := testutil.NewCertEnv("origin.test")
	if err != nil {
		return nil, err
	}
	content := make([]byte, contentSize)
	originListener, err := st.Net.Listen("origin:443")
	if err != nil {
		return nil, err
	}
	origin, err := apache.New(apache.Config{
		Terminator: tlsterm.NewNativeTerminator(originEnv.ServerConfig()),
		Handler:    &apache.StaticHandler{Content: content},
		KeepAlive:  true,
	})
	if err != nil {
		return nil, err
	}
	go origin.Serve(originListener)

	proxyListener, err := st.Net.Listen(st.Addr)
	if err != nil {
		return nil, err
	}
	proxy, err := squid.New(squid.Config{
		Terminator:  term,
		Dial:        func() (net.Conn, error) { return st.Net.Dial("origin:443") },
		UpstreamTLS: &tlsterm.ClientConfig{Roots: originEnv.Pool, ServerName: "origin.test"},
	})
	if err != nil {
		return nil, err
	}
	go proxy.Serve(proxyListener)
	st.closers = append([]func(){proxy.Close, origin.Close}, st.closers...)
	return &SquidStack{Stack: st, Proxy: proxy}, nil
}
