package bench

import (
	"testing"
	"time"

	"libseal/internal/audit"
	"libseal/internal/rote"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/testutil"
)

func TestFillersProduceCleanLogs(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*LogFiller, error)
	}{
		{"git", func() (*LogFiller, error) { return NewGitFiller(gitssm.New()) }},
		{"owncloud", func() (*LogFiller, error) { return NewOwnCloudFiller(owncloudssm.New()) }},
		{"dropbox", func() (*LogFiller, error) { return NewDropboxFiller(dropboxssm.New()) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			filler, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := filler.Fill(120); err != nil {
				t.Fatal(err)
			}
			// Honest synthetic workloads must not trip the invariants.
			violations, err := filler.Check()
			if err != nil {
				t.Fatal(err)
			}
			if violations != 0 {
				t.Fatalf("honest filler produced %d violations", violations)
			}
			bytesBefore, tuplesBefore := LogFootprint(filler.DB)
			if bytesBefore == 0 || tuplesBefore == 0 {
				t.Fatal("empty footprint before trim")
			}
			if err := filler.Trim(); err != nil {
				t.Fatal(err)
			}
			bytesAfter, tuplesAfter := LogFootprint(filler.DB)
			if tuplesAfter >= tuplesBefore {
				t.Fatalf("trim did not shrink the log: %d -> %d tuples", tuplesBefore, tuplesAfter)
			}
			if bytesAfter >= bytesBefore {
				t.Fatalf("trim did not shrink bytes: %d -> %d", bytesBefore, bytesAfter)
			}
			// Invariants still clean after trimming and more traffic.
			if err := filler.Fill(40); err != nil {
				t.Fatal(err)
			}
			if v, err := filler.Check(); err != nil || v != 0 {
				t.Fatalf("post-trim traffic flagged: %d, %v", v, err)
			}
		})
	}
}

func TestFillerAttachPersists(t *testing.T) {
	filler, err := NewGitFiller(gitssm.New())
	if err != nil {
		t.Fatal(err)
	}
	encl, bridge, err := testutil.NewBridge(testutil.BridgeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	group, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := filler.Attach(bridge, audit.Config{Mode: audit.ModeDisk, Dir: dir, Protector: group}); err != nil {
		t.Fatal(err)
	}
	if err := filler.Fill(30); err != nil {
		t.Fatal(err)
	}
	d, err := filler.CheckTrim()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero check+trim duration")
	}
	// The persisted log verifies and reflects the trimmed state.
	entries, err := audit.VerifyFile(dir+"/git.lseal", audit.VerifyOptions{
		Pub: encl.PublicKey(), Protector: group, Name: "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no persisted entries after attach")
	}
	_, tuples := LogFootprint(filler.DB)
	if len(entries) != tuples {
		t.Fatalf("persisted %d entries but DB holds %d tuples", len(entries), tuples)
	}
}

func TestSealModeStrings(t *testing.T) {
	want := map[SealMode]string{
		ModeNative:  "native",
		ModeProcess: "LibSEAL-process",
		ModeMem:     "LibSEAL-mem",
		ModeDisk:    "LibSEAL-disk",
	}
	for mode, s := range want {
		if mode.String() != s {
			t.Errorf("%d.String() = %q, want %q", mode, mode.String(), s)
		}
	}
	if SealMode(99).String() != "?" {
		t.Error("unknown mode string")
	}
}

func TestDropboxWANConstant(t *testing.T) {
	if 2*DropboxWANLatency != 76*time.Millisecond {
		t.Fatalf("WAN RTT = %v, want 76ms", 2*DropboxWANLatency)
	}
}
