package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestMetricsHandler(t *testing.T) {
	c := NewCounter("test.http.counter", "calls")
	h := NewHistogram("test.http.hist", "ns")
	c.reset()
	h.reset()
	c.Add(42)
	h.Observe(5 * time.Millisecond)

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	var body map[string]Metric
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	m, ok := body["test.http.counter"]
	if !ok || m.Value != 42 || m.Type != "counter" {
		t.Fatalf("counter entry = %+v, %v", m, ok)
	}
	hm, ok := body["test.http.hist"]
	if !ok || hm.Type != "histogram" || hm.Value != 1 || hm.P50 <= 0 {
		t.Fatalf("histogram entry = %+v, %v", hm, ok)
	}
}

func TestMetricsMuxRoutes(t *testing.T) {
	mux := NewServeMux()
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, rec.Code)
		}
	}
}
