package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the current metrics snapshot as
// an expvar-style JSON object keyed by metric name. Keys are emitted in
// sorted order (encoding/json sorts map keys), so the output is
// deterministic for a given metric state.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := Snapshot()
		byName := make(map[string]Metric, len(snap))
		for _, m := range snap {
			byName[m.Name] = m
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(byName)
	})
}

// NewServeMux returns the telemetry endpoint: /metrics serving the JSON
// snapshot plus the net/http/pprof profiling handlers under /debug/pprof/.
// cmd/libseal-server exposes it behind the -metrics-addr flag.
func NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
