package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceFunc receives one named trace event and its duration. Hooks run
// synchronously on the instrumented path (inside the enclave call for audit
// events), so implementations must be fast and must not block.
type TraceFunc func(event string, d time.Duration)

// traceHooks holds the installed hooks behind an atomic pointer: the hot
// path pays one load and a nil check when tracing is unused.
var traceHooks atomic.Pointer[map[string]TraceFunc]

var traceMu sync.Mutex

// RegisterTrace installs a named trace hook observing every emitted event.
// Re-registering a name replaces the previous hook.
func RegisterTrace(name string, fn TraceFunc) {
	traceMu.Lock()
	defer traceMu.Unlock()
	next := make(map[string]TraceFunc)
	if cur := traceHooks.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[name] = fn
	traceHooks.Store(&next)
}

// UnregisterTrace removes a named trace hook.
func UnregisterTrace(name string) {
	traceMu.Lock()
	defer traceMu.Unlock()
	cur := traceHooks.Load()
	if cur == nil {
		return
	}
	if _, ok := (*cur)[name]; !ok {
		return
	}
	if len(*cur) == 1 {
		traceHooks.Store(nil)
		return
	}
	next := make(map[string]TraceFunc, len(*cur)-1)
	for k, v := range *cur {
		if k != name {
			next[k] = v
		}
	}
	traceHooks.Store(&next)
}

// Emit delivers one trace event to every registered hook. With no hooks
// installed it is a single atomic load.
func Emit(event string, d time.Duration) {
	m := traceHooks.Load()
	if m == nil {
		return
	}
	for _, fn := range *m {
		fn(event, d)
	}
}

// ObserveSince records the time elapsed since start into h and emits it as
// a trace event. It is the standard epilogue of an instrumented operation:
//
//	start := time.Now()
//	...
//	telemetry.ObserveSince(appendLatency, "audit.append", start)
func ObserveSince(h *Histogram, event string, start time.Time) {
	d := time.Since(start)
	h.Observe(d)
	Emit(event, d)
}
