// Package telemetry is LibSEAL's measurement substrate: a stdlib-only,
// allocation-light metrics layer used by every hot path of the system. The
// paper's evaluation (§6) is entirely about measured costs — enclave
// transition counts, audit append/check latency, ROTE quorum round-trips —
// and this package makes those observable as first-class instrumentation
// instead of one-off timers.
//
// Three metric kinds are provided, all safe for concurrent use and free of
// allocation on the update path:
//
//   - Counter: a monotonically increasing atomic int64 (events, bytes).
//   - Gauge: an instantaneous atomic int64 (queue depth, chain length).
//   - Histogram: a fixed-bucket latency distribution (log-spaced buckets,
//     four sub-buckets per power of two, ≤12.5% quantile error) reporting
//     count, sum, min, max and p50/p95/p99.
//
// Metrics register under a process-global registry at package init time;
// Snapshot returns a deterministic (name-sorted) copy used both by the
// /metrics HTTP endpoint and by the machine-readable bench pipeline.
// SetEnabled(false) turns every update into a single atomic load, so the
// instrumented binary can measure its own observation overhead.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every metric update. Defaults to on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric recording on or off process-wide. Disabling
// reduces every update to one atomic load, which is how the bench pipeline
// measures the instrumentation's own overhead.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op while telemetry is disabled).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value (no-op while telemetry is disabled).
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta. Paired increments and decrements (e.g.
// queue enter/leave) keep it consistent.
func (g *Gauge) Add(delta int64) {
	if enabled.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Histogram bucket geometry: values below histSubs land in exact unit
// buckets; above, each power of two splits into histSubs log-linear
// sub-buckets (HDR-style), bounding quantile error at 1/(2*histSubs).
const (
	histSubBits = 2
	histSubs    = 1 << histSubBits // 4 sub-buckets per octave
	histBuckets = 64 * histSubs    // covers the whole non-negative int64 range
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubs {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := (u >> (uint(exp) - histSubBits)) & (histSubs - 1)
	return (exp-histSubBits+1)*histSubs + int(sub)
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	exp := i>>histSubBits + histSubBits - 1
	rem := int64(i & (histSubs - 1))
	return int64(1)<<uint(exp) + rem<<uint(exp-histSubBits)
}

// bucketMid returns the representative (midpoint) value of bucket i.
func bucketMid(i int) int64 {
	lo := bucketLower(i)
	if i+1 >= histBuckets {
		return lo
	}
	hi := bucketLower(i + 1)
	if hi <= lo { // int64 overflow in the very last octave
		return lo
	}
	return lo + (hi-lo)/2
}

// Histogram is a fixed-bucket distribution of durations in nanoseconds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 while empty
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

const histEmptyMin = int64(^uint64(0) >> 1) // math.MaxInt64

// Observe records one duration (no-op while telemetry is disabled).
// Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns the q-th quantile (0 < q <= 1) as a duration, estimated
// from the bucket midpoints. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(bucketMid(i))
		}
	}
	return time.Duration(h.max.Load())
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(histEmptyMin)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Metric is one entry of a registry snapshot. Value carries the counter or
// gauge reading; for histograms it carries the observation count and the
// distribution fields are populated.
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter", "gauge" or "histogram"
	Unit string `json:"unit"` // "calls", "bytes", "ns", ...
	// Value is the counter/gauge reading, or the histogram count.
	Value int64 `json:"value"`
	// Histogram-only fields (nanoseconds).
	Sum  int64   `json:"sum,omitempty"`
	Mean float64 `json:"mean,omitempty"`
	Min  int64   `json:"min,omitempty"`
	Max  int64   `json:"max,omitempty"`
	P50  int64   `json:"p50,omitempty"`
	P95  int64   `json:"p95,omitempty"`
	P99  int64   `json:"p99,omitempty"`
}

// registered is one named metric in the registry.
type registered struct {
	name string
	unit string
	m    any // *Counter, *Gauge or *Histogram
}

var registry = struct {
	mu     sync.Mutex
	byName map[string]*registered
}{byName: make(map[string]*registered)}

// register installs (or retrieves) a named metric. Registration is
// idempotent: asking for the same name returns the existing metric; asking
// for the same name with a different kind panics — that is a programming
// error, two subsystems fighting over one name.
func register[T any](name, unit string, mk func() *T) *T {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if r, ok := registry.byName[name]; ok {
		m, ok := r.m.(*T)
		if !ok {
			panic("telemetry: metric " + name + " re-registered with a different type")
		}
		return m
	}
	m := mk()
	registry.byName[name] = &registered{name: name, unit: unit, m: m}
	return m
}

// NewCounter registers (or retrieves) the named counter.
func NewCounter(name, unit string) *Counter {
	return register(name, unit, func() *Counter { return &Counter{} })
}

// NewGauge registers (or retrieves) the named gauge.
func NewGauge(name, unit string) *Gauge {
	return register(name, unit, func() *Gauge { return &Gauge{} })
}

// NewHistogram registers (or retrieves) the named histogram. The unit
// applies to the recorded values and is "ns" for every latency histogram.
func NewHistogram(name, unit string) *Histogram {
	return register(name, unit, func() *Histogram {
		h := &Histogram{}
		h.min.Store(histEmptyMin)
		return h
	})
}

// snapshotOne renders one registered metric.
func (r *registered) snapshot() Metric {
	out := Metric{Name: r.name, Unit: r.unit}
	switch m := r.m.(type) {
	case *Counter:
		out.Type = "counter"
		out.Value = m.Value()
	case *Gauge:
		out.Type = "gauge"
		out.Value = m.Value()
	case *Histogram:
		out.Type = "histogram"
		out.Value = m.count.Load()
		out.Sum = m.sum.Load()
		if out.Value > 0 {
			out.Mean = float64(out.Sum) / float64(out.Value)
			out.Min = m.min.Load()
			out.Max = m.max.Load()
			out.P50 = int64(m.Quantile(0.50))
			out.P95 = int64(m.Quantile(0.95))
			out.P99 = int64(m.Quantile(0.99))
		}
	}
	return out
}

// Snapshot returns a copy of every registered metric, sorted by name so the
// output is deterministic for a given sequence of updates.
func Snapshot() []Metric {
	registry.mu.Lock()
	regs := make([]*registered, 0, len(registry.byName))
	for _, r := range registry.byName {
		regs = append(regs, r)
	}
	registry.mu.Unlock()
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	out := make([]Metric, len(regs))
	for i, r := range regs {
		out[i] = r.snapshot()
	}
	return out
}

// Get returns the snapshot of one metric by name.
func Get(name string) (Metric, bool) {
	registry.mu.Lock()
	r, ok := registry.byName[name]
	registry.mu.Unlock()
	if !ok {
		return Metric{}, false
	}
	return r.snapshot(), true
}

// Reset zeroes every registered metric (used between benchmark phases).
// Registrations themselves are kept.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, r := range registry.byName {
		switch m := r.m.(type) {
		case *Counter:
			m.reset()
		case *Gauge:
			m.reset()
		case *Histogram:
			m.reset()
		}
	}
}
