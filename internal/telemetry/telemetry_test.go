package telemetry

import (
	"sync"
	"testing"
	"time"
)

// Registered metrics are process-global, so tests use distinct names and
// reset state where they depend on absolute values.

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test.counter.concurrent", "calls")
	c.reset()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugePairedAddsBalance(t *testing.T) {
	g := NewGauge("test.gauge.paired", "slots")
	g.reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d after balanced adds, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("test.hist.concurrent", "ns")
	h.reset()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	if h.min.Load() != 0 {
		t.Fatalf("min = %d, want 0", h.min.Load())
	}
	wantMax := int64((workers*perWorker - 1) * 1000)
	if h.max.Load() != wantMax {
		t.Fatalf("max = %d, want %d", h.max.Load(), wantMax)
	}
	// Bucket counts must sum to the observation count.
	var sum int64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram("test.hist.quantile", "ns")
	h.reset()
	// Uniform 1..10000 ns: p50 ≈ 5000, p95 ≈ 9500 within the geometry's
	// 12.5% relative error.
	for v := 1; v <= 10000; v++ {
		h.Observe(time.Duration(v))
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		lo := time.Duration(float64(want) * 0.875)
		hi := time.Duration(float64(want) * 1.125)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
	check(0.50, 5000)
	check(0.95, 9500)
	check(0.99, 9900)
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram("test.hist.empty", "ns")
	h.reset()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h.Observe(-time.Second) // clamped to zero
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.min.Load(); got != 0 {
		t.Fatalf("min = %d after negative observe, want 0", got)
	}
}

func TestBucketMapping(t *testing.T) {
	// The bucket function must be monotone and bucketLower must invert it:
	// bucketLower(i) is the smallest value in bucket i.
	values := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 15, 16, 100, 1 << 20, 1<<40 + 12345, histEmptyMin}
	prev := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if lo := bucketLower(i); lo > v {
			t.Fatalf("bucketLower(%d) = %d > value %d", i, lo, v)
		}
		if i+1 < histBuckets {
			if next := bucketLower(i + 1); next <= v && next > 0 {
				t.Fatalf("value %d in bucket %d but bucketLower(%d) = %d <= value", v, i, i+1, next)
			}
		}
	}
}

func TestSetEnabledGatesUpdates(t *testing.T) {
	c := NewCounter("test.enabled.counter", "calls")
	h := NewHistogram("test.enabled.hist", "ns")
	c.reset()
	h.reset()
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	h.Observe(time.Millisecond)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("updates recorded while disabled: counter=%d hist=%d", c.Value(), h.Count())
	}
	SetEnabled(true)
	c.Inc()
	h.Observe(time.Millisecond)
	if c.Value() != 1 || h.Count() != 1 {
		t.Fatalf("updates lost while enabled: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	a := NewCounter("test.registry.same", "calls")
	b := NewCounter("test.registry.same", "calls")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	NewGauge("test.registry.same", "calls")
}

func TestSnapshotDeterministic(t *testing.T) {
	NewCounter("test.snap.b", "calls").reset()
	NewCounter("test.snap.a", "calls").reset()
	NewHistogram("test.snap.c", "ns").reset()
	s1 := Snapshot()
	s2 := Snapshot()
	if len(s1) != len(s2) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("snapshot entry %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
		if i > 0 && s1[i-1].Name >= s1[i].Name {
			t.Fatalf("snapshot not name-sorted: %q before %q", s1[i-1].Name, s1[i].Name)
		}
	}
}

func TestGetAndReset(t *testing.T) {
	c := NewCounter("test.reset.counter", "calls")
	c.reset()
	c.Add(7)
	m, ok := Get("test.reset.counter")
	if !ok || m.Value != 7 || m.Type != "counter" || m.Unit != "calls" {
		t.Fatalf("Get = %+v, %v", m, ok)
	}
	Reset()
	if c.Value() != 0 {
		t.Fatalf("counter = %d after Reset, want 0", c.Value())
	}
	if _, ok := Get("test.reset.missing"); ok {
		t.Fatal("Get found an unregistered metric")
	}
}

func TestTraceHooks(t *testing.T) {
	var mu sync.Mutex
	events := map[string]time.Duration{}
	RegisterTrace("test-hook", func(event string, d time.Duration) {
		mu.Lock()
		events[event] = d
		mu.Unlock()
	})
	defer UnregisterTrace("test-hook")
	Emit("trace.one", 3*time.Millisecond)
	mu.Lock()
	got := events["trace.one"]
	mu.Unlock()
	if got != 3*time.Millisecond {
		t.Fatalf("hook saw %v, want 3ms", got)
	}
	UnregisterTrace("test-hook")
	Emit("trace.two", time.Millisecond)
	mu.Lock()
	_, saw := events["trace.two"]
	mu.Unlock()
	if saw {
		t.Fatal("hook fired after unregistration")
	}
}

func TestObserveSince(t *testing.T) {
	h := NewHistogram("test.observesince.hist", "ns")
	h.reset()
	var mu sync.Mutex
	var traced time.Duration
	RegisterTrace("test-os", func(event string, d time.Duration) {
		if event == "test.op" {
			mu.Lock()
			traced = d
			mu.Unlock()
		}
	})
	defer UnregisterTrace("test-os")
	ObserveSince(h, "test.op", time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	mu.Lock()
	defer mu.Unlock()
	if traced < time.Millisecond {
		t.Fatalf("traced duration %v, want >= 1ms", traced)
	}
}
