// Package lthread implements cooperative user-level threading in the style
// of the lthread library used by LibSEAL (§4.3). A Scheduler models one
// enclave (SGX) thread multiplexing T lthread tasks: at any instant at most
// one task per scheduler executes, tasks explicitly Yield or Park to hand
// the thread over, and a parked task releases the thread so its siblings can
// run — which is exactly what lets LibSEAL overlap an async-ocall's outside
// execution with other in-enclave work.
package lthread

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrShutdown is returned by Submit after the scheduler has been shut down.
var ErrShutdown = errors.New("lthread: scheduler shut down")

// Work is a unit of execution assigned to a task. It receives the Task so it
// can Yield and Park.
type Work func(*Task)

// Scheduler multiplexes a fixed set of tasks onto one logical thread.
type Scheduler struct {
	token    chan struct{} // the logical CPU: held by whichever task runs
	free     chan *Task
	tasks    []*Task
	wg       sync.WaitGroup
	shutdown atomic.Bool
	running  atomic.Int32 // tasks currently holding the token (0 or 1)
}

// Task is one cooperative thread of execution.
type Task struct {
	sched *Scheduler
	id    int
	work  chan Work
	wake  chan struct{}
}

// NewScheduler creates a scheduler with numTasks tasks, all idle.
func NewScheduler(numTasks int) *Scheduler {
	if numTasks < 1 {
		numTasks = 1
	}
	s := &Scheduler{
		token: make(chan struct{}, 1),
		free:  make(chan *Task, numTasks),
	}
	s.token <- struct{}{}
	for i := 0; i < numTasks; i++ {
		t := &Task{
			sched: s,
			id:    i,
			work:  make(chan Work),
			wake:  make(chan struct{}, 1),
		}
		s.tasks = append(s.tasks, t)
		s.free <- t
		s.wg.Add(1)
		go t.loop()
	}
	return s
}

func (t *Task) loop() {
	defer t.sched.wg.Done()
	for w := range t.work {
		t.sched.acquire()
		w(t)
		t.sched.release()
		t.sched.free <- t
	}
}

func (s *Scheduler) acquire() {
	<-s.token
	s.running.Add(1)
}

func (s *Scheduler) release() {
	s.running.Add(-1)
	s.token <- struct{}{}
}

// NumTasks returns the total number of tasks.
func (s *Scheduler) NumTasks() int { return len(s.tasks) }

// FreeTasks returns how many tasks are currently idle.
func (s *Scheduler) FreeTasks() int { return len(s.free) }

// Running reports whether a task currently holds the scheduler's thread.
func (s *Scheduler) Running() bool { return s.running.Load() > 0 }

// TrySubmit hands work to a free task without blocking. It reports whether a
// task was available.
func (s *Scheduler) TrySubmit(w Work) bool {
	if s.shutdown.Load() {
		return false
	}
	select {
	case t := <-s.free:
		t.work <- w
		return true
	default:
		return false
	}
}

// Submit hands work to a task, blocking until one is free.
func (s *Scheduler) Submit(w Work) error {
	if s.shutdown.Load() {
		return ErrShutdown
	}
	t := <-s.free
	if s.shutdown.Load() {
		s.free <- t
		return ErrShutdown
	}
	t.work <- w
	return nil
}

// Shutdown stops accepting work and waits for in-flight tasks to finish.
func (s *Scheduler) Shutdown() {
	if s.shutdown.Swap(true) {
		return
	}
	// Drain every task back to the free list, then close its work channel.
	for range s.tasks {
		t := <-s.free
		close(t.work)
	}
	s.wg.Wait()
}

// RunLocked executes fn while holding the scheduler's logical thread,
// excluding task execution for its duration. The async-call dispatcher uses
// it so that slot scanning and task execution share one enclave thread, as
// on real hardware.
func (s *Scheduler) RunLocked(fn func()) {
	s.acquire()
	fn()
	s.release()
}

// ID returns the task's index within its scheduler.
func (t *Task) ID() int { return t.id }

// Yield releases the logical thread so sibling tasks can run, then resumes.
func (t *Task) Yield() {
	t.sched.release()
	runtime.Gosched()
	t.sched.acquire()
}

// Park releases the logical thread and blocks until Unpark is called. A
// wakeup posted before Park is not lost. This is how a task waits for the
// result of an asynchronous ocall while siblings keep the enclave thread
// busy.
func (t *Task) Park() {
	t.sched.release()
	<-t.wake
	t.sched.acquire()
}

// Unpark wakes a parked task. At most one wakeup is buffered; Unpark never
// blocks. Calling Unpark on a task that is not parked makes its next Park
// return immediately.
func (t *Task) Unpark() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}
