package lthread

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSubmitRunsWork(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	done := make(chan int, 1)
	if err := s.Submit(func(task *Task) { done <- task.ID() }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("work never ran")
	}
}

func TestMutualExclusionWithinScheduler(t *testing.T) {
	s := NewScheduler(8)
	defer s.Shutdown()
	var running atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := s.Submit(func(task *Task) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n := running.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				running.Add(-1)
				task.Yield()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("max concurrent tasks on one scheduler = %d, want 1", got)
	}
}

func TestParkReleasesThread(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var parked *Task
	parkedCh := make(chan struct{})
	siblingRan := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	_ = s.Submit(func(task *Task) {
		defer wg.Done()
		parked = task
		close(parkedCh)
		task.Park() // must release the thread so the sibling can run
	})
	<-parkedCh
	_ = s.Submit(func(task *Task) {
		defer wg.Done()
		close(siblingRan)
	})
	select {
	case <-siblingRan:
	case <-time.After(time.Second):
		t.Fatal("sibling task starved while another task was parked")
	}
	parked.Unpark()
	wg.Wait()
}

func TestUnparkBeforeParkNotLost(t *testing.T) {
	s := NewScheduler(1)
	defer s.Shutdown()
	done := make(chan struct{})
	_ = s.Submit(func(task *Task) {
		task.Unpark() // wakeup arrives first
		task.Park()   // must not block
		close(done)
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Park lost a prior Unpark")
	}
}

func TestTrySubmitExhaustion(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if !s.TrySubmit(func(task *Task) {
			defer wg.Done()
			task.sched.release() // let the other occupy its task slot too
			<-block
			task.sched.acquire()
		}) {
			t.Fatal("TrySubmit failed with free tasks")
		}
	}
	// Give both tasks time to start and block.
	deadline := time.After(time.Second)
	for s.FreeTasks() != 0 {
		select {
		case <-deadline:
			t.Fatal("tasks never claimed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if s.TrySubmit(func(*Task) {}) {
		t.Fatal("TrySubmit succeeded with all tasks busy")
	}
	close(block)
	wg.Wait()
}

func TestSubmitAfterShutdown(t *testing.T) {
	s := NewScheduler(1)
	s.Shutdown()
	if err := s.Submit(func(*Task) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShutdown", err)
	}
	if s.TrySubmit(func(*Task) {}) {
		t.Fatal("TrySubmit accepted work after shutdown")
	}
}

func TestShutdownWaitsForWork(t *testing.T) {
	s := NewScheduler(4)
	var completed atomic.Int32
	for i := 0; i < 4; i++ {
		_ = s.Submit(func(task *Task) {
			task.Yield()
			completed.Add(1)
		})
	}
	s.Shutdown()
	if got := completed.Load(); got != 4 {
		t.Fatalf("completed = %d, want 4 after Shutdown", got)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s := NewScheduler(2)
	s.Shutdown()
	s.Shutdown() // must not panic or deadlock
}

func TestFreeTasksAccounting(t *testing.T) {
	s := NewScheduler(3)
	defer s.Shutdown()
	if got := s.FreeTasks(); got != 3 {
		t.Fatalf("FreeTasks = %d, want 3", got)
	}
	if got := s.NumTasks(); got != 3 {
		t.Fatalf("NumTasks = %d, want 3", got)
	}
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	_ = s.Submit(func(task *Task) {
		defer wg.Done()
		task.sched.release()
		<-block
		task.sched.acquire()
	})
	deadline := time.After(time.Second)
	for s.FreeTasks() != 2 {
		select {
		case <-deadline:
			t.Fatalf("FreeTasks = %d, want 2", s.FreeTasks())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block)
	wg.Wait()
}

func TestManyTasksAllComplete(t *testing.T) {
	const n = 500
	s := NewScheduler(16)
	defer s.Shutdown()
	var completed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		if err := s.Submit(func(task *Task) {
			defer wg.Done()
			task.Yield()
			completed.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := completed.Load(); got != n {
		t.Fatalf("completed = %d, want %d", got, n)
	}
}

func TestSchedulerCountProperty(t *testing.T) {
	// Property: for any (tasks, jobs) the scheduler completes exactly jobs
	// units of work and ends with all tasks free.
	f := func(tasks uint8, jobs uint8) bool {
		nt := int(tasks%8) + 1
		nj := int(jobs % 64)
		s := NewScheduler(nt)
		var completed atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < nj; i++ {
			wg.Add(1)
			if err := s.Submit(func(task *Task) {
				defer wg.Done()
				completed.Add(1)
			}); err != nil {
				return false
			}
		}
		wg.Wait()
		s.Shutdown()
		return completed.Load() == int32(nj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLockedExcludesTasks(t *testing.T) {
	s := NewScheduler(2)
	defer s.Shutdown()
	var inCritical atomic.Bool
	var overlap atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		_ = s.Submit(func(task *Task) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if inCritical.Load() {
					overlap.Store(true)
				}
				task.Yield()
			}
		})
	}
	for j := 0; j < 50; j++ {
		s.RunLocked(func() {
			inCritical.Store(true)
			if !s.Running() {
				t.Error("Running() false while RunLocked holds the thread")
			}
			inCritical.Store(false)
		})
	}
	wg.Wait()
	if overlap.Load() {
		t.Fatal("task ran concurrently with RunLocked")
	}
}
