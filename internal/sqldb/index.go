package sqldb

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Hash indexes.
//
// Invariant checks are equality-heavy: the paper's Git soundness query
// probes `updates` by (repo, branch) once per advertisement, and the
// completeness view joins advertisements to updates on repo. Evaluated
// naively both are nested-loop scans, O(n·m) per check. A hash index maps
// the group-key of an equality-column tuple to the ascending row positions
// holding it, turning each probe into O(matches).
//
// Indexes are built lazily on first use by the planner and live on the
// table (tableIndexes). Maintenance rules:
//
//   - INSERT extends an index incrementally: positions are stable, so the
//     next lookup indexes only the appended suffix (hashIndex.n tracks
//     coverage).
//   - UPDATE of an indexed column drops exactly the indexes over that
//     column; positions are stable under UPDATE, so other indexes survive.
//   - DELETE (and RemoveLastRows) shift or truncate positions, so they
//     bump the table version, invalidating every index; the next lookup
//     rebuilds from scratch.
//
// Concurrency: every live-table evaluation holds db.mu (shared for reads,
// exclusive for writes), so rows cannot change during a read-locked query.
// tableIndexes.mu serialises concurrent read-locked builders; once ensure
// returns, the returned hashIndex is immutable until a writer (excluded by
// the read lock) changes the table, so probing needs no lock. Snapshots
// never share a live table's indexes — each snapshot carries fresh
// tableIndexes probed by a single check at a time — so index state never
// crosses the live/snapshot boundary.

// Index keys are Value.groupKey renderings. They must agree with Compare:
// two tuples get the same key iff Compare ranks every pair of components
// equal. groupKey already guarantees that for everything except floats at
// magnitudes where its integral-float normalisation cuts off (|v| >= 1e18);
// rows holding such values are kept in the index's unsafe list and returned
// from every probe, so the candidate set remains a superset of the true
// matches. (The planner's residual predicate re-evaluation makes the final
// result exact either way.)

// unsafeIndexValue reports whether a value's groupKey may disagree with
// Compare-equality against a differently-typed peer.
func unsafeIndexValue(v Value) bool {
	return v.kind == KindFloat && (math.Abs(v.f) >= 1e18 || math.IsInf(v.f, 0))
}

// hashIndex is one equality index over a fixed column tuple.
type hashIndex struct {
	cols    []int            // table column positions, ascending
	version uint64           // tableIndexes.version at build time
	n       int              // rows covered (extension watermark)
	m       map[string][]int // key -> ascending row positions
	unsafe  []int            // positions whose key may disagree with Compare
}

// add indexes one row at position pos.
func (h *hashIndex) add(pos int, row []Value) {
	var sb strings.Builder
	ok := true
	for _, ci := range h.cols {
		v := row[ci]
		if unsafeIndexValue(v) {
			ok = false
			break
		}
		v.groupKey(&sb)
	}
	if !ok {
		h.unsafe = append(h.unsafe, pos)
		return
	}
	k := sb.String()
	h.m[k] = append(h.m[k], pos)
}

// probe returns the candidate positions for the given values, merged with
// the unsafe list (ascending). all=true means the caller must scan every
// row (the probe itself was unsafe). A NULL probe value matches nothing:
// equality with NULL is never true, and unsafe rows cannot compare equal to
// NULL either, so even they are excluded.
func (h *hashIndex) probe(vals []Value) (pos []int, all bool) {
	var sb strings.Builder
	for _, v := range vals {
		if v.IsNull() {
			return nil, false
		}
		if unsafeIndexValue(v) {
			return nil, true
		}
		v.groupKey(&sb)
	}
	hit := h.m[sb.String()]
	if len(h.unsafe) == 0 {
		return hit, false
	}
	return mergeAscending(hit, h.unsafe), false
}

// mergeAscending merges two ascending position lists into a fresh slice.
func mergeAscending(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// tableIndexes is the per-table index registry.
type tableIndexes struct {
	mu      sync.Mutex
	version uint64 // bumped by position-invalidating mutations
	bySig   map[string]*hashIndex
}

func newTableIndexes() *tableIndexes { return &tableIndexes{bySig: make(map[string]*hashIndex)} }

// colSig canonicalises a column set: ascending positions, comma-joined.
func colSig(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// ensure returns an index over cols covering exactly the given rows,
// building or extending it as needed. cols must be sorted ascending. The
// returned index is safe to probe without a lock as long as the caller's
// view of the table cannot change (read-locked live table or snapshot).
func (ix *tableIndexes) ensure(rows [][]Value, cols []int) *hashIndex {
	sig := colSig(cols)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	h := ix.bySig[sig]
	if h == nil || h.version != ix.version || h.n > len(rows) {
		h = &hashIndex{cols: cols, version: ix.version, m: make(map[string][]int)}
		ix.bySig[sig] = h
	}
	for ; h.n < len(rows); h.n++ {
		h.add(h.n, rows[h.n])
	}
	return h
}

// invalidateAll drops every index (positions shifted: DELETE, truncation,
// trim rewrite).
func (ix *tableIndexes) invalidateAll() {
	ix.mu.Lock()
	ix.version++
	ix.bySig = make(map[string]*hashIndex)
	ix.mu.Unlock()
}

// invalidateCols drops the indexes that cover any of the given columns
// (UPDATE of an indexed column); positions are stable, so other indexes
// survive.
func (ix *tableIndexes) invalidateCols(cols []int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for sig, h := range ix.bySig {
		drop := false
		for _, hc := range h.cols {
			for _, c := range cols {
				if hc == c {
					drop = true
					break
				}
			}
			if drop {
				break
			}
		}
		if drop {
			delete(ix.bySig, sig)
		}
	}
}

// transientIndex builds a one-shot hash map over derived rows (view or
// subquery output) that have no table to hang a persistent index on.
func buildTransient(rows [][]Value, cols []int) *hashIndex {
	h := &hashIndex{cols: cols, m: make(map[string][]int)}
	for i, row := range rows {
		h.add(i, row)
	}
	h.n = len(rows)
	return h
}

// equiCols sorts the column positions of an equality predicate set into the
// canonical ascending order and applies the same permutation to the probe
// expressions, so (colIdx, probe) pairs stay aligned with the index
// signature.
func sortEqui(cols []int, probes []Expr) ([]int, []Expr) {
	type pair struct {
		c int
		e Expr
	}
	ps := make([]pair, len(cols))
	for i := range cols {
		ps[i] = pair{cols[i], probes[i]}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].c < ps[b].c })
	outC := make([]int, len(ps))
	outE := make([]Expr, len(ps))
	for i, p := range ps {
		outC[i] = p.c
		outE[i] = p.e
	}
	return outC, outE
}
