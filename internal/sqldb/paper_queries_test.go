package sqldb

import (
	"testing"
)

// These tests run the SQL that appears verbatim in the LibSEAL paper (§1,
// §3.1, §5.1, §6.2) against the engine, using the Git audit schema.

func gitAuditDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `
		CREATE TABLE updates (time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
		CREATE TABLE advertisements (time INTEGER, repo TEXT, branch TEXT, cid TEXT);
	`)
	mustExec(t, db, `CREATE VIEW branchcnt AS
		SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
		FROM advertisements a
		JOIN updates u ON u.time < a.time AND u.repo = a.repo
		WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
			FROM updates WHERE branch = u.branch
			AND repo = u.repo AND time < a.time) GROUP BY
			a.time,a.repo,a.branch`)
	return db
}

const gitSoundnessSQL = `SELECT * FROM advertisements a WHERE cid != (
	SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
		u.branch = a.branch AND u.time < a.time ORDER BY
		u.time DESC LIMIT 1)`

const gitCompletenessSQL = `SELECT time, repo FROM advertisements
	NATURAL JOIN branchcnt
	GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt`

const gitTrimSQL = `DELETE FROM advertisements;
	DELETE FROM updates WHERE time NOT IN
		(SELECT MAX(time) FROM updates GROUP BY repo, branch)`

func TestGitSoundnessInvariantClean(t *testing.T) {
	db := gitAuditDB(t)
	// Two updates to main, then an advertisement of the latest commit.
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','main','c2','update')`)
	mustExec(t, db, `INSERT INTO advertisements VALUES (3,'r','main','c2')`)
	res := mustQuery(t, db, gitSoundnessSQL)
	if !res.Empty() {
		t.Fatalf("clean log reported soundness violations: %v", res.Rows)
	}
}

func TestGitSoundnessDetectsRollback(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','main','c2','update')`)
	// The server advertises the *old* commit: a rollback attack.
	mustExec(t, db, `INSERT INTO advertisements VALUES (3,'r','main','c1')`)
	res := mustQuery(t, db, gitSoundnessSQL)
	if len(res.Rows) != 1 {
		t.Fatalf("rollback not detected: %v", res.Rows)
	}
	if res.Rows[0][0].Int64() != 3 || res.Rows[0][1].TextVal() != "r" {
		t.Fatalf("violation tuple = %v", res.Rows[0])
	}
}

func TestGitSoundnessDetectsTeleport(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','dev','d9','update')`)
	// main is advertised pointing at dev's commit: a teleport attack.
	mustExec(t, db, `INSERT INTO advertisements VALUES (3,'r','main','d9')`)
	res := mustQuery(t, db, gitSoundnessSQL)
	if len(res.Rows) != 1 {
		t.Fatalf("teleport not detected: %v", res.Rows)
	}
}

func TestGitCompletenessInvariantClean(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','dev','d1','update')`)
	// Advertisement at time 3 lists both branches: complete.
	mustExec(t, db, `INSERT INTO advertisements VALUES
		(3,'r','main','c1'),
		(3,'r','dev','d1')`)
	res := mustQuery(t, db, gitCompletenessSQL)
	if !res.Empty() {
		t.Fatalf("complete advertisement flagged: %v", res.Rows)
	}
}

func TestGitCompletenessDetectsReferenceDeletion(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','dev','d1','update')`)
	// Advertisement omits dev: a reference-deletion attack.
	mustExec(t, db, `INSERT INTO advertisements VALUES (3,'r','main','c1')`)
	res := mustQuery(t, db, gitCompletenessSQL)
	if len(res.Rows) != 1 {
		t.Fatalf("reference deletion not detected: %v", res.Rows)
	}
	if res.Rows[0][0].Int64() != 3 || res.Rows[0][1].TextVal() != "r" {
		t.Fatalf("violation tuple = %v", res.Rows[0])
	}
}

func TestGitCompletenessRespectsDeletedBranches(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','dev','d1','update'),
		(3,'r','dev','d1','delete')`)
	// dev was legitimately deleted; advertising only main is complete.
	mustExec(t, db, `INSERT INTO advertisements VALUES (4,'r','main','c1')`)
	res := mustQuery(t, db, gitCompletenessSQL)
	if !res.Empty() {
		t.Fatalf("legitimate deletion flagged as violation: %v", res.Rows)
	}
}

func TestGitTrimmingQueries(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'r','main','c1','update'),
		(2,'r','main','c2','update'),
		(3,'r','dev','d1','update'),
		(4,'s','main','e1','update')`)
	mustExec(t, db, `INSERT INTO advertisements VALUES
		(5,'r','main','c2'), (5,'r','dev','d1')`)
	mustExec(t, db, gitTrimSQL)
	if n, _ := db.TableRowCount("advertisements"); n != 0 {
		t.Fatalf("advertisements not truncated: %d rows", n)
	}
	got := flat(mustQuery(t, db, "SELECT time, repo, branch FROM updates ORDER BY time"))
	// Only the most recent update per (repo, branch) survives.
	if got != "2,r,main;3,r,dev;4,s,main" {
		t.Fatalf("updates after trim = %q", got)
	}
	// Invariants still hold on the trimmed log after new activity.
	mustExec(t, db, `INSERT INTO advertisements VALUES
		(6,'r','main','c2'), (6,'r','dev','d1')`)
	if res := mustQuery(t, db, gitSoundnessSQL); !res.Empty() {
		t.Fatalf("soundness broken after trim: %v", res.Rows)
	}
	if res := mustQuery(t, db, gitCompletenessSQL); !res.Empty() {
		t.Fatalf("completeness broken after trim: %v", res.Rows)
	}
}

// TestGitIntroInvariant runs the completeness query exactly as printed in
// the paper's introduction (§1), which uses NATURAL JOIN against the view.
func TestGitIntroInvariant(t *testing.T) {
	db := gitAuditDB(t)
	mustExec(t, db, `INSERT INTO updates VALUES
		(1,'repo1','master','aaa','update'),
		(2,'repo1','feature','bbb','update')`)
	mustExec(t, db, `INSERT INTO advertisements VALUES (3,'repo1','master','aaa')`)
	res := mustQuery(t, db, `SELECT time, repo FROM advertisements
		NATURAL JOIN branchcnt
		GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt`)
	if len(res.Rows) != 1 {
		t.Fatalf("incomplete advertisement not flagged: %v", res.Rows)
	}
}
