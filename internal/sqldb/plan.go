package sqldb

import (
	"sort"
	"strings"
)

// Index-aware planning (see index.go for the index structures).
//
// Two access paths are planned here, both exact because the full predicate
// is always re-evaluated over the candidates the index returns:
//
//   - indexFilter: a single-table SELECT whose WHERE carries `col = expr`
//     conjuncts, where expr does not depend on the scanned row (a literal,
//     a parameter, or a correlated outer reference). This is the shape of
//     LibSEAL's soundness subqueries — probed once per outer row.
//   - joinProber / naturalProber: `a.x = b.y` ON conjuncts and NATURAL
//     JOIN common columns become hash probes into the right side.

// indexMinRows is the smallest row set worth probing; below it a scan is
// as cheap as hashing the probe key.
const indexMinRows = 2

// splitConjuncts flattens a top-level AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// rowIndependent reports whether e can be evaluated without a row of the
// given scope: it is a literal, a parameter, or a column reference that
// does not resolve in that scope (so it binds in an enclosing query).
func rowIndependent(e Expr, local *rowScope) bool {
	switch x := e.(type) {
	case *Literal, *ParamExpr:
		return true
	case *ColExpr:
		idx, err := local.lookup(strings.ToLower(x.Table), strings.ToLower(x.Name))
		return err == nil && idx < 0
	}
	return false
}

// indexFilter plans an equality probe for a single-base-table WHERE. It
// returns (candidates, true, nil) when an index was used; the candidate
// rows are in storage order and form a superset of the rows satisfying the
// WHERE, which the caller still evaluates in full.
func (ev *evaluator) indexFilter(src *fromSource, where Expr, outer *rowScope) ([][]Value, bool, error) {
	if !ev.indexing || src == nil || src.tbl == nil || src.tbl.idx == nil || len(src.rows) < indexMinRows {
		return nil, false, nil
	}
	local := &rowScope{cols: src.cols}
	var cols []int
	var probes []Expr
	seen := map[int]bool{}
	for _, c := range splitConjuncts(where) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, side := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			ce, ok := side[0].(*ColExpr)
			if !ok {
				continue
			}
			ci, err := local.lookup(strings.ToLower(ce.Table), strings.ToLower(ce.Name))
			if err != nil || ci < 0 {
				continue
			}
			if !rowIndependent(side[1], local) {
				continue
			}
			if !seen[ci] {
				seen[ci] = true
				cols = append(cols, ci)
				probes = append(probes, side[1])
			}
			break
		}
	}
	if len(cols) == 0 {
		return nil, false, nil
	}
	cols, probes = sortEqui(cols, probes)
	vals := make([]Value, len(probes))
	for i, e := range probes {
		v, err := ev.eval(e, outer)
		if err != nil {
			return nil, false, err
		}
		vals[i] = v
	}
	h := src.tbl.idx.ensure(src.rows, cols)
	pos, all := h.probe(vals)
	if all {
		return nil, false, nil
	}
	cand := make([][]Value, len(pos))
	for i, p := range pos {
		cand[i] = src.rows[p]
	}
	return cand, true, nil
}

// joinProber plans the hash path for an ON clause. The returned function
// maps a left row to candidate right-row positions (or all=true to fall
// back to a scan of the right side). active reports whether any equality
// conjunct was planned; when false the prober always scans.
func (ev *evaluator) joinProber(on Expr, left, right *fromSource, outer *rowScope) (prober func(lr []Value) ([]int, bool, error), active bool) {
	scanAll := func([]Value) ([]int, bool, error) { return nil, true, nil }
	if !ev.indexing || on == nil || len(right.rows) < indexMinRows {
		return scanAll, false
	}
	lscope := &rowScope{cols: left.cols}
	rscope := &rowScope{cols: right.cols}
	var rcols []int
	var probes []Expr
	seen := map[int]bool{}
	for _, c := range splitConjuncts(on) {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, side := range [2][2]Expr{{b.L, b.R}, {b.R, b.L}} {
			ce, ok := side[0].(*ColExpr)
			if !ok {
				continue
			}
			ri, err := rscope.lookup(strings.ToLower(ce.Table), strings.ToLower(ce.Name))
			if err != nil || ri < 0 {
				continue
			}
			// An unqualified name visible on both sides is ambiguous in the
			// combined scope; leave it to the residual evaluation to report.
			if li, err := lscope.lookup(strings.ToLower(ce.Table), strings.ToLower(ce.Name)); err != nil || li >= 0 {
				continue
			}
			// The probe side must not depend on the right row: it may bind
			// in the left scope or any enclosing query.
			if !rowIndependent(side[1], rscope) {
				continue
			}
			if !seen[ri] {
				seen[ri] = true
				rcols = append(rcols, ri)
				probes = append(probes, side[1])
			}
			break
		}
	}
	if len(rcols) == 0 {
		return scanAll, false
	}
	rcols, probes = sortEqui(rcols, probes)
	var h *hashIndex
	if right.tbl != nil && right.tbl.idx != nil {
		h = right.tbl.idx.ensure(right.rows, rcols)
	} else {
		h = buildTransient(right.rows, rcols)
	}
	return func(lr []Value) ([]int, bool, error) {
		s := &rowScope{cols: left.cols, row: lr, parent: outer}
		vals := make([]Value, len(probes))
		for i, e := range probes {
			v, err := ev.eval(e, s)
			if err != nil {
				return nil, false, err
			}
			vals[i] = v
		}
		pos, all := h.probe(vals)
		return pos, all, nil
	}, true
}

// naturalProber plans the hash path for a NATURAL JOIN's common columns:
// liPos/riPos are the aligned left/right positions of the shared columns.
func (ev *evaluator) naturalProber(liPos, riPos []int, right *fromSource) func(lr []Value) ([]int, bool) {
	scanAll := func([]Value) ([]int, bool) { return nil, true }
	if !ev.indexing || len(riPos) == 0 || len(right.rows) < indexMinRows {
		return scanAll
	}
	// Canonicalise to ascending right positions, permuting liPos alongside.
	ord := make([]int, len(riPos))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return riPos[ord[a]] < riPos[ord[b]] })
	rc := make([]int, len(ord))
	lc := make([]int, len(ord))
	for i, o := range ord {
		rc[i] = riPos[o]
		lc[i] = liPos[o]
	}
	var h *hashIndex
	if right.tbl != nil && right.tbl.idx != nil {
		h = right.tbl.idx.ensure(right.rows, rc)
	} else {
		h = buildTransient(right.rows, rc)
	}
	return func(lr []Value) ([]int, bool) {
		vals := make([]Value, len(lc))
		for i, li := range lc {
			vals[i] = lr[li]
		}
		return h.probe(vals)
	}
}
