package sqldb

import (
	"fmt"
	"strings"
)

// Copy-on-write snapshots.
//
// A Snapshot freezes the database's contents in O(tables): it copies each
// table's row-slice *header* (not the rows) and marks the table shared.
// Row slices are immutable once stored (UPDATE replaces them), so the only
// hazards are in-place mutations of the outer Rows array, which the writer
// side prevents:
//
//   - INSERT appends at positions >= every snapshot's length — disjoint
//     memory, no copy needed.
//   - UPDATE copies the header before its first in-place store after a
//     snapshot (Table.shared), so the snapshot keeps the original array.
//   - DELETE rebuilds into a fresh array.
//   - RemoveLastRows clips capacity while shared, so later appends
//     reallocate instead of overwriting the truncated suffix a snapshot
//     still exposes.
//
// Queries against a snapshot therefore need no lock and see exactly the
// rows present at capture time, while writers proceed concurrently. Each
// snapshot table gets a fresh index registry: hash indexes built during a
// snapshot query belong to the snapshot and die with it, and the live
// table's indexes are never shared across the boundary.

// Snapshot is an immutable view of a DB at one instant.
type Snapshot struct {
	tables   map[string]*Table
	views    map[string]*View
	indexing bool
}

// Snapshot captures the current contents of the database. The write lock
// is held only for the O(tables) header copy.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{
		tables:   make(map[string]*Table, len(db.tables)),
		views:    make(map[string]*View, len(db.views)),
		indexing: !db.noIndex,
	}
	for k, t := range db.tables {
		t.shared = true
		s.tables[k] = &Table{Name: t.Name, Cols: t.Cols, Rows: t.Rows, byName: t.byName, idx: newTableIndexes()}
	}
	for k, v := range db.views {
		s.views[k] = v
	}
	return s
}

// evaluator builds an expression evaluator over the snapshot's frozen
// tables. No lock is needed: the tables are immutable.
func (s *Snapshot) evaluator(params []Value) *evaluator {
	return &evaluator{tables: s.tables, views: s.views, params: params, indexing: s.indexing}
}

func toParams(args []any) ([]Value, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, err
		}
		params[i] = v
	}
	return params, nil
}

// Query parses and runs a single SELECT against the snapshot.
func (s *Snapshot) Query(sql string, args ...any) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: snapshot query requires a SELECT")
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	return s.evaluator(params).execSelect(sel, nil)
}

// QueryStmt runs a prepared SELECT against the snapshot.
func (s *Snapshot) QueryStmt(stmt *Stmt, args ...any) (*Result, error) {
	sel, ok := stmt.st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: snapshot query requires a SELECT")
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	return s.evaluator(params).execSelect(sel, nil)
}

// CountMatches evaluates a DELETE statement's predicate against the
// snapshot and returns how many rows it would remove, without mutating
// anything. ok is false when the statement is not a probeable DELETE (the
// caller should fall back to executing it for real).
func (s *Snapshot) CountMatches(stmt *Stmt, args ...any) (n int, ok bool, err error) {
	del, isDel := stmt.st.(*DeleteStmt)
	if !isDel {
		return 0, false, nil
	}
	params, err := toParams(args)
	if err != nil {
		return 0, false, err
	}
	t, found := s.tables[strings.ToLower(del.Table)]
	if !found {
		return 0, false, fmt.Errorf("%w: %s", ErrNoSuchTable, del.Table)
	}
	if del.Where == nil {
		return len(t.Rows), true, nil
	}
	ev := s.evaluator(params)
	for _, row := range t.Rows {
		v, err := ev.eval(del.Where, tableScope(t, row))
		if err != nil {
			return 0, false, err
		}
		if truth, _ := v.Truth(); truth {
			n++
		}
	}
	return n, true, nil
}

// TableRowCount returns the number of rows a table had at capture time.
func (s *Snapshot) TableRowCount(name string) (int, error) {
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return len(t.Rows), nil
}
