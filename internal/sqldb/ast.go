package sqldb

import "sync/atomic"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef declares one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type Kind // declared affinity; KindNull means untyped
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
}

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	Name        string
	IfNotExists bool
	Select      *SelectStmt
}

// DropStmt is DROP TABLE|VIEW [IF EXISTS] name.
type DropStmt struct {
	View     bool
	IfExists bool
	Name     string
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),(...) or INSERT INTO
// name [(cols)] select.
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *SelectStmt
}

// Assign is one SET column = expr clause.
type Assign struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE name SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assign
	Where Expr
}

// DeleteStmt is DELETE FROM name [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectItem is one projection of a select list.
type SelectItem struct {
	Star      bool   // SELECT * or SELECT t.*
	StarTable string // alias before .*; empty for bare *
	Expr      Expr
	Alias     string
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil for FROM-less selects
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    Expr
	Offset   Expr
	// Union chains compound select parts evaluated left to right.
	Compound []CompoundPart
}

// CompoundOp is a set operation between select cores.
type CompoundOp int

// Compound select operators.
const (
	CompoundUnion CompoundOp = iota
	CompoundUnionAll
	CompoundExcept
	CompoundIntersect
)

// CompoundPart is one `UNION [ALL]|EXCEPT|INTERSECT select` suffix.
type CompoundPart struct {
	Op     CompoundOp
	Select *SelectStmt
}

func (*CreateTableStmt) stmt() {}
func (*CreateViewStmt) stmt()  {}
func (*DropStmt) stmt()        {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// TableExpr is a FROM-clause source.
type TableExpr interface{ tbl() }

// TableName references a table or view, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryTable is a parenthesised select used as a source.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

// JoinKind distinguishes join types.
type JoinKind int

// Join types.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// JoinExpr combines two sources.
type JoinExpr struct {
	Kind    JoinKind
	Natural bool
	Left    TableExpr
	Right   TableExpr
	On      Expr // nil for natural/cross joins
}

func (*TableName) tbl()     {}
func (*SubqueryTable) tbl() {}
func (*JoinExpr) tbl()      {}

// Expr is any SQL expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// ParamExpr is a `?` placeholder, bound by position.
type ParamExpr struct{ Index int }

// ColExpr references a column, optionally qualified by table alias.
type ColExpr struct{ Table, Name string }

// Unary is -x, +x or NOT x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string
	L, R Expr
}

// FuncCall is a function invocation; Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Select *SelectStmt }

// InExpr is `x [NOT] IN (list|select)`.
type InExpr struct {
	X      Expr
	Not    bool
	List   []Expr
	Select *SelectStmt
}

// ExistsExpr is `[NOT] EXISTS (select)`.
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// LikeExpr is `x [NOT] LIKE pattern`.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool

	// prog caches the compiled pattern (see compileLike). Atomic because a
	// prepared statement's AST may be evaluated by concurrent readers.
	prog atomic.Pointer[likeProgram]
}

// program returns the compiled matcher for the given pattern text, reusing
// the cached one when the text is unchanged (the common literal case).
func (x *LikeExpr) program(pattern string) *likeProgram {
	if p := x.prog.Load(); p != nil && p.text == pattern {
		return p
	}
	p := compileLike(pattern)
	x.prog.Store(p)
	return p
}

// When is one WHEN...THEN arm of a CASE.
type When struct{ Cond, Result Expr }

// CaseExpr is CASE [operand] WHEN..THEN.. [ELSE..] END.
type CaseExpr struct {
	Operand Expr
	Whens   []When
	Else    Expr
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type Kind
}

func (*Literal) expr()      {}
func (*ParamExpr) expr()    {}
func (*ColExpr) expr()      {}
func (*Unary) expr()        {}
func (*Binary) expr()       {}
func (*FuncCall) expr()     {}
func (*SubqueryExpr) expr() {}
func (*InExpr) expr()       {}
func (*ExistsExpr) expr()   {}
func (*IsNullExpr) expr()   {}
func (*BetweenExpr) expr()  {}
func (*LikeExpr) expr()     {}
func (*CaseExpr) expr()     {}
func (*CastExpr) expr()     {}
