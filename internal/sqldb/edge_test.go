package sqldb

import (
	"strings"
	"testing"
)

// Additional dialect edge cases beyond the core suite.

func TestOrderByNullsFirstAscLastDesc(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (2),(NULL),(1)")
	if got := flat(mustQuery(t, db, "SELECT v FROM t ORDER BY v")); got != "NULL;1;2" {
		t.Fatalf("asc: %q", got)
	}
	if got := flat(mustQuery(t, db, "SELECT v FROM t ORDER BY v DESC")); got != "2;1;NULL" {
		t.Fatalf("desc: %q", got)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3)")
	// HAVING over the implicit global group.
	if got := flat(mustQuery(t, db, "SELECT SUM(v) FROM t HAVING COUNT(*) > 2")); got != "6" {
		t.Fatalf("got %q", got)
	}
	if got := flat(mustQuery(t, db, "SELECT SUM(v) FROM t HAVING COUNT(*) > 5")); got != "" {
		t.Fatalf("got %q", got)
	}
}

func TestLeftJoinWithView(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE users (id INTEGER, name TEXT)")
	mustExec(t, db, "CREATE TABLE orders (uid INTEGER, total INTEGER)")
	mustExec(t, db, "INSERT INTO users VALUES (1,'ann'),(2,'bob')")
	mustExec(t, db, "INSERT INTO orders VALUES (1,5),(1,7)")
	mustExec(t, db, "CREATE VIEW spend AS SELECT uid, SUM(total) AS amount FROM orders GROUP BY uid")
	got := flat(mustQuery(t, db, `SELECT u.name, s.amount FROM users u
		LEFT JOIN spend s ON s.uid = u.id ORDER BY u.name`))
	if got != "ann,12;bob,NULL" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedViews(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4)")
	mustExec(t, db, "CREATE VIEW evens AS SELECT v FROM t WHERE v % 2 = 0")
	mustExec(t, db, "CREATE VIEW bigevens AS SELECT v FROM evens WHERE v > 2")
	if got := flat(mustQuery(t, db, "SELECT v FROM bigevens")); got != "4" {
		t.Fatalf("got %q", got)
	}
}

func TestSubqueryInSelectList(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (grp TEXT, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a',1),('a',3),('b',5)")
	got := flat(mustQuery(t, db, `SELECT grp, (SELECT MAX(v) FROM t i WHERE i.grp = o.grp)
		FROM t o WHERE v = 1`))
	if got != "a,3" {
		t.Fatalf("got %q", got)
	}
}

func TestAggregateOfExpression(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1,2),(3,4)")
	if got := flat(mustQuery(t, db, "SELECT SUM(a*b), MAX(a+b) FROM t")); got != "14,7" {
		t.Fatalf("got %q", got)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4),(5)")
	got := flat(mustQuery(t, db, "SELECT v % 2, COUNT(*) FROM t GROUP BY v % 2 ORDER BY 1"))
	if got != "0,2;1,3" {
		t.Fatalf("got %q", got)
	}
}

func TestCrossJoinThreeTables(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER); CREATE TABLE c (z INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2); INSERT INTO b VALUES (3); INSERT INTO c VALUES (4),(5)")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM a, b, c")
	if res.Rows[0][0].Int64() != 4 {
		t.Fatalf("cross product = %v", res.Rows)
	}
}

func TestParenthesizedJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INTEGER); CREATE TABLE b (id INTEGER); CREATE TABLE c (id INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1); INSERT INTO c VALUES (1)")
	res := mustQuery(t, db, `SELECT COUNT(*) FROM a JOIN (b JOIN c ON b.id = c.id) ON a.id = b.id`)
	if res.Rows[0][0].Int64() != 1 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE emp (id INTEGER, boss INTEGER, name TEXT)")
	mustExec(t, db, "INSERT INTO emp VALUES (1,0,'ceo'),(2,1,'eng'),(3,1,'ops')")
	got := flat(mustQuery(t, db, `SELECT e.name, m.name FROM emp e
		JOIN emp m ON m.id = e.boss ORDER BY e.name`))
	if got != "eng,ceo;ops,ceo" {
		t.Fatalf("got %q", got)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INTEGER); CREATE TABLE b (id INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)")
	_, err := db.Query("SELECT id FROM a JOIN b ON a.id = b.id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguous-column error", err)
	}
}

func TestUnaryMinusAndPrecedence(t *testing.T) {
	db := New()
	cases := []struct{ sql, want string }{
		{"SELECT -5", "-5"},
		{"SELECT -(2+3)", "-5"},
		{"SELECT 2+3*4", "14"},
		{"SELECT (2+3)*4", "20"},
		{"SELECT 10-2-3", "5"}, // left associative
		{"SELECT -2.5", "-2.5"},
		{"SELECT 1 < 2 AND 2 < 3", "1"},
		{"SELECT NOT 1 = 2", "1"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestInsertFromSelectSameTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2)")
	// The SELECT snapshot is taken before inserting.
	if n := mustExec(t, db, "INSERT INTO t SELECT v + 10 FROM t"); n != 2 {
		t.Fatalf("inserted %d", n)
	}
	if got := flat(mustQuery(t, db, "SELECT v FROM t ORDER BY v")); got != "1;2;11;12" {
		t.Fatalf("got %q", got)
	}
}

func TestUpdateWithParams(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (k TEXT, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a',1),('b',2)")
	if n := mustExec(t, db, "UPDATE t SET v = ? WHERE k = ?", 42, "a"); n != 1 {
		t.Fatalf("updated %d", n)
	}
	if got := flat(mustQuery(t, db, "SELECT v FROM t WHERE k = 'a'")); got != "42" {
		t.Fatalf("got %q", got)
	}
}

func TestTablesAndColumnsIntrospection(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE one (a INTEGER, b TEXT)")
	mustExec(t, db, "CREATE TABLE two (c REAL)")
	tables := db.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tables)
	}
	cols, err := db.TableColumns("one")
	if err != nil || len(cols) != 2 || cols[1].Type != KindText {
		t.Fatalf("cols = %v, %v", cols, err)
	}
	if _, err := db.TableColumns("missing"); err == nil {
		t.Fatal("missing table columns")
	}
	if _, err := db.TableRows("missing"); err == nil {
		t.Fatal("missing table rows")
	}
	rows, err := db.TableRows("one")
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func TestBetweenTextRange(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('apple'),('banana'),('cherry')")
	if got := flat(mustQuery(t, db, "SELECT s FROM t WHERE s BETWEEN 'b' AND 'c'")); got != "banana" {
		t.Fatalf("got %q", got)
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).Float64() != 7 || Float(2.5).Int64() != 2 {
		t.Fatal("numeric conversions")
	}
	if Text("12").Int64() != 12 || Text("2.5").Float64() != 2.5 {
		t.Fatal("text numeric parsing")
	}
	if Null().Int64() != 0 || Null().Float64() != 0 || Null().TextVal() != "" {
		t.Fatal("null accessors")
	}
	if Blob([]byte("ab")).TextVal() != "ab" {
		t.Fatal("blob text")
	}
	if string(Blob([]byte{1, 2}).BlobVal()) != "\x01\x02" || Int(1).BlobVal() != nil {
		t.Fatal("blob accessors")
	}
	if Float(1.5).TextVal() != "1.5" || Int(-3).TextVal() != "-3" {
		t.Fatal("text rendering")
	}
	if KindNull.String() != "NULL" || KindInt.String() != "INTEGER" ||
		KindFloat.String() != "REAL" || KindText.String() != "TEXT" || KindBlob.String() != "BLOB" {
		t.Fatal("kind strings")
	}
}

func TestResultEmpty(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	res := mustQuery(t, db, "SELECT v FROM t")
	if !res.Empty() {
		t.Fatal("empty result not Empty")
	}
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	res = mustQuery(t, db, "SELECT v FROM t")
	if res.Empty() {
		t.Fatal("non-empty result Empty")
	}
}
