package sqldb

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomValue generates an arbitrary Value for property-based tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1000)
	case 3:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return Text(string(b))
	default:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return Blob(b)
	}
}

type valuePair struct{ A, B Value }

// Generate implements quick.Generator.
func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{A: randomValue(r), B: randomValue(r)})
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(p valuePair) bool {
		return Compare(p.A, p.B) == -Compare(p.B, p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	f := func(p valuePair) bool {
		return Compare(p.A, p.A) == 0 && Compare(p.B, p.B) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

type valueTriple struct{ A, B, C Value }

// Generate implements quick.Generator.
func (valueTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueTriple{randomValue(r), randomValue(r), randomValue(r)})
}

func TestCompareTransitive(t *testing.T) {
	f := func(tr valueTriple) bool {
		vals := []Value{tr.A, tr.B, tr.C}
		// Sort the three; then pairwise order must be consistent.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Compare(vals[i], vals[j]) > 0 {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		return Compare(vals[0], vals[1]) <= 0 &&
			Compare(vals[1], vals[2]) <= 0 &&
			Compare(vals[0], vals[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupKeyConsistentWithCompare(t *testing.T) {
	// Equal values must have equal group keys; unequal values unequal keys.
	f := func(p valuePair) bool {
		var sa, sb strings.Builder
		p.A.groupKey(&sa)
		p.B.groupKey(&sb)
		sameKey := sa.String() == sb.String()
		return sameKey == (Compare(p.A, p.B) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSQLNullUnknown(t *testing.T) {
	f := func(p valuePair) bool {
		_, ok := CompareSQL(p.A, p.B)
		wantOK := !p.A.IsNull() && !p.B.IsNull()
		return ok == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntFloatCrossComparison(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("Int(3) != Float(3.0)")
	}
	if Compare(Int(3), Float(3.5)) >= 0 {
		t.Error("Int(3) not < Float(3.5)")
	}
	if Compare(Float(2.5), Int(3)) >= 0 {
		t.Error("Float(2.5) not < Int(3)")
	}
}

func TestTypeOrdering(t *testing.T) {
	// SQLite ordering: NULL < numeric < TEXT < BLOB.
	ordered := []Value{Null(), Int(999999), Text(""), Blob(nil)}
	for i := 0; i < len(ordered)-1; i++ {
		if Compare(ordered[i], ordered[i+1]) >= 0 {
			t.Errorf("%v not < %v", ordered[i], ordered[i+1])
		}
	}
}

func TestTruth(t *testing.T) {
	cases := []struct {
		v     Value
		truth bool
		known bool
	}{
		{Null(), false, false},
		{Int(0), false, true},
		{Int(1), true, true},
		{Int(-5), true, true},
		{Float(0), false, true},
		{Float(0.1), true, true},
		{Text("1"), true, true},
		{Text("0"), false, true},
		{Text("abc"), false, true},
		{Blob([]byte{1}), false, true},
	}
	for _, c := range cases {
		truth, known := c.v.Truth()
		if truth != c.truth || known != c.known {
			t.Errorf("Truth(%v) = (%v,%v), want (%v,%v)", c.v, truth, known, c.truth, c.known)
		}
	}
}

func TestFromGo(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{42, Int(42)},
		{int64(-7), Int(-7)},
		{uint8(255), Int(255)},
		{3.5, Float(3.5)},
		{"hi", Text("hi")},
		{[]byte{1, 2}, Blob([]byte{1, 2})},
		{true, Int(1)},
		{false, Int(0)},
		{Int(9), Int(9)},
	}
	for _, c := range cases {
		got, err := FromGo(c.in)
		if err != nil {
			t.Errorf("FromGo(%v): %v", c.in, err)
			continue
		}
		if Compare(got, c.want) != 0 {
			t.Errorf("FromGo(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) succeeded")
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Text("x"), "x"},
		{Blob([]byte{0xab}), "x'ab'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}
