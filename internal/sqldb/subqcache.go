package sqldb

import (
	"fmt"
	"strings"
)

// Subquery result caching.
//
// Correlated subqueries are re-evaluated for every outer row; audit-log
// invariants like LibSEAL's Git soundness check nest a MAX-per-(repo,branch)
// subquery inside a join, which scales as O(rows^3) when evaluated naively.
// SQLite sidesteps this with automatic indexes; this engine instead caches
// each subquery's result keyed by the values of its *free variables* — the
// column references that resolve in an enclosing scope. Distinct bindings
// are usually far fewer than outer rows, collapsing the blow-up. A subquery
// with no free variables is evaluated once per statement.
//
// Caching is disabled while a statement mutates rows it may re-read
// (UPDATE), since results could go stale mid-statement.

// freeRef names one free variable of a subquery.
type freeRef struct {
	table, name string // lower-cased
}

// subqInfo is the per-statement cache state for one subquery AST node.
type subqInfo struct {
	uncachable bool
	free       []freeRef
	cache      map[string]*Result
}

// subqInfoFor analyses the subquery's free variables once per evaluator.
func (ev *evaluator) subqInfoFor(sel *SelectStmt) *subqInfo {
	if ev.subq == nil {
		ev.subq = make(map[*SelectStmt]*subqInfo)
	}
	if info, ok := ev.subq[sel]; ok {
		return info
	}
	info := &subqInfo{cache: make(map[string]*Result)}
	free, err := ev.freeVars(sel, nil)
	if err != nil {
		info.uncachable = true
	} else {
		// Deduplicate, preserving order for a stable key.
		seen := map[freeRef]bool{}
		for _, fr := range free {
			if !seen[fr] {
				seen[fr] = true
				info.free = append(info.free, fr)
			}
		}
	}
	ev.subq[sel] = info
	return info
}

// execSelectCached evaluates a subquery with result caching.
func (ev *evaluator) execSelectCached(sel *SelectStmt, s *rowScope) (*Result, error) {
	if ev.nocache {
		return ev.execSelect(sel, s)
	}
	info := ev.subqInfoFor(sel)
	if info.uncachable {
		return ev.execSelect(sel, s)
	}
	var sb strings.Builder
	for _, fr := range info.free {
		v, ok := resolveInChain(s, fr)
		if !ok {
			// The binding environment differs from the analysis; fall back.
			return ev.execSelect(sel, s)
		}
		v.groupKey(&sb)
	}
	key := sb.String()
	if res, ok := info.cache[key]; ok {
		return res, nil
	}
	res, err := ev.execSelect(sel, s)
	if err != nil {
		return nil, err
	}
	info.cache[key] = res
	return res, nil
}

// resolveInChain looks a free variable up across the scope chain.
func resolveInChain(s *rowScope, fr freeRef) (Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		idx, err := sc.lookup(fr.table, fr.name)
		if err != nil {
			return Null(), false
		}
		if idx >= 0 {
			return sc.row[idx], true
		}
	}
	return Null(), false
}

// freeVars collects the column references in sel that do not bind in sel's
// own FROM sources (nor in `outerBound`, the bound columns of enclosing
// subqueries between sel and the caching site).
func (ev *evaluator) freeVars(sel *SelectStmt, outerBound []scopeCol) ([]freeRef, error) {
	bound, err := ev.sourceCols(sel.From)
	if err != nil {
		return nil, err
	}
	env := append(append([]scopeCol{}, bound...), outerBound...)
	var free []freeRef
	collect := func(e Expr) error {
		f, err := ev.freeInExpr(e, env)
		if err != nil {
			return err
		}
		free = append(free, f...)
		return nil
	}
	for _, item := range sel.Items {
		if item.Star {
			continue
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if err := collect(sel.Where); err != nil {
		return nil, err
	}
	for _, g := range sel.GroupBy {
		if err := collect(g); err != nil {
			return nil, err
		}
	}
	if err := collect(sel.Having); err != nil {
		return nil, err
	}
	for _, k := range sel.OrderBy {
		if err := collect(k.Expr); err != nil {
			return nil, err
		}
	}
	if err := collect(sel.Limit); err != nil {
		return nil, err
	}
	if err := collect(sel.Offset); err != nil {
		return nil, err
	}
	for _, part := range sel.Compound {
		f, err := ev.freeVars(part.Select, env)
		if err != nil {
			return nil, err
		}
		free = append(free, f...)
	}
	return free, nil
}

// freeInExpr walks an expression, descending into nested subqueries with
// their own bindings added.
func (ev *evaluator) freeInExpr(e Expr, bound []scopeCol) ([]freeRef, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Literal, *ParamExpr:
		return nil, nil
	case *ColExpr:
		table := strings.ToLower(x.Table)
		name := strings.ToLower(x.Name)
		for _, c := range bound {
			if c.name == name && (table == "" || c.table == table) {
				return nil, nil
			}
		}
		return []freeRef{{table: table, name: name}}, nil
	case *Unary:
		return ev.freeInExpr(x.X, bound)
	case *Binary:
		l, err := ev.freeInExpr(x.L, bound)
		if err != nil {
			return nil, err
		}
		r, err := ev.freeInExpr(x.R, bound)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case *FuncCall:
		var out []freeRef
		for _, a := range x.Args {
			f, err := ev.freeInExpr(a, bound)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
		}
		return out, nil
	case *IsNullExpr:
		return ev.freeInExpr(x.X, bound)
	case *BetweenExpr:
		var out []freeRef
		for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
			f, err := ev.freeInExpr(sub, bound)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
		}
		return out, nil
	case *LikeExpr:
		l, err := ev.freeInExpr(x.X, bound)
		if err != nil {
			return nil, err
		}
		r, err := ev.freeInExpr(x.Pattern, bound)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case *CaseExpr:
		var out []freeRef
		exprs := []Expr{x.Operand, x.Else}
		for _, w := range x.Whens {
			exprs = append(exprs, w.Cond, w.Result)
		}
		for _, sub := range exprs {
			f, err := ev.freeInExpr(sub, bound)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
		}
		return out, nil
	case *CastExpr:
		return ev.freeInExpr(x.X, bound)
	case *SubqueryExpr:
		return ev.freeVars(x.Select, bound)
	case *ExistsExpr:
		return ev.freeVars(x.Select, bound)
	case *InExpr:
		out, err := ev.freeInExpr(x.X, bound)
		if err != nil {
			return nil, err
		}
		for _, le := range x.List {
			f, err := ev.freeInExpr(le, bound)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
		}
		if x.Select != nil {
			f, err := ev.freeVars(x.Select, bound)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
		}
		return out, nil
	}
	return nil, nil
}

// sourceCols computes a FROM clause's visible columns without materialising
// rows.
func (ev *evaluator) sourceCols(te TableExpr) ([]scopeCol, error) {
	switch t := te.(type) {
	case nil:
		return nil, nil
	case *TableName:
		key := strings.ToLower(t.Name)
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = key
		}
		if tbl, ok := ev.tables[key]; ok {
			cols := make([]scopeCol, len(tbl.Cols))
			for i, c := range tbl.Cols {
				cols[i] = scopeCol{table: alias, name: strings.ToLower(c.Name)}
			}
			return cols, nil
		}
		if view, ok := ev.views[key]; ok {
			names, err := ev.outputCols(view.Select)
			if err != nil {
				return nil, err
			}
			cols := make([]scopeCol, len(names))
			for i, n := range names {
				cols[i] = scopeCol{table: alias, name: strings.ToLower(n)}
			}
			return cols, nil
		}
		return nil, ErrNoSuchTable
	case *SubqueryTable:
		names, err := ev.outputCols(t.Select)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(t.Alias)
		cols := make([]scopeCol, len(names))
		for i, n := range names {
			cols[i] = scopeCol{table: alias, name: strings.ToLower(n)}
		}
		return cols, nil
	case *JoinExpr:
		lcols, err := ev.sourceCols(t.Left)
		if err != nil {
			return nil, err
		}
		rcols, err := ev.sourceCols(t.Right)
		if err != nil {
			return nil, err
		}
		if !t.Natural {
			return append(lcols, rcols...), nil
		}
		out := append([]scopeCol{}, lcols...)
		for _, rc := range rcols {
			dup := false
			for _, lc := range lcols {
				if lc.name == rc.name {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, rc)
			}
		}
		return out, nil
	}
	return nil, nil
}

// outputCols computes a select's result column names without executing it.
func (ev *evaluator) outputCols(sel *SelectStmt) ([]string, error) {
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			cols, err := ev.sourceCols(sel.From)
			if err != nil {
				return nil, err
			}
			want := strings.ToLower(item.StarTable)
			for _, c := range cols {
				if want == "" || c.table == want {
					names = append(names, c.name)
				}
			}
			continue
		}
		if item.Alias != "" {
			names = append(names, item.Alias)
			continue
		}
		if ce, ok := item.Expr.(*ColExpr); ok {
			names = append(names, ce.Name)
			continue
		}
		names = append(names, exprName(item.Expr))
	}
	return names, nil
}

// QueryWithCache runs a SELECT with the subquery cache explicitly enabled or
// disabled. It exists for the cache's ablation benchmark; normal callers use
// DB.Query, which always caches.
func QueryWithCache(db *DB, sql string, cached bool) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: QueryWithCache requires a SELECT")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ev := db.evaluator(nil)
	ev.nocache = !cached
	return ev.execSelect(sel, nil)
}
